#include "core/drac.hpp"

#include <gtest/gtest.h>

#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

std::shared_ptr<roadmap::StraightRoad> test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

SceneSnapshot make_scene(const std::shared_ptr<roadmap::StraightRoad>& map,
                         double ego_speed = 10.0) {
  SceneSnapshot scene;
  scene.map = map.get();
  scene.ego.id = 0;
  scene.ego.state.x = 50.0;
  scene.ego.state.y = 5.25;
  scene.ego.state.speed = ego_speed;
  scene.ego.dims = {4.5, 2.0};
  return scene;
}

ActorSnapshot other(int id, double x, double y, double speed) {
  ActorSnapshot a;
  a.id = id;
  a.state.x = x;
  a.state.y = y;
  a.state.speed = speed;
  a.dims = {4.5, 2.0};
  return a;
}

TEST(Drac, ValidatesParameters) {
  EXPECT_THROW(DracMetric(0.0, 8.0), std::invalid_argument);
  EXPECT_THROW(DracMetric(4.0, 3.0), std::invalid_argument);
}

TEST(Drac, ZeroWithoutClosingInPathActor) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  const DracMetric drac;
  EXPECT_DOUBLE_EQ(drac.value(scene), 0.0);
  scene.others.push_back(other(1, 74.5, 5.25, 15.0));  // pulling away
  EXPECT_DOUBLE_EQ(drac.value(scene), 0.0);
  EXPECT_DOUBLE_EQ(drac.risk(scene), 0.0);
}

TEST(Drac, ComputesRequiredDeceleration) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 74.5, 5.25, 4.0));  // gap 20 m, closing 6 m/s
  const DracMetric drac;
  EXPECT_NEAR(drac.value(scene), 36.0 / 40.0, 1e-9);
}

TEST(Drac, RiskThresholdsAndSaturation) {
  const auto map = test_map();
  const DracMetric drac(3.5, 8.0);
  {
    SceneSnapshot scene = make_scene(map);
    scene.others.push_back(other(1, 74.5, 5.25, 4.0));  // DRAC 0.9 — comfortable
    EXPECT_DOUBLE_EQ(drac.risk(scene), 0.0);
  }
  {
    SceneSnapshot scene = make_scene(map, 12.0);
    scene.others.push_back(other(1, 60.5, 5.25, 0.0));  // gap 6, closing 12 -> 12 m/s^2
    EXPECT_DOUBLE_EQ(drac.risk(scene), 1.0);  // beyond the braking limit
  }
  {
    SceneSnapshot scene = make_scene(map, 10.0);
    scene.others.push_back(other(1, 64.5, 5.25, 0.0));  // gap 10, closing 10 -> 5 m/s^2
    const double r = drac.risk(scene);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
    EXPECT_NEAR(r, (5.0 - 3.5) / 4.5, 1e-9);
  }
}

TEST(Drac, BlindToOutOfPathThreat) {
  // The family weakness STI addresses: a fast side actor produces no DRAC.
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 52.0, 1.75, 14.0));
  const DracMetric drac;
  EXPECT_DOUBLE_EQ(drac.risk(scene), 0.0);
}

TEST(Drac, MonotoneInClosingSpeed) {
  const auto map = test_map();
  const DracMetric drac;
  double prev = -1.0;
  for (double ego_speed : {6.0, 8.0, 10.0, 12.0}) {
    SceneSnapshot scene = make_scene(map, ego_speed);
    scene.others.push_back(other(1, 74.5, 5.25, 4.0));
    const double v = drac.value(scene);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace iprism::core
