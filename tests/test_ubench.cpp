// The ubench harness replaced the system google-benchmark so that committed
// BENCH_*.json baselines can never again carry a debug-built benchmark
// library (the original BENCH_tube_hotpath.json taint). These tests pin the
// pieces the guard and the JSON consumers rely on: registration/Arg naming,
// filter semantics, the gbench-compatible JSON shape, and the
// library_build_type the context block reports.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "ubench.hpp"

namespace iprism {
namespace {

std::atomic<std::int64_t> g_plain_iterations{0};
std::atomic<std::int64_t> g_arg_sum{0};

void BM_UbenchSelfPlain(ubench::State& state) {
  std::int64_t n = 0;
  for (auto _ : state) ++n;
  g_plain_iterations += n;
  ubench::DoNotOptimize(n);
}
UBENCH(BM_UbenchSelfPlain);

void BM_UbenchSelfArgs(ubench::State& state) {
  g_arg_sum += state.range(0);
  std::int64_t acc = 0;
  for (auto _ : state) acc += state.range(0);
  ubench::DoNotOptimize(acc);
}
UBENCH(BM_UbenchSelfArgs)->Arg(3)->Arg(7);

TEST(Ubench, FilterSelectsRunsAndArgsNameThem) {
  ubench::RunOptions options;
  options.filter = "BM_UbenchSelfArgs";
  options.min_time_s = 0.0;  // one calibration batch is enough for shape tests
  const auto results = ubench::run_registered(options, nullptr);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "BM_UbenchSelfArgs/3");
  EXPECT_EQ(results[1].name, "BM_UbenchSelfArgs/7");
  for (const auto& r : results) {
    EXPECT_GE(r.iterations, 1);
    EXPECT_GE(r.real_ns, 0.0);
    EXPECT_GE(r.cpu_ns, 0.0);
  }
}

TEST(Ubench, TimedLoopRunsExactlyTheReportedIterations) {
  g_plain_iterations = 0;
  ubench::RunOptions options;
  options.filter = "BM_UbenchSelfPlain";
  options.min_time_s = 0.0;
  const auto results = ubench::run_registered(options, nullptr);
  ASSERT_EQ(results.size(), 1u);
  // Every calibration batch counts toward the global, and the final batch is
  // the reported one — with min_time 0 the first batch already qualifies.
  EXPECT_EQ(g_plain_iterations.load(), results[0].iterations);
}

TEST(Ubench, JsonReportCarriesContextAndBenchmarks) {
  ubench::add_context("test_context_key", "test_context_value");
  ubench::RunOptions options;
  options.filter = "BM_UbenchSelfArgs/3";
  options.min_time_s = 0.0;
  const auto results = ubench::run_registered(options, nullptr);
  ASSERT_EQ(results.size(), 1u);
  const std::string json = ubench::json_report(results);
  EXPECT_NE(json.find("\"library_build_type\": \"" +
                      std::string(ubench::library_build_type()) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test_context_key\": \"test_context_value\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"BM_UbenchSelfArgs/3\""), std::string::npos);
  EXPECT_NE(json.find("\"time_unit\": \"ns\""), std::string::npos);
}

TEST(Ubench, LibraryBuildTypeMatchesThisBuild) {
  // The harness compiles under the same preset as this test: NDEBUG without
  // sanitizers/DCHECKS must report "release", anything else "debug" — the
  // property require_release_guard's debug-library rejection stands on.
  const std::string type = ubench::library_build_type();
  EXPECT_TRUE(type == "release" || type == "debug");
#if defined(NDEBUG) && !defined(IPRISM_ENABLE_DCHECKS) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
  EXPECT_EQ(type, "release");
#endif
}

}  // namespace
}  // namespace iprism
