#include <gtest/gtest.h>

#include "dataset/cases.hpp"

#include "common/units.hpp"
#include "dataset/generator.hpp"
#include "dataset/scan.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::dataset {
namespace {

DatasetParams small_params() {
  DatasetParams p;
  p.log_count = 4;
  p.seconds = 5.0;
  return p;
}

TEST(TrafficLog, ValidatesConstruction) {
  EXPECT_THROW(TrafficLog(nullptr, 0.1), std::invalid_argument);
  auto map = std::make_shared<roadmap::StraightRoad>(2, 3.5, 100.0);
  EXPECT_THROW(TrafficLog(map, 0.0), std::invalid_argument);
}

TEST(TrafficLog, SingleEgoEnforced) {
  auto map = std::make_shared<roadmap::StraightRoad>(2, 3.5, 100.0);
  TrafficLog log(map, 0.1);
  LoggedActor a;
  a.id = 0;
  a.is_ego = true;
  a.trajectory.append(common::Seconds{0.0}, {});
  log.add_actor(std::move(a));
  LoggedActor b;
  b.id = 1;
  b.is_ego = true;
  b.trajectory.append(common::Seconds{0.0}, {});
  EXPECT_THROW(log.add_actor(std::move(b)), std::invalid_argument);
}

TEST(Generator, DeterministicCorpus) {
  const auto a = generate_dataset(small_params());
  const auto b = generate_dataset(small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].samples(), b[i].samples());
    const auto sa = a[i].snapshot_at(a[i].samples() - 1);
    const auto sb = b[i].snapshot_at(b[i].samples() - 1);
    EXPECT_DOUBLE_EQ(sa.ego.state.x, sb.ego.state.x);
  }
}

TEST(Generator, LogsHaveEgoAndActors) {
  const auto logs = generate_dataset(small_params());
  for (const auto& log : logs) {
    EXPECT_TRUE(log.ego().is_ego);
    EXPECT_GE(log.actors().size(), 4u);  // ego + >= min_actors
    EXPECT_EQ(log.samples(), 51);        // 5 s at 10 Hz + initial
  }
}

TEST(Generator, BenignTrafficMostlyCollisionFree) {
  // Rule-abiding traffic: footprint overlaps (crashes) should be absent.
  DatasetParams p = small_params();
  p.log_count = 6;
  p.seconds = 10.0;
  const auto logs = generate_dataset(p);
  int overlaps = 0;
  for (const auto& log : logs) {
    for (int step = 0; step < log.samples(); step += 5) {
      const auto scene = log.snapshot_at(step);
      const auto ego_box = dynamics::footprint(scene.ego.state, scene.ego.dims);
      for (const auto& o : scene.others) {
        if (ego_box.intersects(dynamics::footprint(o.state, o.dims))) ++overlaps;
      }
    }
  }
  EXPECT_EQ(overlaps, 0);
}

TEST(Scan, ProducesLongTailedDistribution) {
  DatasetParams p;
  p.log_count = 10;
  p.seconds = 8.0;
  const auto logs = generate_dataset(p);
  core::ReachTubeParams tube;
  const core::StiCalculator sti(tube);
  const StiScanResult scan = scan_logs(logs, sti, /*stride=*/10);
  ASSERT_FALSE(scan.actor_sti.empty());
  // Benign corpus: median per-actor STI is zero; tail exists but is small.
  EXPECT_DOUBLE_EQ(scan.actor_percentile(50.0), 0.0);
  EXPECT_GE(scan.actor_zero_fraction(), 0.5);
  EXPECT_LE(scan.actor_percentile(99.0), 1.0);
  // Combined >= any individual percentile at the same q.
  EXPECT_GE(scan.combined_percentile(90.0), scan.actor_percentile(90.0));
}

TEST(Scan, EmptyCorpusYieldsEmptyResult) {
  const core::StiCalculator sti;
  const StiScanResult scan = scan_logs({}, sti);
  EXPECT_TRUE(scan.actor_sti.empty());
  EXPECT_DOUBLE_EQ(scan.actor_percentile(99.0), 0.0);
}

TEST(Cases, AllFourScenesBuild) {
  const auto scenes = build_case_scenes();
  ASSERT_EQ(scenes.size(), 4u);
  for (const auto& scene : scenes) {
    EXPECT_FALSE(scene.name.empty());
    EXPECT_GT(scene.log.samples(), scene.analysis_step);
    EXPECT_TRUE(scene.log.ego().is_ego);
  }
}

TEST(Cases, RankingsIdentifyTheScriptedThreat) {
  const auto scenes = build_case_scenes();
  const core::StiCalculator sti;
  for (const auto& scene : scenes) {
    const auto ranked = rank_actors(scene.log, scene.analysis_step, sti);
    ASSERT_FALSE(ranked.empty()) << scene.name;
    // Every scene is built so that at least one actor imposes nonzero risk
    // at the analysis step.
    EXPECT_GT(ranked.front().sti, 0.05) << scene.name;
  }
}

TEST(Cases, RecordLogRequiresEgo) {
  auto map = std::make_shared<roadmap::StraightRoad>(2, 3.5, 100.0);
  sim::World w(map, 0.1);
  sim::LaneFollowBehavior behavior(sim::LaneFollowBehavior::Params{});
  EXPECT_THROW(record_log(std::move(w), behavior, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace iprism::dataset
