#include "core/sti.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dynamics/cvtr.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

using namespace iprism::common::literals;

std::shared_ptr<roadmap::StraightRoad> test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState ego_state(double x = 50.0, double y = 5.25, double speed = 8.0) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

ActorForecast actor(int id, double x, double y, double speed, double heading = 0.0) {
  dynamics::CvtrPredictor pred;
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  s.heading = heading;
  return {id, pred.predict(s, 0.0_s, 4.0_s, 0.25_s), {4.5, 2.0}};
}

TEST(Sti, NoActorsMeansZeroRisk) {
  const StiCalculator sti;
  const auto map = test_map();
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, {});
  EXPECT_DOUBLE_EQ(r.combined, 0.0);
  EXPECT_TRUE(r.per_actor.empty());
  EXPECT_DOUBLE_EQ(r.volume_all, r.volume_empty);
}

TEST(Sti, StoppedLeadImposesRisk) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {actor(1, 62.0, 5.25, 0.0)};
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, forecasts);
  EXPECT_GT(r.combined, 0.05);
  ASSERT_EQ(r.per_actor.size(), 1u);
  EXPECT_EQ(r.per_actor[0].first, 1);
  EXPECT_GT(r.per_actor[0].second, 0.05);
}

TEST(Sti, SingleActorCounterfactualMatchesCombined) {
  // With exactly one actor, removing it recovers the empty tube, so
  // STI_actor == STI_combined (Eqs. 4 and 5 coincide).
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {actor(1, 64.0, 5.25, 2.0)};
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, forecasts);
  EXPECT_NEAR(r.per_actor[0].second, r.combined, 1e-12);
}

TEST(Sti, ActorBehindOnOtherLaneIsZero) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {actor(1, 10.0, 1.75, 3.0)};
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, forecasts);
  EXPECT_DOUBLE_EQ(r.combined, 0.0);
  EXPECT_DOUBLE_EQ(r.per_actor[0].second, 0.0);
}

TEST(Sti, FullBlockadeApproachesOne) {
  const StiCalculator sti;
  const auto map = test_map();
  // Stopped wall directly ahead across all three lanes, ego fast.
  const std::vector<ActorForecast> wall = {
      actor(1, 58.0, 1.75, 0.0), actor(2, 58.0, 5.25, 0.0), actor(3, 58.0, 8.75, 0.0)};
  const StiResult r = sti.compute(*map, ego_state(50.0, 5.25, 14.0), 0.0_s, wall);
  EXPECT_GT(r.combined, 0.6);
}

TEST(Sti, CollisionStateIsMaximalRisk) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> overlapping = {actor(1, 52.0, 5.25, 0.0)};
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, overlapping);
  EXPECT_DOUBLE_EQ(r.combined, 1.0);
}

TEST(Sti, ValuesAlwaysInUnitRangeProperty) {
  const StiCalculator sti;
  const auto map = test_map();
  common::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ActorForecast> forecasts;
    const int n = rng.uniform_int(1, 4);
    for (int i = 0; i < n; ++i) {
      forecasts.push_back(actor(i, 50.0 + rng.uniform(-30.0, 50.0),
                                rng.uniform(1.0, 9.5), rng.uniform(0.0, 12.0),
                                rng.uniform(-0.3, 0.3)));
    }
    const auto ego = ego_state(50.0, rng.uniform(2.0, 9.0), rng.uniform(0.0, 14.0));
    const StiResult r = sti.compute(*map, ego, 0.0_s, forecasts);
    ASSERT_GE(r.combined, 0.0);
    ASSERT_LE(r.combined, 1.0);
    for (const auto& [id, v] : r.per_actor) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(Sti, CombinedOnlyAgreesWithFullComputation) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {actor(1, 62.0, 5.25, 0.0),
                                                actor(2, 70.0, 1.75, 4.0)};
  const StiResult full = sti.compute(*map, ego_state(), 0.0_s, forecasts);
  const double fast = sti.combined(*map, ego_state(), 0.0_s, forecasts);
  EXPECT_DOUBLE_EQ(full.combined, fast);
}

TEST(Sti, OffRoadEgoReportsZeroSafely) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {actor(1, 62.0, 5.25, 0.0)};
  const StiResult r = sti.compute(*map, ego_state(50.0, 40.0, 8.0), 0.0_s, forecasts);
  EXPECT_DOUBLE_EQ(r.combined, 0.0);  // |T^null| == 0: undefined -> 0, no throw
  EXPECT_DOUBLE_EQ(r.volume_empty, 0.0);
}

TEST(Sti, MaxActorStiHelper) {
  StiResult r;
  EXPECT_DOUBLE_EQ(r.max_actor_sti(), 0.0);
  r.per_actor = {{1, 0.2}, {2, 0.7}, {3, 0.1}};
  EXPECT_DOUBLE_EQ(r.max_actor_sti(), 0.7);
}

TEST(Sti, SymmetricThreatsScoreEqually) {
  // Two actors mirrored about the ego lane centre must receive identical
  // STI (the tube and the counterfactuals are symmetric).
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> pair = {actor(1, 62.0, 5.25 - 3.5, 2.0),
                                           actor(2, 62.0, 5.25 + 3.5, 2.0)};
  const StiResult r = sti.compute(*map, ego_state(), 0.0_s, pair);
  ASSERT_EQ(r.per_actor.size(), 2u);
  EXPECT_NEAR(r.per_actor[0].second, r.per_actor[1].second, 0.03);
}

TEST(Sti, CombinedAtLeastAsLargeAsBestActor) {
  // Removing *all* actors frees at least as much tube volume as removing
  // any single one, so combined >= max per-actor (up to sampling noise).
  const StiCalculator sti;
  const auto map = test_map();
  common::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ActorForecast> forecasts;
    for (int i = 0; i < 3; ++i) {
      forecasts.push_back(actor(i, 50.0 + rng.uniform(5.0, 30.0),
                                rng.uniform(1.5, 9.0), rng.uniform(0.0, 6.0)));
    }
    const StiResult r = sti.compute(*map, ego_state(), 0.0_s, forecasts);
    ASSERT_GE(r.combined, r.max_actor_sti() - 0.05);
  }
}

TEST(Sti, NearerThreatScoresHigher) {
  const StiCalculator sti;
  const auto map = test_map();
  const std::vector<ActorForecast> near_f = {actor(1, 60.0, 5.25, 0.0)};
  const std::vector<ActorForecast> far_f = {actor(1, 80.0, 5.25, 0.0)};
  const auto near_r = sti.compute(*map, ego_state(), 0.0_s, near_f);
  const auto far_r = sti.compute(*map, ego_state(), 0.0_s, far_f);
  EXPECT_GT(near_r.combined, far_r.combined);
}

}  // namespace
}  // namespace iprism::core
