// Determinism suite for the parallel STI engine: with any number of worker
// threads, StiCalculator must produce *bit-identical* results to the serial
// path. This holds by construction — every ReachTubeComputer::compute call
// owns its seeded RNG and results aggregate by index (DESIGN.md §8) — and
// this suite is the executable form of that argument, run across all five
// scenario typologies. It is also part of the CI tsan job, where the same
// runs double as a data-race check on the fan-out.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/monitor.hpp"
#include "core/sti.hpp"
#include "dynamics/cvtr.hpp"
#include "scenario/factory.hpp"
#include "sim/world.hpp"

namespace iprism {
namespace {

constexpr int kThreadCounts[] = {2, 4, 8};

/// Builds a mid-episode world for a typology (stepped so the threat is live).
sim::World typology_world(const scenario::ScenarioFactory& factory,
                          scenario::Typology typology) {
  common::Rng rng(7);
  const auto spec = factory.sample(typology, 0, rng);
  sim::World world = factory.build(spec);
  for (int i = 0; i < 20; ++i) world.step(dynamics::Control{0.0, 0.0});
  return world;
}

void expect_bit_identical(const core::StiResult& serial, const core::StiResult& parallel,
                          int threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(threads));
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(serial.combined, parallel.combined);
  EXPECT_EQ(serial.volume_all, parallel.volume_all);
  EXPECT_EQ(serial.volume_empty, parallel.volume_empty);
  ASSERT_EQ(serial.per_actor.size(), parallel.per_actor.size());
  for (std::size_t i = 0; i < serial.per_actor.size(); ++i) {
    EXPECT_EQ(serial.per_actor[i].first, parallel.per_actor[i].first);
    EXPECT_EQ(serial.per_actor[i].second, parallel.per_actor[i].second);
  }
}

TEST(ParallelSti, BitIdenticalToSerialAcrossAllTypologies) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::StiCalculator serial;
    const core::StiResult reference =
        serial.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (int threads : kThreadCounts) {
      core::ReachTubeParams params;
      params.num_threads = threads;
      const core::StiCalculator parallel(params);
      expect_bit_identical(
          reference,
          parallel.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
          threads);
    }
  }
}

TEST(ParallelSti, CombinedOnlyBitIdenticalToSerial) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::StiCalculator serial;
    const double reference =
        serial.combined(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
    for (int threads : kThreadCounts) {
      core::ReachTubeParams params;
      params.num_threads = threads;
      const core::StiCalculator parallel(params);
      EXPECT_EQ(reference, parallel.combined(world.map(), world.ego().state,
                                             common::Seconds{world.time()}, forecasts))
          << "num_threads=" << threads;
    }
  }
}

TEST(ParallelSti, RepeatedParallelEvaluationsAreStable) {
  // Thread scheduling varies between runs; results must not.
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kGhostCutIn);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  core::ReachTubeParams params;
  params.num_threads = 4;
  const core::StiCalculator sti(params);
  const core::StiResult first =
      sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
  for (int run = 0; run < 5; ++run) {
    expect_bit_identical(
        first, sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
        params.num_threads);
  }
}

TEST(ParallelSti, MonitorAssessmentsUnchangedByThreads) {
  // End-to-end plumbing check: RiskMonitorParams::tube.num_threads must not
  // change any assessment the streaming monitor produces.
  const scenario::ScenarioFactory factory;
  core::RiskMonitorParams serial_params;
  core::RiskMonitorParams parallel_params;
  parallel_params.tube.num_threads = 4;
  core::RiskMonitor serial(serial_params);
  core::RiskMonitor parallel(parallel_params);

  sim::World world = typology_world(factory, scenario::Typology::kLeadSlowdown);
  for (int step = 0; step < 30; ++step) {
    world.step(dynamics::Control{0.0, 0.0});
    const auto a = serial.update(world);
    const auto b = parallel.update(world);
    EXPECT_EQ(a.sti_combined, b.sti_combined) << "step " << step;
    EXPECT_EQ(a.level, b.level) << "step " << step;
    EXPECT_EQ(a.riskiest_actor, b.riskiest_actor) << "step " << step;
    EXPECT_EQ(a.riskiest_sti, b.riskiest_sti) << "step " << step;
  }
}

// Capacity invariance: ReachTubeParams::scratch_reserve sizes the
// FlatHashGrid-based per-compute scratch, and because that container's
// iteration order is insertion order regardless of capacity (DESIGN.md §9),
// any reserve must yield *bit-identical* tubes. This is the end-to-end form
// of the container's order guarantee — the old std::unordered_* scratch
// could not be pre-reserved precisely because this test would fail. Runs in
// the CI tsan job alongside the thread-identity suites.
constexpr std::size_t kScratchReserves[] = {0, 64, 4096};

void expect_same_tube(const core::ReachTube& a, const core::ReachTube& b,
                      std::size_t reserve) {
  SCOPED_TRACE("scratch_reserve=" + std::to_string(reserve));
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(a.volume, b.volume);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t j = 0; j < a.slices.size(); ++j) {
    ASSERT_EQ(a.slices[j].size(), b.slices[j].size()) << "slice " << j;
    for (std::size_t i = 0; i < a.slices[j].size(); ++i) {
      EXPECT_EQ(a.slices[j][i].x, b.slices[j][i].x) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].y, b.slices[j][i].y) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].heading, b.slices[j][i].heading)
          << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].speed, b.slices[j][i].speed)
          << "slice " << j << " state " << i;
    }
  }
}

TEST(TubeCapacityInvariance, TubesBitIdenticalAcrossScratchReserves) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::ReachTubeComputer reference_rt;
    const core::ReachTube reference =
        reference_rt.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (std::size_t reserve : kScratchReserves) {
      core::ReachTubeParams params;
      params.scratch_reserve = reserve;
      const core::ReachTubeComputer rt(params);
      expect_same_tube(
          reference,
          rt.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts), reserve);
    }
  }
}

TEST(TubeCapacityInvariance, StiBitIdenticalAcrossScratchReservesAndThreads) {
  // The combined matrix: scratch sizing x worker threads, both of which must
  // be pure performance knobs with no observable effect on STI.
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kLeadCutIn);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  const core::StiCalculator serial;
  const core::StiResult reference =
      serial.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

  for (std::size_t reserve : kScratchReserves) {
    for (int threads : {0, 2, 4}) {
      core::ReachTubeParams params;
      params.scratch_reserve = reserve;
      params.num_threads = threads;
      const core::StiCalculator sti(params);
      SCOPED_TRACE("scratch_reserve=" + std::to_string(reserve));
      expect_bit_identical(
          reference,
          sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
          threads);
    }
  }
}

// --- CounterfactualDeltaIdentity (DESIGN.md §12) ---------------------------
//
// The shared-wavefront engine derives every counterfactual tube from one
// attributed base propagation by memoized replay. Its contract is *exact*
// identity — contents, cardinalities, SplitMix64 emission order — with the
// from-scratch compute(..., exclude) it replaces, for every typology, thread
// count, and scratch reserve. These suites are the executable form of that
// contract and run in the CI tsan job (the replay fan-out is the new
// concurrent workload).

TEST(CounterfactualDeltaIdentity, TubesBitIdenticalToFromScratchAcrossTypologies) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::ReachTubeComputer rt;
    const auto obstacles =
        rt.sample_obstacles(forecasts, common::Seconds{world.time()});
    const core::AttributedTube base =
        rt.compute_attributed(world.map(), world.ego().state, obstacles);

    // Attribution only records — the base tube is the plain tube.
    expect_same_tube(rt.compute(world.map(), world.ego().state, obstacles), base.tube,
                     0);

    // |T^{∅}| by replay vs the from-scratch no-obstacles tube.
    core::CounterfactualStats empty_stats;
    expect_same_tube(
        rt.compute(world.map(), world.ego().state,
                   std::span<const core::ObstacleTimeline>{}),
        rt.compute_unblocked(world.map(), world.ego().state, obstacles, base,
                             &empty_stats),
        0);

    // Every |T^{/i}| by replay vs from-scratch compute(..., exclude).
    for (std::size_t i = 0; i < forecasts.size(); ++i) {
      SCOPED_TRACE("actor_index=" + std::to_string(i));
      core::CounterfactualStats stats;
      expect_same_tube(
          rt.compute(world.map(), world.ego().state, obstacles,
                     common::ActorId{forecasts[i].id}),
          rt.compute_counterfactual(world.map(), world.ego().state, obstacles, base, i,
                                    &stats),
          0);
      // A free counterfactual must really have skipped re-expansion.
      if (stats.free) EXPECT_EQ(stats.fresh_tests, 0u);
    }
  }
}

TEST(CounterfactualDeltaIdentity, StiMatchesScratchEngineAcrossThreadsAndReserves) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    core::ReachTubeParams scratch_params;
    scratch_params.delta_counterfactuals = false;
    const core::StiCalculator scratch(scratch_params);
    const core::StiResult reference = scratch.compute(
        world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
    const double reference_combined = scratch.combined(
        world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (std::size_t reserve : kScratchReserves) {
      for (int threads : {0, 2, 4}) {
        core::ReachTubeParams params;
        params.scratch_reserve = reserve;
        params.num_threads = threads;
        const core::StiCalculator delta(params);
        SCOPED_TRACE("scratch_reserve=" + std::to_string(reserve));
        expect_bit_identical(reference,
                             delta.compute(world.map(), world.ego().state,
                                           common::Seconds{world.time()}, forecasts),
                             threads);
        EXPECT_EQ(reference_combined,
                  delta.combined(world.map(), world.ego().state,
                                 common::Seconds{world.time()}, forecasts))
            << "num_threads=" << threads << " scratch_reserve=" << reserve;
      }
    }
  }
}

TEST(CounterfactualDeltaIdentity, ActorThatBlocksNothingIsFree) {
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kLeadSlowdown);
  auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  // A static actor far outside the ego's reachable disc: it can never reject
  // a candidate, so its counterfactual must be the base tube verbatim, with
  // zero re-expansion work.
  core::ActorForecast far_actor;
  far_actor.id = 9999;
  far_actor.dims = dynamics::Dimensions{4.5, 2.0};
  far_actor.trajectory.append(common::Seconds{world.time()},
                              dynamics::VehicleState{5000.0, 5000.0, 0.0, 0.0});
  forecasts.push_back(far_actor);
  const std::size_t far_index = forecasts.size() - 1;

  const core::ReachTubeComputer rt;
  const auto obstacles = rt.sample_obstacles(forecasts, common::Seconds{world.time()});
  const core::AttributedTube base =
      rt.compute_attributed(world.map(), world.ego().state, obstacles);
  ASSERT_TRUE(base.attribution.blocks_nothing(far_index));

  core::CounterfactualStats stats;
  const core::ReachTube cf = rt.compute_counterfactual(
      world.map(), world.ego().state, obstacles, base, far_index, &stats);
  EXPECT_TRUE(stats.free);
  EXPECT_EQ(stats.fresh_tests, 0u);
  EXPECT_EQ(stats.memo_hits, 0u);
  expect_same_tube(base.tube, cf, 0);
  expect_same_tube(rt.compute(world.map(), world.ego().state, obstacles,
                              common::ActorId{far_actor.id}),
                   cf, 0);
}

TEST(CounterfactualDeltaIdentity, MonitorAssessmentsUnchangedByEngine) {
  // End-to-end invariance: risk levels and riskiest-actor attribution must
  // not depend on which counterfactual engine the monitor's calculator uses.
  const scenario::ScenarioFactory factory;
  core::RiskMonitorParams delta_params;  // delta_counterfactuals defaults true
  core::RiskMonitorParams scratch_params;
  scratch_params.tube.delta_counterfactuals = false;
  core::RiskMonitor delta(delta_params);
  core::RiskMonitor scratch(scratch_params);

  sim::World world = typology_world(factory, scenario::Typology::kGhostCutIn);
  for (int step = 0; step < 30; ++step) {
    world.step(dynamics::Control{0.0, 0.0});
    const auto a = scratch.update(world);
    const auto b = delta.update(world);
    EXPECT_EQ(a.sti_combined, b.sti_combined) << "step " << step;
    EXPECT_EQ(a.level, b.level) << "step " << step;
    EXPECT_EQ(a.riskiest_actor, b.riskiest_actor) << "step " << step;
    EXPECT_EQ(a.riskiest_sti, b.riskiest_sti) << "step " << step;
  }
}

TEST(ParallelSti, NumThreadsValidation) {
  core::ReachTubeParams params;
  params.num_threads = -1;
  EXPECT_THROW(core::ReachTubeComputer::validate(params), std::invalid_argument);
  EXPECT_THROW(core::StiCalculator{params}, std::invalid_argument);
}

}  // namespace
}  // namespace iprism
