// Determinism suite for the parallel STI engine: with any number of worker
// threads, StiCalculator must produce *bit-identical* results to the serial
// path. This holds by construction — every ReachTubeComputer::compute call
// owns its seeded RNG and results aggregate by index (DESIGN.md §8) — and
// this suite is the executable form of that argument, run across all five
// scenario typologies. It is also part of the CI tsan job, where the same
// runs double as a data-race check on the fan-out.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/monitor.hpp"
#include "core/sti.hpp"
#include "dynamics/cvtr.hpp"
#include "scenario/factory.hpp"
#include "sim/world.hpp"

namespace iprism {
namespace {

constexpr int kThreadCounts[] = {2, 4, 8};

/// Builds a mid-episode world for a typology (stepped so the threat is live).
sim::World typology_world(const scenario::ScenarioFactory& factory,
                          scenario::Typology typology) {
  common::Rng rng(7);
  const auto spec = factory.sample(typology, 0, rng);
  sim::World world = factory.build(spec);
  for (int i = 0; i < 20; ++i) world.step(dynamics::Control{0.0, 0.0});
  return world;
}

void expect_bit_identical(const core::StiResult& serial, const core::StiResult& parallel,
                          int threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(threads));
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(serial.combined, parallel.combined);
  EXPECT_EQ(serial.volume_all, parallel.volume_all);
  EXPECT_EQ(serial.volume_empty, parallel.volume_empty);
  ASSERT_EQ(serial.per_actor.size(), parallel.per_actor.size());
  for (std::size_t i = 0; i < serial.per_actor.size(); ++i) {
    EXPECT_EQ(serial.per_actor[i].first, parallel.per_actor[i].first);
    EXPECT_EQ(serial.per_actor[i].second, parallel.per_actor[i].second);
  }
}

TEST(ParallelSti, BitIdenticalToSerialAcrossAllTypologies) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::StiCalculator serial;
    const core::StiResult reference =
        serial.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (int threads : kThreadCounts) {
      core::ReachTubeParams params;
      params.num_threads = threads;
      const core::StiCalculator parallel(params);
      expect_bit_identical(
          reference,
          parallel.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
          threads);
    }
  }
}

TEST(ParallelSti, CombinedOnlyBitIdenticalToSerial) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::StiCalculator serial;
    const double reference =
        serial.combined(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
    for (int threads : kThreadCounts) {
      core::ReachTubeParams params;
      params.num_threads = threads;
      const core::StiCalculator parallel(params);
      EXPECT_EQ(reference, parallel.combined(world.map(), world.ego().state,
                                             common::Seconds{world.time()}, forecasts))
          << "num_threads=" << threads;
    }
  }
}

TEST(ParallelSti, RepeatedParallelEvaluationsAreStable) {
  // Thread scheduling varies between runs; results must not.
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kGhostCutIn);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  core::ReachTubeParams params;
  params.num_threads = 4;
  const core::StiCalculator sti(params);
  const core::StiResult first =
      sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
  for (int run = 0; run < 5; ++run) {
    expect_bit_identical(
        first, sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
        params.num_threads);
  }
}

TEST(ParallelSti, MonitorAssessmentsUnchangedByThreads) {
  // End-to-end plumbing check: RiskMonitorParams::tube.num_threads must not
  // change any assessment the streaming monitor produces.
  const scenario::ScenarioFactory factory;
  core::RiskMonitorParams serial_params;
  core::RiskMonitorParams parallel_params;
  parallel_params.tube.num_threads = 4;
  core::RiskMonitor serial(serial_params);
  core::RiskMonitor parallel(parallel_params);

  sim::World world = typology_world(factory, scenario::Typology::kLeadSlowdown);
  for (int step = 0; step < 30; ++step) {
    world.step(dynamics::Control{0.0, 0.0});
    const auto a = serial.update(world);
    const auto b = parallel.update(world);
    EXPECT_EQ(a.sti_combined, b.sti_combined) << "step " << step;
    EXPECT_EQ(a.level, b.level) << "step " << step;
    EXPECT_EQ(a.riskiest_actor, b.riskiest_actor) << "step " << step;
    EXPECT_EQ(a.riskiest_sti, b.riskiest_sti) << "step " << step;
  }
}

// Capacity invariance: ReachTubeParams::scratch_reserve sizes the
// FlatHashGrid-based per-compute scratch, and because that container's
// iteration order is insertion order regardless of capacity (DESIGN.md §9),
// any reserve must yield *bit-identical* tubes. This is the end-to-end form
// of the container's order guarantee — the old std::unordered_* scratch
// could not be pre-reserved precisely because this test would fail. Runs in
// the CI tsan job alongside the thread-identity suites.
constexpr std::size_t kScratchReserves[] = {0, 64, 4096};

void expect_same_tube(const core::ReachTube& a, const core::ReachTube& b,
                      std::size_t reserve) {
  SCOPED_TRACE("scratch_reserve=" + std::to_string(reserve));
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(a.volume, b.volume);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t j = 0; j < a.slices.size(); ++j) {
    ASSERT_EQ(a.slices[j].size(), b.slices[j].size()) << "slice " << j;
    for (std::size_t i = 0; i < a.slices[j].size(); ++i) {
      EXPECT_EQ(a.slices[j][i].x, b.slices[j][i].x) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].y, b.slices[j][i].y) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].heading, b.slices[j][i].heading)
          << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].speed, b.slices[j][i].speed)
          << "slice " << j << " state " << i;
    }
  }
}

TEST(TubeCapacityInvariance, TubesBitIdenticalAcrossScratchReserves) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::ReachTubeComputer reference_rt;
    const core::ReachTube reference =
        reference_rt.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (std::size_t reserve : kScratchReserves) {
      core::ReachTubeParams params;
      params.scratch_reserve = reserve;
      const core::ReachTubeComputer rt(params);
      expect_same_tube(
          reference,
          rt.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts), reserve);
    }
  }
}

TEST(TubeCapacityInvariance, StiBitIdenticalAcrossScratchReservesAndThreads) {
  // The combined matrix: scratch sizing x worker threads, both of which must
  // be pure performance knobs with no observable effect on STI.
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kLeadCutIn);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  const core::StiCalculator serial;
  const core::StiResult reference =
      serial.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

  for (std::size_t reserve : kScratchReserves) {
    for (int threads : {0, 2, 4}) {
      core::ReachTubeParams params;
      params.scratch_reserve = reserve;
      params.num_threads = threads;
      const core::StiCalculator sti(params);
      SCOPED_TRACE("scratch_reserve=" + std::to_string(reserve));
      expect_bit_identical(
          reference,
          sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts),
          threads);
    }
  }
}

TEST(ParallelSti, NumThreadsValidation) {
  core::ReachTubeParams params;
  params.num_threads = -1;
  EXPECT_THROW(core::ReachTubeComputer::validate(params), std::invalid_argument);
  EXPECT_THROW(core::StiCalculator{params}, std::invalid_argument);
}

}  // namespace
}  // namespace iprism
