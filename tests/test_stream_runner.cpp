// StreamRunner contract (DESIGN.md §14): M concurrent scenario streams over
// one shared const monitor engine are bit-identical to the same streams run
// serially — each outcome is a pure function of its stream index. Part of
// the CI tsan job (the stream fan-out + nested tube fan-out is the
// concurrent workload) and the determinism gate the stream_throughput bench
// re-verifies before every recording.
#include "eval/stream_runner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "agents/lbc.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism {
namespace {

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

/// Deterministic in the index: a three-lane wall ahead of the ego, one metre
/// further per stream, so streams genuinely differ.
sim::World stream_world(std::size_t index) {
  sim::World w(std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0), 0.1);
  w.add_ego(state(50, 5.25, 10));
  const double gap = 12.0 + static_cast<double>(index);
  for (double y : {1.75, 5.25, 8.75}) {
    sim::Actor blocker;
    blocker.kind = sim::ActorKind::kVehicle;
    blocker.state = state(50 + gap + 4.5, y, 0.0);
    w.add_actor(std::move(blocker));
  }
  return w;
}

eval::StreamRunner::Options short_options() {
  eval::StreamRunner::Options options;
  options.max_seconds = 2.0;  // 20 steps per stream keeps the suite fast
  return options;
}

void expect_same_outcome(const eval::StreamOutcome& a, const eval::StreamOutcome& b) {
  EXPECT_EQ(a.stream, b.stream);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.monitor_updates, b.monitor_updates);
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(a.max_sti, b.max_sti);
  EXPECT_EQ(a.mean_sti, b.mean_sti);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.final_level, b.final_level);
  EXPECT_EQ(a.last_riskiest_actor, b.last_riskiest_actor);
  EXPECT_EQ(a.ego_collided, b.ego_collided);
}

TEST(StreamRunner, ConcurrentRunBitIdenticalToSerialReference) {
  const auto options = short_options();
  const eval::StreamRunner concurrent(options);  // shared pool
  const eval::StreamRunner serial(options, nullptr);
  ASSERT_EQ(concurrent.pool(), &common::ThreadPool::shared());
  ASSERT_EQ(serial.pool(), nullptr);

  const auto a = concurrent.run(4, stream_world);
  const auto b = serial.run(4, stream_world);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("stream=" + std::to_string(i));
    expect_same_outcome(a[i], b[i]);
  }
}

TEST(StreamRunner, RepeatedConcurrentRunsAreStable) {
  // Thread scheduling varies between runs; outcomes must not.
  const eval::StreamRunner runner(short_options());
  const auto first = runner.run(4, stream_world);
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE("run=" + std::to_string(run));
    const auto again = runner.run(4, stream_world);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      SCOPED_TRACE("stream=" + std::to_string(i));
      expect_same_outcome(first[i], again[i]);
    }
  }
}

TEST(StreamRunner, OutcomesAreIndexOwnedAndLabeled) {
  auto options = short_options();
  options.label_prefix = "fleet";
  const eval::StreamRunner runner(options);
  const auto outcomes = runner.run(3, stream_world);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].stream, i);
    EXPECT_EQ(outcomes[i].label, "fleet." + std::to_string(i));
    EXPECT_GT(outcomes[i].steps, 0);
    // One monitor update per step, counted by the stream's session.
    EXPECT_EQ(outcomes[i].monitor_updates, outcomes[i].steps);
    EXPECT_GT(outcomes[i].max_sti, 0.0);  // the wall is a real threat
  }
}

TEST(StreamRunner, StopsOnEgoCollisionWhenAsked) {
  // A coasting ego 12 m from a wall at 10 m/s collides well inside 2 s.
  auto options = short_options();
  const eval::StreamRunner stopping(options);
  const auto stopped = stopping.run(1, stream_world);
  ASSERT_EQ(stopped.size(), 1u);
  EXPECT_TRUE(stopped[0].ego_collided);
  EXPECT_LT(stopped[0].steps, 20);

  options.stop_on_ego_collision = false;
  const eval::StreamRunner running(options);
  const auto ran = running.run(1, stream_world);
  EXPECT_TRUE(ran[0].ego_collided);
  EXPECT_EQ(ran[0].steps, 20);  // rode out the full horizon
}

TEST(StreamRunner, AgentMakerDrivesTheEgo) {
  // With a braking baseline agent the ego reacts to the wall; determinism
  // must hold through the agent path too.
  const auto agent_maker = [](std::size_t) -> std::unique_ptr<agents::DrivingAgent> {
    return std::make_unique<agents::LbcAgent>();
  };
  const auto options = short_options();
  const eval::StreamRunner concurrent(options);
  const eval::StreamRunner serial(options, nullptr);
  const auto a = concurrent.run(3, stream_world, agent_maker);
  const auto b = serial.run(3, stream_world, agent_maker);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("stream=" + std::to_string(i));
    expect_same_outcome(a[i], b[i]);
  }
  // The agent actually changed the episode relative to coasting.
  const auto coasting = serial.run(3, stream_world);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].steps != coasting[i].steps || a[i].ego_collided != coasting[i].ego_collided) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace iprism
