#include "dynamics/const_accel.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::dynamics {
namespace {

using namespace iprism::common::literals;

VehicleState state(double x, double y, double heading, double speed) {
  VehicleState s;
  s.x = x;
  s.y = y;
  s.heading = heading;
  s.speed = speed;
  return s;
}

TEST(ConstAccel, ValidatesArguments) {
  const ConstantAccelPredictor p;
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), 0.0_s, -1.0_s, 0.1_s), std::invalid_argument);
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), 0.0_s, 1.0_s, 0.0_s), std::invalid_argument);
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), state(0, 0, 0, 1), 0.0_s, 0.0_s, 1.0_s, 0.1_s),
               std::invalid_argument);
}

TEST(ConstAccel, SingleObservationIsConstantVelocity) {
  const ConstantAccelPredictor p;
  const Trajectory t = p.predict(state(0, 0, 0, 6), 0.0_s, 2.0_s, 0.25_s);
  EXPECT_NEAR(t.at(2.0_s).x, 12.0, 1e-9);
  EXPECT_NEAR(t.at(2.0_s).speed, 6.0, 1e-12);
}

TEST(ConstAccel, EstimatesAccelerationFromHistory) {
  const ConstantAccelPredictor p;
  // Speed rose 5 -> 6 over 0.5 s: accel 2 m/s^2.
  const Trajectory t =
      p.predict(state(0, 0, 0, 5), state(2.75, 0, 0, 6), 0.5_s, 0.0_s, 2.0_s, 0.25_s);
  EXPECT_NEAR(t.at(2.0_s).speed, 10.0, 1e-9);
  // Distance from x0=2.75: 6*2 + 0.5*2*4 = 16.
  EXPECT_NEAR(t.at(2.0_s).x, 18.75, 1e-6);
}

TEST(ConstAccel, DeceleratingActorStopsAndStays) {
  const ConstantAccelPredictor p;
  // Decelerating 2 m/s^2 from 2 m/s: stops after 1 s, then holds.
  const Trajectory t =
      p.predict(state(0, 0, 0, 3), state(1.25, 0, 0, 2), 0.5_s, 0.0_s, 3.0_s, 0.25_s);
  EXPECT_DOUBLE_EQ(t.at(3.0_s).speed, 0.0);
  const double stop_x = t.at(1.5_s).x;
  EXPECT_NEAR(t.at(3.0_s).x, stop_x, 1e-9);  // no reversing
}

TEST(ConstAccel, TurnRateCarriesOver) {
  const ConstantAccelPredictor p;
  const Trajectory t =
      p.predict(state(0, 0, -0.1, 5), state(0.5, 0, 0.0, 5), 0.1_s, 0.0_s, 1.0_s, 0.1_s);
  EXPECT_NEAR(t.at(1.0_s).heading, 1.0, 1e-9);  // 1 rad/s held
}

TEST(ConstAccel, CapturesBrakingBetterThanCvtr) {
  // A hard-braking lead: constant-accel prediction must place it short of
  // where constant velocity would.
  const ConstantAccelPredictor p;
  const Trajectory t =
      p.predict(state(0, 0, 0, 8.6), state(0.83, 0, 0, 8.0), 0.1_s, 0.0_s, 2.0_s, 0.25_s);
  EXPECT_LT(t.at(2.0_s).x, 0.83 + 8.0 * 2.0 - 3.0);
}

}  // namespace
}  // namespace iprism::dynamics
