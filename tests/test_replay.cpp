#include "rl/replay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace iprism::rl {
namespace {

Transition make(double marker) {
  Transition t;
  t.state = {marker};
  t.next_state = {marker + 0.5};
  t.reward = marker;
  return t;
}

TEST(ReplayBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, GrowsUntilCapacity) {
  ReplayBuffer buf(3);
  EXPECT_EQ(buf.size(), 0u);
  buf.push(make(1));
  buf.push(make(2));
  EXPECT_EQ(buf.size(), 2u);
  buf.push(make(3));
  buf.push(make(4));
  EXPECT_EQ(buf.size(), 3u);  // capped
}

TEST(ReplayBuffer, OverwritesOldestFirst) {
  ReplayBuffer buf(2);
  buf.push(make(1));
  buf.push(make(2));
  buf.push(make(3));  // evicts marker 1
  common::Rng rng(5);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) {
    for (const Transition* t : buf.sample(2, rng)) seen.insert(t->reward);
  }
  EXPECT_EQ(seen.count(1.0), 0u);
  EXPECT_EQ(seen.count(2.0), 1u);
  EXPECT_EQ(seen.count(3.0), 1u);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buf(4);
  common::Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), std::invalid_argument);
}

TEST(ReplayBuffer, SampleReturnsRequestedCount) {
  ReplayBuffer buf(4);
  buf.push(make(1));
  common::Rng rng(1);
  EXPECT_EQ(buf.sample(7, rng).size(), 7u);  // with replacement
}

TEST(ReplayBuffer, SamplingIsDeterministicGivenRng) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) buf.push(make(i));
  common::Rng r1(3);
  common::Rng r2(3);
  const auto a = buf.sample(5, r1);
  const auto b = buf.sample(5, r2);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i]->reward, b[i]->reward);
}

}  // namespace
}  // namespace iprism::rl
