#include "eval/runner.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include "agents/lbc.hpp"
#include "agents/ttc_aca.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::eval {
namespace {

roadmap::MapPtr test_map(double length = 500.0) {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, length);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

sim::Actor stopped_car(double x, double y) {
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = state(x, y, 0.0);
  return a;
}

/// Agent that drives blindly at constant speed (for forcing collisions).
class BlindAgent final : public agents::DrivingAgent {
 public:
  dynamics::Control act(const sim::World&) override { return {0.0, 0.0}; }
  std::string_view name() const override { return "blind"; }
};

TEST(Runner, RecordsTracesForAllActors) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 8));
  w.add_actor(stopped_car(400, 1.75));
  BlindAgent agent;
  RunOptions opt;
  opt.max_seconds = 2.0;
  const EpisodeResult r = run_episode(std::move(w), agent, nullptr, opt);
  EXPECT_EQ(r.actors.size(), 2u);
  EXPECT_EQ(r.samples, 21);  // initial + 20 steps
  EXPECT_FALSE(r.ego_accident);
  EXPECT_NEAR(r.ego_progress, 16.0, 1e-6);
  EXPECT_TRUE(r.ego_trace().is_ego);
}

TEST(Runner, DetectsAccidentAndStops) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 10));
  w.add_actor(stopped_car(25, 5.25));
  BlindAgent agent;
  const EpisodeResult r = run_episode(std::move(w), agent);
  EXPECT_TRUE(r.ego_accident);
  EXPECT_GT(r.accident_step, 0);
  EXPECT_LT(r.accident_time, 2.0);
  // Trace ends at (or just after) the accident.
  EXPECT_EQ(r.samples, r.accident_step + 1);
}

TEST(Runner, StopsAtRoadEnd) {
  sim::World w(test_map(100.0), 0.1);
  w.add_ego(state(10, 5.25, 10));
  BlindAgent agent;
  RunOptions opt;
  opt.max_seconds = 60.0;
  const EpisodeResult r = run_episode(std::move(w), agent, nullptr, opt);
  EXPECT_TRUE(r.reached_road_end);
  EXPECT_FALSE(r.ego_accident);
  EXPECT_LT(r.samples, 600);
}

TEST(Runner, RecordsMitigation) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 12));
  w.add_actor(stopped_car(60, 5.25));
  BlindAgent agent;
  agents::TtcAcaController aca;
  const EpisodeResult r = run_episode(std::move(w), agent, &aca);
  ASSERT_TRUE(r.first_mitigation_time.has_value());
  EXPECT_GT(r.mitigation_steps, 0);
  // ACA full-brakes from 12 m/s with TTC threshold 1.8 s; it prevents the
  // collision with a 40+ m gap.
  EXPECT_FALSE(r.ego_accident);
}

TEST(Runner, SnapshotMatchesTrace) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 8));
  w.add_actor(stopped_car(400, 1.75));
  BlindAgent agent;
  RunOptions opt;
  opt.max_seconds = 1.0;
  const EpisodeResult r = run_episode(std::move(w), agent, nullptr, opt);
  const auto scene = r.snapshot_at(5);
  EXPECT_NEAR(scene.time, 0.5, 1e-12);
  EXPECT_NEAR(scene.ego.state.x, 14.0, 1e-9);
  ASSERT_EQ(scene.others.size(), 1u);
  EXPECT_NEAR(scene.others[0].state.x, 400.0, 1e-9);
  EXPECT_THROW(r.snapshot_at(-1), std::invalid_argument);
  EXPECT_THROW(r.snapshot_at(r.samples), std::invalid_argument);
}

TEST(Runner, GroundTruthForecastsHoldFinalState) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 8));
  w.add_actor(stopped_car(400, 1.75));
  BlindAgent agent;
  RunOptions opt;
  opt.max_seconds = 1.0;
  const EpisodeResult r = run_episode(std::move(w), agent, nullptr, opt);
  const auto forecasts = r.ground_truth_forecasts(0);
  ASSERT_EQ(forecasts.size(), 1u);
  // Query far beyond the recorded horizon: the final state is held.
  EXPECT_NEAR(forecasts[0].trajectory.at(common::Seconds{100.0}).x, 400.0, 1e-9);
}

TEST(Runner, RequiresEgo) {
  sim::World w(test_map(), 0.1);
  BlindAgent agent;
  EXPECT_THROW(run_episode(std::move(w), agent), std::invalid_argument);
}

TEST(Runner, LbcAvoidsSlowLeadGivenRoom) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 8));
  sim::LaneFollowBehavior::Params lf;
  lf.lane = 1;
  lf.target_speed = 3.0;
  sim::Actor slow;
  slow.kind = sim::ActorKind::kVehicle;
  slow.state = state(80, 5.25, 3.0);
  slow.behavior = std::make_unique<sim::LaneFollowBehavior>(lf);
  w.add_actor(std::move(slow));
  agents::LbcAgent lbc;
  RunOptions opt;
  opt.max_seconds = 20.0;
  const EpisodeResult r = run_episode(std::move(w), lbc, nullptr, opt);
  EXPECT_FALSE(r.ego_accident);
}

}  // namespace
}  // namespace iprism::eval
