#include <gtest/gtest.h>

#include "roadmap/straight_road.hpp"
#include "smc/features.hpp"
#include "smc/reward.hpp"

namespace iprism::smc {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

sim::Actor vehicle(double x, double y, double speed) {
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = state(x, y, speed);
  return a;
}

TEST(Features, DimensionAndBounds) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(vehicle(70, 5.25, 5));
  w.add_actor(vehicle(30, 1.75, 12));
  const auto f = extract_features(w);
  ASSERT_EQ(static_cast<int>(f.size()), kFeatureCount);
  for (double v : f) {
    ASSERT_GE(v, -1.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(Features, EncodesLeadPresence) {
  sim::World empty(test_map(), 0.1);
  empty.add_ego(state(50, 5.25, 8));
  const auto f_empty = extract_features(empty);

  sim::World with_lead(test_map(), 0.1);
  with_lead.add_ego(state(50, 5.25, 8));
  with_lead.add_actor(vehicle(70, 5.25, 5));
  const auto f_lead = extract_features(with_lead);

  EXPECT_NE(f_empty, f_lead);
  // Same-lane lead block comes right after the two ego features.
  const std::size_t same_lane_lead = 2;
  EXPECT_DOUBLE_EQ(f_empty[same_lane_lead], 0.0);  // absent
  EXPECT_DOUBLE_EQ(f_lead[same_lane_lead], 1.0);   // present
}

TEST(Features, EdgeLaneEncodesMissingNeighbor) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 1.75, 8));  // rightmost lane: one side lane missing
  const auto f = extract_features(w);
  // With no actors at all, both side blocks (threat-ordered, after the
  // same-lane blocks at indices 2..7) encode "absent": {0, 1, 0}.
  for (std::size_t base : {8u, 11u, 14u, 17u}) {
    EXPECT_DOUBLE_EQ(f[base], 0.0);
    EXPECT_DOUBLE_EQ(f[base + 1], 1.0);
    EXPECT_DOUBLE_EQ(f[base + 2], 0.0);
  }
}

TEST(Features, SideThreatOrderingIsMirrorInvariant) {
  // A threat approaching in the left lane and its mirror image in the
  // right lane must produce identical feature vectors (the property that
  // lets one trained policy cover both scenario parities).
  sim::World left(test_map(), 0.1);
  left.add_ego(state(50, 5.25, 8));
  left.add_actor(vehicle(40, 8.75, 13));  // fast, closing, left lane
  sim::World right(test_map(), 0.1);
  right.add_ego(state(50, 5.25, 8));
  right.add_actor(vehicle(40, 1.75, 13));  // mirror: right lane
  EXPECT_EQ(extract_features(left), extract_features(right));
}

TEST(Features, RearActorVisible) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(vehicle(30, 5.25, 14));  // closing from behind
  const auto f = extract_features(w);
  // Same-lane rear block follows the same-lane lead block.
  const std::size_t rear = 2 + 3;
  EXPECT_DOUBLE_EQ(f[rear], 1.0);       // present
  EXPECT_GT(f[rear + 2], 0.0);          // closing
}

TEST(Features, GapAndClosingAreClamped) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(vehicle(109, 5.25, 30));  // far and receding fast
  const auto f = extract_features(w);
  for (double v : f) {
    ASSERT_GE(v, -1.0);
    ASSERT_LE(v, 1.0);
  }
  // Same-lane lead: gap 54.5/60 < 1, receding -> closing clamped >= -1.
  EXPECT_NEAR(f[3], 54.5 / 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(f[4], -1.0);
}

TEST(Reward, UsesEquation8Terms) {
  RewardParams p;
  p.alpha0 = 1.0;
  p.alpha1 = 0.5;
  p.alpha2 = -0.1;
  p.cruise_speed = 8.0;
  // No risk, full progress, no mitigation: alpha0 + alpha1.
  EXPECT_NEAR(smc_reward(p, 0.0, 0.8, 0.1, false), 1.0 + 0.5, 1e-12);
  // Full risk erases the first term.
  EXPECT_NEAR(smc_reward(p, 1.0, 0.8, 0.1, false), 0.5, 1e-12);
  // Mitigation activation adds the (negative) penalty.
  EXPECT_NEAR(smc_reward(p, 0.0, 0.8, 0.1, true), 1.5 - 0.1, 1e-12);
}

TEST(Reward, AblationDropsStiTerm) {
  RewardParams p;
  p.use_sti = false;
  p.alpha1 = 0.5;
  p.alpha2 = -0.1;
  p.cruise_speed = 8.0;
  // STI value must be ignored entirely.
  EXPECT_DOUBLE_EQ(smc_reward(p, 0.0, 0.8, 0.1, false),
                   smc_reward(p, 1.0, 0.8, 0.1, false));
}

TEST(Reward, ProgressIsClamped) {
  RewardParams p;
  p.alpha0 = 0.0;
  p.alpha1 = 1.0;
  p.alpha2 = 0.0;
  p.cruise_speed = 8.0;
  EXPECT_DOUBLE_EQ(smc_reward(p, 0.0, 100.0, 0.1, false), 1.25);   // cap
  EXPECT_DOUBLE_EQ(smc_reward(p, 0.0, -100.0, 0.1, false), -0.5);  // floor
}

TEST(Reward, ValidatesInterval) {
  EXPECT_THROW(smc_reward(RewardParams{}, 0.0, 0.0, 0.0, false), std::invalid_argument);
}

TEST(Reward, StiIsClampedToUnitRange) {
  RewardParams p;
  p.alpha1 = 0.0;
  p.alpha2 = 0.0;
  EXPECT_DOUBLE_EQ(smc_reward(p, 5.0, 0.0, 0.1, false), 0.0);
  EXPECT_DOUBLE_EQ(smc_reward(p, -5.0, 0.0, 0.1, false), 1.0);
}

}  // namespace
}  // namespace iprism::smc
