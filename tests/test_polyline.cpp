#include "geom/polyline.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::geom {
namespace {

Polyline l_shape() { return Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}); }

TEST(Polyline, RejectsDegenerateInput) {
  EXPECT_THROW(Polyline({{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Polyline({{0.0, 0.0}, {0.0, 0.0}}), std::invalid_argument);
}

TEST(Polyline, Length) { EXPECT_DOUBLE_EQ(l_shape().length(), 20.0); }

TEST(Polyline, PointAtInterpolatesAndClamps) {
  const Polyline p = l_shape();
  EXPECT_EQ(p.point_at(5.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(p.point_at(15.0), (Vec2{10.0, 5.0}));
  EXPECT_EQ(p.point_at(-3.0), (Vec2{0.0, 0.0}));   // clamped low
  EXPECT_EQ(p.point_at(99.0), (Vec2{10.0, 10.0}));  // clamped high
}

TEST(Polyline, HeadingFollowsSegments) {
  const Polyline p = l_shape();
  EXPECT_NEAR(p.heading_at(5.0), 0.0, 1e-12);
  EXPECT_NEAR(p.heading_at(15.0), M_PI / 2.0, 1e-12);
}

TEST(Polyline, ProjectOntoNearestSegment) {
  const Polyline p = l_shape();
  EXPECT_NEAR(p.project({5.0, 1.0}), 5.0, 1e-12);
  EXPECT_NEAR(p.project({11.0, 5.0}), 15.0, 1e-12);
  EXPECT_NEAR(p.project({-5.0, 0.0}), 0.0, 1e-12);  // clamps to start
}

TEST(Polyline, LateralOffsetSign) {
  const Polyline p({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_NEAR(p.lateral_offset({5.0, 2.0}), 2.0, 1e-12);   // left of travel
  EXPECT_NEAR(p.lateral_offset({5.0, -2.0}), -2.0, 1e-12);  // right of travel
}

TEST(Polyline, RoundTripProjection) {
  const Polyline p = l_shape();
  for (double s : {0.0, 2.5, 9.9, 10.1, 19.0}) {
    const Vec2 q = p.point_at(s);
    EXPECT_NEAR(p.project(q), s, 1e-9);
  }
}

}  // namespace
}  // namespace iprism::geom
