#include "smc/trainer.hpp"

#include <gtest/gtest.h>

#include "agents/lbc.hpp"
#include "roadmap/straight_road.hpp"
#include "scenario/factory.hpp"
#include "smc/features.hpp"

namespace iprism::smc {
namespace {

SmcTrainConfig tiny_config() {
  SmcTrainConfig c;
  c.episodes = 3;
  c.max_seconds = 6.0;
  c.ddqn.warmup_transitions = 16;
  c.ddqn.batch_size = 8;
  c.tube.horizon = 2.0;
  c.tube.cell_size = 1.0;
  return c;
}

TEST(SmcTrainer, ValidatesConfig) {
  SmcTrainConfig c;
  c.episodes = 0;
  EXPECT_THROW(SmcTrainer{c}, std::invalid_argument);
  c = {};
  c.action_count = 7;
  EXPECT_THROW(SmcTrainer{c}, std::invalid_argument);
  c.action_count = kActionCountFull;
  EXPECT_NO_THROW(SmcTrainer{c});
}

TEST(SmcTrainer, TrainsAndReturnsPolicyOfRightShape) {
  const scenario::ScenarioFactory factory;
  common::Rng rng(1);
  const auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
  agents::LbcAgent lbc;
  SmcTrainer trainer(tiny_config());
  SmcTrainStats stats;
  const rl::Mlp policy =
      trainer.train([&](int) { return factory.build(spec); }, lbc, &stats);
  EXPECT_EQ(policy.input_size(), kFeatureCount);
  EXPECT_EQ(policy.output_size(), kActionCountBrakeAccel);
  EXPECT_EQ(stats.episode_returns.size(), 3u);
  EXPECT_EQ(stats.episode_collided.size(), 3u);
}

TEST(SmcTrainer, DeterministicGivenSeed) {
  const scenario::ScenarioFactory factory;
  common::Rng rng(1);
  const auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
  auto run = [&] {
    agents::LbcAgent lbc;
    SmcTrainer trainer(tiny_config());
    SmcTrainStats stats;
    trainer.train([&](int) { return factory.build(spec); }, lbc, &stats);
    return stats.episode_returns;
  };
  EXPECT_EQ(run(), run());
}

TEST(SmcTrainer, AblationConfigSkipsStiComputation) {
  // The w/o-STI ablation must run (and differ in reward) without touching
  // the STI calculator path.
  const scenario::ScenarioFactory factory;
  common::Rng rng(2);
  const auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 1, rng);
  SmcTrainConfig c = tiny_config();
  c.reward.use_sti = false;
  agents::LbcAgent lbc;
  SmcTrainer trainer(c);
  SmcTrainStats stats;
  trainer.train([&](int) { return factory.build(spec); }, lbc, &stats);
  EXPECT_EQ(stats.episode_returns.size(), 3u);
}

TEST(SmcTrainStats, RecentCollisionRate) {
  SmcTrainStats stats;
  EXPECT_DOUBLE_EQ(stats.recent_collision_rate(), 0.0);
  stats.episode_collided = {true, true, false, false};
  EXPECT_DOUBLE_EQ(stats.recent_collision_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(stats.recent_collision_rate(4), 0.5);
  EXPECT_DOUBLE_EQ(stats.recent_collision_rate(100), 0.5);
}

TEST(SmcTrainStats, RewardPerDecision) {
  SmcTrainStats stats;
  EXPECT_DOUBLE_EQ(stats.recent_reward_per_decision(), 0.0);
  stats.episode_returns = {10.0, 20.0};
  stats.episode_decisions = {10, 10};
  EXPECT_DOUBLE_EQ(stats.recent_reward_per_decision(2), 1.5);
  EXPECT_DOUBLE_EQ(stats.recent_reward_per_decision(1), 2.0);
}

TEST(SmcTrainer, StatsTrackDecisionCounts) {
  const scenario::ScenarioFactory factory;
  common::Rng rng(1);
  const auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
  agents::LbcAgent lbc;
  SmcTrainer trainer(tiny_config());
  SmcTrainStats stats;
  trainer.train([&](int) { return factory.build(spec); }, lbc, &stats);
  ASSERT_EQ(stats.episode_decisions.size(), stats.episode_returns.size());
  for (int d : stats.episode_decisions) EXPECT_GT(d, 0);
}

TEST(SmcTrainer, RequiresEgoInWorld) {
  SmcTrainer trainer(tiny_config());
  agents::LbcAgent lbc;
  auto map = std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
  EXPECT_THROW(trainer.train([&](int) { return sim::World(map, 0.1); }, lbc, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace iprism::smc
