#include "scenario/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/suite.hpp"

namespace iprism::scenario {
namespace {

TEST(ScenarioIo, TypologyNameRoundTrip) {
  for (Typology t : kAllTypologies) {
    EXPECT_EQ(typology_from_name(typology_name(t)), t);
  }
  EXPECT_THROW(typology_from_name("Banana"), std::invalid_argument);
}

TEST(ScenarioIo, SuiteRoundTripIsExact) {
  const ScenarioFactory factory;
  const auto suite = generate_suite(factory, Typology::kGhostCutIn, 20, 77);

  std::stringstream ss;
  write_suite(ss, suite.specs);
  const auto restored = read_suite(ss);

  ASSERT_EQ(restored.size(), suite.specs.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].typology, suite.specs[i].typology);
    EXPECT_EQ(restored[i].instance, suite.specs[i].instance);
    ASSERT_EQ(restored[i].hyperparams.size(), suite.specs[i].hyperparams.size());
    for (const auto& [key, value] : suite.specs[i].hyperparams) {
      // precision(17) makes doubles round-trip bit-exactly through text.
      EXPECT_DOUBLE_EQ(restored[i].param(key), value) << key;
    }
  }
}

TEST(ScenarioIo, RestoredSuiteBuildsIdenticalWorlds) {
  const ScenarioFactory factory;
  const auto suite = generate_suite(factory, Typology::kRearEnd, 5, 13);
  std::stringstream ss;
  write_suite(ss, suite.specs);
  const auto restored = read_suite(ss);

  for (std::size_t i = 0; i < restored.size(); ++i) {
    sim::World a = factory.build(suite.specs[i]);
    sim::World b = factory.build(restored[i]);
    for (int step = 0; step < 50; ++step) {
      a.step(dynamics::Control{0.0, 0.0});
      b.step(dynamics::Control{0.0, 0.0});
    }
    EXPECT_DOUBLE_EQ(a.ego().state.x, b.ego().state.x);
    EXPECT_EQ(a.collisions().size(), b.collisions().size());
  }
}

TEST(ScenarioIo, SkipsBlankLines) {
  std::stringstream ss("\nGhost Cut-in,3,a=1.5\n\n");
  const auto specs = read_suite(ss);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].instance, 3u);
  EXPECT_DOUBLE_EQ(specs[0].param("a"), 1.5);
}

TEST(ScenarioIo, RejectsMalformedRows) {
  {
    std::stringstream ss("Ghost Cut-in\n");  // no instance
    EXPECT_THROW(read_suite(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("Nope,0,a=1\n");  // unknown typology
    EXPECT_THROW(read_suite(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("Ghost Cut-in,0,missing_equals\n");
    EXPECT_THROW(read_suite(ss), std::invalid_argument);
  }
}

}  // namespace
}  // namespace iprism::scenario
