// End-to-end integration tests: each exercises a full pipeline slice —
// scenario generation -> simulation -> recorded trace -> risk metrics /
// training — asserting the paper-level relationships the benchmarks rely
// on, at miniature population sizes so the suite stays fast.
#include <gtest/gtest.h>

#include "agents/lbc.hpp"
#include "agents/ttc_aca.hpp"
#include "common/stats.hpp"
#include "eval/render.hpp"
#include "eval/runner.hpp"
#include "eval/series.hpp"
#include "scenario/suite.hpp"
#include "smc/controller.hpp"
#include "smc/trainer.hpp"

namespace iprism {
namespace {

TEST(Integration, StiLeadsTtcOnGhostCutInAccidents) {
  // The core Table II relationship, end to end on a small suite.
  const scenario::ScenarioFactory factory;
  const auto suite =
      scenario::generate_suite(factory, scenario::Typology::kGhostCutIn, 25, 99);
  const core::StiCalculator sti;
  const core::TtcMetric ttc(3.0);
  common::RunningStat sti_lead;
  common::RunningStat ttc_lead;
  for (const auto& spec : suite.specs) {
    agents::LbcAgent lbc;
    const auto r = eval::run_episode(factory.build(spec), lbc);
    if (!r.ego_accident) continue;
    sti_lead.add(eval::ltfma_backward(r, eval::sti_risk(sti), 3));
    ttc_lead.add(eval::ltfma_backward(r, eval::ttc_risk(ttc)));
  }
  ASSERT_GE(sti_lead.count(), 5u);
  EXPECT_GT(sti_lead.mean(), 2.0);            // seconds of warning
  EXPECT_LT(ttc_lead.mean(), 1.0);            // TTC is blind to the side threat
  EXPECT_GT(sti_lead.mean(), 2.0 * ttc_lead.mean() + 0.5);
}

TEST(Integration, StiRampsToOneAtEveryAccident) {
  const scenario::ScenarioFactory factory;
  const auto suite =
      scenario::generate_suite(factory, scenario::Typology::kRearEnd, 12, 7);
  const core::StiCalculator sti;
  int accidents = 0;
  for (const auto& spec : suite.specs) {
    agents::LbcAgent lbc;
    const auto r = eval::run_episode(factory.build(spec), lbc);
    if (!r.ego_accident) continue;
    ++accidents;
    const auto scene = r.snapshot_at(r.accident_step);
    const double v = sti.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                                  r.ground_truth_forecasts(r.accident_step));
    // At the collision the ego overlaps another footprint: no escape routes.
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
  EXPECT_GE(accidents, 5);
}

TEST(Integration, AcaRescuesSlowdownButNotGhostCutIn) {
  // Table III's rule-based-controller contrast, miniature.
  const scenario::ScenarioFactory factory;
  auto run_pair = [&](scenario::Typology t) {
    const auto suite = scenario::generate_suite(factory, t, 30, 424242);
    int base_acc = 0;
    int aca_acc = 0;
    for (const auto& spec : suite.specs) {
      agents::LbcAgent a1;
      if (eval::run_episode(factory.build(spec), a1).ego_accident) ++base_acc;
      agents::LbcAgent a2;
      agents::TtcAcaController aca;
      if (eval::run_episode(factory.build(spec), a2, &aca).ego_accident) ++aca_acc;
    }
    return std::pair<int, int>{base_acc, aca_acc};
  };
  const auto [slow_base, slow_aca] = run_pair(scenario::Typology::kLeadSlowdown);
  EXPECT_GT(slow_base, 0);
  EXPECT_LT(slow_aca, slow_base);  // ACA rescues forward threats
  const auto [ghost_base, ghost_aca] = run_pair(scenario::Typology::kGhostCutIn);
  EXPECT_GT(ghost_base, 5);
  EXPECT_GE(ghost_aca, ghost_base - 1);  // ...but is blind to side threats
}

TEST(Integration, TinySmcTrainingBeatsBaselineOnItsScenario) {
  // Minimal Table III slice: train briefly on one accident scenario (with
  // jitter) and verify the policy prevents that very accident.
  const scenario::ScenarioFactory factory;
  const auto suite =
      scenario::generate_suite(factory, scenario::Typology::kLeadCutIn, 40, 31337);
  std::optional<scenario::ScenarioSpec> accident_spec;
  for (const auto& spec : suite.specs) {
    agents::LbcAgent probe;
    const auto r = eval::run_episode(factory.build(spec), probe);
    if (r.ego_accident && r.accident_time > 5.0) {
      accident_spec = spec;
      break;
    }
  }
  ASSERT_TRUE(accident_spec.has_value());

  smc::SmcTrainConfig cfg;
  cfg.episodes = 40;
  cfg.action_count = smc::kActionCountBrakeOnly;
  cfg.ddqn.warmup_transitions = 64;
  agents::LbcAgent base;
  smc::SmcTrainer trainer(cfg);
  common::Rng jitter(5);
  rl::Mlp policy = trainer.train(
      [&](int) { return factory.build(scenario::jitter_spec(*accident_spec, 0.1, jitter)); },
      base, nullptr);

  agents::LbcAgent lbc;
  smc::SmcController controller(std::move(policy));
  const auto mitigated = eval::run_episode(factory.build(*accident_spec), lbc, &controller);
  EXPECT_FALSE(mitigated.ego_accident);
  EXPECT_TRUE(mitigated.first_mitigation_time.has_value());
}

TEST(Integration, RenderedEpisodeShowsCollisionConvergence) {
  // Trace + render path: at the accident step the ego and the threat
  // occupy adjacent columns of the plan view.
  const scenario::ScenarioFactory factory;
  const auto suite =
      scenario::generate_suite(factory, scenario::Typology::kLeadSlowdown, 30, 5150);
  for (const auto& spec : suite.specs) {
    agents::LbcAgent lbc;
    const auto r = eval::run_episode(factory.build(spec), lbc);
    if (!r.ego_accident) continue;
    const std::string view = eval::render_scene(r.snapshot_at(r.accident_step));
    const auto pos_e = view.find('E');
    const auto pos_a = view.find('A');
    ASSERT_NE(pos_e, std::string::npos);
    ASSERT_NE(pos_a, std::string::npos);
    return;  // one accident is enough
  }
  GTEST_SKIP() << "no accident in this mini-suite";
}

}  // namespace
}  // namespace iprism
