// Steady-state allocation guarantees of the reach-tube propagation
// (DESIGN.md §9/§13). The per-propagation scratch — hash grids, candidate
// buffer, lane SoA blocks — is sized once up front; after the first slice the
// loop's only allocations are the one exact-size block each *produced* slice
// keeps as tube storage. That must hold for BOTH dedup modes: the dedup=false
// branch historically moved the scratch buffer into the tube (surrendering
// its capacity and forcing a re-reserve every slice, while each emitted slice
// retained a full scratch-sized block). Counted with a global operator new
// hook, same idiom as tests/test_flat_hash.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>

#include "core/reachtube.hpp"
#include "dynamics/state.hpp"
#include "roadmap/straight_road.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace iprism {
namespace {

/// Cap low enough that every slice saturates (256 ≤ the auto scratch reserve
/// of 4096), so all scratch containers stay within their warmed capacity and
/// the allocation count is an exact, deterministic function of the slice
/// count — no FlatHashGrid rehash noise in the differential.
core::ReachTubeParams capped_params(bool dedup, double horizon) {
  core::ReachTubeParams params;
  params.dedup = dedup;
  params.horizon = horizon;
  params.max_states_per_slice = 256;
  return params;
}

/// Slices actually produced (the tube vector always has slice_count + 1
/// entries; a pinched-off tube leaves the tail empty).
std::size_t produced_slices(const core::ReachTube& tube) {
  std::size_t n = 0;
  while (n < tube.slices.size() && !tube.slices[n].empty()) ++n;
  return n;
}

class TubeAllocTest : public ::testing::TestWithParam<bool> {
 protected:
  roadmap::StraightRoad map_{3, 3.5, 400.0};
  dynamics::VehicleState ego_{50.0, 5.25, 0.0, 10.0};
};

TEST_P(TubeAllocTest, EverySliceStoresExactCapacity) {
  const core::ReachTubeComputer rt(capped_params(GetParam(), 3.0));
  const core::ReachTube tube =
      rt.compute(map_, ego_, std::span<const core::ObstacleTimeline>{});
  ASSERT_GT(produced_slices(tube), 1u);
  for (std::size_t j = 0; j < tube.slices.size(); ++j) {
    // The slice owns a right-sized block, not a surrendered scratch buffer:
    // a moved-out candidates vector would leave capacity ≈ the scratch
    // reserve (4096+) on every slice.
    EXPECT_EQ(tube.slices[j].capacity(), tube.slices[j].size()) << "slice " << j;
  }
}

TEST_P(TubeAllocTest, SteadyStateAllocationsAreOneExactBlockPerSlice) {
  const core::ReachTubeComputer short_rt(capped_params(GetParam(), 2.0));
  const core::ReachTubeComputer long_rt(capped_params(GetParam(), 3.0));
  const std::span<const core::ObstacleTimeline> none;

  // Warm-up: libc/gtest one-time allocations, plus proof both runs saturate
  // the cap (so the longer horizon's extra slices are copies of the same
  // steady state and every scratch container is inside its warmed capacity).
  const core::ReachTube warm_short = short_rt.compute(map_, ego_, none);
  const core::ReachTube warm_long = long_rt.compute(map_, ego_, none);
  const std::size_t short_slices = produced_slices(warm_short);
  const std::size_t long_slices = produced_slices(warm_long);
  ASSERT_GT(long_slices, short_slices);
  // Both runs must reach a full-width steady state before the short horizon
  // ends, so the long run's extra slices repeat it (identical per-slice
  // allocation behaviour) rather than still growing the wavefront.
  ASSERT_GT(warm_short.slices[short_slices - 1].size(), 0u);
  EXPECT_EQ(warm_short.slices[short_slices - 1].size(),
            warm_long.slices[short_slices - 1].size());

  const auto count = [&](const core::ReachTubeComputer& rt) {
    const std::size_t before = g_allocations.load();
    const core::ReachTube tube = rt.compute(map_, ego_, none);
    const std::size_t after = g_allocations.load();
    EXPECT_GT(tube.volume, 0.0);
    return after - before;
  };

  // Differential: the two runs share every fixed cost (scratch build, tube
  // skeleton, slice-0 seed) and differ only in produced slices, so the
  // allocation delta must be exactly one block per extra slice. The old
  // dedup=false branch paid two (tube block + scratch re-reserve).
  const std::size_t allocs_short = count(short_rt);
  const std::size_t allocs_long = count(long_rt);
  EXPECT_EQ(allocs_long - allocs_short, long_slices - short_slices);
}

TEST_P(TubeAllocTest, ReusedSessionTicksAllocateTubeStorageOnly) {
  const core::ReachTubeComputer rt(capped_params(GetParam(), 3.0));
  const std::span<const core::ObstacleTimeline> none;
  core::RiskSession session;

  // Tick 1 warms the session: the scratch pool's free-list vector, the
  // scratch block itself, its grid/candidate/lane reservations, plus the
  // one-time telemetry registrations. All of it persists in the session.
  const core::ReachTube warm = rt.compute(session, map_, ego_, none);
  const std::size_t slices = produced_slices(warm);
  ASSERT_GT(slices, 1u);

  const auto count_tick = [&] {
    const std::size_t before = g_allocations.load();
    const core::ReachTube tube = rt.compute(session, map_, ego_, none);
    const std::size_t after = g_allocations.load();
    EXPECT_EQ(produced_slices(tube), slices);  // same shape every tick
    return after - before;
  };

  // Steady state (DESIGN.md §14): a same-shape tick on a reused session
  // allocates ONLY the tube storage it hands back — the outer slices vector,
  // the slice-0 seed block, and one exact block per propagated slice. The
  // lease pops a warmed scratch (no allocation) and reset() stays within its
  // reserved capacity, so scratch contributes exactly zero. produced_slices
  // counts the seed, hence 1 (outer) + slices (seed + propagated blocks).
  const std::size_t tick2 = count_tick();
  const std::size_t tick3 = count_tick();
  EXPECT_EQ(tick2, 1 + slices);
  EXPECT_EQ(tick3, tick2);
}

INSTANTIATE_TEST_SUITE_P(DedupModes, TubeAllocTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "dedup" : "nodedup";
                         });

}  // namespace
}  // namespace iprism
