// Negative fixture for iprism-rng-discipline.
//
// tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly the
// `CHECK-FLAG` lines. The check bans standard random engines and libc
// rand()/srand() outside src/common/rng.* — this file is outside, so every
// use below must fire; the plain-arithmetic function must not.

#include <cstdlib>
#include <random>

std::mt19937 global_engine;         // CHECK-FLAG
std::random_device global_seeder;   // CHECK-FLAG

// An alias does not launder the engine: it desugars to the banned template.
using HiddenEngine = std::minstd_rand;  // CHECK-FLAG

int libc_rand_pair() {
  std::srand(42);     // CHECK-FLAG
  return std::rand(); // CHECK-FLAG
}

// --- must stay silent ------------------------------------------------------

int deterministic_math(int x) { return x * 1103515245 + 12345; }
