// Negative fixture for iprism-simd-discipline.
//
// tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly the
// `CHECK-FLAG` lines. The check confines vendor intrinsics headers,
// vectorization-forcing pragmas, and per-function target attributes to the
// batch kernel TUs (src/geom/batch*, src/dynamics/*_batch*) — this file is
// outside, so every use below must fire; the plain loop, the non-SIMD
// pragma, and the unannotated function must not.

#include <immintrin.h>  // CHECK-FLAG

void banned_pragmas(float* a, const float* b, int n) {
#pragma omp simd  // CHECK-FLAG
  for (int i = 0; i < n; ++i) a[i] += b[i];
#pragma GCC ivdep  // CHECK-FLAG
  for (int i = 0; i < n; ++i) a[i] += b[i];
#pragma clang loop vectorize(enable)  // CHECK-FLAG
  for (int i = 0; i < n; ++i) a[i] += b[i];
#pragma clang loop interleave_count(4)  // CHECK-FLAG
  for (int i = 0; i < n; ++i) a[i] += b[i];
}

__attribute__((target("avx2"))) void banned_target(float* a, int n) {  // CHECK-FLAG
  for (int i = 0; i < n; ++i) a[i] *= 2.0F;
}

// --- must stay silent ------------------------------------------------------

// A pragma that has nothing to do with vectorization.
#pragma pack(push, 1)
struct Packed {
  char c;
  int i;
};
#pragma pack(pop)

void plain_loop(float* a, const float* b, int n) {
  for (int i = 0; i < n; ++i) a[i] += b[i];
}
