// Negative fixture for iprism-float-eq.
//
// tools/check_tidy_fixtures.sh runs clang-tidy with only this check enabled
// and asserts the reported warning lines are EXACTLY the lines marked
// `CHECK-FLAG` — nothing more (false positives) and nothing less (misses).
// The unmarked functions are the precision half of the contract: integer
// comparison, ordering operators, and NOLINT'd sites must stay silent.

bool literal_eq(double d) {
  return d == 1.0;  // CHECK-FLAG
}

bool literal_ne(float f) {
  return f != 0.5f;  // CHECK-FLAG
}

bool converted_int_literal(double d) {
  // The int literal converts to double, so the comparison is floating.
  return d == 1;  // CHECK-FLAG
}

bool variable_eq(double a, double b) {
  return a == b;  // CHECK-FLAG
}

template <typename T>
bool dependent_eq(T a, T b) {
  // Dependent at parse time; becomes a concrete floating comparison once
  // T = double below — which is exactly when it is dangerous.
  return a == b;  // CHECK-FLAG
}
bool instantiate_dependent() { return dependent_eq(1.0, 2.0); }

// --- must stay silent ------------------------------------------------------

bool int_eq(int a, int b) { return a == b; }  // exact integer compare is fine

bool ordering_is_fine(double d) { return d < 1.0 || d >= 0.0; }

bool suppressed(double d) {
  // NOLINTNEXTLINE(iprism-float-eq) exact: clamped-to-zero sentinel intended
  return d == 0.0;
}
