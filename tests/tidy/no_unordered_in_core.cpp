// Negative fixture for iprism-no-unordered-in-core.
//
// The real check scopes itself to /src/core/; the harness re-points
// CorePathRegex at tests/tidy/ via --config so this file stands in for a
// core TU. tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly
// the `CHECK-FLAG` lines: std::unordered_* in any spelling (direct, alias,
// through a typedef), while ordered std::map stays silent.

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace iprism::core {

std::unordered_map<int, double> tube_volumes;  // CHECK-FLAG
std::unordered_set<long> visited_cells;        // CHECK-FLAG

// The alias itself is a use, and so is every mention of it afterwards.
using ActorIndex = std::unordered_map<std::string, int>;  // CHECK-FLAG
ActorIndex actors;                                        // CHECK-FLAG

// --- must stay silent ------------------------------------------------------

std::map<int, double> ordered_volumes;  // deterministic iteration: allowed

}  // namespace iprism::core
