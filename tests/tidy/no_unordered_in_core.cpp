// Negative fixture for iprism-no-unordered-in-core.
//
// The real check scopes itself to /src/core/; the harness re-points
// CorePathRegex at tests/tidy/ via --config so this file stands in for a
// core TU. tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly
// the `CHECK-FLAG` lines: std::unordered_* and ordered std::map/std::set in
// any spelling (direct, alias, through a typedef), while flat containers and
// std::vector stay silent.

#include <map>
#include <set>
#include <string>
#include <vector>
#include <unordered_map>
#include <unordered_set>

namespace iprism::core {

std::unordered_map<int, double> tube_volumes;  // CHECK-FLAG
std::unordered_set<long> visited_cells;        // CHECK-FLAG

// The alias itself is a use, and so is every mention of it afterwards.
using ActorIndex = std::unordered_map<std::string, int>;  // CHECK-FLAG
ActorIndex actors;                                        // CHECK-FLAG

// Ordered node-based containers joined the ban with the §12 frontier
// containers: a pointer chase per lookup in the propagation hot loop.
std::map<int, double> ordered_volumes;   // CHECK-FLAG
std::set<long> frontier_cells;           // CHECK-FLAG
std::multimap<int, int> slice_overlaps;  // CHECK-FLAG

// --- must stay silent ------------------------------------------------------

std::vector<double> slice_volumes;  // contiguous, insertion-ordered: allowed

}  // namespace iprism::core
