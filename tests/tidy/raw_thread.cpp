// Negative fixture for iprism-raw-thread.
//
// tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly the
// `CHECK-FLAG` lines. Raw std::thread / std::async are banned outside
// src/common/thread_pool.* — concurrency goes through common::ThreadPool so
// the serial fallback and determinism contract stay centralized.

#include <future>
#include <thread>

void spawn_raw_thread() {
  std::thread worker([] {});  // CHECK-FLAG
  worker.join();
}

int spawn_async() {
  auto fut = std::async([] { return 1; });  // CHECK-FLAG
  return fut.get();
}

// --- must stay silent ------------------------------------------------------

void plain_callable() {
  auto fn = [] { return 2; };
  (void)fn();
}
