// Negative fixture for iprism-session-discipline.
//
// tools/check_tidy_fixtures.sh asserts clang-tidy flags exactly the
// `CHECK-FLAG` lines. Risk-stack engines (ReachTubeComputer, StiCalculator,
// RiskMonitor) are immutable after construction — building one inside a
// loop body rebuilds kernels and re-validates params every iteration and
// discards the session's warm scratch. Engines hoist; sessions iterate.
//
// Stub classes: the fixture compiles standalone (no repo headers), and the
// check matches by fully-qualified name, so these stand in for the real
// engines.

namespace iprism::core {
struct ReachTubeComputer {
  ReachTubeComputer() {}
};
struct StiCalculator {
  StiCalculator() {}
};
struct RiskMonitor {
  RiskMonitor() {}
};
struct RiskSession {
  RiskSession() {}
};
}  // namespace iprism::core

namespace other {
struct RiskMonitor {  // same name, wrong namespace: not an engine
  RiskMonitor() {}
};
}  // namespace other

void engines_in_loop_bodies() {
  for (int i = 0; i < 4; ++i) {
    iprism::core::ReachTubeComputer rt;  // CHECK-FLAG
    (void)rt;
  }
  int n = 3;
  while (n-- > 0) {
    iprism::core::StiCalculator sti;  // CHECK-FLAG
    (void)sti;
  }
  do {
    iprism::core::RiskMonitor monitor;  // CHECK-FLAG
    (void)monitor;
  } while (false);
  const int xs[] = {1, 2, 3};
  for (int x : xs) {
    (void)x;
    iprism::core::StiCalculator sti;  // CHECK-FLAG
    (void)sti;
  }
}

// --- must stay silent ------------------------------------------------------

void hoisted_engine_session_per_iteration() {
  iprism::core::RiskMonitor engine;  // hoisted: constructed once
  (void)engine;
  for (int i = 0; i < 4; ++i) {
    iprism::core::RiskSession session;  // sessions are the per-tick object
    (void)session;
  }
}

void engine_outside_any_loop() {
  iprism::core::StiCalculator sti;
  (void)sti;
}

void engine_in_for_init_constructs_once() {
  for (iprism::core::ReachTubeComputer rt; false;) {
    (void)rt;
  }
}

void unrelated_type_in_loop() {
  for (int i = 0; i < 4; ++i) {
    other::RiskMonitor not_an_engine;
    (void)not_an_engine;
  }
}

void suppressed_with_rationale() {
  for (int i = 0; i < 2; ++i) {
    // Parameter-matrix sweeps construct engines on purpose.
    iprism::core::StiCalculator sti;  // NOLINT(iprism-session-discipline)
    (void)sti;
  }
}
