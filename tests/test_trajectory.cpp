#include "dynamics/trajectory.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::dynamics {
namespace {

using namespace iprism::common::literals;

VehicleState state(double x, double y, double heading, double speed) {
  VehicleState s;
  s.x = x;
  s.y = y;
  s.heading = heading;
  s.speed = speed;
  return s;
}

TEST(Trajectory, AppendRequiresIncreasingTime) {
  Trajectory t;
  t.append(0.0_s, state(0, 0, 0, 1));
  EXPECT_THROW(t.append(0.0_s, state(1, 0, 0, 1)), std::invalid_argument);
  EXPECT_THROW(t.append(-1.0_s, state(1, 0, 0, 1)), std::invalid_argument);
  t.append(0.5_s, state(1, 0, 0, 1));
  EXPECT_EQ(t.size(), 2u);
}

TEST(Trajectory, EmptyQueriesThrow) {
  Trajectory t;
  EXPECT_THROW(t.at(0.0_s), std::invalid_argument);
  EXPECT_THROW(t.start_time(), std::invalid_argument);
  EXPECT_THROW(t.end_time(), std::invalid_argument);
}

TEST(Trajectory, InterpolatesLinearly) {
  Trajectory t;
  t.append(0.0_s, state(0, 0, 0, 2));
  t.append(1.0_s, state(10, 2, 0, 4));
  const VehicleState mid = t.at(0.5_s);
  EXPECT_NEAR(mid.x, 5.0, 1e-12);
  EXPECT_NEAR(mid.y, 1.0, 1e-12);
  EXPECT_NEAR(mid.speed, 3.0, 1e-12);
}

TEST(Trajectory, HeadingInterpolatesShortestArc) {
  Trajectory t;
  t.append(0.0_s, state(0, 0, 3.0, 1));
  t.append(1.0_s, state(1, 0, -3.0, 1));  // crosses the pi boundary
  const double h = t.at(0.5_s).heading;
  // Shortest path from 3.0 to -3.0 goes through pi, not through 0.
  EXPECT_GT(std::abs(h), 3.0);
}

TEST(Trajectory, ClampsOutsideRange) {
  Trajectory t;
  t.append(1.0_s, state(5, 0, 0, 1));
  t.append(2.0_s, state(7, 0, 0, 1));
  EXPECT_NEAR(t.at(0.0_s).x, 5.0, 1e-12);   // before start: first state
  EXPECT_NEAR(t.at(99.0_s).x, 7.0, 1e-12);  // beyond end: holds last state
}

TEST(Trajectory, StartEndTimes) {
  Trajectory t;
  t.append(1.5_s, state(0, 0, 0, 0));
  t.append(2.5_s, state(1, 0, 0, 0));
  EXPECT_DOUBLE_EQ(t.start_time().value(), 1.5);
  EXPECT_DOUBLE_EQ(t.end_time().value(), 2.5);
}

TEST(Trajectory, FootprintFollowsState) {
  Trajectory t;
  t.append(0.0_s, state(3.0, 4.0, M_PI / 2.0, 1.0));
  const auto box = t.footprint_at(0.0_s, {4.0, 2.0});
  EXPECT_NEAR(box.center().x, 3.0, 1e-12);
  EXPECT_NEAR(box.center().y, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(box.half_length(), 2.0);
  EXPECT_DOUBLE_EQ(box.half_width(), 1.0);
  EXPECT_NEAR(box.heading(), M_PI / 2.0, 1e-12);
}

TEST(ExtendConstantVelocity, ContinuesAlongHeading) {
  Trajectory t;
  t.append(0.0_s, state(0, 0, 0, 4));
  t.append(1.0_s, state(4, 0, 0, 4));
  extend_with_constant_velocity(t, 2.0_s, 0.5_s);
  EXPECT_DOUBLE_EQ(t.end_time().value(), 3.0);
  EXPECT_NEAR(t.at(3.0_s).x, 12.0, 1e-9);
  EXPECT_NEAR(t.at(2.0_s).x, 8.0, 1e-9);
}

TEST(ExtendConstantVelocity, StationaryStaysPut) {
  Trajectory t;
  t.append(0.0_s, state(5, 7, 1.0, 0.0));
  extend_with_constant_velocity(t, 3.0_s, 0.5_s);
  EXPECT_DOUBLE_EQ(t.at(t.end_time()).x, 5.0);
  EXPECT_DOUBLE_EQ(t.at(t.end_time()).y, 7.0);
}

TEST(ExtendConstantVelocity, RespectsHeading) {
  Trajectory t;
  t.append(0.0_s, state(0, 0, M_PI / 2.0, 2.0));
  extend_with_constant_velocity(t, 1.0_s, 0.25_s);
  EXPECT_NEAR(t.at(1.0_s).y, 2.0, 1e-9);
  EXPECT_NEAR(t.at(1.0_s).x, 0.0, 1e-9);
}

TEST(ExtendConstantVelocity, Validates) {
  Trajectory empty;
  EXPECT_THROW(extend_with_constant_velocity(empty, 1.0_s, 0.5_s), std::invalid_argument);
  Trajectory t;
  t.append(0.0_s, state(0, 0, 0, 1));
  EXPECT_THROW(extend_with_constant_velocity(t, 0.0_s, 0.5_s), std::invalid_argument);
  EXPECT_THROW(extend_with_constant_velocity(t, 1.0_s, 0.0_s), std::invalid_argument);
}

TEST(Footprint, CentersBoxOnPosition) {
  const auto box = footprint(state(1.0, 2.0, 0.0, 0.0), {4.5, 2.0});
  EXPECT_TRUE(box.contains({1.0, 2.0}));
  EXPECT_TRUE(box.contains({3.2, 2.9}));
  EXPECT_FALSE(box.contains({3.3, 3.1}));
}

}  // namespace
}  // namespace iprism::dynamics
