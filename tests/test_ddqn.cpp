#include "rl/ddqn.hpp"

#include <gtest/gtest.h>

namespace iprism::rl {
namespace {

DdqnConfig fast_config() {
  DdqnConfig c;
  c.learning_rate = 5e-3;
  c.batch_size = 32;
  c.warmup_transitions = 64;
  c.target_sync_interval = 50;
  c.epsilon_decay_steps = 500;
  c.gamma = 0.9;
  return c;
}

TEST(Ddqn, ValidatesActionCount) {
  EXPECT_THROW(DdqnTrainer(2, 1, {8}, fast_config(), 1), std::invalid_argument);
}

TEST(Ddqn, EpsilonAnneals) {
  DdqnTrainer t(2, 2, {8}, fast_config(), 1);
  EXPECT_DOUBLE_EQ(t.epsilon(), 1.0);
  Transition tr;
  tr.state = {0.0, 0.0};
  tr.next_state = {0.0, 0.0};
  for (int i = 0; i < 500; ++i) t.observe(tr);
  EXPECT_NEAR(t.epsilon(), 0.05, 1e-9);
}

TEST(Ddqn, TrainStepSkipsUntilWarm) {
  DdqnTrainer t(2, 2, {8}, fast_config(), 1);
  Transition tr;
  tr.state = {0.0, 0.0};
  tr.next_state = {0.0, 0.0};
  tr.reward = 1.0;
  tr.done = true;
  for (int i = 0; i < 10; ++i) t.observe(tr);
  EXPECT_DOUBLE_EQ(t.train_step(), 0.0);  // below warmup: no update
}

TEST(Ddqn, SolvesContextualBandit) {
  // Two contexts; the rewarded action flips with the context. A correct
  // D-DQN implementation learns the mapping in a few hundred updates.
  DdqnTrainer t(1, 2, {16}, fast_config(), 42);
  common::Rng rng(7);
  for (int i = 0; i < 1500; ++i) {
    const double ctx = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const int action = t.select_action(std::vector<double>{ctx});
    const int correct = ctx > 0.0 ? 1 : 0;
    Transition tr;
    tr.state = {ctx};
    tr.action = action;
    tr.reward = action == correct ? 1.0 : -1.0;
    tr.next_state = {ctx};
    tr.done = true;  // bandit: episodic single step
    t.observe(std::move(tr));
    t.train_step();
  }
  EXPECT_EQ(t.greedy_action(std::vector<double>{1.0}), 1);
  EXPECT_EQ(t.greedy_action(std::vector<double>{-1.0}), 0);
}

TEST(Ddqn, LearnsDelayedRewardChain) {
  // Two-step MDP: state 0 --(action 1)--> state 1 --(action 1)--> reward 1.
  // Any action 0 terminates with 0 reward. Tests bootstrapping through the
  // double-Q target.
  DdqnConfig cfg = fast_config();
  cfg.epsilon_decay_steps = 2000;
  DdqnTrainer t(1, 2, {16}, cfg, 3);
  common::Rng rng(5);
  for (int episode = 0; episode < 1200; ++episode) {
    double s = 0.0;
    for (int step = 0; step < 2; ++step) {
      const int action = t.select_action(std::vector<double>{s});
      Transition tr;
      tr.state = {s};
      tr.action = action;
      if (action == 0) {
        tr.reward = 0.0;
        tr.done = true;
        tr.next_state = {s};
        t.observe(std::move(tr));
        t.train_step();
        break;
      }
      const bool terminal = step == 1;
      tr.reward = terminal ? 1.0 : 0.0;
      tr.done = terminal;
      tr.next_state = {terminal ? s : 1.0};
      t.observe(std::move(tr));
      t.train_step();
      s = 1.0;
    }
  }
  EXPECT_EQ(t.greedy_action(std::vector<double>{0.0}), 1);
  EXPECT_EQ(t.greedy_action(std::vector<double>{1.0}), 1);
}

TEST(Ddqn, DeterministicGivenSeedAndData) {
  auto run = [] {
    DdqnTrainer t(1, 2, {8}, fast_config(), 11);
    for (int i = 0; i < 300; ++i) {
      Transition tr;
      tr.state = {static_cast<double>(i % 2)};
      tr.action = i % 2;
      tr.reward = (i % 2 == 0) ? 1.0 : -1.0;
      tr.next_state = tr.state;
      tr.done = true;
      t.observe(std::move(tr));
      t.train_step();
    }
    return t.online().forward(std::vector<double>{1.0});
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace iprism::rl
