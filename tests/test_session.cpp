// Engine/session split contract (DESIGN.md §14).
//
// A RiskSession is pure *storage* — warm scratch, monitor level, counters —
// and must never influence what an engine computes. These suites are the
// executable form of that contract:
//
//  * SessionIdentity — a session reused across ticks is bit-identical to a
//    fresh session per tick and to the legacy session-less API, across every
//    scenario typology, dedup mode, thread count, and counterfactual engine.
//  * SessionMonitor — the monitor's mutable state (level, quiet streak,
//    update count) lives in the session: external sessions track the legacy
//    owned-session API exactly, reset() forgets, moves preserve.
//  * SharedPool — M calculators share the one process-wide pool instead of
//    spawning M pools (the "M pools" fix).
//  * SessionPool — M sessions drive one const engine concurrently over the
//    shared pool. Runs in the CI tsan job: distinct sessions must be fully
//    independent, and a stream task's nested fan-out onto the same pool must
//    run inline rather than deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/monitor.hpp"
#include "core/session.hpp"
#include "core/sti.hpp"
#include "dynamics/cvtr.hpp"
#include "roadmap/straight_road.hpp"
#include "scenario/factory.hpp"
#include "sim/world.hpp"

namespace iprism {
namespace {

/// Builds a mid-episode world for a typology (stepped so the threat is live).
sim::World typology_world(const scenario::ScenarioFactory& factory,
                          scenario::Typology typology) {
  common::Rng rng(7);
  const auto spec = factory.sample(typology, 0, rng);
  sim::World world = factory.build(spec);
  for (int i = 0; i < 20; ++i) world.step(dynamics::Control{0.0, 0.0});
  return world;
}

void expect_bit_identical(const core::StiResult& a, const core::StiResult& b) {
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(a.combined, b.combined);
  EXPECT_EQ(a.volume_all, b.volume_all);
  EXPECT_EQ(a.volume_empty, b.volume_empty);
  ASSERT_EQ(a.per_actor.size(), b.per_actor.size());
  for (std::size_t i = 0; i < a.per_actor.size(); ++i) {
    EXPECT_EQ(a.per_actor[i].first, b.per_actor[i].first);
    EXPECT_EQ(a.per_actor[i].second, b.per_actor[i].second);
  }
}

// --- SessionIdentity -------------------------------------------------------

TEST(SessionIdentity, ReusedSessionBitIdenticalToFreshAcrossMatrix) {
  // The full knob matrix: typology x dedup x threads x counterfactual
  // engine. One session reused for all three ticks of a combo must match a
  // fresh session per tick AND the legacy session-less API — any divergence
  // means scratch state leaked into a result.
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    for (bool dedup : {true, false}) {
      for (int threads : {0, 2, 4}) {
        for (bool delta : {true, false}) {
          SCOPED_TRACE("dedup=" + std::to_string(dedup) +
                       " threads=" + std::to_string(threads) +
                       " delta=" + std::to_string(delta));
          core::ReachTubeParams params;
          params.dedup = dedup;
          params.num_threads = threads;
          params.delta_counterfactuals = delta;
          const core::StiCalculator sti(params);

          sim::World world = typology_world(factory, typology);
          core::RiskSession reused;
          for (int tick = 0; tick < 3; ++tick) {
            SCOPED_TRACE("tick=" + std::to_string(tick));
            const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);
            const core::StiResult warm =
                sti.compute(reused, world.map(), world.ego().state,
                            common::Seconds{world.time()}, forecasts);
            core::RiskSession fresh;
            expect_bit_identical(warm,
                                 sti.compute(fresh, world.map(), world.ego().state,
                                             common::Seconds{world.time()}, forecasts));
            expect_bit_identical(warm,
                                 sti.compute(world.map(), world.ego().state,
                                             common::Seconds{world.time()}, forecasts));
            world.step(dynamics::Control{0.0, 0.0});
          }
        }
      }
    }
  }
}

TEST(SessionIdentity, CombinedMatchesAcrossSessionReuse) {
  // Same contract for the two-tube combined() fast path.
  const scenario::ScenarioFactory factory;
  sim::World world = typology_world(factory, scenario::Typology::kGhostCutIn);
  core::ReachTubeParams params;
  params.num_threads = 2;
  const core::StiCalculator sti(params);
  core::RiskSession reused;
  for (int tick = 0; tick < 5; ++tick) {
    SCOPED_TRACE("tick=" + std::to_string(tick));
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);
    const double warm = sti.combined(reused, world.map(), world.ego().state,
                                     common::Seconds{world.time()}, forecasts);
    EXPECT_EQ(warm, sti.combined(world.map(), world.ego().state,
                                 common::Seconds{world.time()}, forecasts));
    world.step(dynamics::Control{0.0, 0.0});
  }
}

// --- SessionMonitor --------------------------------------------------------

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

/// A stopped wall across all three lanes: blocks lateral escapes too, so the
/// combined STI is genuinely high (same idiom as tests/test_monitor.cpp).
sim::World threat_world(double gap) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  for (double y : {1.75, 5.25, 8.75}) {
    sim::Actor blocker;
    blocker.kind = sim::ActorKind::kVehicle;
    blocker.state = state(50 + gap + 4.5, y, 0.0);
    w.add_actor(std::move(blocker));
  }
  return w;
}

sim::World empty_world() {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  return w;
}

TEST(SessionMonitor, ExternalSessionMatchesLegacyOwnedSession) {
  // One const engine, one external session vs the legacy mutable API: the
  // full level trajectory — escalation, hysteresis hold, de-escalation —
  // must evolve identically because ALL of it lives in the session.
  const core::RiskMonitor engine;     // const-callable with external sessions
  core::RiskMonitor legacy;           // legacy: owns its session
  core::RiskSession session;

  auto threat = threat_world(6.0);
  auto quiet = empty_world();
  for (int step = 0; step < 8; ++step) {
    const auto a = engine.update(session, threat);
    const auto b = legacy.update(threat);
    EXPECT_EQ(a.sti_combined, b.sti_combined) << "threat step " << step;
    EXPECT_EQ(a.level, b.level) << "threat step " << step;
    EXPECT_EQ(a.riskiest_actor, b.riskiest_actor) << "threat step " << step;
    EXPECT_EQ(session.level(), legacy.level()) << "threat step " << step;
  }
  EXPECT_GE(session.level(), core::RiskLevel::kCaution);
  for (int step = 0; step < 30; ++step) {
    const auto a = engine.update(session, quiet);
    const auto b = legacy.update(quiet);
    EXPECT_EQ(a.level, b.level) << "quiet step " << step;
    EXPECT_EQ(session.level(), legacy.level()) << "quiet step " << step;
  }
  // The quiet streak must have de-escalated both in lockstep all the way.
  EXPECT_EQ(session.level(), core::RiskLevel::kSafe);
  EXPECT_EQ(session.updates(), legacy.updates());
  EXPECT_EQ(session.updates(), 8 + 30);
}

TEST(SessionMonitor, ResetForgetsLevelStreakAndCount) {
  const core::RiskMonitor engine;
  core::RiskSession session;
  auto threat = threat_world(6.0);
  engine.update(session, threat);
  ASSERT_GE(session.level(), core::RiskLevel::kCaution);
  ASSERT_EQ(session.updates(), 1);

  session.reset();
  EXPECT_EQ(session.level(), core::RiskLevel::kSafe);
  EXPECT_EQ(session.updates(), 0);

  // A reset session behaves exactly like a brand-new one — including the
  // quiet-streak counter, which must not carry over.
  core::RiskSession fresh;
  auto quiet = empty_world();
  for (int step = 0; step < 5; ++step) {
    const auto a = engine.update(session, quiet);
    const auto b = engine.update(fresh, quiet);
    EXPECT_EQ(a.level, b.level) << "step " << step;
  }
  EXPECT_EQ(session.updates(), fresh.updates());
}

TEST(SessionMonitor, LegacyResetDelegatesToOwnedSession) {
  core::RiskMonitor monitor;
  auto threat = threat_world(6.0);
  monitor.update(threat);
  ASSERT_GE(monitor.level(), core::RiskLevel::kCaution);
  monitor.reset();
  EXPECT_EQ(monitor.level(), core::RiskLevel::kSafe);
  EXPECT_EQ(monitor.updates(), 0);
}

TEST(SessionMonitor, MovePreservesSessionState) {
  // Sessions are movable storage: a stream can be handed off (e.g. into a
  // container) without losing its warm scratch or monitor state.
  const core::RiskMonitor engine;
  core::RiskSession session;
  auto threat = threat_world(6.0);
  engine.update(session, threat);
  const core::RiskLevel level = session.level();
  const long updates = session.updates();
  ASSERT_GE(level, core::RiskLevel::kCaution);

  core::RiskSession moved = std::move(session);
  EXPECT_EQ(moved.level(), level);
  EXPECT_EQ(moved.updates(), updates);
  // And it keeps working as the same stream.
  engine.update(moved, threat);
  EXPECT_EQ(moved.updates(), updates + 1);
}

// --- SharedPool ------------------------------------------------------------

TEST(SharedPool, OnePoolAcrossCalculators) {
  // The "M pools" fix: parallel calculators no longer spawn a pool each.
  core::ReachTubeParams two;
  two.num_threads = 2;
  core::ReachTubeParams eight;
  eight.num_threads = 8;
  const core::StiCalculator a(two);
  const core::StiCalculator b(eight);
  EXPECT_EQ(a.pool(), &common::ThreadPool::shared());
  EXPECT_EQ(b.pool(), &common::ThreadPool::shared());
  EXPECT_EQ(a.pool(), b.pool());

  // num_threads == 0 stays strictly serial: no pool at all.
  const core::StiCalculator serial;
  EXPECT_EQ(serial.pool(), nullptr);

  // An injected pool is honored verbatim (test isolation / custom sizing).
  common::ThreadPool mine(2);
  const core::StiCalculator injected(two, &mine);
  EXPECT_EQ(injected.pool(), &mine);
  // ...but serial ignores even an injected pool.
  const core::StiCalculator serial_injected(core::ReachTubeParams{}, &mine);
  EXPECT_EQ(serial_injected.pool(), nullptr);
}

TEST(SharedPool, MonitorForwardsThePoolToItsCalculator) {
  core::RiskMonitorParams params;
  params.tube.num_threads = 4;
  const core::RiskMonitor monitor(params);
  EXPECT_EQ(monitor.sti_calculator().pool(), &common::ThreadPool::shared());

  common::ThreadPool mine(2);
  const core::RiskMonitor injected(params, &mine);
  EXPECT_EQ(injected.sti_calculator().pool(), &mine);
}

// --- SessionPool (tsan workload) -------------------------------------------

TEST(SessionPool, ManySessionsDriveOneEngineConcurrently) {
  // M streams, one const monitor, everything on the one shared pool: the
  // stream fan-out runs on its workers AND each stream's tube fan-out
  // targets the same pool (running inline on the stream's worker). Distinct
  // sessions are fully independent, so every stream must reproduce the
  // serial reference bit-for-bit. Under tsan this is the engine/session
  // data-race check.
  constexpr std::size_t kStreams = 8;
  core::RiskMonitorParams params;
  params.tube.num_threads = 4;
  const core::RiskMonitor engine(params);

  const auto stream_world = [](std::size_t i) {
    // Deterministic in the index: distinct gaps, so streams genuinely differ.
    return threat_world(5.0 + static_cast<double>(i));
  };

  // Serial reference, one stream at a time.
  std::vector<std::vector<double>> reference(kStreams);
  std::vector<core::RiskLevel> reference_level(kStreams, core::RiskLevel::kSafe);
  for (std::size_t i = 0; i < kStreams; ++i) {
    auto world = stream_world(i);
    core::RiskSession session;
    for (int step = 0; step < 5; ++step) {
      reference[i].push_back(engine.update(session, world).sti_combined);
      world.step(dynamics::Control{0.0, 0.0});
    }
    reference_level[i] = session.level();
  }

  // Concurrent run: index-owned slots, sessions created on the workers.
  std::vector<std::vector<double>> got(kStreams);
  std::vector<core::RiskLevel> got_level(kStreams, core::RiskLevel::kSafe);
  common::parallel_for_each(&common::ThreadPool::shared(), kStreams, [&](std::size_t i) {
    auto world = stream_world(i);
    core::RiskSession session;
    for (int step = 0; step < 5; ++step) {
      got[i].push_back(engine.update(session, world).sti_combined);
      world.step(dynamics::Control{0.0, 0.0});
    }
    got_level[i] = session.level();
  });

  for (std::size_t i = 0; i < kStreams; ++i) {
    SCOPED_TRACE("stream=" + std::to_string(i));
    ASSERT_EQ(got[i].size(), reference[i].size());
    for (std::size_t s = 0; s < got[i].size(); ++s) {
      EXPECT_EQ(got[i][s], reference[i][s]) << "step " << s;
    }
    EXPECT_EQ(got_level[i], reference_level[i]);
  }
}

TEST(SessionPool, OneSessionsScratchPoolServesItsOwnFanOut) {
  // A single session's evaluation fans N+2 replay tasks over the pool; each
  // leases its own scratch from the session's mutex-guarded pool. Repeat the
  // evaluation so leases recycle; results must be stable run over run.
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kLeadCutIn);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);
  core::ReachTubeParams params;
  params.num_threads = 4;
  const core::StiCalculator sti(params);

  core::RiskSession session;
  const core::StiResult first = sti.compute(session, world.map(), world.ego().state,
                                            common::Seconds{world.time()}, forecasts);
  for (int run = 0; run < 5; ++run) {
    SCOPED_TRACE("run=" + std::to_string(run));
    expect_bit_identical(first,
                         sti.compute(session, world.map(), world.ego().state,
                                     common::Seconds{world.time()}, forecasts));
  }
}

}  // namespace
}  // namespace iprism
