#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace iprism::common::telemetry {
namespace {

TEST(TelemetryHistogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_mid(Histogram::bucket_of(v)), v) << v;
  }
}

TEST(TelemetryHistogram, BucketMidWithin12Point5Percent) {
  for (std::uint64_t v : {8ULL, 13ULL, 100ULL, 999ULL, 4096ULL, 123456ULL,
                          9999999ULL, 123456789012ULL}) {
    const std::uint64_t mid = Histogram::bucket_mid(Histogram::bucket_of(v));
    const double rel = std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LE(rel, 0.125) << "v=" << v << " mid=" << mid;
  }
}

TEST(TelemetryHistogram, CountSumMinMaxAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty: best-effort zero, unlike common::percentile
  EXPECT_EQ(h.percentile_ns(99.0), 0u);
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_EQ(h.sum(), 1000u * 1001u / 2u * 1000u);
  // Bucket midpoints: allow the 12.5% resolution plus rank rounding.
  const auto p50 = static_cast<double>(h.percentile_ns(50.0));
  EXPECT_NEAR(p50, 500000.0, 500000.0 * 0.15);
  const auto p99 = static_cast<double>(h.percentile_ns(99.0));
  EXPECT_NEAR(p99, 990000.0, 990000.0 * 0.15);
  EXPECT_LE(h.percentile_ns(50.0), h.percentile_ns(95.0));
  EXPECT_LE(h.percentile_ns(95.0), h.percentile_ns(99.0));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(TelemetryRegistry, FindOrCreateIsStableAndFindMisses) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.registry_stable");
  Counter& b = reg.counter("test.registry_stable");
  EXPECT_EQ(&a, &b);  // same entry, reference stable across lookups
  EXPECT_EQ(reg.find_counter("test.registry_never_created"), nullptr);
  EXPECT_EQ(reg.find_gauge("test.registry_never_created"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.registry_never_created"), nullptr);
}

// --- Concurrency suite (runs under the tsan preset, see .github CI) -------

TEST(TelemetryConcurrency, CounterExactUnderThreadPoolLoad) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.concurrent_counter");
  c.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 1000;
  parallel_for_each(&pool, kTasks, [&](std::size_t) {
    for (std::uint64_t k = 0; k < kAddsPerTask; ++k) c.add();
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
}

TEST(TelemetryConcurrency, HistogramExactCountUnderThreadPoolLoad) {
  auto& reg = MetricsRegistry::instance();
  Histogram& h = reg.histogram("test.concurrent_histogram");
  h.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kRecordsPerTask = 500;
  parallel_for_each(&pool, kTasks, [&](std::size_t i) {
    for (std::uint64_t k = 0; k < kRecordsPerTask; ++k) {
      h.record(i * 1000 + k);  // mixes magnitudes across threads
    }
  });
  EXPECT_EQ(h.count(), kTasks * kRecordsPerTask);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_GE(h.max(), (kTasks - 1) * 1000u);
}

TEST(TelemetryConcurrency, ScopedTimersAndExportRaceCleanly) {
  auto& reg = MetricsRegistry::instance();
  Histogram& h = reg.histogram("test.concurrent_span");
  h.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 48;
  // Export concurrently with recording: the exporter takes the registry
  // lock then each ring's lock, writers take only their own ring's lock —
  // tsan verifies the snapshot discipline.
  parallel_for_each(&pool, kTasks, [&](std::size_t i) {
    const ScopedTimer t(h, "test.concurrent_span", "test");
    if (i % 16 == 0) {
      std::ostringstream sink;
      reg.write_chrome_trace(sink);
    }
  });
  EXPECT_EQ(h.count(), kTasks);
}

TEST(TelemetryConcurrency, TraceRingOverwritesOldestAndReportsTotal) {
  TraceRing ring(99);
  const std::uint64_t total = TraceRing::kCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.record(TraceEvent{"ev", "test", i, 1});
  }
  std::vector<TraceEvent> events(TraceRing::kCapacity);
  EXPECT_EQ(ring.snapshot(events.data(), events.size()), total);
  // Oldest retained is event #100; newest is #(total - 1).
  EXPECT_EQ(events.front().start_ns, 100u);
  EXPECT_EQ(events.back().start_ns, total - 1);
}

TEST(TelemetryExport, ChromeTraceIsWellFormedJson) {
  auto& reg = MetricsRegistry::instance();
  Histogram& h = reg.histogram("test.export_span");
  {
    const ScopedTimer t(h, "test.export_span", "test");
  }
  std::ostringstream os;
  reg.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms_ns\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- Macro layer: behavior in both build modes ----------------------------
//
// With IPRISM_ENABLE_TELEMETRY the macros must register and update metrics;
// compiled out (the release-notelemetry preset builds this same file) they
// must expand to nothing — this branch proves no metric gets registered.

TEST(TelemetryMacros, MacrosFollowBuildMode) {
  IPRISM_COUNT("test.macro_counter");
  IPRISM_COUNT_ADD("test.macro_counter", 4);
  IPRISM_GAUGE_SET("test.macro_gauge", 2.5);
  IPRISM_HISTOGRAM_NS("test.macro_hist", 123);
  {
    IPRISM_SCOPED_TIMER("test.macro_span", "test");
  }
  auto& reg = MetricsRegistry::instance();
#if IPRISM_TELEMETRY_ENABLED
  const Counter* c = reg.find_counter("test.macro_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 5u);
  const Gauge* g = reg.find_gauge("test.macro_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  const Histogram* h = reg.find_histogram("test.macro_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  const Histogram* span = reg.find_histogram("test.macro_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count(), 1u);
#else
  EXPECT_EQ(reg.find_counter("test.macro_counter"), nullptr);
  EXPECT_EQ(reg.find_gauge("test.macro_gauge"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.macro_hist"), nullptr);
  EXPECT_EQ(reg.find_histogram("test.macro_span"), nullptr);
#endif
}

TEST(TelemetryRegistry, ResetForTestingZeroesInPlace) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.reset_counter");
  c.add(7);
  Histogram& h = reg.histogram("test.reset_hist");
  h.record(42);
  reg.reset_for_testing();
  EXPECT_EQ(c.value(), 0u);  // same reference, zeroed in place
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("test.reset_counter"), &c);
}

}  // namespace
}  // namespace iprism::common::telemetry
