#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace iprism::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng r(0);
  // SplitMix64 seeding must not produce an all-zero state.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= (r.next_u64() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng r(7);
  EXPECT_THROW(r.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(2, 5));
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng r(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliEdgesAreExact) {
  Rng r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateMatchesProbability) {
  Rng r(1);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, IndexStaysInBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(r.index(17), 17u);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicFromSeedLineage) {
  Rng p1(42);
  Rng p2(42);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ShuffleProducesPermutation) {
  Rng r(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

}  // namespace
}  // namespace iprism::common
