#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

sim::World empty_world() {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  return w;
}

sim::World threat_world(double gap) {
  // A stopped wall across all three lanes: blocks lateral escapes too, so
  // the combined STI is genuinely high.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  for (double y : {1.75, 5.25, 8.75}) {
    sim::Actor blocker;
    blocker.kind = sim::ActorKind::kVehicle;
    blocker.state = state(50 + gap + 4.5, y, 0.0);
    w.add_actor(std::move(blocker));
  }
  return w;
}

TEST(RiskMonitor, ValidatesParameters) {
  RiskMonitorParams p;
  p.caution_threshold = 0.5;
  p.critical_threshold = 0.4;
  EXPECT_THROW(RiskMonitor{p}, std::invalid_argument);
  p = {};
  p.hysteresis_updates = 0;
  EXPECT_THROW(RiskMonitor{p}, std::invalid_argument);
}

TEST(RiskMonitor, SafeOnEmptyRoad) {
  RiskMonitor monitor;
  auto w = empty_world();
  const auto a = monitor.update(w);
  EXPECT_DOUBLE_EQ(a.sti_combined, 0.0);
  EXPECT_EQ(a.level, RiskLevel::kSafe);
  EXPECT_FALSE(a.riskiest_actor.has_value());
}

TEST(RiskMonitor, EscalatesImmediately) {
  RiskMonitor monitor;
  auto w = threat_world(6.0);  // imminent: large STI
  const auto a = monitor.update(w);
  EXPECT_GE(a.level, RiskLevel::kCaution);
  EXPECT_EQ(monitor.level(), a.level);
}

TEST(RiskMonitor, AttributionAppearsOnceElevated) {
  RiskMonitor monitor;
  auto w = threat_world(6.0);
  monitor.update(w);  // first update escalates (and attributes — see below)
  const auto second = monitor.update(w);
  ASSERT_GE(second.level, RiskLevel::kCaution);
  ASSERT_TRUE(second.riskiest_actor.has_value());
  EXPECT_GT(second.riskiest_sti, 0.1);
}

TEST(RiskMonitor, EscalationTickCarriesAttribution) {
  // Regression: attribution used to be decided from the pre-update level,
  // so the very tick that first crossed caution_threshold escalated with
  // riskiest_actor = nullopt and the responsible actor was only named one
  // tick later — exactly when the alarm consumer needs it most.
  RiskMonitor monitor;
  auto w = threat_world(6.0);
  const auto first = monitor.update(w);
  ASSERT_GE(first.level, RiskLevel::kCaution);
  ASSERT_TRUE(first.riskiest_actor.has_value());
  EXPECT_GT(first.riskiest_sti, 0.1);
}

TEST(RiskMonitor, AllZeroPerActorYieldsNoRiskiestActor) {
  // Two coincident blockers per lane: removing any single actor leaves its
  // twin, so every counterfactual tube equals the full tube — per-actor STI
  // is all zeros while combined STI stays high. The monitor must escalate
  // without inventing a "riskiest" actor (the old >=-with-0.0-init scan
  // named the last actor).
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  for (int twin = 0; twin < 2; ++twin) {
    for (double y : {1.75, 5.25, 8.75}) {
      sim::Actor blocker;
      blocker.kind = sim::ActorKind::kVehicle;
      blocker.state = state(50 + 6.0 + 4.5, y, 0.0);
      w.add_actor(std::move(blocker));
    }
  }
  RiskMonitor monitor;
  const auto a = monitor.update(w);
  ASSERT_GE(a.level, RiskLevel::kCaution);
  EXPECT_FALSE(a.riskiest_actor.has_value());
  EXPECT_DOUBLE_EQ(a.riskiest_sti, 0.0);
}

TEST(RiskiestActorOf, StrictMaxFirstWinsAndAllZeroIsEmpty) {
  StiResult sti;
  sti.per_actor = {{7, 0.0}, {3, 0.4}, {9, 0.4}, {5, 0.2}};
  const auto best = riskiest_actor_of(sti);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first, 3);  // tie at 0.4 resolves to the first in order
  EXPECT_DOUBLE_EQ(best->second, 0.4);

  StiResult zeros;
  zeros.per_actor = {{1, 0.0}, {2, 0.0}};
  EXPECT_FALSE(riskiest_actor_of(zeros).has_value());
  EXPECT_FALSE(riskiest_actor_of(StiResult{}).has_value());
}

TEST(RiskMonitor, DeescalationNeedsQuietStreak) {
  RiskMonitorParams p;
  p.hysteresis_updates = 3;
  RiskMonitor monitor(p);
  auto threat = threat_world(6.0);
  monitor.update(threat);
  monitor.update(threat);
  const RiskLevel elevated = monitor.level();
  ASSERT_GE(elevated, RiskLevel::kCaution);

  auto calm = empty_world();
  // Two quiet updates: still holding the elevated level.
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), elevated);
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), elevated);
  // Third quiet update: drop exactly one level.
  monitor.update(calm);
  EXPECT_EQ(static_cast<int>(monitor.level()), static_cast<int>(elevated) - 1);
}

TEST(RiskMonitor, DeescalationStepsOneLevelAtATime) {
  // Thresholds low enough that the wall scene is kCritical (combined STI is
  // >= every per-actor STI, and the scene's riskiest actor is above 0.1),
  // then a calm road must walk kCritical -> kCaution -> kSafe with a full
  // quiet streak per step — never straight to kSafe.
  RiskMonitorParams p;
  p.caution_threshold = 0.03;
  p.critical_threshold = 0.10;
  p.hysteresis_updates = 2;
  RiskMonitor monitor(p);
  auto threat = threat_world(6.0);
  monitor.update(threat);
  ASSERT_EQ(monitor.level(), RiskLevel::kCritical);

  auto calm = empty_world();
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), RiskLevel::kCritical);  // streak 1 of 2
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), RiskLevel::kCaution);  // one level, not two
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), RiskLevel::kCaution);  // streak resets per level
  monitor.update(calm);
  EXPECT_EQ(monitor.level(), RiskLevel::kSafe);
}

TEST(RiskMonitor, ResetClearsState) {
  RiskMonitor monitor;
  auto threat = threat_world(6.0);
  monitor.update(threat);
  ASSERT_GE(monitor.level(), RiskLevel::kCaution);
  monitor.reset();
  EXPECT_EQ(monitor.level(), RiskLevel::kSafe);
  EXPECT_EQ(monitor.updates(), 0);
}

TEST(RiskMonitor, LevelNames) {
  EXPECT_EQ(risk_level_name(RiskLevel::kSafe), "safe");
  EXPECT_EQ(risk_level_name(RiskLevel::kCaution), "caution");
  EXPECT_EQ(risk_level_name(RiskLevel::kCritical), "critical");
}

TEST(RiskMonitor, RequiresEgo) {
  RiskMonitor monitor;
  sim::World w(test_map(), 0.1);
  EXPECT_THROW(monitor.update(w), std::invalid_argument);
}

}  // namespace
}  // namespace iprism::core
