#include "smc/controller.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "roadmap/straight_road.hpp"
#include "smc/features.hpp"

namespace iprism::smc {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

/// Builds a policy that constantly prefers `preferred` by biasing the output
/// head: train a fresh MLP briefly toward one-hot targets.
rl::Mlp constant_policy(int actions, int preferred) {
  common::Rng rng(10);
  rl::Mlp net({kFeatureCount, 8, actions}, rng);
  std::vector<double> probe(kFeatureCount, 0.3);
  for (int i = 0; i < 400; ++i) {
    for (int a = 0; a < actions; ++a) {
      net.accumulate_gradient(probe, a, a == preferred ? 5.0 : -5.0);
    }
    net.apply_adam(0.01);
  }
  return net;
}

sim::World make_world() {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  return w;
}

TEST(SmcController, ValidatesPolicyShape) {
  common::Rng rng(1);
  rl::Mlp wrong({3, 4, 2}, rng);
  EXPECT_THROW(SmcController(std::move(wrong)), std::invalid_argument);
}

TEST(SmcController, NoOpReturnsNullopt) {
  SmcController smc(constant_policy(3, 0));
  auto w = make_world();
  EXPECT_FALSE(smc.intervene(w, dynamics::Control{1.0, 0.1}).has_value());
}

TEST(SmcController, BrakeOverridesLongitudinalOnly) {
  SmcControlParams p;
  p.brake_accel = -6.0;
  SmcController smc(constant_policy(3, 1), p);
  auto w = make_world();
  const auto u = smc.intervene(w, dynamics::Control{2.0, 0.17});
  ASSERT_TRUE(u.has_value());
  EXPECT_DOUBLE_EQ(u->accel, -6.0);
  EXPECT_DOUBLE_EQ(u->steer, 0.17);  // ADS keeps the steering
}

TEST(SmcController, AccelerateAction) {
  SmcControlParams p;
  p.accel_accel = 3.0;
  SmcController smc(constant_policy(3, 2), p);
  auto w = make_world();
  const auto u = smc.intervene(w, dynamics::Control{-1.0, 0.0});
  ASSERT_TRUE(u.has_value());
  EXPECT_DOUBLE_EQ(u->accel, 3.0);
}

TEST(SmcController, BrakeOnlyActionSetWorks) {
  SmcController smc(constant_policy(2, 1));
  auto w = make_world();
  EXPECT_TRUE(smc.intervene(w, dynamics::Control{0.0, 0.0}).has_value());
}

TEST(SmcController, DecisionPeriodHoldsAction) {
  // The controller re-evaluates the policy only every decision_period
  // steps; between decisions the held action persists even if the world
  // changes. We can't easily make the constant policy flip, but we can at
  // least verify repeated calls stay consistent and reset() clears state.
  SmcControlParams p;
  p.decision_period = 3;
  SmcController smc(constant_policy(3, 1), p);
  auto w = make_world();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(smc.intervene(w, dynamics::Control{0.0, 0.0}).has_value());
    w.step(dynamics::Control{0.0, 0.0});
  }
  smc.reset();
  EXPECT_TRUE(smc.intervene(w, dynamics::Control{0.0, 0.0}).has_value());
}

TEST(SmcAction, LaneChangeOverridesSteering) {
  auto w = make_world();
  SmcControlParams p;
  const auto left =
      apply_smc_action(SmcAction::kLaneChangeLeft, w, dynamics::Control{0.5, 0.0}, p);
  ASSERT_TRUE(left.has_value());
  EXPECT_GT(left->steer, 0.01);  // toward the higher (left) lane
  const auto right =
      apply_smc_action(SmcAction::kLaneChangeRight, w, dynamics::Control{0.5, 0.0}, p);
  ASSERT_TRUE(right.has_value());
  EXPECT_LT(right->steer, -0.01);
}

TEST(SmcAction, LaneChangeOffEdgeIsNoOp) {
  // Ego on the leftmost lane: LCL has nowhere to go.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 8.75, 8));
  SmcControlParams p;
  EXPECT_FALSE(
      apply_smc_action(SmcAction::kLaneChangeLeft, w, dynamics::Control{}, p).has_value());
  EXPECT_TRUE(
      apply_smc_action(SmcAction::kLaneChangeRight, w, dynamics::Control{}, p).has_value());
}

TEST(SmcAction, MappingMatchesController) {
  auto w = make_world();
  SmcControlParams p;
  const auto brake = apply_smc_action(SmcAction::kBrake, w, dynamics::Control{1.0, 0.2}, p);
  ASSERT_TRUE(brake.has_value());
  EXPECT_DOUBLE_EQ(brake->accel, p.brake_accel);
  EXPECT_DOUBLE_EQ(brake->steer, 0.2);
  EXPECT_FALSE(apply_smc_action(SmcAction::kNoOp, w, dynamics::Control{}, p).has_value());
}

TEST(SmcController, SaveLoadRoundTrip) {
  SmcController smc(constant_policy(3, 1));
  std::stringstream ss;
  smc.save(ss);
  SmcController restored = SmcController::load(ss);
  auto w = make_world();
  const auto a = smc.intervene(w, dynamics::Control{0.0, 0.0});
  const auto b = restored.intervene(w, dynamics::Control{0.0, 0.0});
  ASSERT_EQ(a.has_value(), b.has_value());
  EXPECT_DOUBLE_EQ(a->accel, b->accel);
}

TEST(SmcController, FeatureNoiseValidatedAndDeterministic) {
  SmcControlParams p;
  p.feature_noise_std = -1.0;
  rl::Mlp bad_policy = constant_policy(3, 0);
  EXPECT_THROW(SmcController(std::move(bad_policy), p), std::invalid_argument);

  p.feature_noise_std = 0.5;
  p.decision_period = 1;
  SmcController a(constant_policy(3, 1), p);
  SmcController b(constant_policy(3, 1), p);
  auto w = make_world();
  // Same seed => identical noisy decisions step by step.
  for (int i = 0; i < 10; ++i) {
    const auto ua = a.intervene(w, dynamics::Control{});
    const auto ub = b.intervene(w, dynamics::Control{});
    ASSERT_EQ(ua.has_value(), ub.has_value());
    w.step(dynamics::Control{0.0, 0.0});
  }
}

TEST(SmcController, PolicyActionMatchesArgmax) {
  SmcController smc(constant_policy(3, 2));
  std::vector<double> probe(kFeatureCount, 0.3);
  EXPECT_EQ(smc.policy_action(probe), SmcAction::kAccelerate);
}

}  // namespace
}  // namespace iprism::smc
