#include <gtest/gtest.h>

#include "core/dist_cipa.hpp"
#include "core/ttc.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

std::shared_ptr<roadmap::StraightRoad> test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

SceneSnapshot make_scene(const std::shared_ptr<roadmap::StraightRoad>& map) {
  SceneSnapshot scene;
  scene.map = map.get();
  scene.ego.id = 0;
  scene.ego.state.x = 50.0;
  scene.ego.state.y = 5.25;
  scene.ego.state.speed = 10.0;
  scene.ego.dims = {4.5, 2.0};
  return scene;
}

ActorSnapshot other(int id, double x, double y, double speed) {
  ActorSnapshot a;
  a.id = id;
  a.state.x = x;
  a.state.y = y;
  a.state.speed = speed;
  a.dims = {4.5, 2.0};
  return a;
}

TEST(Ttc, InfiniteWithoutInPathActor) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  const TtcMetric ttc(3.0);
  EXPECT_EQ(ttc.value(scene), TtcMetric::kInfinity);
  EXPECT_DOUBLE_EQ(ttc.risk(scene), 0.0);
}

TEST(Ttc, ComputesGapOverClosingSpeed) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 74.5, 5.25, 4.0));  // gap 20 m, closing 6 m/s
  const TtcMetric ttc(10.0);
  EXPECT_NEAR(ttc.value(scene), 20.0 / 6.0, 1e-9);
}

TEST(Ttc, InfiniteWhenLeadIsFaster) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 74.5, 5.25, 15.0));
  const TtcMetric ttc(3.0);
  EXPECT_EQ(ttc.value(scene), TtcMetric::kInfinity);
}

TEST(Ttc, RiskThresholdBehaviour) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 74.5, 5.25, 4.0));  // TTC = 3.33 s
  EXPECT_DOUBLE_EQ(TtcMetric(3.0).risk(scene), 0.0);  // above threshold
  const double risk = TtcMetric(5.0).risk(scene);     // below threshold
  EXPECT_GT(risk, 0.0);
  EXPECT_LT(risk, 1.0);
}

TEST(Ttc, OutOfPathAdjacentActorIgnored) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 60.0, 1.75, 0.0));  // adjacent lane centre
  EXPECT_EQ(TtcMetric(3.0).value(scene), TtcMetric::kInfinity);
}

TEST(DistCipa, InfiniteWithoutInPathActor) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  const DistCipaMetric cipa(25.0);
  EXPECT_EQ(cipa.value(scene), DistCipaMetric::kInfinity);
  EXPECT_DOUBLE_EQ(cipa.risk(scene), 0.0);
}

TEST(DistCipa, MeasuresBumperGap) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 74.5, 5.25, 4.0));
  EXPECT_NEAR(DistCipaMetric(25.0).value(scene), 20.0, 1e-9);
}

TEST(DistCipa, RiskScalesInsideThreshold) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 64.5, 5.25, 4.0));  // gap 10 m
  EXPECT_NEAR(DistCipaMetric(25.0).risk(scene), 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(DistCipaMetric(10.0).risk(scene), 0.0);
}

TEST(DistCipa, PicksNearestOfSeveral) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.others.push_back(other(1, 100.0, 5.25, 4.0));
  scene.others.push_back(other(2, 64.5, 5.25, 4.0));
  EXPECT_NEAR(DistCipaMetric(50.0).value(scene), 10.0, 1e-9);
}

TEST(SceneQueries, ClosestInPathSlowEgoNotClosing) {
  const auto map = test_map();
  SceneSnapshot scene = make_scene(map);
  scene.ego.state.speed = 2.0;
  scene.others.push_back(other(1, 74.5, 5.25, 6.0));
  const auto cipa = closest_in_path(scene);
  ASSERT_TRUE(cipa.has_value());
  EXPECT_LT(cipa->closing_speed, 0.0);  // pulling away
}

}  // namespace
}  // namespace iprism::core
