#include "eval/pkl_training.hpp"

#include <gtest/gtest.h>

#include "agents/lbc.hpp"
#include "scenario/factory.hpp"

namespace iprism::eval {
namespace {

EpisodeResult sample_episode() {
  const scenario::ScenarioFactory factory;
  common::Rng rng(5);
  const auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
  agents::LbcAgent lbc;
  return run_episode(factory.build(spec), lbc);
}

TEST(PklTraining, CollectsExamplesWithValidLabels) {
  const EpisodeResult episode = sample_episode();
  const core::PklMetric metric;
  const auto examples = collect_pkl_examples(episode, metric, 5);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    ASSERT_FALSE(ex.candidates.empty());
    ASSERT_LT(ex.expert_index, ex.candidates.size());
    for (const auto& f : ex.candidates) {
      for (double v : f) {
        ASSERT_TRUE(std::isfinite(v));
      }
    }
  }
}

TEST(PklTraining, StrideControlsExampleCount) {
  const EpisodeResult episode = sample_episode();
  const core::PklMetric metric;
  const auto dense = collect_pkl_examples(episode, metric, 2);
  const auto sparse = collect_pkl_examples(episode, metric, 10);
  EXPECT_GT(dense.size(), sparse.size());
  EXPECT_THROW(collect_pkl_examples(episode, metric, 0), std::invalid_argument);
}

TEST(PklTraining, SkipsStepsWithoutFullHorizon) {
  // All examples must come from steps whose 2.5 s planner horizon fits in
  // the recording.
  const EpisodeResult episode = sample_episode();
  const core::PklMetric metric;
  const auto examples = collect_pkl_examples(episode, metric, 1);
  const int horizon_steps = static_cast<int>(2.5 / episode.dt);
  EXPECT_EQ(static_cast<int>(examples.size()),
            std::max(episode.samples - horizon_steps, 0));
}

TEST(PklTraining, ExpertLabelTracksRealizedBehavior) {
  // A cruising ego (no hazard in range) should be matched by a
  // keep-speed-keep-lane candidate, not a hard-brake or lane-change one.
  const scenario::ScenarioFactory factory;
  auto map_world = [&] {
    common::Rng rng(9);
    auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 1, rng);
    spec.hyperparams["npc_vehicle_location"] = 200.0;  // hazard far away
    return factory.build(spec);
  };
  agents::LbcAgent lbc;
  const EpisodeResult episode = run_episode(map_world(), lbc);
  const core::PklMetric metric;
  const auto examples = collect_pkl_examples(episode, metric, 10);
  ASSERT_FALSE(examples.empty());
  // Rebuild candidate descriptors for step 0 to interpret the label.
  const auto scene = episode.snapshot_at(0);
  const auto candidates = metric.roll_candidates(*scene.map, scene);
  const auto& label = candidates[examples.front().expert_index];
  EXPECT_EQ(label.target_lane, 1);             // keeps its lane
  EXPECT_NEAR(label.accel, 0.0, 1.1);          // near-zero acceleration
}

}  // namespace
}  // namespace iprism::eval
