#include "core/reachtube.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dynamics/cvtr.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

using namespace iprism::common::literals;

std::shared_ptr<roadmap::StraightRoad> test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState ego_state(double x = 50.0, double y = 5.25, double speed = 8.0) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

ActorForecast stationary_actor(int id, double x, double y) {
  dynamics::CvtrPredictor pred;
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = 0.0;
  return {id, pred.predict(s, 0.0_s, 4.0_s, 0.25_s), {4.5, 2.0}};
}

TEST(ReachTubeParams, Validated) {
  ReachTubeParams p;
  p.dt = 0.0;
  EXPECT_THROW(ReachTubeComputer{p}, std::invalid_argument);
  p = {};
  p.horizon = -1.0;
  EXPECT_THROW(ReachTubeComputer{p}, std::invalid_argument);
  p = {};
  p.cell_size = 0.0;
  EXPECT_THROW(ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTube, EmptyWorldHasPositiveVolume) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const ReachTube tube = rt.compute(*map, ego_state(), 0.0_s, {});
  EXPECT_GT(tube.volume, 0.0);
  EXPECT_FALSE(tube.empty());
  // Slice 0 holds exactly the seed state.
  ASSERT_FALSE(tube.slices.empty());
  EXPECT_EQ(tube.slices[0].size(), 1u);
}

TEST(ReachTube, VolumeGrowsWithHorizon) {
  const auto map = test_map();
  ReachTubeParams p_short;
  p_short.horizon = 1.0;
  ReachTubeParams p_long;
  p_long.horizon = 3.0;
  const double v_short =
      ReachTubeComputer(p_short).compute(*map, ego_state(), 0.0_s, {}).volume;
  const double v_long =
      ReachTubeComputer(p_long).compute(*map, ego_state(), 0.0_s, {}).volume;
  EXPECT_GT(v_long, v_short);
}

TEST(ReachTube, ObstaclesShrinkVolumeStatistically) {
  // Exact reachable sets are monotone under added obstacles; the sampled
  // tube is monotone only statistically — pruning to per-cell extreme
  // representatives means a blocked cell can reroute spread through states
  // the unblocked tube never kept (same approximation class as the paper's
  // sampled Algorithm 1). Assert the statistical form: the mean volume
  // drops and no single trial gains more than a modest overshoot.
  const ReachTubeComputer rt;
  const auto map = test_map();
  common::Rng rng(4);
  double sum_empty = 0.0;
  double sum_with = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto ego = ego_state(50.0, rng.uniform(2.0, 9.0), rng.uniform(2.0, 12.0));
    const double v_empty = rt.compute(*map, ego, 0.0_s, {}).volume;
    const std::vector<ActorForecast> forecasts = {
        stationary_actor(1, 50.0 + rng.uniform(-20.0, 40.0), rng.uniform(1.0, 10.0))};
    const double v_with = rt.compute(*map, ego, 0.0_s, forecasts).volume;
    sum_empty += v_empty;
    sum_with += v_with;
    ASSERT_LE(v_with, 1.25 * v_empty + 5.0);
  }
  EXPECT_LT(sum_with, sum_empty);
}

TEST(ReachTube, BlockingWallReducesVolumeSubstantially) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const auto ego = ego_state();
  const double v_empty = rt.compute(*map, ego, 0.0_s, {}).volume;
  // Three stopped cars across all lanes 12 m ahead.
  const std::vector<ActorForecast> wall = {stationary_actor(1, 62.0, 1.75),
                                           stationary_actor(2, 62.0, 5.25),
                                           stationary_actor(3, 62.0, 8.75)};
  const double v_blocked = rt.compute(*map, ego, 0.0_s, wall).volume;
  EXPECT_LT(v_blocked, 0.55 * v_empty);
}

TEST(ReachTube, FarAwayActorIsIrrelevant) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const auto ego = ego_state();
  const double v_empty = rt.compute(*map, ego, 0.0_s, {}).volume;
  const std::vector<ActorForecast> far = {stationary_actor(1, 400.0, 5.25)};
  EXPECT_DOUBLE_EQ(rt.compute(*map, ego, 0.0_s, far).volume, v_empty);
}

TEST(ReachTube, CollidingSeedYieldsEmptyTube) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const auto ego = ego_state(50.0, 5.25, 8.0);
  const std::vector<ActorForecast> overlapping = {stationary_actor(1, 51.0, 5.25)};
  const ReachTube tube = rt.compute(*map, ego, 0.0_s, overlapping);
  EXPECT_TRUE(tube.empty());
  EXPECT_DOUBLE_EQ(tube.volume, 0.0);
}

TEST(ReachTube, OffMapSeedYieldsEmptyTube) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const ReachTube tube = rt.compute(*map, ego_state(50.0, 30.0, 8.0), 0.0_s, {});
  EXPECT_TRUE(tube.empty());
}

TEST(ReachTube, ExcludeIdRemovesThatObstacle) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const auto ego = ego_state();
  const std::vector<ActorForecast> forecasts = {stationary_actor(7, 60.0, 5.25)};
  const auto obstacles = rt.sample_obstacles(forecasts, 0.0_s);
  const double with = rt.compute(*map, ego, obstacles).volume;
  const double without = rt.compute(*map, ego, obstacles, common::ActorId{7}).volume;
  const double empty = rt.compute(*map, ego, {}, common::ActorId::none()).volume;
  EXPECT_LT(with, without);
  EXPECT_DOUBLE_EQ(without, empty);
}

TEST(ReachTube, ObstacleSliceCountValidated) {
  ReachTubeParams a;
  a.horizon = 3.0;
  ReachTubeParams b;
  b.horizon = 2.0;
  const ReachTubeComputer rt_a(a);
  const ReachTubeComputer rt_b(b);
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {stationary_actor(1, 60.0, 5.25)};
  const auto obstacles = rt_a.sample_obstacles(forecasts, 0.0_s);
  EXPECT_THROW(rt_b.compute(*map, ego_state(), obstacles), std::invalid_argument);
}

TEST(ReachTube, DedupBoundsSliceSizes) {
  ReachTubeParams p;
  p.dedup = true;
  const ReachTubeComputer rt(p);
  const auto map = test_map();
  const ReachTube tube = rt.compute(*map, ego_state(), 0.0_s, {});
  // With (x, y) cell dedup, each slice cannot exceed the road's cell count
  // within the reachable window; sanity bound: far fewer than the
  // undeduped exponential count (9^slices).
  for (std::size_t j = 1; j < tube.slices.size(); ++j) {
    ASSERT_LT(tube.slices[j].size(), 4000u);
  }
}

TEST(ReachTube, UniformSamplingCoversBoundarySet) {
  // Ablation mode: uniform sampling (optimization (2) off) still includes
  // the extreme controls, so its volume is at least the boundary run's.
  ReachTubeParams boundary;
  ReachTubeParams uniform;
  uniform.boundary_controls = false;
  uniform.uniform_samples = 24;
  const auto map = test_map();
  const double v_boundary =
      ReachTubeComputer(boundary).compute(*map, ego_state(), 0.0_s, {}).volume;
  const double v_uniform =
      ReachTubeComputer(uniform).compute(*map, ego_state(), 0.0_s, {}).volume;
  EXPECT_GE(v_uniform, v_boundary);
}

TEST(ReachTube, PaperBoundarySetExcludesBraking) {
  ReachTubeParams with_braking;
  with_braking.include_braking_boundary = true;
  ReachTubeParams paper;
  paper.include_braking_boundary = false;
  const auto map = test_map();
  const double v_full =
      ReachTubeComputer(with_braking).compute(*map, ego_state(), 0.0_s, {}).volume;
  const double v_paper =
      ReachTubeComputer(paper).compute(*map, ego_state(), 0.0_s, {}).volume;
  // The braking-free set reaches fewer near cells.
  EXPECT_LE(v_paper, v_full);
  EXPECT_GT(v_paper, 0.0);
}

TEST(ReachTube, DeterministicAcrossCalls) {
  const ReachTubeComputer rt;
  const auto map = test_map();
  const std::vector<ActorForecast> forecasts = {stationary_actor(1, 65.0, 5.25)};
  const double v1 = rt.compute(*map, ego_state(), 0.0_s, forecasts).volume;
  const double v2 = rt.compute(*map, ego_state(), 0.0_s, forecasts).volume;
  EXPECT_DOUBLE_EQ(v1, v2);
}

}  // namespace
}  // namespace iprism::core
