#include <gtest/gtest.h>

#include "scenario/factory.hpp"
#include "scenario/suite.hpp"
#include "sim/queries.hpp"

namespace iprism::scenario {
namespace {

TEST(Spec, ParamLookupChecksKey) {
  ScenarioSpec spec;
  spec.hyperparams["a"] = 1.5;
  EXPECT_DOUBLE_EQ(spec.param("a"), 1.5);
  EXPECT_THROW(spec.param("missing"), std::invalid_argument);
}

TEST(Factory, ConfigValidation) {
  ScenarioConfig bad;
  bad.lanes = 1;
  EXPECT_THROW(ScenarioFactory{bad}, std::invalid_argument);
  bad = {};
  bad.ego_lane = 5;
  EXPECT_THROW(ScenarioFactory{bad}, std::invalid_argument);
}

TEST(Factory, SampleProducesTableIHyperparameters) {
  const ScenarioFactory factory;
  common::Rng rng(1);
  const auto ghost = factory.sample(Typology::kGhostCutIn, 0, rng);
  EXPECT_TRUE(ghost.hyperparams.count("distance_same_lane"));
  EXPECT_TRUE(ghost.hyperparams.count("distance_lane_change"));
  EXPECT_TRUE(ghost.hyperparams.count("speed_lane_change"));

  const auto lead = factory.sample(Typology::kLeadCutIn, 0, rng);
  EXPECT_TRUE(lead.hyperparams.count("event_trigger_distance"));

  const auto slow = factory.sample(Typology::kLeadSlowdown, 0, rng);
  EXPECT_TRUE(slow.hyperparams.count("npc_vehicle_location"));
  EXPECT_TRUE(slow.hyperparams.count("npc_vehicle_speed"));

  const auto rear = factory.sample(Typology::kRearEnd, 0, rng);
  EXPECT_TRUE(rear.hyperparams.count("npc_vehicle_1_speed"));
  EXPECT_TRUE(rear.hyperparams.count("npc_vehicle_2_speed"));
  EXPECT_TRUE(rear.hyperparams.count("npc_vehicle_1_location"));
}

TEST(Factory, SamplingIsUniformWithinRanges) {
  const ScenarioFactory factory;
  common::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto s = factory.sample(Typology::kGhostCutIn, i, rng);
    EXPECT_GE(s.param("distance_same_lane"), 8.0);
    EXPECT_LE(s.param("distance_same_lane"), 30.0);
    EXPECT_GE(s.param("speed_lane_change"), 1.5);
    EXPECT_LE(s.param("speed_lane_change"), 4.0);
  }
}

TEST(Factory, BuildIsDeterministic) {
  const ScenarioFactory factory;
  common::Rng rng(3);
  const auto spec = factory.sample(Typology::kLeadSlowdown, 0, rng);
  sim::World a = factory.build(spec);
  sim::World b = factory.build(spec);
  for (int i = 0; i < 100; ++i) {
    a.step(dynamics::Control{0.0, 0.0});
    b.step(dynamics::Control{0.0, 0.0});
  }
  EXPECT_DOUBLE_EQ(a.ego().state.x, b.ego().state.x);
  ASSERT_EQ(a.actors().size(), b.actors().size());
  for (std::size_t i = 0; i < a.actors().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.actors()[i].state.x, b.actors()[i].state.x);
  }
}

TEST(Factory, ActorCountsPerTypology) {
  const ScenarioFactory factory;
  common::Rng rng(4);
  EXPECT_EQ(factory.build(factory.sample(Typology::kGhostCutIn, 0, rng)).actors().size(),
            2u);  // ego + threat
  EXPECT_EQ(factory.build(factory.sample(Typology::kLeadCutIn, 0, rng)).actors().size(),
            2u);
  EXPECT_EQ(factory.build(factory.sample(Typology::kLeadSlowdown, 0, rng)).actors().size(),
            2u);
  EXPECT_EQ(factory.build(factory.sample(Typology::kFrontAccident, 0, rng)).actors().size(),
            3u);  // ego + partner + merger
  EXPECT_EQ(factory.build(factory.sample(Typology::kRearEnd, 0, rng)).actors().size(),
            3u);  // ego + chaser + distant lead
}

TEST(Factory, InstanceParityPicksThreatSide) {
  const ScenarioFactory factory;
  common::Rng rng(5);
  auto even = factory.sample(Typology::kGhostCutIn, 0, rng);
  auto odd = factory.sample(Typology::kGhostCutIn, 1, rng);
  const sim::World we = factory.build(even);
  const sim::World wo = factory.build(odd);
  // Threat starts in lane 0 for even instances, lane 2 for odd.
  EXPECT_EQ(sim::lane_of(we, we.actors()[1]), 0);
  EXPECT_EQ(sim::lane_of(wo, wo.actors()[1]), 2);
}

TEST(Factory, NonFrontAccidentAlwaysValid) {
  const ScenarioFactory factory;
  common::Rng rng(6);
  EXPECT_TRUE(factory.valid(factory.sample(Typology::kGhostCutIn, 0, rng)));
  EXPECT_TRUE(factory.valid(factory.sample(Typology::kRearEnd, 0, rng)));
}

TEST(Factory, RoundaboutVariantOnlyForGhostCutIn) {
  const ScenarioFactory factory;
  common::Rng rng(7);
  const auto ghost = factory.sample(Typology::kGhostCutIn, 0, rng);
  const sim::World w = factory.build_roundabout(ghost);
  EXPECT_TRUE(w.has_ego());
  EXPECT_EQ(w.actors().size(), 2u);
  const auto slow = factory.sample(Typology::kLeadSlowdown, 0, rng);
  EXPECT_THROW(factory.build_roundabout(slow), std::invalid_argument);
}

TEST(Suite, DeterministicAndFiltered) {
  const ScenarioFactory factory;
  const SuiteResult a = generate_suite(factory, Typology::kFrontAccident, 40, 99);
  const SuiteResult b = generate_suite(factory, Typology::kFrontAccident, 40, 99);
  EXPECT_EQ(a.specs.size(), b.specs.size());
  EXPECT_EQ(a.discarded, b.discarded);
  EXPECT_EQ(static_cast<int>(a.specs.size()) + a.discarded, 40);
  // The front-accident range is tuned so that a noticeable minority of
  // draws (merger slower than its partner) is discarded — like the paper's
  // 190 of 1000.
  EXPECT_GT(a.discarded, 0);
  EXPECT_LT(a.discarded, 20);
}

TEST(Suite, NonFilteringTypologyKeepsAll) {
  const ScenarioFactory factory;
  const SuiteResult s = generate_suite(factory, Typology::kGhostCutIn, 25, 7);
  EXPECT_EQ(s.specs.size(), 25u);
  EXPECT_EQ(s.discarded, 0);
}

TEST(Suite, CountValidation) {
  const ScenarioFactory factory;
  EXPECT_THROW(generate_suite(factory, Typology::kGhostCutIn, 0, 1), std::invalid_argument);
}

TEST(Jitter, PerturbsWithinFraction) {
  const ScenarioFactory factory;
  common::Rng rng(8);
  const auto spec = factory.sample(Typology::kGhostCutIn, 0, rng);
  common::Rng jrng(3);
  const auto jittered = jitter_spec(spec, 0.1, jrng);
  EXPECT_EQ(jittered.typology, spec.typology);
  ASSERT_EQ(jittered.hyperparams.size(), spec.hyperparams.size());
  bool any_changed = false;
  for (const auto& [key, value] : spec.hyperparams) {
    const double j = jittered.param(key);
    EXPECT_GE(j, value * 0.9 - 1e-12);
    EXPECT_LE(j, value * 1.1 + 1e-12);
    if (j != value) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(Jitter, ZeroFractionIsIdentity) {
  const ScenarioFactory factory;
  common::Rng rng(8);
  const auto spec = factory.sample(Typology::kRearEnd, 0, rng);
  common::Rng jrng(3);
  const auto same = jitter_spec(spec, 0.0, jrng);
  EXPECT_EQ(same.hyperparams, spec.hyperparams);
}

TEST(Jitter, ValidatesFraction) {
  ScenarioSpec spec;
  common::Rng jrng(1);
  EXPECT_THROW(jitter_spec(spec, 1.0, jrng), std::invalid_argument);
  EXPECT_THROW(jitter_spec(spec, -0.1, jrng), std::invalid_argument);
}

TEST(TypologyName, AllNamed) {
  for (Typology t : kAllTypologies) {
    EXPECT_FALSE(typology_name(t).empty());
    EXPECT_NE(typology_name(t), "unknown");
  }
}

}  // namespace
}  // namespace iprism::scenario
