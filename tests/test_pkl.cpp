#include "core/pkl.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dynamics/cvtr.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::core {
namespace {

using namespace iprism::common::literals;

std::shared_ptr<roadmap::StraightRoad> test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

SceneSnapshot make_scene(const std::shared_ptr<roadmap::StraightRoad>& map,
                         double speed = 8.0) {
  SceneSnapshot scene;
  scene.map = map.get();
  scene.ego.id = 0;
  scene.ego.state.x = 50.0;
  scene.ego.state.y = 5.25;
  scene.ego.state.speed = speed;
  scene.ego.dims = {4.5, 2.0};
  return scene;
}

ActorForecast actor(int id, double x, double y, double speed) {
  dynamics::CvtrPredictor pred;
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return {id, pred.predict(s, 0.0_s, 3.0_s, 0.25_s), {4.5, 2.0}};
}

TEST(Pkl, CandidateLatticeCoversLanesAndAccels) {
  const auto map = test_map();
  const PklMetric pkl;
  const auto cands = pkl.roll_candidates(*map, make_scene(map));
  // Middle lane: 3 reachable lanes x 6 accel options.
  EXPECT_EQ(cands.size(), 18u);
  // Edge lane: 2 reachable lanes.
  SceneSnapshot edge = make_scene(map);
  edge.ego.state.y = 1.75;
  EXPECT_EQ(pkl.roll_candidates(*map, edge).size(), 12u);
}

TEST(Pkl, DistributionIsNormalized) {
  const auto map = test_map();
  const PklMetric pkl;
  const auto scene = make_scene(map);
  const auto cands = pkl.roll_candidates(*map, scene);
  std::vector<PklFeatures> feats;
  for (const auto& c : cands)
    feats.push_back(pkl.features(*map, scene, c, {}, PklMetric::kExcludeNone));
  const auto p = pkl.distribution(feats);
  const double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : p) EXPECT_GE(v, 0.0);
}

TEST(Pkl, BlockingActorInfluencesPlan) {
  const auto map = test_map();
  const PklMetric pkl;
  const auto scene = make_scene(map);
  const std::vector<ActorForecast> forecasts = {actor(1, 65.0, 5.25, 0.0)};
  const auto per_actor = pkl.compute(scene, forecasts);
  ASSERT_EQ(per_actor.size(), 1u);
  EXPECT_GT(per_actor[0].second, 0.01);
  EXPECT_GT(pkl.combined(scene, forecasts), 0.01);
}

TEST(Pkl, IrrelevantActorHasNoInfluence) {
  const auto map = test_map();
  const PklMetric pkl;
  const auto scene = make_scene(map);
  const std::vector<ActorForecast> forecasts = {actor(1, 300.0, 5.25, 5.0)};
  const auto per_actor = pkl.compute(scene, forecasts);
  EXPECT_NEAR(per_actor[0].second, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(pkl.risk(scene, forecasts), 0.0);  // floored to zero
}

TEST(Pkl, RiskIsMaxActorInfluence) {
  const auto map = test_map();
  const PklMetric pkl;
  const auto scene = make_scene(map);
  const std::vector<ActorForecast> forecasts = {actor(1, 65.0, 5.25, 0.0),
                                                actor(2, 300.0, 5.25, 5.0)};
  const auto per_actor = pkl.compute(scene, forecasts);
  EXPECT_NEAR(pkl.risk(scene, forecasts),
              std::max(per_actor[0].second, per_actor[1].second), 1e-12);
}

TEST(Pkl, FitRecoversExpertPreference) {
  // Synthetic supervision: the expert always picks the candidate with the
  // lowest feature-2 value. Fitting must raise weight 2 relative to a flat
  // start so that the expert candidate becomes the distribution's mode.
  std::vector<PklTrainingExample> data;
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    PklTrainingExample ex;
    std::size_t best = 0;
    double best_v = 1e9;
    for (int c = 0; c < 5; ++c) {
      PklFeatures f{};
      for (auto& v : f) v = rng.uniform(0.0, 1.0);
      if (f[2] < best_v) {
        best_v = f[2];
        best = static_cast<std::size_t>(c);
      }
      ex.candidates.push_back(f);
    }
    ex.expert_index = best;
    data.push_back(std::move(ex));
  }
  common::Rng fit_rng(4);
  const PklWeights w = fit_pkl_weights(data, /*epochs=*/40, /*lr=*/0.05, fit_rng);

  // Evaluate: the fitted weights should rank the expert candidate first
  // most of the time.
  int correct = 0;
  for (const auto& ex : data) {
    std::size_t argmin = 0;
    double best_cost = 1e18;
    for (std::size_t c = 0; c < ex.candidates.size(); ++c) {
      double cost = 0.0;
      for (std::size_t k = 0; k < kPklFeatureCount; ++k)
        cost += w[k] * ex.candidates[c][k];
      if (cost < best_cost) {
        best_cost = cost;
        argmin = c;
      }
    }
    if (argmin == ex.expert_index) ++correct;
  }
  EXPECT_GT(correct, 120);  // >60% top-1 on the training demonstrations
}

TEST(Pkl, FitRejectsEmptyData) {
  common::Rng rng(1);
  EXPECT_THROW(fit_pkl_weights({}, 1, 0.1, rng), std::invalid_argument);
}

TEST(Pkl, DifferentWeightsChangeTheMetric) {
  // The PKL-All vs PKL-Holdout phenomenon: the metric is a function of its
  // training, so different weights yield different risk values.
  const auto map = test_map();
  const auto scene = make_scene(map);
  const std::vector<ActorForecast> forecasts = {actor(1, 68.0, 5.25, 2.0)};
  const PklMetric a(PklParams{}, PklWeights{8.0, 2.0, 1.5, 0.6, 0.3, 6.0});
  const PklMetric b(PklParams{}, PklWeights{1.0, 0.1, 4.0, 0.6, 0.3, 6.0});
  EXPECT_NE(a.combined(scene, forecasts), b.combined(scene, forecasts));
}

}  // namespace
}  // namespace iprism::core
