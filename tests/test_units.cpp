#include "common/units.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "dynamics/bicycle.hpp"
#include "dynamics/state.hpp"

namespace iprism::common {
namespace {

using namespace literals;

TEST(Units, ConstructionAndValueRoundTrip) {
  const Seconds t{1.5};
  EXPECT_DOUBLE_EQ(t.value(), 1.5);
  EXPECT_DOUBLE_EQ((2.5_s).value(), 2.5);
  EXPECT_DOUBLE_EQ((3.0_m).value(), 3.0);
  EXPECT_DOUBLE_EQ((4.0_mps).value(), 4.0);
  EXPECT_DOUBLE_EQ((0.5_rad).value(), 0.5);
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);  // default = zero
}

TEST(Units, SameDimensionArithmetic) {
  EXPECT_DOUBLE_EQ((1.0_s + 2.5_s).value(), 3.5);
  EXPECT_DOUBLE_EQ((2.5_s - 1.0_s).value(), 1.5);
  EXPECT_DOUBLE_EQ((-(1.5_s)).value(), -1.5);
  Seconds acc{1.0};
  acc += 0.5_s;
  acc -= 0.25_s;
  EXPECT_DOUBLE_EQ(acc.value(), 1.25);
}

TEST(Units, DimensionlessScaling) {
  EXPECT_DOUBLE_EQ((2.0_s * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * 2.0_s).value(), 6.0);
  EXPECT_DOUBLE_EQ((6.0_s / 3.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(6.0_s / 2.0_s, 3.0);  // like / like = dimensionless
}

TEST(Units, CrossDimensionOps) {
  EXPECT_DOUBLE_EQ((10.0_mps * 2.0_s).value(), 20.0);  // v * t = d
  EXPECT_DOUBLE_EQ((2.0_s * 10.0_mps).value(), 20.0);
  EXPECT_DOUBLE_EQ((20.0_m / 2.0_s).value(), 10.0);    // d / t = v
  EXPECT_DOUBLE_EQ((20.0_m / 10.0_mps).value(), 2.0);  // d / v = t
}

TEST(Units, Comparisons) {
  EXPECT_LT(1.0_s, 2.0_s);
  EXPECT_GE(2.0_s, 2.0_s);
  EXPECT_EQ(2.0_s, 2.0_s);
  EXPECT_NE(1.0_s, 2.0_s);
}

TEST(Units, ActorIdSentinelAndValidity) {
  EXPECT_FALSE(ActorId{}.valid());
  EXPECT_FALSE(ActorId::none().valid());
  EXPECT_EQ(ActorId{}, ActorId::none());
  const ActorId a{7};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.value(), 7);
  EXPECT_NE(a, ActorId::none());
  EXPECT_EQ(a, ActorId{7});
}

TEST(Units, SliceIdxIncrementsAndCompares) {
  SliceIdx s;
  EXPECT_EQ(s.value(), 0u);
  ++s;
  ++s;
  EXPECT_EQ(s.value(), 2u);
  EXPECT_LT(SliceIdx{1}, SliceIdx{2});
}

TEST(Units, ZeroOverheadLayout) {
  static_assert(sizeof(Seconds) == sizeof(double));
  static_assert(sizeof(ActorId) == sizeof(int));
  static_assert(std::is_trivially_copyable_v<MetersPerSec>);
  // Constant-folds at compile time: the wrapper is free.
  constexpr Meters d = 10.0_mps * 2.0_s;
  static_assert(d.value() == 20.0);
}

TEST(Units, DimensionMixupsDoNotCompile) {
  // The point of the whole header. Each line below must fail to compile if
  // uncommented — the bug class (transposed args, seconds-as-metres) dies
  // at the signature.
  // Seconds t = 1.0;               // no implicit construction from raw double
  // Seconds t = 1.0_m;             // metres are not seconds
  // auto x = 1.0_s + 1.0_m;        // no cross-dimension addition
  // auto y = 2.0_s * 2.0_s;        // seconds^2 is not a pipeline quantity
  // double v = 1.0_s;              // no implicit conversion back out
  // common::ActorId id = 3;        // ids are explicit too
  SUCCEED();
}

TEST(Units, TypedSignaturesAcceptOnlyTheirDimension) {
  // BicycleModel's surface is fully typed; exercising it here pins the API.
  const dynamics::BicycleModel model(2.7_m, 40.0_mps);
  EXPECT_DOUBLE_EQ(model.wheelbase().value(), 2.7);
  EXPECT_DOUBLE_EQ(model.max_speed().value(), 40.0);
  dynamics::VehicleState s;
  s.speed = 10.0;
  const auto out = model.step(s, {0.0, 0.0}, 1.0_s);
  EXPECT_NEAR(out.x, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.speed_mps().value(), 10.0);
  EXPECT_DOUBLE_EQ(s.heading_angle().value(), 0.0);
}

}  // namespace
}  // namespace iprism::common
