#include "sim/behaviors.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "roadmap/straight_road.hpp"
#include "sim/queries.hpp"
#include "sim/world.hpp"

namespace iprism::sim {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 800.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

Actor vehicle(double x, double y, double speed, std::unique_ptr<Behavior> b) {
  Actor a;
  a.kind = ActorKind::kVehicle;
  a.state = state(x, y, speed);
  a.behavior = std::move(b);
  return a;
}

TEST(ApproachAngle, ScalesWithLateralSpeed) {
  EXPECT_NEAR(approach_angle_for_lateral_speed(2.0, 10.0), std::asin(0.2), 1e-12);
  // Caps at asin(0.9) for aggressive ratios / low forward speed.
  EXPECT_NEAR(approach_angle_for_lateral_speed(50.0, 1.0), std::asin(0.9), 1e-12);
}

TEST(LaneFollow, ConvergesToLaneCenterAndSpeed) {
  World w(test_map(), 0.1);
  LaneFollowBehavior::Params p;
  p.lane = 1;
  p.target_speed = 9.0;
  // Start off-centre in lane 0 with the wrong speed.
  const int id = w.add_actor(vehicle(10, 1.0, 5.0, std::make_unique<LaneFollowBehavior>(p)));
  for (int i = 0; i < 150; ++i) w.step(std::nullopt);
  const Actor& a = w.actor(id);
  EXPECT_NEAR(a.state.y, 5.25, 0.2);       // lane-1 centre
  EXPECT_NEAR(a.state.speed, 9.0, 0.2);
  EXPECT_NEAR(a.state.heading, 0.0, 0.05);
}

TEST(LaneFollow, KeepsGapToLead) {
  World w(test_map(), 0.1);
  LaneFollowBehavior::Params p;
  p.lane = 1;
  p.target_speed = 10.0;
  p.keep_gap = true;
  const int id = w.add_actor(vehicle(10, 5.25, 10.0, std::make_unique<LaneFollowBehavior>(p)));
  w.add_actor(vehicle(40, 5.25, 4.0,
                      std::make_unique<LaneFollowBehavior>(LaneFollowBehavior::Params{
                          .lane = 1, .target_speed = 4.0})));
  for (int i = 0; i < 200; ++i) w.step(std::nullopt);
  EXPECT_TRUE(w.collisions().empty());
  // Settles near the lead's speed rather than ploughing into it.
  EXPECT_LT(w.actor(id).state.speed, 6.0);
}

TEST(CutIn, GhostModeTriggersWhenAheadOfEgo) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8.0));
  CutInBehavior::Params p;
  p.start_lane = 0;
  p.target_lane = 1;
  p.mode = CutInBehavior::TriggerMode::kSelfAheadOfEgo;
  p.trigger_offset = 3.0;
  p.cruise_speed = 12.0;
  p.post_speed = 6.0;
  p.lateral_speed = 2.5;
  auto behavior = std::make_unique<CutInBehavior>(p);
  const CutInBehavior* watch = behavior.get();
  const int id = w.add_actor(vehicle(30, 1.75, 12.0, std::move(behavior)));
  // Approaching from behind in the side lane: no trigger yet.
  w.step(std::nullopt);
  EXPECT_FALSE(watch->triggered());
  for (int i = 0; i < 120; ++i) w.step(std::nullopt);
  EXPECT_TRUE(watch->triggered());
  // It must end up in the ego's lane.
  EXPECT_EQ(lane_of(w, w.actor(id)), 1);
}

TEST(CutIn, LeadModeTriggersWhenEgoCloses) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 9.0));
  CutInBehavior::Params p;
  p.start_lane = 0;
  p.target_lane = 1;
  p.mode = CutInBehavior::TriggerMode::kEgoWithinDistance;
  p.trigger_offset = 20.0;
  p.cruise_speed = 4.0;
  p.post_speed = 4.0;
  p.lateral_speed = 2.0;
  auto behavior = std::make_unique<CutInBehavior>(p);
  const CutInBehavior* watch = behavior.get();
  w.add_actor(vehicle(90, 1.75, 4.0, std::move(behavior)));  // 40 m ahead
  w.step(std::nullopt);
  EXPECT_FALSE(watch->triggered());  // too far
  for (int i = 0; i < 60 && !watch->triggered(); ++i) w.step(std::nullopt);
  EXPECT_TRUE(watch->triggered());
}

TEST(Slowdown, BrakesToStopOnceTriggered) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 9.0));
  SlowdownBehavior::Params p;
  p.lane = 1;
  p.cruise_speed = 6.0;
  p.trigger_distance = 20.0;
  p.decel = 6.0;
  auto behavior = std::make_unique<SlowdownBehavior>(p);
  const SlowdownBehavior* watch = behavior.get();
  const int id = w.add_actor(vehicle(95, 5.25, 6.0, std::move(behavior)));
  for (int i = 0; i < 300 && w.actor(id).state.speed > 0.0; ++i) w.step(std::nullopt);
  EXPECT_TRUE(watch->triggered());
  EXPECT_DOUBLE_EQ(w.actor(id).state.speed, 0.0);
}

TEST(RearChase, TracksEgoLaneAndCatchesUp) {
  World w(test_map(), 0.1);
  w.add_ego(state(60, 5.25, 8.0));
  RearChaseBehavior::Params p;
  p.speed = 15.0;
  const int id =
      w.add_actor(vehicle(20, 5.25, 15.0, std::make_unique<RearChaseBehavior>(p)));
  const double gap0 = 40.0;
  for (int i = 0; i < 30; ++i) w.step(std::nullopt);  // ego holds speed
  const double gap1 =
      w.ego().state.x - w.actor(id).state.x;
  EXPECT_LT(gap1, gap0);  // closing
}

TEST(MergeCollider, CollidesWithPartner) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0.0));
  LaneFollowBehavior::Params lf;
  lf.lane = 1;
  lf.target_speed = 7.0;
  const int partner =
      w.add_actor(vehicle(100, 5.25, 7.0, std::make_unique<LaneFollowBehavior>(lf)));
  MergeColliderBehavior::Params mb;
  mb.start_lane = 0;
  mb.target_lane = 1;
  mb.partner_id = partner;
  mb.trigger_offset = 5.0;
  mb.speed = 10.0;
  w.add_actor(vehicle(70, 1.75, 10.0, std::make_unique<MergeColliderBehavior>(mb)));
  for (int i = 0; i < 300 && !w.npc_collision_occurred(); ++i) w.step(std::nullopt);
  EXPECT_TRUE(w.npc_collision_occurred());
  EXPECT_FALSE(w.ego_collided());
}

TEST(MergeCollider, ChecksPartnerExists) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0.0));
  MergeColliderBehavior::Params mb;
  mb.partner_id = 777;
  w.add_actor(vehicle(70, 1.75, 10.0, std::make_unique<MergeColliderBehavior>(mb)));
  EXPECT_THROW(w.step(std::nullopt), std::invalid_argument);
}

TEST(PedestrianCross, WaitsForEgoThenCrosses) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 1.75, 8.0));
  PedestrianCrossBehavior::Params p;
  p.trigger_distance = 30.0;
  p.walk_speed = 1.4;
  Actor ped;
  ped.kind = ActorKind::kPedestrian;
  ped.dims = {0.6, 0.6};
  ped.state = state(70, 0.3, 0.0);
  ped.state.heading = M_PI / 2.0;
  ped.behavior = std::make_unique<PedestrianCrossBehavior>(p);
  const int id = w.add_actor(std::move(ped));
  // Far away: stands still.
  for (int i = 0; i < 20; ++i) w.step(std::nullopt);
  EXPECT_NEAR(w.actor(id).state.y, 0.3, 0.05);
  // Ego closes within 30 m; the pedestrian starts crossing.
  for (int i = 0; i < 60; ++i) w.step(std::nullopt);
  EXPECT_GT(w.actor(id).state.y, 1.0);
}

TEST(Behaviors, CloneReplaysIdentically) {
  // The cloned behavior must carry its trigger latch.
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8.0));
  CutInBehavior::Params p;
  p.start_lane = 0;
  p.target_lane = 1;
  p.trigger_offset = 2.0;
  p.cruise_speed = 13.0;
  p.post_speed = 6.0;
  const int id = w.add_actor(vehicle(35, 1.75, 13.0, std::make_unique<CutInBehavior>(p)));
  for (int i = 0; i < 60; ++i) w.step(std::nullopt);
  World copy = w.clone();
  for (int i = 0; i < 60; ++i) {
    w.step(std::nullopt);
    copy.step(std::nullopt);
  }
  EXPECT_DOUBLE_EQ(w.actor(id).state.x, copy.actor(id).state.x);
  EXPECT_DOUBLE_EQ(w.actor(id).state.y, copy.actor(id).state.y);
}

}  // namespace
}  // namespace iprism::sim
