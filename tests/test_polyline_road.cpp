#include "roadmap/polyline_road.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::roadmap {
namespace {

PolylineRoad straight_like() {
  // A polyline road equivalent to a straight 2-lane road along +x.
  return PolylineRoad(geom::Polyline({{0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}}), 2, 3.5);
}

TEST(PolylineRoad, ValidatesParameters) {
  geom::Polyline line({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_THROW(PolylineRoad(line, 0, 3.5), std::invalid_argument);
  EXPECT_THROW(PolylineRoad(line, 2, 0.0), std::invalid_argument);
}

TEST(PolylineRoad, StraightEquivalence) {
  const PolylineRoad r = straight_like();
  EXPECT_EQ(r.lane_count(), 2);
  EXPECT_DOUBLE_EQ(r.road_length(), 200.0);
  EXPECT_TRUE(r.contains({50.0, 3.0}));
  EXPECT_FALSE(r.contains({50.0, -0.5}));
  EXPECT_FALSE(r.contains({50.0, 7.5}));
  EXPECT_FALSE(r.contains({-5.0, 3.0}));   // beyond the start
  EXPECT_FALSE(r.contains({205.0, 3.0}));  // beyond the end
  EXPECT_EQ(r.lane_at({50.0, 1.0}), 0);
  EXPECT_EQ(r.lane_at({50.0, 5.0}), 1);
  EXPECT_DOUBLE_EQ(r.arclength({42.0, 1.0}), 42.0);
  EXPECT_DOUBLE_EQ(r.lateral({42.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(r.heading_at(42.0), 0.0);
  EXPECT_NEAR(r.curvature_at(42.0, 1.0), 0.0, 1e-12);
}

TEST(PolylineRoad, FrenetRoundTrip) {
  const PolylineRoad r = PolylineRoad::s_curve(2, 3.5);
  for (double s : {5.0, 30.0, 70.0, 110.0}) {
    for (double d : {1.0, 5.5}) {
      const geom::Vec2 p = r.point_at(s, d);
      EXPECT_NEAR(r.arclength(p), s, 0.25) << "s=" << s << " d=" << d;
      EXPECT_NEAR(r.lateral(p), d, 0.15);
      EXPECT_TRUE(r.contains(p));
    }
  }
}

TEST(PolylineRoad, SCurveCurvatureChangesSign) {
  const PolylineRoad r = PolylineRoad::s_curve(2, 3.5, 60.0, 1.2, 48);
  const double quarter = r.road_length() * 0.25;
  const double three_quarter = r.road_length() * 0.75;
  const double k1 = r.curvature_at(quarter, 1.75);
  const double k2 = r.curvature_at(three_quarter, 1.75);
  EXPECT_GT(k1, 0.005);   // first arc turns left
  EXPECT_LT(k2, -0.005);  // second arc turns right
  // Magnitudes near 1/60 (offset-corrected).
  EXPECT_NEAR(std::abs(k1), 1.0 / 60.0, 0.006);
}

TEST(PolylineRoad, LaneCenterOffsets) {
  const PolylineRoad r = straight_like();
  EXPECT_DOUBLE_EQ(r.lane_center_offset(0), 1.75);
  EXPECT_DOUBLE_EQ(r.lane_center_offset(1), 5.25);
  EXPECT_THROW(r.lane_center_offset(2), std::invalid_argument);
}

TEST(PolylineRoad, SCurveFactoryValidates) {
  EXPECT_THROW(PolylineRoad::s_curve(2, 3.5, -1.0), std::invalid_argument);
  EXPECT_THROW(PolylineRoad::s_curve(2, 3.5, 60.0, 1.2, 2), std::invalid_argument);
}

TEST(PolylineRoad, ContainsBoxOnCurve) {
  const PolylineRoad r = PolylineRoad::s_curve(3, 3.5);
  const double s = r.road_length() / 2.0;
  const geom::Vec2 center = r.point_at(s, 5.25);
  const geom::OrientedBox inside(center, 2.25, 1.0, r.heading_at(s));
  EXPECT_TRUE(r.contains_box(inside, 0.3));
  const geom::Vec2 edge = r.point_at(s, 10.2);
  const geom::OrientedBox poking(edge, 2.25, 1.0, r.heading_at(s));
  EXPECT_FALSE(r.contains_box(poking, 0.0));
}

}  // namespace
}  // namespace iprism::roadmap
