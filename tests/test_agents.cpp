#include <gtest/gtest.h>

#include "agents/lbc.hpp"
#include "agents/rip.hpp"
#include "agents/ttc_aca.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::agents {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

sim::Actor car(double x, double y, double speed) {
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = state(x, y, speed);
  return a;
}

TEST(Lbc, CruisesOnEmptyRoad) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  LbcAgent lbc;
  const auto u = lbc.act(w);
  EXPECT_NEAR(u.accel, 0.0, 0.2);  // at cruise speed already
  EXPECT_NEAR(u.steer, 0.0, 1e-6);
}

TEST(Lbc, AcceleratesTowardCruiseSpeed) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 4));
  LbcAgent lbc;
  EXPECT_GT(lbc.act(w).accel, 1.0);
}

TEST(Lbc, BrakesForStoppedInLaneCar) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  w.add_actor(car(75, 5.25, 0));
  LbcAgent lbc;
  EXPECT_LT(lbc.act(w).accel, -1.0);
}

TEST(Lbc, EmergencyBrakeInsideStandoff) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 6));
  w.add_actor(car(57, 5.25, 0));  // gap 2.5 m < standoff
  LbcAgent lbc;
  EXPECT_DOUBLE_EQ(lbc.act(w).accel, -lbc.params().max_brake);
}

TEST(Lbc, IgnoresAdjacentLaneActor) {
  // The deliberate blind spot: an actor still mostly in the next lane is
  // not detected even if it is starting to cut in.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(62, 1.9, 6));  // adjacent lane, slightly toward ego lane
  LbcAgent lbc;
  EXPECT_GT(lbc.act(w).accel, -0.5);
}

TEST(Lbc, DetectsActorOnceMostlyInLane) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(62, 4.4, 3));  // well within the detection band
  LbcAgent lbc;
  EXPECT_LT(lbc.act(w).accel, -1.0);
}

TEST(Lbc, NoRearAwareness) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(30, 5.25, 20));  // rocketing up from behind
  LbcAgent lbc;
  EXPECT_GT(lbc.act(w).accel, -0.5);  // carries on regardless
}

TEST(TtcAca, SilentWhenSafe) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(120, 5.25, 8));
  TtcAcaController aca;
  EXPECT_FALSE(aca.intervene(w, {0.0, 0.0}).has_value());
}

TEST(TtcAca, FullBrakeBelowThreshold) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  w.add_actor(car(66, 5.25, 0));  // gap 11.5 m, closing 10 -> TTC 1.15 s
  TtcAcaController aca;
  const auto u = aca.intervene(w, {1.0, 0.07});
  ASSERT_TRUE(u.has_value());
  EXPECT_DOUBLE_EQ(u->accel, -6.0);
  EXPECT_DOUBLE_EQ(u->steer, 0.07);  // steering passes through
}

TEST(TtcAca, BlindToOutOfPathThreat) {
  // The documented ACA weakness: an adjacent-lane actor about to cut in is
  // not in path, so ACA stays silent.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  w.add_actor(car(54, 1.75, 12));
  TtcAcaController aca;
  EXPECT_FALSE(aca.intervene(w, {0.0, 0.0}).has_value());
}

TEST(Rip, ProducesBoundedControls) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(80, 5.25, 4));
  RipAgent rip;
  const auto u = rip.act(w);
  EXPECT_LE(std::abs(u.steer), 0.5);
  EXPECT_LE(u.accel, 15.0);  // proportional speed law, pre-clamp by world
}

TEST(Rip, DeterministicAcrossResets) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(80, 5.25, 4));
  RipAgent rip;
  const auto u1 = rip.act(w);
  rip.reset();
  const auto u2 = rip.act(w);
  EXPECT_DOUBLE_EQ(u1.accel, u2.accel);
  EXPECT_DOUBLE_EQ(u1.steer, u2.steer);
}

TEST(Rip, PrefersCruiseOnEmptyRoad) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  RipAgent rip;
  // With no actors there is no noise and the imitation prior wins: target
  // = cruise speed = current speed -> no strong accel command.
  EXPECT_NEAR(rip.act(w).accel, 0.0, 0.5);
}

TEST(Rip, ImitativeOptimismIgnoresDeceleratingLead) {
  // The OOD mechanism behind RIP's lead-typology failures: a *moving*
  // decelerating lead is predicted to keep flowing, so RIP holds speed
  // where LBC already brakes.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(61.5, 5.25, 4));  // slow-but-moving lead, gap 7 m
  RipAgent rip;
  LbcAgent lbc;
  // LBC already brakes (required decel ~2.7 m/s^2 exceeds its reaction
  // threshold); RIP's imitative prior predicts the lead keeps flowing.
  EXPECT_LT(lbc.act(w).accel, -1.0);
  EXPECT_GT(rip.act(w).accel, lbc.act(w).accel + 0.5);
}

TEST(Rip, BrakesForFullyStoppedVehicle) {
  // Stopped vehicles exist in benign data: RIP models them correctly and
  // must slow down for wreckage (front-accident typology behaviour).
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(car(68, 5.25, 0));
  RipAgent rip;
  EXPECT_LT(rip.act(w).accel, -1.0);
}

TEST(TtcAca, ThresholdParameterShiftsActivation) {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  w.add_actor(car(79, 5.25, 0));  // gap 24.5 m, closing 10 -> TTC 2.45 s
  TtcAcaController tight(TtcAcaController::Params{.ttc_threshold = 1.8});
  TtcAcaController loose(TtcAcaController::Params{.ttc_threshold = 3.0});
  EXPECT_FALSE(tight.intervene(w, {0.0, 0.0}).has_value());
  EXPECT_TRUE(loose.intervene(w, {0.0, 0.0}).has_value());
}

TEST(Lbc, HazardResponseHeldBetweenDecisions) {
  // The camera-latency model: the braking decision is recomputed only every
  // decision_interval_steps; between evaluations the command persists.
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 10));
  w.add_actor(car(75, 5.25, 0));
  LbcAgent lbc;
  const double first = lbc.act(w).accel;
  EXPECT_LT(first, -1.0);
  w.step(dynamics::Control{0.0, 0.0});
  // One step later (same interval): identical held command.
  EXPECT_DOUBLE_EQ(lbc.act(w).accel, first);
  lbc.reset();
  // After reset the evaluation happens afresh.
  EXPECT_LT(lbc.act(w).accel, -1.0);
}

TEST(AgentNames, AreStable) {
  EXPECT_EQ(LbcAgent().name(), "LBC");
  EXPECT_EQ(RipAgent().name(), "RIP-WCM");
  EXPECT_EQ(TtcAcaController().name(), "TTC-based ACA");
}

}  // namespace
}  // namespace iprism::agents
