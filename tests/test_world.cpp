#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::sim {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double heading, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.heading = heading;
  s.speed = speed;
  return s;
}

Actor vehicle(double x, double y, double speed,
              std::unique_ptr<Behavior> behavior = nullptr) {
  Actor a;
  a.kind = ActorKind::kVehicle;
  a.state = state(x, y, 0.0, speed);
  a.behavior = std::move(behavior);
  return a;
}

TEST(World, RejectsBadConstruction) {
  EXPECT_THROW(World(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(World(test_map(), 0.0), std::invalid_argument);
}

TEST(World, SingleEgoEnforced) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 5));
  EXPECT_THROW(w.add_ego(state(20, 5.25, 0, 5)), std::invalid_argument);
}

TEST(World, EgoQueriesWithoutEgoThrow) {
  World w(test_map(), 0.1);
  EXPECT_FALSE(w.has_ego());
  EXPECT_THROW(w.ego(), std::invalid_argument);
}

TEST(World, StepAdvancesTimeAndState) {
  World w(test_map(), 0.1);
  const int id = w.add_ego(state(10, 5.25, 0, 8));
  w.step(dynamics::Control{0.0, 0.0});
  EXPECT_NEAR(w.time(), 0.1, 1e-12);
  EXPECT_EQ(w.step_count(), 1);
  EXPECT_NEAR(w.actor(id).state.x, 10.8, 1e-9);
  // prev_state tracks the pre-step state for CVTR.
  EXPECT_NEAR(w.actor(id).prev_state.x, 10.0, 1e-12);
}

TEST(World, EgoControlIsClamped) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 8));
  w.set_ego_limits({-6.0, 3.0, -0.5, 0.5});
  w.step(dynamics::Control{100.0, 0.0});  // clamped to +3
  EXPECT_NEAR(w.ego().state.speed, 8.3, 1e-9);
}

TEST(World, NullEgoControlHoldsSpeed) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 8));
  w.step(std::nullopt);
  EXPECT_NEAR(w.ego().state.speed, 8.0, 1e-12);
}

TEST(World, DetectsHeadOnCollision) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 10));
  w.add_actor(vehicle(16, 5.25, 0));  // stationary 6 m ahead (gap 1.5 m)
  for (int i = 0; i < 20 && !w.ego_collided(); ++i) w.step(dynamics::Control{0, 0});
  EXPECT_TRUE(w.ego_collided());
  ASSERT_TRUE(w.ego_collision_time().has_value());
  EXPECT_GT(*w.ego_collision_time(), 0.0);
  EXPECT_TRUE(w.actor(w.ego_id()).crashed);
}

TEST(World, NoCollisionForParallelTraffic) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 1.75, 0, 8));
  w.add_actor(vehicle(10, 8.75, 8));  // two lanes over, same speed
  for (int i = 0; i < 50; ++i) w.step(dynamics::Control{0, 0});
  EXPECT_FALSE(w.ego_collided());
  EXPECT_TRUE(w.collisions().empty());
}

TEST(World, NpcCollisionFlaggedSeparately) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 1.75, 0, 0));
  w.add_actor(vehicle(100, 5.25, 10));  // fast NPC behind a stopped NPC
  w.add_actor(vehicle(110, 5.25, 0));
  for (int i = 0; i < 30 && !w.npc_collision_occurred(); ++i) w.step(std::nullopt);
  EXPECT_TRUE(w.npc_collision_occurred());
  EXPECT_FALSE(w.ego_collided());
}

TEST(World, CrashedActorsBecomeWreckage) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 1.75, 0, 0));
  w.add_actor(vehicle(100, 5.25, 10));
  w.add_actor(vehicle(106, 5.25, 0));
  while (!w.npc_collision_occurred()) w.step(std::nullopt);
  // Run on: the wrecks must brake to a stop and stay put.
  for (int i = 0; i < 40; ++i) w.step(std::nullopt);
  for (const Actor& a : w.actors()) {
    if (a.crashed) EXPECT_DOUBLE_EQ(a.state.speed, 0.0);
  }
  // No duplicate collision events between the same wrecks.
  EXPECT_EQ(w.collisions().size(), 1u);
}

TEST(World, CloneIsDeepAndReplaysIdentically) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 8));
  LaneFollowBehavior::Params lf;
  lf.lane = 1;
  lf.target_speed = 7.0;
  Actor npc = vehicle(40, 5.25, 7.0, std::make_unique<LaneFollowBehavior>(lf));
  w.add_actor(std::move(npc));
  for (int i = 0; i < 10; ++i) w.step(dynamics::Control{0.5, 0.0});

  World copy = w.clone();
  // Advancing the copy must not disturb the original.
  const double x_before = w.ego().state.x;
  copy.step(dynamics::Control{1.0, 0.0});
  EXPECT_DOUBLE_EQ(w.ego().state.x, x_before);

  // Identical step sequences stay identical.
  World twin = w.clone();
  for (int i = 0; i < 20; ++i) {
    w.step(dynamics::Control{0.2, 0.01});
    twin.step(dynamics::Control{0.2, 0.01});
  }
  EXPECT_DOUBLE_EQ(w.ego().state.x, twin.ego().state.x);
  EXPECT_DOUBLE_EQ(w.ego().state.y, twin.ego().state.y);
  EXPECT_EQ(w.collisions().size(), twin.collisions().size());
}

TEST(World, UnknownActorIdThrows) {
  World w(test_map(), 0.1);
  w.add_ego(state(10, 5.25, 0, 8));
  EXPECT_THROW(w.actor(999), std::invalid_argument);
  EXPECT_FALSE(w.has_actor(999));
}

TEST(World, PedestrianIntegratesHolonomically) {
  World w(test_map(), 0.1);
  Actor ped;
  ped.kind = ActorKind::kPedestrian;
  ped.dims = {0.6, 0.6};
  ped.state = state(50, 0.2, M_PI / 2.0, 1.0);
  const int id = w.add_actor(std::move(ped));
  for (int i = 0; i < 10; ++i) w.step(std::nullopt);
  EXPECT_NEAR(w.actor(id).state.y, 1.2, 1e-9);  // walked straight across
  EXPECT_NEAR(w.actor(id).state.x, 50.0, 1e-9);
}

}  // namespace
}  // namespace iprism::sim
