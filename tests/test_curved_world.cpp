// Cross-map behaviour: the simulator, lane keeping, queries, reach-tube and
// STI must work identically on curved maps (ring road, polyline S-curve) —
// the roundabout extension and any future map depend on it.
#include <gtest/gtest.h>

#include "core/sti.hpp"

#include "common/units.hpp"
#include "dynamics/cvtr.hpp"
#include "roadmap/polyline_road.hpp"
#include "roadmap/ring_road.hpp"
#include "sim/behaviors.hpp"
#include "sim/queries.hpp"
#include "scenario/factory.hpp"
#include "sim/world.hpp"

namespace iprism {
namespace {

using namespace iprism::common::literals;

dynamics::VehicleState lane_state(const roadmap::DrivableMap& map, int lane, double s,
                                  double speed) {
  dynamics::VehicleState st;
  const geom::Vec2 p = map.point_at(s, map.lane_center_offset(lane));
  st.x = p.x;
  st.y = p.y;
  st.heading = map.heading_at(s);
  st.speed = speed;
  return st;
}

TEST(CurvedWorld, LaneKeepingHoldsTheRing) {
  auto map = std::make_shared<roadmap::RingRoad>(2, 3.5, 30.0);
  sim::World w(map, 0.1);
  sim::LaneFollowBehavior::Params p;
  p.lane = 0;
  p.target_speed = 9.0;
  sim::Actor car;
  car.kind = sim::ActorKind::kVehicle;
  car.state = lane_state(*map, 0, 5.0, 9.0);
  car.behavior = std::make_unique<sim::LaneFollowBehavior>(p);
  const int id = w.add_actor(std::move(car));
  // A full lap takes ~ 2*pi*35 / 9 ~ 24.5 s; drive one and check the lane.
  for (int i = 0; i < 260; ++i) w.step(std::nullopt);
  const auto& a = w.actor(id);
  EXPECT_EQ(map->lane_at(a.state.position()), 0);
  EXPECT_NEAR(map->lateral(a.state.position()), map->lane_center_offset(0), 0.4);
}

TEST(CurvedWorld, LaneKeepingHoldsTheSCurve) {
  auto map = std::make_shared<roadmap::PolylineRoad>(roadmap::PolylineRoad::s_curve(2, 3.5));
  sim::World w(map, 0.1);
  sim::LaneFollowBehavior::Params p;
  p.lane = 1;
  p.target_speed = 8.0;
  sim::Actor car;
  car.kind = sim::ActorKind::kVehicle;
  car.state = lane_state(*map, 1, 2.0, 8.0);
  car.behavior = std::make_unique<sim::LaneFollowBehavior>(p);
  const int id = w.add_actor(std::move(car));
  const int steps = static_cast<int>((map->road_length() - 15.0) / 8.0 / 0.1);
  for (int i = 0; i < steps; ++i) w.step(std::nullopt);
  const auto& a = w.actor(id);
  EXPECT_NEAR(map->lateral(a.state.position()), map->lane_center_offset(1), 0.5);
}

TEST(CurvedWorld, RingQueriesSeeLeadAcrossTheSeam) {
  auto map = std::make_shared<roadmap::RingRoad>(2, 3.5, 30.0);
  sim::World w(map, 0.1);
  const double L = map->road_length();
  w.add_ego(lane_state(*map, 0, L - 6.0, 7.0));
  sim::Actor lead;
  lead.kind = sim::ActorKind::kVehicle;
  lead.state = lane_state(*map, 0, 6.0, 7.0);  // just past the s=0 seam
  const int id = w.add_actor(std::move(lead));
  const auto n = sim::lead_in_lane(w, w.ego(), 0);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->actor_id, id);
  EXPECT_NEAR(n->gap, 12.0 - 4.5, 0.3);
}

TEST(CurvedWorld, StiSeesBlockedRingLane) {
  auto map = std::make_shared<roadmap::RingRoad>(2, 3.5, 30.0);
  const core::StiCalculator sti;
  const dynamics::CvtrPredictor pred;
  const auto ego = lane_state(*map, 0, 10.0, 8.0);
  // Stopped car 12 m ahead around the arc in the ego's lane.
  auto blocker = lane_state(*map, 0, 22.0, 0.0);
  std::vector<core::ActorForecast> forecasts = {
      {1, pred.predict(blocker, 0.0_s, 4.0_s, 0.25_s), {4.5, 2.0}}};
  const auto r = sti.compute(*map, ego, 0.0_s, forecasts);
  EXPECT_GT(r.volume_empty, 100.0);  // the tube follows the arc
  EXPECT_GT(r.combined, 0.1);
  EXPECT_DOUBLE_EQ(r.per_actor[0].second, r.combined);
}

TEST(CurvedWorld, StiZeroOnEmptySCurve) {
  auto map = std::make_shared<roadmap::PolylineRoad>(roadmap::PolylineRoad::s_curve(3, 3.5));
  const core::StiCalculator sti;
  const auto ego = lane_state(*map, 1, 20.0, 8.0);
  const core::StiResult r = sti.compute(*map, ego, 0.0_s, {});
  EXPECT_DOUBLE_EQ(r.combined, 0.0);
  EXPECT_GT(r.volume_empty, 100.0);
}

TEST(CurvedWorld, GhostCutInOnRingProducesCollisionForBlindEgo) {
  // The §V-C roundabout threat script actually reaches the ego when the
  // ego does not react.
  auto map = std::make_shared<roadmap::RingRoad>(2, 3.5, 30.0);
  sim::World w(map, 0.1);
  w.add_ego(lane_state(*map, 0, 10.0, 8.0));
  sim::CutInBehavior::Params b;
  b.start_lane = 1;
  b.target_lane = 0;
  b.mode = sim::CutInBehavior::TriggerMode::kSelfAheadOfEgo;
  b.trigger_offset = 2.0;
  b.cruise_speed = 12.5;
  b.post_speed = 4.0;
  b.lateral_speed = 2.5;
  sim::Actor threat;
  threat.kind = sim::ActorKind::kVehicle;
  threat.state = lane_state(*map, 1, 10.0 - 15.0 + map->road_length(), 12.5);
  threat.behavior = std::make_unique<sim::CutInBehavior>(b);
  w.add_actor(std::move(threat));
  // Blind ego: lane-keeps at cruise speed with no hazard response.
  for (int i = 0; i < 250 && !w.ego_collided(); ++i) {
    w.step(sim::lane_keep_control(w, w.ego(), 0, 8.0));
  }
  EXPECT_TRUE(w.ego_collided());
}

}  // namespace
}  // namespace iprism
