// GeomKernelIdentity (DESIGN.md §13): the staged batch kernels that power the
// reach-tube propagation — SoA bicycle step, footprint axes/corners/AABBs,
// circumradius broad-phase cull — must be **bit-identical** to the scalar
// expressions they replace, and the whole batched pipeline must reproduce a
// scalar generate-then-test reference propagation exactly. The reference here
// is a test-local replica of the historical scalar loop built on public API
// only (BicycleModel::step, dynamics::footprint, DrivableMap::contains_box,
// OrientedBox::intersects, FlatHashGrid, splitmix64_mix), so the suite proves
// batch ≡ scalar end to end — and, run under both IPRISM_ENABLE_SIMD settings
// (the simd-off CI leg), that vectorized and unvectorized kernel builds agree
// transitively. Runs in the asan-ubsan and tsan CI jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/reachtube.hpp"
#include "core/scene.hpp"
#include "core/sti.hpp"
#include "dynamics/bicycle.hpp"
#include "dynamics/state.hpp"
#include "dynamics/step_batch.hpp"
#include "dynamics/trajectory.hpp"
#include "geom/batch.hpp"
#include "geom/obb.hpp"
#include "geom/vec2.hpp"
#include "roadmap/ring_road.hpp"
#include "roadmap/straight_road.hpp"
#include "scenario/factory.hpp"
#include "scenario/spec.hpp"
#include "sim/world.hpp"

namespace iprism {
namespace {

// --- random lane material ---------------------------------------------------

struct LaneSoa {
  std::vector<double> x, y, heading, speed, accel, tan_steer, steer;
};

/// Random parent states + controls spanning the tube's operating envelope,
/// plus hand-picked edge lanes (standstill, brake-to-stop inside the step,
/// heading near the ±pi wrap).
LaneSoa random_lanes(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  LaneSoa lanes;
  for (std::size_t i = 0; i < n; ++i) {
    lanes.x.push_back(rng.uniform(-50.0, 400.0));
    lanes.y.push_back(rng.uniform(-10.0, 20.0));
    lanes.heading.push_back(rng.uniform(-3.14159, 3.14159));
    lanes.speed.push_back(rng.uniform(0.0, 40.0));
    lanes.accel.push_back(rng.uniform(-6.0, 3.0));
    lanes.steer.push_back(rng.uniform(-0.35, 0.35));
  }
  // Edge lanes: already stopped, stopping exactly mid-step, wrap boundary.
  lanes.x.insert(lanes.x.end(), {0.0, 10.0, 20.0});
  lanes.y.insert(lanes.y.end(), {0.0, 1.0, 2.0});
  lanes.heading.insert(lanes.heading.end(), {0.0, 0.1, 3.14159265358979});
  lanes.speed.insert(lanes.speed.end(), {0.0, 0.5, 10.0});
  lanes.accel.insert(lanes.accel.end(), {-6.0, -6.0, 0.0});
  lanes.steer.insert(lanes.steer.end(), {0.0, -0.35, 0.35});
  for (double phi : lanes.steer) lanes.tan_steer.push_back(std::tan(phi));
  return lanes;
}

TEST(GeomKernelIdentity, StepBatchMatchesScalarModel) {
  const dynamics::BicycleModel model(common::Meters{2.7}, common::MetersPerSec{40.0});
  const double dt = 0.25;
  const LaneSoa in = random_lanes(257, 11);
  const std::size_t n = in.x.size();

  std::vector<double> nx(n), ny(n), nh(n), nv(n);
  dynamics::step_batch(
      n,
      {in.x.data(), in.y.data(), in.heading.data(), in.speed.data(), in.accel.data(),
       in.tan_steer.data()},
      {nx.data(), ny.data(), nh.data(), nv.data()}, dt, model.wheelbase().value(),
      model.max_speed().value());

  for (std::size_t i = 0; i < n; ++i) {
    const dynamics::VehicleState s{in.x[i], in.y[i], in.heading[i], in.speed[i]};
    const dynamics::VehicleState ref =
        model.step(s, {in.accel[i], in.steer[i]}, common::Seconds{dt});
    // Exact == on purpose: the contract is bit-identity, not closeness.
    EXPECT_EQ(nx[i], ref.x) << "lane " << i;
    EXPECT_EQ(ny[i], ref.y) << "lane " << i;
    EXPECT_EQ(nh[i], ref.heading) << "lane " << i;
    EXPECT_EQ(nv[i], ref.speed) << "lane " << i;
  }
}

TEST(GeomKernelIdentity, FootprintKernelsMatchOrientedBox) {
  const double hl = 4.5 / 2.0;
  const double hw = 2.0 / 2.0;
  const LaneSoa in = random_lanes(257, 22);
  const std::size_t n = in.x.size();

  std::vector<double> ax(n), ay(n);
  geom::footprint_axes(n, in.heading.data(), ax.data(), ay.data());

  std::vector<double> c0x(n), c1x(n), c2x(n), c3x(n);
  std::vector<double> c0y(n), c1y(n), c2y(n), c3y(n);
  double* const corner_x[4] = {c0x.data(), c1x.data(), c2x.data(), c3x.data()};
  double* const corner_y[4] = {c0y.data(), c1y.data(), c2y.data(), c3y.data()};
  geom::footprint_corners(n, in.x.data(), in.y.data(), ax.data(), ay.data(), hl, hw,
                          corner_x, corner_y);

  std::vector<double> lo_x(n), lo_y(n), hi_x(n), hi_y(n);
  geom::footprint_aabbs(n, in.x.data(), in.y.data(), ax.data(), ay.data(), hl, hw,
                        lo_x.data(), lo_y.data(), hi_x.data(), hi_y.data());

  for (std::size_t i = 0; i < n; ++i) {
    const dynamics::VehicleState s{in.x[i], in.y[i], in.heading[i], in.speed[i]};
    const geom::OrientedBox box = dynamics::footprint(s, dynamics::Dimensions{4.5, 2.0});
    EXPECT_EQ(ax[i], box.axis_long().x) << "lane " << i;
    EXPECT_EQ(ay[i], box.axis_long().y) << "lane " << i;
    const auto corners = box.corners();
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(corner_x[k][i], corners[k].x) << "lane " << i << " corner " << k;
      EXPECT_EQ(corner_y[k][i], corners[k].y) << "lane " << i << " corner " << k;
    }
    const geom::Aabb bb = box.aabb();
    EXPECT_EQ(lo_x[i], bb.lo.x) << "lane " << i;
    EXPECT_EQ(lo_y[i], bb.lo.y) << "lane " << i;
    EXPECT_EQ(hi_x[i], bb.hi.x) << "lane " << i;
    EXPECT_EQ(hi_y[i], bb.hi.y) << "lane " << i;
  }
}

TEST(GeomKernelIdentity, BroadPhaseCullMatchesScalarPredicate) {
  const LaneSoa in = random_lanes(511, 33);
  const std::size_t n = in.x.size();
  const geom::OrientedBox obstacle({120.0, 5.0}, 2.25, 1.0, 0.2);
  const double r = std::hypot(4.5 / 2.0, 2.0 / 2.0) + obstacle.circumradius();

  std::vector<unsigned char> mask(n);
  const std::size_t survivors = geom::broad_phase_cull(
      n, in.x.data(), in.y.data(), obstacle.center().x, obstacle.center().y, r * r,
      mask.data());

  std::size_t expected_survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // The scalar loop *skips* when norm_sq > r²; the mask is the complement.
    const geom::Vec2 center{in.x[i], in.y[i]};
    const bool skip = (obstacle.center() - center).norm_sq() > r * r;
    EXPECT_EQ(mask[i], skip ? 0 : 1) << "lane " << i;
    if (!skip) ++expected_survivors;
  }
  EXPECT_EQ(survivors, expected_survivors);
}

TEST(GeomKernelIdentity, WithAxisMatchesConstructor) {
  const LaneSoa in = random_lanes(128, 44);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    const geom::Vec2 center{in.x[i], in.y[i]};
    const geom::OrientedBox ref(center, 2.25, 1.0, in.heading[i]);
    const geom::OrientedBox fast = geom::OrientedBox::with_axis(
        center, 2.25, 1.0, in.heading[i], geom::heading_vec(in.heading[i]));
    EXPECT_EQ(fast.center().x, ref.center().x);
    EXPECT_EQ(fast.center().y, ref.center().y);
    EXPECT_EQ(fast.heading(), ref.heading());
    EXPECT_EQ(fast.axis_long().x, ref.axis_long().x);
    EXPECT_EQ(fast.axis_long().y, ref.axis_long().y);
    const auto a = fast.corners();
    const auto b = ref.corners();
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(a[k].x, b[k].x);
      EXPECT_EQ(a[k].y, b[k].y);
    }
  }
}

TEST(GeomKernelIdentity, ContainsBoxGeomAgreesWithContainsBox) {
  const roadmap::StraightRoad straight(3, 3.5, 200.0);
  const roadmap::RingRoad ring(2, 3.5, 30.0);
  const LaneSoa in = random_lanes(511, 55);
  for (const roadmap::DrivableMap* map :
       {static_cast<const roadmap::DrivableMap*>(&straight),
        static_cast<const roadmap::DrivableMap*>(&ring)}) {
    for (double margin : {0.0, 0.3, 5.0}) {
      for (std::size_t i = 0; i < in.x.size(); ++i) {
        const geom::Vec2 center{in.x[i], in.y[i]};
        const geom::OrientedBox box(center, 2.25, 1.0, in.heading[i]);
        EXPECT_EQ(map->contains_box(box, margin),
                  map->contains_box_geom(center, box.half_length(), box.half_width(),
                                         box.axis_long(), box.aabb(), margin))
            << "lane " << i << " margin " << margin;
      }
    }
  }
}

// --- scalar-reference full-tube identity ------------------------------------

std::uint64_t ref_xy_key(double x, double y, double inv_cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x * inv_cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y * inv_cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

struct RefCellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

bool ref_state_ok(const roadmap::DrivableMap& map, const dynamics::VehicleState& s,
                  std::span<const core::ObstacleTimeline> obstacles,
                  std::span<const std::uint32_t> active, std::size_t slice,
                  const core::ReachTubeParams& params, double ego_r) {
  const geom::OrientedBox ego_box = dynamics::footprint(s, params.ego_dims);
  if (!map.contains_box(ego_box, params.map_margin)) return false;
  for (const std::uint32_t oi : active) {
    const core::ObstacleTimeline& obs = obstacles[oi];
    const geom::OrientedBox& box = obs.by_slice[slice];
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

void ref_active_set(std::span<const core::ObstacleTimeline> obstacles,
                    const dynamics::VehicleState& seed, std::size_t slice,
                    const core::ReachTubeParams& params, double max_speed, double ego_r,
                    std::vector<std::uint32_t>& out) {
  out.clear();
  const geom::Vec2 seed_pos{seed.x, seed.y};
  constexpr double kSlack = 0.5;
  const double t = static_cast<double>(slice) * params.dt;
  const double v_bound = std::min(
      std::max(seed.speed, 0.0) + std::max(params.limits.accel_max, 0.0) * t, max_speed);
  const double reach_r = t * v_bound + ego_r + kSlack;
  for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
    const core::ObstacleTimeline& obs = obstacles[oi];
    const double r = reach_r + obs.circumradius_by_slice[slice];
    if ((obs.by_slice[slice].center() - seed_pos).norm_sq() > r * r) continue;
    out.push_back(static_cast<std::uint32_t>(oi));
  }
}

/// Test-local replica of the historical scalar propagation loop — one
/// out-of-line step() and one state_ok() per candidate, interleaved — built
/// on public API only. The production pipeline must reproduce it to the bit.
core::ReachTube reference_tube(const roadmap::DrivableMap& map,
                               const dynamics::VehicleState& ego,
                               std::span<const core::ObstacleTimeline> obstacles,
                               const core::ReachTubeParams& params) {
  const int slices = static_cast<int>(std::lround(params.horizon / params.dt));
  const dynamics::BicycleModel model(common::Meters{params.wheelbase});
  const double ego_r =
      dynamics::footprint(dynamics::VehicleState{}, params.ego_dims).circumradius();
  const double max_speed = model.max_speed().value();
  const double inv_cell = 1.0 / params.cell_size;
  const common::Seconds dt{params.dt};

  std::vector<dynamics::Control> boundary;
  {
    const auto& lim = params.limits;
    std::vector<double> accels;
    if (params.include_braking_boundary) {
      accels = {lim.accel_min, 0.0, lim.accel_max};
    } else {
      accels = {0.0, lim.accel_max};
    }
    for (double a : accels) {
      for (double phi : {lim.steer_min, 0.0, lim.steer_max}) {
        boundary.push_back({a, phi});
      }
    }
  }

  core::ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices) + 1, {});

  std::vector<std::uint32_t> active;
  ref_active_set(obstacles, ego, 0, params, max_speed, ego_r, active);
  if (!ref_state_ok(map, ego, obstacles, active, 0, params, ego_r)) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;
  common::Rng rng(params.sample_seed);
  common::FlatHashGrid<RefCellReps> cells;
  common::FlatKeySet occupied;
  std::vector<dynamics::VehicleState> candidates;
  std::vector<char> seen;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kept;

  for (int j = 0; j < slices; ++j) {
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    cells.clear();
    occupied.clear();
    candidates.clear();

    const std::size_t slice = static_cast<std::size_t>(j) + 1;
    ref_active_set(obstacles, ego, slice, params, max_speed, ego_r, active);
    std::size_t dead_cells = 0;
    auto try_control = [&](const dynamics::VehicleState& s, const dynamics::Control& u) {
      if (candidates.size() >= params.max_states_per_slice) return;
      const dynamics::VehicleState ns = model.step(s, u, dt);
      if (!params.dedup) {
        if (!ref_state_ok(map, ns, obstacles, active, slice, params, ego_r)) return;
        candidates.push_back(ns);
        occupied.insert(ref_xy_key(ns.x, ns.y, inv_cell));
        return;
      }
      const std::uint64_t key = ref_xy_key(ns.x, ns.y, inv_cell);
      auto [reps_slot, inserted] = cells.insert(key);
      if (inserted) {
        if (!ref_state_ok(map, ns, obstacles, active, slice, params, ego_r)) {
          ++dead_cells;
          return;
        }
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        reps_slot->min_v = reps_slot->max_v = reps_slot->min_h = reps_slot->max_h = idx;
        reps_slot->v_lo = reps_slot->v_hi = ns.speed;
        reps_slot->h_lo = reps_slot->h_hi = ns.heading;
        return;
      }
      RefCellReps& reps = *reps_slot;
      if (reps.min_v < 0) return;
      const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                            ns.heading < reps.h_lo || ns.heading > reps.h_hi;
      if (!improves) return;
      if (!ref_state_ok(map, ns, obstacles, active, slice, params, ego_r)) return;
      const int idx = static_cast<int>(candidates.size());
      candidates.push_back(ns);
      if (ns.speed < reps.v_lo) {
        reps.v_lo = ns.speed;
        reps.min_v = idx;
      }
      if (ns.speed > reps.v_hi) {
        reps.v_hi = ns.speed;
        reps.max_v = idx;
      }
      if (ns.heading < reps.h_lo) {
        reps.h_lo = ns.heading;
        reps.min_h = idx;
      }
      if (ns.heading > reps.h_hi) {
        reps.h_hi = ns.heading;
        reps.max_h = idx;
      }
    };

    for (const dynamics::VehicleState& s : current) {
      for (const dynamics::Control& u : boundary) try_control(s, u);
      if (!params.boundary_controls) {
        const auto& lim = params.limits;
        for (int n = static_cast<int>(boundary.size()); n < params.uniform_samples; ++n) {
          try_control(s, {rng.uniform(lim.accel_min, lim.accel_max),
                          rng.uniform(lim.steer_min, lim.steer_max)});
        }
      }
    }

    if (params.dedup) {
      volume_cells += cells.size() - dead_cells;
      seen.assign(candidates.size(), 0);
      kept.clear();
      for (const auto& entry : cells) {
        const RefCellReps& reps = entry.value;
        for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) {
          if (idx < 0) continue;
          if (seen[static_cast<std::size_t>(idx)]) continue;
          seen[static_cast<std::size_t>(idx)] = 1;
          kept.emplace_back(common::splitmix64_mix(static_cast<std::uint64_t>(idx)),
                            static_cast<std::uint32_t>(idx));
        }
      }
      std::sort(kept.begin(), kept.end());
      next.reserve(kept.size());
      for (const auto& [mixed, idx] : kept) next.push_back(candidates[idx]);
    } else {
      volume_cells += occupied.size();
      next = candidates;
    }
    if (next.empty()) break;
  }

  tube.volume = static_cast<double>(volume_cells);
  return tube;
}

// --- scenario plumbing (mirrors test_parallel_sti.cpp) -----------------------

sim::World typology_world(const scenario::ScenarioFactory& factory,
                          scenario::Typology typology) {
  common::Rng rng(7);
  const auto spec = factory.sample(typology, 0, rng);
  sim::World world = factory.build(spec);
  for (int i = 0; i < 20; ++i) world.step(dynamics::Control{0.0, 0.0});
  return world;
}

void expect_same_tube(const core::ReachTube& a, const core::ReachTube& b) {
  // Exact == on purpose: the guarantee is bit-identity, not closeness.
  EXPECT_EQ(a.volume, b.volume);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t j = 0; j < a.slices.size(); ++j) {
    ASSERT_EQ(a.slices[j].size(), b.slices[j].size()) << "slice " << j;
    for (std::size_t i = 0; i < a.slices[j].size(); ++i) {
      EXPECT_EQ(a.slices[j][i].x, b.slices[j][i].x) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].y, b.slices[j][i].y) << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].heading, b.slices[j][i].heading)
          << "slice " << j << " state " << i;
      EXPECT_EQ(a.slices[j][i].speed, b.slices[j][i].speed)
          << "slice " << j << " state " << i;
    }
  }
}

TEST(GeomKernelIdentity, FullTubeMatchesScalarReferenceAcrossTypologies) {
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    for (bool dedup : {true, false}) {
      for (bool boundary_controls : {true, false}) {
        SCOPED_TRACE("dedup=" + std::to_string(dedup) +
                     " boundary_controls=" + std::to_string(boundary_controls));
        core::ReachTubeParams params;
        params.dedup = dedup;
        params.boundary_controls = boundary_controls;
        const core::ReachTubeComputer rt(params);
        const auto obstacles =
            rt.sample_obstacles(forecasts, common::Seconds{world.time()});
        expect_same_tube(
            reference_tube(world.map(), world.ego().state, obstacles, params),
            rt.compute(world.map(), world.ego().state, obstacles));
      }
    }
  }
}

TEST(GeomKernelIdentity, AttributedAndReplayMatchScalarReference) {
  // The attributed base propagation and the memoized counterfactual replays
  // route through the same batch path; both must still land on the scalar
  // reference bits (replays are checked against reference tubes with the
  // excluded actor's timeline dropped).
  const scenario::ScenarioFactory factory;
  const sim::World world = typology_world(factory, scenario::Typology::kLeadSlowdown);
  const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

  const core::ReachTubeParams params;
  const core::ReachTubeComputer rt(params);
  const auto obstacles = rt.sample_obstacles(forecasts, common::Seconds{world.time()});
  const core::AttributedTube base =
      rt.compute_attributed(world.map(), world.ego().state, obstacles);
  expect_same_tube(reference_tube(world.map(), world.ego().state, obstacles, params),
                   base.tube);

  expect_same_tube(
      reference_tube(world.map(), world.ego().state, {}, params),
      rt.compute_unblocked(world.map(), world.ego().state, obstacles, base, nullptr));

  for (std::size_t i = 0; i < obstacles.size(); ++i) {
    SCOPED_TRACE("actor_index=" + std::to_string(i));
    std::vector<core::ObstacleTimeline> reduced;
    for (std::size_t k = 0; k < obstacles.size(); ++k) {
      if (k != i) reduced.push_back(obstacles[k]);
    }
    expect_same_tube(
        reference_tube(world.map(), world.ego().state, reduced, params),
        rt.compute_counterfactual(world.map(), world.ego().state, obstacles, base, i,
                                  nullptr));
  }
}

TEST(GeomKernelIdentity, StiBitIdenticalAcrossThreadsAndEngines) {
  // The §13 acceptance matrix: typologies × threads {0,2,4} ×
  // delta_counterfactuals {on,off} must all produce one bit pattern. Under
  // the simd-off build (and the sanitizer jobs) this same test pins the
  // IPRISM_ENABLE_SIMD dimension.
  const scenario::ScenarioFactory factory;
  for (scenario::Typology typology : scenario::kAllTypologies) {
    SCOPED_TRACE(std::string(scenario::typology_name(typology)));
    const sim::World world = typology_world(factory, typology);
    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);

    const core::StiCalculator reference_calc;
    const core::StiResult reference = reference_calc.compute(
        world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);

    for (int threads : {0, 2, 4}) {
      for (bool delta : {true, false}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " delta=" + std::to_string(delta));
        core::ReachTubeParams params;
        params.num_threads = threads;
        params.delta_counterfactuals = delta;
        const core::StiCalculator calc(params);
        const core::StiResult got = calc.compute(
            world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
        EXPECT_EQ(reference.combined, got.combined);
        EXPECT_EQ(reference.volume_all, got.volume_all);
        EXPECT_EQ(reference.volume_empty, got.volume_empty);
        ASSERT_EQ(reference.per_actor.size(), got.per_actor.size());
        for (std::size_t i = 0; i < reference.per_actor.size(); ++i) {
          EXPECT_EQ(reference.per_actor[i].first, got.per_actor[i].first);
          EXPECT_EQ(reference.per_actor[i].second, got.per_actor[i].second);
        }
      }
    }
  }
}

}  // namespace
}  // namespace iprism
