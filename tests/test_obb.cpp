#include "geom/obb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace iprism::geom {
namespace {

TEST(OrientedBox, RejectsNegativeExtents) {
  EXPECT_THROW(OrientedBox({0, 0}, -1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(OrientedBox, CornersAxisAligned) {
  const OrientedBox b({0.0, 0.0}, 2.0, 1.0, 0.0);
  const auto c = b.corners();
  EXPECT_NEAR(c[0].x, 2.0, 1e-12);
  EXPECT_NEAR(c[0].y, 1.0, 1e-12);
  EXPECT_NEAR(c[2].x, -2.0, 1e-12);
  EXPECT_NEAR(c[2].y, -1.0, 1e-12);
}

TEST(OrientedBox, ContainsPoints) {
  const OrientedBox b({1.0, 1.0}, 2.0, 1.0, 0.0);
  EXPECT_TRUE(b.contains({1.0, 1.0}));
  EXPECT_TRUE(b.contains({2.9, 1.9}));
  EXPECT_FALSE(b.contains({3.1, 1.0}));
  EXPECT_FALSE(b.contains({1.0, 2.1}));
}

TEST(OrientedBox, ContainsRespectsRotation) {
  const OrientedBox b({0.0, 0.0}, 2.0, 0.5, M_PI / 2.0);
  EXPECT_TRUE(b.contains({0.0, 1.9}));   // along the rotated long axis
  EXPECT_FALSE(b.contains({1.9, 0.0}));  // outside the rotated short axis
}

TEST(OrientedBox, DisjointBoxesDoNotIntersect) {
  const OrientedBox a({0.0, 0.0}, 1.0, 1.0, 0.0);
  const OrientedBox b({5.0, 0.0}, 1.0, 1.0, 0.0);
  EXPECT_FALSE(a.intersects(b));
}

TEST(OrientedBox, OverlappingBoxesIntersect) {
  const OrientedBox a({0.0, 0.0}, 1.0, 1.0, 0.0);
  const OrientedBox b({1.5, 0.0}, 1.0, 1.0, 0.0);
  EXPECT_TRUE(a.intersects(b));
}

TEST(OrientedBox, RotatedCrossIntersects) {
  // Two long thin boxes forming a plus sign.
  const OrientedBox a({0.0, 0.0}, 3.0, 0.2, 0.0);
  const OrientedBox b({0.0, 0.0}, 3.0, 0.2, M_PI / 2.0);
  EXPECT_TRUE(a.intersects(b));
}

TEST(OrientedBox, DiagonalSeparationNeedsSat) {
  // AABBs overlap but the rotated boxes do not — SAT must separate them.
  const OrientedBox a({0.0, 0.0}, 2.0, 0.3, M_PI / 4.0);
  const OrientedBox b({1.8, -1.8}, 2.0, 0.3, M_PI / 4.0);
  EXPECT_TRUE(a.aabb().intersects(b.aabb()));
  EXPECT_FALSE(a.intersects(b));
}

TEST(OrientedBox, IntersectionIsSymmetricProperty) {
  common::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const OrientedBox a({rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(0.2, 3.0),
                        rng.uniform(0.2, 2.0), rng.uniform(-M_PI, M_PI));
    const OrientedBox b({rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(0.2, 3.0),
                        rng.uniform(0.2, 2.0), rng.uniform(-M_PI, M_PI));
    ASSERT_EQ(a.intersects(b), b.intersects(a));
  }
}

TEST(OrientedBox, ContainedCenterImpliesIntersection) {
  common::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const OrientedBox a({rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(0.5, 3.0),
                        rng.uniform(0.5, 2.0), rng.uniform(-M_PI, M_PI));
    const OrientedBox b(a.center() + Vec2{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3)},
                        rng.uniform(0.5, 3.0), rng.uniform(0.5, 2.0),
                        rng.uniform(-M_PI, M_PI));
    // b's centre lies inside (or within 0.43 of) a's centre, well inside a.
    ASSERT_TRUE(a.intersects(b));
  }
}

TEST(OrientedBox, DistanceToPoint) {
  const OrientedBox b({0.0, 0.0}, 2.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(b.distance_to({0.0, 0.0}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(b.distance_to({5.0, 0.0}), 3.0);
  EXPECT_NEAR(b.distance_to({3.0, 2.0}), std::hypot(1.0, 1.0), 1e-12);
}

TEST(OrientedBox, AabbCoversRotatedBox) {
  const OrientedBox b({1.0, 2.0}, 2.0, 1.0, M_PI / 6.0);
  const Aabb box = b.aabb();
  for (const auto& c : b.corners()) EXPECT_TRUE(box.contains(c));
}

TEST(OrientedBox, Circumradius) {
  const OrientedBox b({0.0, 0.0}, 3.0, 4.0, 0.7);
  EXPECT_DOUBLE_EQ(b.circumradius(), 5.0);
}

TEST(Aabb, EmptyBehaviour) {
  Aabb box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.contains({0.0, 0.0}));
  box.expand({1.0, 1.0});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.contains({1.0, 1.0}));
}

TEST(Aabb, ExpandAndIntersect) {
  Aabb a;
  a.expand({0.0, 0.0});
  a.expand({2.0, 2.0});
  Aabb b;
  b.expand({1.0, 1.0});
  b.expand({3.0, 3.0});
  EXPECT_TRUE(a.intersects(b));
  Aabb c;
  c.expand({5.0, 5.0});
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.inflated(3.1).intersects(c));
}

}  // namespace
}  // namespace iprism::geom
