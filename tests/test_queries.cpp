#include "sim/queries.hpp"

#include <gtest/gtest.h>

#include "roadmap/ring_road.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::sim {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed, double heading = 0.0) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  s.heading = heading;
  return s;
}

Actor vehicle(double x, double y, double speed) {
  Actor a;
  a.kind = ActorKind::kVehicle;
  a.state = state(x, y, speed);
  return a;
}

TEST(Queries, LaneOf) {
  World w(test_map(), 0.1);
  const int id = w.add_ego(state(10, 5.25, 8));
  EXPECT_EQ(lane_of(w, w.actor(id)), 1);
}

TEST(Queries, LongitudinalOffsetSign) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  const int ahead = w.add_actor(vehicle(80, 1.75, 8));
  const int behind = w.add_actor(vehicle(30, 8.75, 8));
  EXPECT_DOUBLE_EQ(longitudinal_offset(w, w.ego(), w.actor(ahead)), 30.0);
  EXPECT_DOUBLE_EQ(longitudinal_offset(w, w.ego(), w.actor(behind)), -20.0);
}

TEST(Queries, RingOffsetWrapsAround) {
  auto map = std::make_shared<roadmap::RingRoad>(1, 3.5, 30.0);
  World w(map, 0.1);
  // Ego near the arclength seam (s ~ L - 5), other just past it (s ~ 3).
  const double L = map->road_length();
  dynamics::VehicleState ego;
  {
    const auto p = map->point_at(L - 5.0, 1.75);
    ego.x = p.x;
    ego.y = p.y;
    ego.heading = map->heading_at(L - 5.0);
    ego.speed = 5.0;
  }
  w.add_ego(ego);
  Actor other;
  other.kind = ActorKind::kVehicle;
  {
    const auto p = map->point_at(3.0, 1.75);
    other.state.x = p.x;
    other.state.y = p.y;
    other.state.heading = map->heading_at(3.0);
    other.state.speed = 5.0;
  }
  const int id = w.add_actor(std::move(other));
  EXPECT_NEAR(longitudinal_offset(w, w.ego(), w.actor(id)), 8.0, 1e-9);
}

TEST(Queries, LeadAndRearInLane) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  const int near_lead = w.add_actor(vehicle(70, 5.25, 6));
  w.add_actor(vehicle(100, 5.25, 6));  // farther lead
  const int rear = w.add_actor(vehicle(30, 5.25, 10));
  w.add_actor(vehicle(60, 1.75, 6));  // other lane — must be ignored

  const auto lead = lead_in_lane(w, w.ego(), 1);
  ASSERT_TRUE(lead.has_value());
  EXPECT_EQ(lead->actor_id, near_lead);
  EXPECT_NEAR(lead->gap, 20.0 - 4.5, 1e-9);
  EXPECT_NEAR(lead->closing_speed, 2.0, 1e-9);

  const auto behind = rear_in_lane(w, w.ego(), 1);
  ASSERT_TRUE(behind.has_value());
  EXPECT_EQ(behind->actor_id, rear);
  EXPECT_NEAR(behind->closing_speed, 2.0, 1e-9);
}

TEST(Queries, LeadRespectsMaxRange) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(vehicle(200, 5.25, 6));
  EXPECT_FALSE(lead_in_lane(w, w.ego(), 1, 100.0).has_value());
  EXPECT_TRUE(lead_in_lane(w, w.ego(), 1, 160.0).has_value());
}

TEST(Queries, ClosestInPathRequiresLateralOverlap) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  // Same lane ahead: in path.
  const int lead = w.add_actor(vehicle(80, 5.25, 5));
  // Adjacent lane centre (no overlap with the ego corridor): not in path.
  w.add_actor(vehicle(65, 1.75, 5));
  const auto cipa = closest_in_path(w, w.ego());
  ASSERT_TRUE(cipa.has_value());
  EXPECT_EQ(cipa->actor_id, lead);
}

TEST(Queries, ClosestInPathSeesEncroachingActor) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  // An actor straddling the lane boundary overlaps the ego corridor.
  const int encroacher = w.add_actor(vehicle(70, 3.6, 5));
  const auto cipa = closest_in_path(w, w.ego());
  ASSERT_TRUE(cipa.has_value());
  EXPECT_EQ(cipa->actor_id, encroacher);
}

TEST(Queries, ClosestInPathIgnoresBehind) {
  World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  w.add_actor(vehicle(20, 5.25, 12));
  EXPECT_FALSE(closest_in_path(w, w.ego()).has_value());
}

}  // namespace
}  // namespace iprism::sim
