#include "eval/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "agents/lbc.hpp"
#include "scenario/factory.hpp"

namespace iprism::eval {
namespace {

EpisodeResult sample_episode() {
  const scenario::ScenarioFactory factory;
  common::Rng rng(3);
  const auto spec = factory.sample(scenario::Typology::kGhostCutIn, 0, rng);
  agents::LbcAgent lbc;
  RunOptions opt;
  opt.max_seconds = 4.0;
  return run_episode(factory.build(spec), lbc, nullptr, opt);
}

TEST(TraceIo, RoundTripPreservesEverySample) {
  const EpisodeResult episode = sample_episode();
  std::stringstream ss;
  write_episode_csv(ss, episode);
  const auto traces = read_episode_csv(ss);

  ASSERT_EQ(traces.size(), episode.actors.size());
  for (const ActorTrace& original : episode.actors) {
    const auto it = std::find_if(traces.begin(), traces.end(),
                                 [&](const ActorTrace& t) { return t.id == original.id; });
    ASSERT_NE(it, traces.end());
    EXPECT_EQ(it->is_ego, original.is_ego);
    EXPECT_DOUBLE_EQ(it->dims.length, original.dims.length);
    ASSERT_EQ(it->trajectory.size(), original.trajectory.size());
    for (std::size_t k = 0; k < original.trajectory.samples().size(); ++k) {
      const auto& a = original.trajectory.samples()[k];
      const auto& b = it->trajectory.samples()[k];
      EXPECT_DOUBLE_EQ(a.t, b.t);
      EXPECT_DOUBLE_EQ(a.state.x, b.state.x);
      EXPECT_DOUBLE_EQ(a.state.heading, b.state.heading);
      EXPECT_DOUBLE_EQ(a.state.speed, b.state.speed);
    }
  }
}

TEST(TraceIo, HeaderIsRequired) {
  std::stringstream ss("1,0,4.5,2.0,0.0,1,2,0,5\n");
  EXPECT_THROW(read_episode_csv(ss), std::invalid_argument);
}

TEST(TraceIo, TruncatedRowRejected) {
  std::stringstream ss("actor_id,is_ego,length,width,t,x,y,heading,speed\n1,0,4.5\n");
  EXPECT_THROW(read_episode_csv(ss), std::invalid_argument);
}

TEST(TraceIo, EmptyBodyYieldsNoTraces) {
  std::stringstream ss("actor_id,is_ego,length,width,t,x,y,heading,speed\n");
  EXPECT_TRUE(read_episode_csv(ss).empty());
}

}  // namespace
}  // namespace iprism::eval
