#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace iprism::rl {
namespace {

TEST(Mlp, ValidatesConstruction) {
  common::Rng rng(1);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({4, 0, 2}, rng), std::invalid_argument);
}

TEST(Mlp, ForwardShapeAndInputCheck) {
  common::Rng rng(1);
  const Mlp net({3, 8, 2}, rng);
  EXPECT_EQ(net.input_size(), 3);
  EXPECT_EQ(net.output_size(), 2);
  const std::vector<double> x{0.1, -0.2, 0.3};
  EXPECT_EQ(net.forward(x).size(), 2u);
  const std::vector<double> bad{0.1};
  EXPECT_THROW(net.forward(bad), std::invalid_argument);
}

TEST(Mlp, DeterministicForSeed) {
  common::Rng r1(9);
  common::Rng r2(9);
  const Mlp a({4, 6, 3}, r1);
  const Mlp b({4, 6, 3}, r2);
  const std::vector<double> x{0.5, -0.5, 0.2, 0.9};
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  // Verify the backward pass by comparing the analytic TD-error-driven
  // update direction against a numeric directional derivative: train one
  // step on a sample and check the loss decreases.
  common::Rng rng(7);
  Mlp net({3, 10, 10, 2}, rng);
  const std::vector<double> x{0.3, -0.7, 0.5};
  const int action = 1;
  const double target = 2.0;

  auto loss = [&](const Mlp& m) {
    const double q = m.forward(x)[action];
    return 0.5 * (q - target) * (q - target);
  };

  const double loss_before = loss(net);
  for (int i = 0; i < 50; ++i) {
    net.accumulate_gradient(x, action, target);
    net.apply_adam(0.01);
  }
  const double loss_after = loss(net);
  EXPECT_LT(loss_after, loss_before * 0.1);
  EXPECT_NEAR(net.forward(x)[action], target, 0.2);
}

TEST(Mlp, GradientLeavesOtherOutputsLooselyCoupled) {
  // Training only action 0 toward a target must move action 0's output
  // decisively more than it moves action 1's.
  common::Rng rng(3);
  Mlp net({2, 16, 2}, rng);
  const std::vector<double> x{0.4, 0.6};
  const auto before = net.forward(x);
  for (int i = 0; i < 100; ++i) {
    net.accumulate_gradient(x, 0, before[0] + 5.0);
    net.apply_adam(0.005);
  }
  const auto after = net.forward(x);
  EXPECT_GT(std::abs(after[0] - before[0]), 2.0 * std::abs(after[1] - before[1]));
}

TEST(Mlp, AccumulateValidatesArguments) {
  common::Rng rng(1);
  Mlp net({2, 4, 2}, rng);
  const std::vector<double> x{0.1, 0.2};
  EXPECT_THROW(net.accumulate_gradient(x, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(net.accumulate_gradient(x, -1, 0.0), std::invalid_argument);
  const std::vector<double> bad{0.1};
  EXPECT_THROW(net.accumulate_gradient(bad, 0, 0.0), std::invalid_argument);
}

TEST(Mlp, ApplyAdamWithoutGradIsNoop) {
  common::Rng rng(5);
  Mlp net({2, 4, 2}, rng);
  const std::vector<double> x{0.1, 0.2};
  const auto before = net.forward(x);
  net.apply_adam(0.1);
  EXPECT_EQ(net.forward(x), before);
}

TEST(Mlp, CopyWeightsMakesNetsIdentical) {
  common::Rng r1(1);
  common::Rng r2(2);
  Mlp a({3, 5, 2}, r1);
  Mlp b({3, 5, 2}, r2);
  const std::vector<double> x{0.1, 0.2, 0.3};
  EXPECT_NE(a.forward(x), b.forward(x));
  b.copy_weights_from(a);
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(Mlp, CopyWeightsChecksArchitecture) {
  common::Rng rng(1);
  Mlp a({3, 5, 2}, rng);
  Mlp b({3, 4, 2}, rng);
  EXPECT_THROW(b.copy_weights_from(a), std::invalid_argument);
}

TEST(Mlp, SaveLoadRoundTrip) {
  common::Rng rng(13);
  Mlp net({4, 7, 3}, rng);
  std::stringstream ss;
  net.save(ss);
  const Mlp restored = Mlp::load(ss);
  const std::vector<double> x{0.2, -0.1, 0.8, 0.0};
  const auto a = net.forward(x);
  const auto b = restored.forward(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream ss("not a network");
  EXPECT_THROW(Mlp::load(ss), std::invalid_argument);
}

}  // namespace
}  // namespace iprism::rl
