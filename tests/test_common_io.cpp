#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace iprism::common {
namespace {

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "--rate=2.5", "--name=abc"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "abc");
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(args.get_string("name", "x"), "x");
  EXPECT_FALSE(args.has("verbose"));
}

TEST(CliArgs, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", Table::num(1.234, 2)});
  t.add_row({"b", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(CsvWriter, WritesRows) {
  const std::string path = ::testing::TempDir() + "iprism_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row(std::vector<std::string>{"a", "b"});
    csv.write_row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1.5,2");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace iprism::common
