#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::common {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, RejectsEmptyInput) {
  // An empty set has no percentiles; the old silent 0.0 was
  // indistinguishable from a genuine p=0.
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, SingleElement) { EXPECT_DOUBLE_EQ(percentile({3.0}, 90.0), 3.0); }

TEST(Percentile, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, RejectsOutOfRangeQ) {
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(MeanStddevOf, BasicValues) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(stddev_of({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(AggregateSeries, UnequalLengths) {
  const auto agg = aggregate_series({{1.0, 2.0, 3.0}, {3.0, 4.0}});
  ASSERT_EQ(agg.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(agg.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(agg.mean[1], 3.0);
  EXPECT_DOUBLE_EQ(agg.mean[2], 3.0);  // only the longer series reaches index 2
  EXPECT_EQ(agg.count[0], 2u);
  EXPECT_EQ(agg.count[2], 1u);
}

TEST(AggregateSeries, EmptyInput) {
  const auto agg = aggregate_series({});
  EXPECT_TRUE(agg.mean.empty());
}

class PercentileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  const std::vector<double> v{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const double q = GetParam();
  EXPECT_LE(percentile(v, q), percentile(v, std::min(q + 10.0, 100.0)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotoneTest,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0));

}  // namespace
}  // namespace iprism::common
