#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0.0, 0.0}));
}

TEST(Vec2, RotationIsLengthPreserving) {
  const Vec2 v{2.0, 1.0};
  const Vec2 r = v.rotated(1.2345);
  EXPECT_NEAR(r.norm(), v.norm(), 1e-12);
}

TEST(Vec2, QuarterRotation) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_EQ(v.perp(), (Vec2{0.0, 1.0}));
}

TEST(Vec2, LerpAndDistance) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  EXPECT_EQ(lerp(a, b, 0.25), (Vec2{2.5, 0.0}));
  EXPECT_DOUBLE_EQ(distance(a, b), 10.0);
}

TEST(Vec2, HeadingVec) {
  const Vec2 h = heading_vec(M_PI);
  EXPECT_NEAR(h.x, -1.0, 1e-12);
  EXPECT_NEAR(h.y, 0.0, 1e-12);
}

class WrapAngleTest : public ::testing::TestWithParam<double> {};

TEST_P(WrapAngleTest, StaysInPrincipalRange) {
  const double w = wrap_angle(GetParam());
  EXPECT_GT(w, -M_PI - 1e-12);
  EXPECT_LE(w, M_PI + 1e-12);
  // Wrapping preserves the angle modulo 2*pi.
  EXPECT_NEAR(std::cos(w), std::cos(GetParam()), 1e-9);
  EXPECT_NEAR(std::sin(w), std::sin(GetParam()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapAngleTest,
                         ::testing::Values(-10.0, -M_PI, -1.0, 0.0, 1.0, M_PI, 4.0, 10.0,
                                           100.0, -100.0));

TEST(AngleDiff, ShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-3.1, 3.1), 2.0 * M_PI - 6.2, 1e-9);  // wraps through pi
}

}  // namespace
}  // namespace iprism::geom
