// Precondition / invariant checking: IPRISM_CHECK message formatting,
// IPRISM_DCHECK's build-mode gating, the float_eq helpers, and the
// *Params/*Config validation paths the iprism_lint params-validated rule
// points at.
#include "common/check.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/float_eq.hpp"
#include "core/reachtube.hpp"
#include "rl/ddqn.hpp"
#include "smc/controller.hpp"
#include "smc/features.hpp"
#include "smc/reward.hpp"
#include "smc/trainer.hpp"

namespace iprism {
namespace {

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(IprismCheck, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(IPRISM_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(IprismCheck, ThrowsInvalidArgument) {
  EXPECT_THROW(IPRISM_CHECK(false, "boom"), std::invalid_argument);
}

TEST(IprismCheck, MessageCarriesFileLineExpressionAndText) {
  const std::string msg = message_of([] { IPRISM_CHECK(2 < 1, "two is not less"); });
  EXPECT_NE(msg.find("test_check.cpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("check failed: 2 < 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("two is not less"), std::string::npos) << msg;
  // file:line: prefix — a ':' must follow the file name with digits after it.
  const auto file_pos = msg.find("test_check.cpp:");
  ASSERT_NE(file_pos, std::string::npos) << msg;
  EXPECT_TRUE(std::isdigit(msg[file_pos + std::string("test_check.cpp:").size()])) << msg;
}

TEST(IprismCheck, EmptyMessageOmitsSeparator) {
  const std::string msg = message_of([] { IPRISM_CHECK(false, ""); });
  EXPECT_NE(msg.find("check failed: false"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("—"), std::string::npos) << msg;
}

TEST(IprismDcheck, MatchesBuildMode) {
#if !defined(NDEBUG) || defined(IPRISM_ENABLE_DCHECKS)
  EXPECT_THROW(IPRISM_DCHECK(false, "active in debug/sanitizer builds"),
               std::invalid_argument);
#else
  EXPECT_NO_THROW(IPRISM_DCHECK(false, "compiled out in release"));
#endif
}

TEST(IprismDcheck, PassingDcheckNeverThrows) {
  EXPECT_NO_THROW(IPRISM_DCHECK(true, "fine"));
}

TEST(FloatEq, NearAndNearZero) {
  EXPECT_TRUE(common::near(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(common::near(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(common::near(1.0, 1.5, 0.5));
  EXPECT_TRUE(common::near_zero(0.0));
  EXPECT_FALSE(common::near_zero(1e-3));
  EXPECT_FALSE(common::near(0.0, std::nan("")));
}

// ---------------------------------------------------------------------------
// ReachTubeParams validation.

core::ReachTubeParams tube_params() { return {}; }

TEST(ReachTubeParamsValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(core::ReachTubeComputer{tube_params()});
}

TEST(ReachTubeParamsValidation, RejectsNonPositiveDt) {
  auto p = tube_params();
  p.dt = 0.0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
  p.dt = -0.1;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTubeParamsValidation, RejectsNonPositiveHorizon) {
  auto p = tube_params();
  p.horizon = 0.0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
  p.horizon = -3.0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTubeParamsValidation, RejectsNonPositiveCellSize) {
  auto p = tube_params();
  p.cell_size = 0.0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTubeParamsValidation, RejectsEmptyControlLimits) {
  auto p = tube_params();
  p.limits.accel_min = p.limits.accel_max = 1.0;
  const std::string msg =
      message_of([&] { core::ReachTubeComputer computer{p}; });
  EXPECT_NE(msg.find("ReachTubeParams"), std::string::npos) << msg;

  p = tube_params();
  p.limits.steer_min = p.limits.steer_max;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTubeParamsValidation, RejectsZeroStateCapAndSamples) {
  auto p = tube_params();
  p.max_states_per_slice = 0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);

  p = tube_params();
  p.uniform_samples = 0;
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

TEST(ReachTubeParamsValidation, RejectsSubSliceHorizon) {
  auto p = tube_params();
  p.dt = 1.0;
  p.horizon = 0.25;  // rounds to zero slices
  EXPECT_THROW(core::ReachTubeComputer{p}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SMC configuration validation.

TEST(SmcConfigValidation, TrainerRejectsNonPositiveEpisodes) {
  smc::SmcTrainConfig cfg;
  cfg.episodes = 0;
  EXPECT_THROW(smc::SmcTrainer{cfg}, std::invalid_argument);
}

TEST(SmcConfigValidation, TrainerRejectsBadActionCount) {
  smc::SmcTrainConfig cfg;
  cfg.action_count = 4;  // not one of the supported action-set sizes
  EXPECT_THROW(smc::SmcTrainer{cfg}, std::invalid_argument);
}

TEST(SmcConfigValidation, TrainerRejectsInvalidTubeParams) {
  smc::SmcTrainConfig cfg;
  cfg.tube.dt = -0.25;
  EXPECT_THROW(smc::SmcTrainer{cfg}, std::invalid_argument);
}

smc::SmcController make_controller(const smc::SmcControlParams& params) {
  common::Rng rng(7);
  rl::Mlp policy({smc::kFeatureCount, 8, smc::kActionCountBrakeAccel}, rng);
  return smc::SmcController(std::move(policy), params);
}

TEST(SmcConfigValidation, ControlParamsRejectNegativeNoise) {
  smc::SmcControlParams p;
  p.feature_noise_std = -0.5;
  EXPECT_THROW(make_controller(p), std::invalid_argument);
}

TEST(SmcConfigValidation, ControlParamsRejectZeroDecisionPeriod) {
  smc::SmcControlParams p;
  p.decision_period = 0;
  const std::string msg = message_of([&] { make_controller(p); });
  EXPECT_NE(msg.find("SmcControlParams"), std::string::npos) << msg;
}

TEST(SmcConfigValidation, ControlParamsRejectSignFlippedAccels) {
  smc::SmcControlParams p;
  p.brake_accel = 2.0;  // braking must decelerate
  EXPECT_THROW(make_controller(p), std::invalid_argument);
}

TEST(SmcConfigValidation, RewardParamsRejectNonPositiveCruiseSpeed) {
  smc::RewardParams p;
  p.cruise_speed = 0.0;
  EXPECT_THROW(smc::smc_reward(p, 0.2, 1.0, 0.5, false), std::invalid_argument);
}

TEST(SmcConfigValidation, DdqnConfigRejectsBadRanges) {
  const auto make_trainer = [](const rl::DdqnConfig& cfg) {
    rl::DdqnTrainer trainer(4, 2, {8}, cfg, 11);
  };
  rl::DdqnConfig cfg;
  EXPECT_NO_THROW(make_trainer(cfg));

  cfg.gamma = 1.5;
  EXPECT_THROW(make_trainer(cfg), std::invalid_argument);

  cfg = {};
  cfg.learning_rate = 0.0;
  EXPECT_THROW(make_trainer(cfg), std::invalid_argument);

  cfg = {};
  cfg.batch_size = 0;
  EXPECT_THROW(make_trainer(cfg), std::invalid_argument);

  cfg = {};
  cfg.epsilon_start = 1.2;
  EXPECT_THROW(make_trainer(cfg), std::invalid_argument);

  cfg = {};
  cfg.target_sync_interval = 0;
  EXPECT_THROW(make_trainer(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace iprism
