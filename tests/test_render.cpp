#include "eval/render.hpp"

#include <gtest/gtest.h>

#include "roadmap/straight_road.hpp"

namespace iprism::eval {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

sim::World two_actor_world() {
  sim::World w(test_map(), 0.1);
  w.add_ego(state(50, 5.25, 8));
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = state(70, 1.75, 5);
  w.add_actor(std::move(a));
  return w;
}

TEST(Render, ContainsEgoActorsAndRoadFurniture) {
  const auto w = two_actor_world();
  const std::string out = render_world(w);
  EXPECT_NE(out.find('E'), std::string::npos);
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);  // road edges
  EXPECT_NE(out.find('='), std::string::npos);  // lane lines
  EXPECT_EQ(out.find('.'), std::string::npos);  // no tube requested
}

TEST(Render, TubeOccupancyAppearsWhenRequested) {
  const auto w = two_actor_world();
  const std::string out = render_world(w, /*with_tube=*/true);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Render, EgoAppearsLeftOfAheadActor) {
  const auto w = two_actor_world();
  const std::string out = render_world(w);
  EXPECT_LT(out.find('E') % 0x7fffffff, out.size());
  // The ego is behind (smaller s) the other actor: its column is smaller.
  std::size_t line_start_e = out.rfind('\n', out.find('E'));
  std::size_t col_e = out.find('E') - line_start_e;
  std::size_t line_start_a = out.rfind('\n', out.find('A'));
  std::size_t col_a = out.find('A') - line_start_a;
  EXPECT_LT(col_e, col_a);
}

TEST(Render, RowCountTracksRoadWidth) {
  const auto w = two_actor_world();
  RenderOptions opt;
  opt.y_scale = 1.0;
  const std::string out = render_scene(core::snapshot_of(w), nullptr, opt);
  const auto rows = static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(rows, static_cast<std::size_t>(3 * 3.5 / 1.0) + 3);  // floor(width/scale) + edge rows
}

TEST(Render, ValidatesOptions) {
  const auto w = two_actor_world();
  RenderOptions opt;
  opt.x_scale = 0.0;
  EXPECT_THROW(render_scene(core::snapshot_of(w), nullptr, opt), std::invalid_argument);
}

}  // namespace
}  // namespace iprism::eval
