#include "dynamics/bicycle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"

namespace iprism::dynamics {
namespace {

using namespace common::literals;

TEST(BicycleModel, RejectsBadParameters) {
  EXPECT_THROW(BicycleModel(0.0_m), std::invalid_argument);
  EXPECT_THROW(BicycleModel(2.7_m, -1.0_mps), std::invalid_argument);
}

TEST(BicycleModel, StraightLineAtConstantSpeed) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 10.0;
  s = m.step(s, {0.0, 0.0}, 1.0_s);
  EXPECT_NEAR(s.x, 10.0, 1e-12);
  EXPECT_NEAR(s.y, 0.0, 1e-12);
  EXPECT_NEAR(s.speed, 10.0, 1e-12);
  EXPECT_NEAR(s.heading, 0.0, 1e-12);
}

TEST(BicycleModel, AccelerationIntegratesWithMidpointSpeed) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 5.0;
  s = m.step(s, {2.0, 0.0}, 1.0_s);
  EXPECT_NEAR(s.speed, 7.0, 1e-12);
  EXPECT_NEAR(s.x, 6.0, 1e-12);  // midpoint speed 6 m/s
}

TEST(BicycleModel, BrakingStopsAtZeroNotReverse) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 2.0;
  s = m.step(s, {-6.0, 0.0}, 1.0_s);  // would reach -4 m/s unclamped
  EXPECT_DOUBLE_EQ(s.speed, 0.0);
  // Distance covered only until the stop at t = 1/3 s.
  EXPECT_NEAR(s.x, 1.0 / 3.0, 1e-9);
}

TEST(BicycleModel, StationaryVehicleDoesNotCreep) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 0.0;
  s = m.step(s, {0.0, 0.4}, 1.0_s);
  EXPECT_DOUBLE_EQ(s.x, 0.0);
  EXPECT_DOUBLE_EQ(s.speed, 0.0);
  EXPECT_DOUBLE_EQ(s.heading, 0.0);  // no yaw without speed
}

TEST(BicycleModel, TopSpeedClamp) {
  const BicycleModel m(2.7_m, 12.0_mps);
  VehicleState s;
  s.speed = 11.5;
  s = m.step(s, {3.0, 0.0}, 1.0_s);
  EXPECT_DOUBLE_EQ(s.speed, 12.0);
}

TEST(BicycleModel, ConstantSteerTracesCircleOfKnownRadius) {
  const double L = 2.7;
  const double phi = 0.3;
  const double R = L / std::tan(phi);
  const BicycleModel m(common::Meters{L});
  VehicleState s;
  s.speed = 5.0;
  // Integrate half a revolution with small steps and compare to the circle.
  const double dt = 0.005;
  const double yaw_rate = s.speed / R;
  const double total = M_PI / yaw_rate;
  int steps = static_cast<int>(total / dt);
  for (int i = 0; i < steps; ++i) s = m.step(s, {0.0, phi}, common::Seconds{dt});
  // After half a revolution the vehicle is ~2R to the left.
  EXPECT_NEAR(s.x, 0.0, 0.15);
  EXPECT_NEAR(s.y, 2.0 * R, 0.15);
}

TEST(BicycleModel, HeadingStaysWrapped) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 10.0;
  for (int i = 0; i < 2000; ++i) {
    s = m.step(s, {0.0, 0.4}, 0.1_s);
    ASSERT_LE(std::abs(s.heading), M_PI + 1e-9);
  }
}

class SteerSymmetryTest : public ::testing::TestWithParam<double> {};

TEST_P(SteerSymmetryTest, LeftRightSymmetric) {
  const BicycleModel m(2.7_m);
  VehicleState s;
  s.speed = 8.0;
  VehicleState left = s;
  VehicleState right = s;
  const double phi = GetParam();
  for (int i = 0; i < 20; ++i) {
    left = m.step(left, {0.5, phi}, 0.1_s);
    right = m.step(right, {0.5, -phi}, 0.1_s);
  }
  EXPECT_NEAR(left.x, right.x, 1e-9);
  EXPECT_NEAR(left.y, -right.y, 1e-9);
  EXPECT_NEAR(left.heading, -right.heading, 1e-9);
  EXPECT_NEAR(left.speed, right.speed, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SteerSymmetryTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.45));

}  // namespace
}  // namespace iprism::dynamics
