#include "dynamics/cvtr.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprism::dynamics {
namespace {

using namespace iprism::common::literals;

VehicleState state(double x, double y, double heading, double speed) {
  VehicleState s;
  s.x = x;
  s.y = y;
  s.heading = heading;
  s.speed = speed;
  return s;
}

TEST(Cvtr, RejectsBadArguments) {
  const CvtrPredictor p;
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), 0.0_s, -1.0_s, 0.1_s), std::invalid_argument);
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), 0.0_s, 1.0_s, 0.0_s), std::invalid_argument);
  EXPECT_THROW(p.predict(state(0, 0, 0, 1), state(0, 0, 0, 1), 0.0_s, 0.0_s, 1.0_s, 0.1_s),
               std::invalid_argument);
}

TEST(Cvtr, StraightLinePredictionIsExact) {
  const CvtrPredictor p;
  const Trajectory t = p.predict(state(0, 0, 0, 5), 10.0_s, 2.0_s, 0.5_s);
  EXPECT_DOUBLE_EQ(t.start_time().value(), 10.0);
  EXPECT_DOUBLE_EQ(t.end_time().value(), 12.0);
  const VehicleState end = t.at(12.0_s);
  EXPECT_NEAR(end.x, 10.0, 1e-12);
  EXPECT_NEAR(end.y, 0.0, 1e-12);
  EXPECT_NEAR(end.speed, 5.0, 1e-12);
}

TEST(Cvtr, EstimatesYawRateFromHistory) {
  const CvtrPredictor p;
  // Previous heading 0, current 0.1 over 0.1 s -> yaw rate 1 rad/s.
  const VehicleState prev = state(0, 0, 0.0, 5);
  const VehicleState now = state(0.5, 0, 0.1, 5);
  const Trajectory t = p.predict(prev, now, 0.1_s, 0.0_s, 1.0_s, 0.1_s);
  EXPECT_NEAR(t.at(1.0_s).heading, 0.1 + 1.0, 1e-9);
}

TEST(Cvtr, ConstantTurnTracesCircle) {
  const CvtrPredictor p;
  // Yaw rate 0.5 rad/s at 5 m/s -> radius 10 m.
  const VehicleState prev = state(0, 0, -0.05, 5);
  const VehicleState now = state(0, 0, 0.0, 5);
  const Trajectory t = p.predict(prev, now, 0.1_s, 0.0_s, 4.0_s, 0.05_s);
  // Every predicted point must lie on the radius-10 circle centred (0, 10).
  for (const auto& ts : t.samples()) {
    const double r = std::hypot(ts.state.x - 0.0, ts.state.y - 10.0);
    ASSERT_NEAR(r, 10.0, 0.02);
  }
}

TEST(Cvtr, SampleCountMatchesHorizon) {
  const CvtrPredictor p;
  const Trajectory t = p.predict(state(0, 0, 0, 1), 0.0_s, 3.0_s, 0.25_s);
  EXPECT_EQ(t.size(), 13u);  // 12 steps + initial sample
}

TEST(Cvtr, StationaryActorStaysPut) {
  const CvtrPredictor p;
  const Trajectory t = p.predict(state(4, 5, 1.0, 0.0), 0.0_s, 2.0_s, 0.5_s);
  const VehicleState end = t.at(2.0_s);
  EXPECT_DOUBLE_EQ(end.x, 4.0);
  EXPECT_DOUBLE_EQ(end.y, 5.0);
}

}  // namespace
}  // namespace iprism::dynamics
