#include <gtest/gtest.h>

#include <cmath>

#include "roadmap/ring_road.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::roadmap {
namespace {

TEST(StraightRoad, RejectsBadParameters) {
  EXPECT_THROW(StraightRoad(0, 3.5, 100.0), std::invalid_argument);
  EXPECT_THROW(StraightRoad(2, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(StraightRoad(2, 3.5, 0.0), std::invalid_argument);
}

TEST(StraightRoad, ContainsAndLanes) {
  const StraightRoad r(3, 3.5, 100.0);
  EXPECT_TRUE(r.contains({50.0, 5.0}));
  EXPECT_FALSE(r.contains({50.0, -0.1}));
  EXPECT_FALSE(r.contains({50.0, 10.6}));
  EXPECT_FALSE(r.contains({-1.0, 5.0}));
  EXPECT_FALSE(r.contains({101.0, 5.0}));
  EXPECT_EQ(r.lane_at({50.0, 1.0}), 0);
  EXPECT_EQ(r.lane_at({50.0, 5.0}), 1);
  EXPECT_EQ(r.lane_at({50.0, 9.0}), 2);
  EXPECT_EQ(r.lane_at({50.0, 10.5}), 2);  // top edge belongs to the top lane
  EXPECT_EQ(r.lane_at({50.0, -5.0}), -1);
}

TEST(StraightRoad, FrenetIsIdentity) {
  const StraightRoad r(2, 3.5, 100.0);
  EXPECT_DOUBLE_EQ(r.arclength({12.0, 3.0}), 12.0);
  EXPECT_DOUBLE_EQ(r.lateral({12.0, 3.0}), 3.0);
  EXPECT_EQ(r.point_at(12.0, 3.0), (geom::Vec2{12.0, 3.0}));
  EXPECT_DOUBLE_EQ(r.heading_at(12.0), 0.0);
}

TEST(StraightRoad, LaneCenters) {
  const StraightRoad r(3, 3.5, 100.0);
  EXPECT_DOUBLE_EQ(r.lane_center_offset(0), 1.75);
  EXPECT_DOUBLE_EQ(r.lane_center_offset(2), 8.75);
  EXPECT_THROW(r.lane_center_offset(3), std::invalid_argument);
}

TEST(StraightRoad, ContainsBoxExactBand) {
  const StraightRoad r(2, 3.5, 100.0);
  // A box fully inside.
  EXPECT_TRUE(r.contains_box(geom::OrientedBox({50.0, 3.5}, 2.25, 1.0, 0.0), 0.0));
  // A box poking over the top edge.
  EXPECT_FALSE(r.contains_box(geom::OrientedBox({50.0, 6.5}, 2.25, 1.0, 0.0), 0.0));
  // The same box passes once the margin shrink covers the overhang.
  EXPECT_TRUE(r.contains_box(geom::OrientedBox({50.0, 6.4}, 2.25, 1.0, 0.0), 0.5));
}

TEST(RingRoad, RejectsBadParameters) {
  EXPECT_THROW(RingRoad(0, 3.5, 30.0), std::invalid_argument);
  EXPECT_THROW(RingRoad(2, 3.5, 0.0), std::invalid_argument);
}

TEST(RingRoad, ContainsAnnulus) {
  const RingRoad r(2, 3.5, 30.0);
  EXPECT_TRUE(r.contains({31.0, 0.0}));
  EXPECT_TRUE(r.contains({0.0, 36.9}));
  EXPECT_FALSE(r.contains({29.0, 0.0}));   // inside the hole
  EXPECT_FALSE(r.contains({37.5, 0.0}));   // outside
}

TEST(RingRoad, LaneZeroIsOutermost) {
  // Positive d = left of CCW travel = inward, so the rightmost lane
  // (lane 0) is the outer ring.
  const RingRoad r(2, 3.5, 30.0);
  EXPECT_EQ(r.lane_at({31.0, 0.0}), 1);  // inner ring
  EXPECT_EQ(r.lane_at({35.5, 0.0}), 0);  // outer ring
  EXPECT_EQ(r.lane_at({20.0, 0.0}), -1);
}

TEST(RingRoad, LateralPointsLeftOfTravel) {
  const RingRoad r(2, 3.5, 30.0);
  // d grows toward the centre (left of CCW travel).
  EXPECT_GT(r.lateral({31.0, 0.0}), r.lateral({36.0, 0.0}));
  EXPECT_NEAR(r.lateral({37.0, 0.0}), 0.0, 1e-12);  // outer edge
}

TEST(RingRoad, CurvatureMatchesDrivenRadius) {
  const RingRoad r(2, 3.5, 30.0);
  // Lane 0 centre: radius 37 - 1.75 = 35.25.
  EXPECT_NEAR(r.curvature_at(0.0, r.lane_center_offset(0)), 1.0 / 35.25, 1e-12);
}

TEST(RingRoad, FrenetRoundTrip) {
  const RingRoad r(2, 3.5, 30.0);
  for (double s : {0.0, 20.0, 90.0, 150.0}) {
    for (double d : {1.0, 5.0}) {
      const geom::Vec2 p = r.point_at(s, d);
      EXPECT_NEAR(r.arclength(p), s, 1e-9);
      EXPECT_NEAR(r.lateral(p), d, 1e-9);
    }
  }
}

TEST(RingRoad, HeadingIsTangent) {
  const RingRoad r(1, 3.5, 30.0);
  // At angle 0 (point (30+, 0)), CCW travel heads +y.
  EXPECT_NEAR(r.heading_at(0.0), M_PI / 2.0, 1e-12);
  // Quarter way round, travel heads -x.
  EXPECT_NEAR(std::abs(r.heading_at(r.road_length() / 4.0)), M_PI, 1e-9);
}

TEST(RingRoad, RoadLengthIsInnerCircumference) {
  const RingRoad r(2, 3.5, 30.0);
  EXPECT_NEAR(r.road_length(), 2.0 * M_PI * 30.0, 1e-12);
}

}  // namespace
}  // namespace iprism::roadmap
