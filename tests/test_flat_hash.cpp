// FlatHashGrid contract tests: insertion-order iteration independent of
// capacity, clear() that retains capacity without tombstones, and — via a
// counting global operator new — zero steady-state allocations when a
// pre-reserved grid is reused in a clear/insert cycle, which is exactly the
// reach-tube scratch access pattern (DESIGN.md §9).
#include "common/flat_hash.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Counting allocator: every allocation in this test binary bumps the
// counter, so "zero steady-state allocations" is asserted literally.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace iprism::common {
namespace {

TEST(FlatHashGrid, InsertFindContains) {
  FlatHashGrid<int> grid;
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.find(42u), nullptr);
  EXPECT_FALSE(grid.contains(42u));

  auto [v, inserted] = grid.insert(42u);
  EXPECT_TRUE(inserted);
  *v = 7;
  EXPECT_EQ(grid.size(), 1u);
  ASSERT_NE(grid.find(42u), nullptr);
  EXPECT_EQ(*grid.find(42u), 7);

  auto [v2, inserted2] = grid.insert(42u);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 7);
  EXPECT_EQ(grid.size(), 1u);
}

TEST(FlatHashGrid, IterationIsInsertionOrder) {
  FlatHashGrid<int> grid;
  const std::vector<std::uint64_t> keys = {9, 2, 0xFFFFFFFFFF, 3, 1, 0, 7777777};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    *grid.insert(keys[i]).first = static_cast<int>(i);
  }
  std::size_t i = 0;
  for (const auto& entry : grid) {
    EXPECT_EQ(entry.key, keys[i]);
    EXPECT_EQ(entry.value, static_cast<int>(i));
    ++i;
  }
  EXPECT_EQ(i, keys.size());
}

TEST(FlatHashGrid, GrowthRehashPreservesInsertionOrder) {
  // Insert far past the initial slot table so multiple rehashes occur, then
  // verify iteration still replays insertion order exactly.
  FlatHashGrid<std::uint64_t> grid;
  const std::size_t n = 10000;
  for (std::uint64_t k = 0; k < n; ++k) {
    *grid.insert(k * 0x9E3779B97F4A7C15ULL).first = k;
  }
  EXPECT_GT(grid.rehash_count(), 1u);
  std::uint64_t expected = 0;
  for (const auto& entry : grid) {
    ASSERT_EQ(entry.value, expected);
    ASSERT_EQ(entry.key, expected * 0x9E3779B97F4A7C15ULL);
    ++expected;
  }
  EXPECT_EQ(expected, n);
}

TEST(FlatHashGrid, IterationOrderIndependentOfReserve) {
  const std::vector<std::uint64_t> keys = {5, 1, 99, 2, 1000000007, 4, 3};
  std::vector<std::uint64_t> reference;
  for (std::size_t reserve : {std::size_t{0}, std::size_t{64}, std::size_t{4096}}) {
    FlatHashGrid<Unit> grid(reserve);
    for (std::uint64_t k : keys) grid.insert(k);
    std::vector<std::uint64_t> order;
    for (const auto& entry : grid) order.push_back(entry.key);
    if (reference.empty()) {
      reference = order;
    } else {
      EXPECT_EQ(order, reference) << "reserve=" << reserve;
    }
  }
}

TEST(FlatHashGrid, ClearRetainsCapacityTombstoneFree) {
  FlatHashGrid<int> grid;
  grid.reserve(512);
  const std::size_t slots = grid.slot_capacity();
  const std::size_t rehashes = grid.rehash_count();
  for (std::uint64_t k = 0; k < 512; ++k) grid.insert(k);
  EXPECT_EQ(grid.slot_capacity(), slots) << "reserve(512) must cover 512 inserts";

  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_EQ(grid.slot_capacity(), slots);
  EXPECT_EQ(grid.rehash_count(), rehashes);
  EXPECT_FALSE(grid.contains(3u));

  // Refill after clear: no tombstone debris — same capacity, same probe
  // health, and lookups behave as in a fresh table.
  for (std::uint64_t k = 0; k < 512; ++k) grid.insert(k + 1000000);
  EXPECT_EQ(grid.size(), 512u);
  EXPECT_EQ(grid.slot_capacity(), slots);
  EXPECT_EQ(grid.rehash_count(), rehashes);
  EXPECT_FALSE(grid.contains(3u));
  EXPECT_TRUE(grid.contains(1000003u));
}

TEST(FlatHashGrid, ZeroSteadyStateAllocationsWhenReused) {
  // The reach-tube scratch pattern: reserve once, then clear/insert cycles
  // within capacity. After the first cycle, the counting operator new must
  // see no allocations at all from the grid.
  FlatHashGrid<int> grid(1024);
  for (std::uint64_t k = 0; k < 1024; ++k) *grid.insert(k * 31).first = 1;
  grid.clear();

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (std::uint64_t k = 0; k < 1024; ++k) {
      *grid.insert(k * 131 + static_cast<std::uint64_t>(cycle)).first = cycle;
    }
    EXPECT_EQ(grid.size(), 1024u);
    grid.clear();
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "clear/insert cycles within reserved capacity must not allocate";
}

TEST(FlatKeySet, SetSemantics) {
  FlatKeySet set;
  EXPECT_TRUE(set.insert(10u).second);
  EXPECT_FALSE(set.insert(10u).second);
  EXPECT_TRUE(set.insert(11u).second);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(10u));
  EXPECT_FALSE(set.contains(12u));
}

TEST(FlatHashGrid, CollidingKeysProbeCorrectly) {
  // Keys engineered to collide in a 16-slot table still resolve: linear
  // probing must walk past occupied slots of other keys.
  FlatHashGrid<int> grid;
  std::vector<std::uint64_t> keys;
  std::uint64_t probe = 0;
  while (keys.size() < 12) {  // > 16 * 7/8 would rehash; stay below
    if ((splitmix64_mix(probe) & 15u) == 3u) keys.push_back(probe);
    ++probe;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    *grid.insert(keys[i]).first = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(grid.find(keys[i]), nullptr);
    EXPECT_EQ(*grid.find(keys[i]), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace iprism::common
