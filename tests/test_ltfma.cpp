#include "core/ltfma.hpp"

#include <gtest/gtest.h>

namespace iprism::core {
namespace {

TEST(Ltfma, CountsContiguousNonzeroSuffix) {
  const std::vector<double> risk = {0.0, 0.1, 0.0, 0.3, 0.5, 0.9};
  EXPECT_EQ(ltfma_steps(risk, 5), 3u);  // steps 3, 4, 5
}

TEST(Ltfma, ZeroAtAccidentMeansZeroLeadTime) {
  const std::vector<double> risk = {0.5, 0.5, 0.0};
  EXPECT_EQ(ltfma_steps(risk, 2), 0u);
}

TEST(Ltfma, AllNonzeroCountsEverything) {
  const std::vector<double> risk = {0.1, 0.2, 0.3};
  EXPECT_EQ(ltfma_steps(risk, 2), 3u);
}

TEST(Ltfma, AccidentMidSeriesIgnoresLaterValues) {
  const std::vector<double> risk = {0.0, 0.4, 0.4, 0.0, 0.9};
  EXPECT_EQ(ltfma_steps(risk, 2), 2u);
}

TEST(Ltfma, EpsilonThresholdFiltersNoise) {
  const std::vector<double> risk = {1e-12, 0.2, 0.2};
  EXPECT_EQ(ltfma_steps(risk, 2), 2u);  // the 1e-12 is "zero"
  EXPECT_EQ(ltfma_steps(risk, 2, /*eps=*/0.0), 3u);
}

TEST(Ltfma, SecondsScalesByDt) {
  const std::vector<double> risk = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(ltfma_seconds(risk, 3, 0.1), 0.4);
  EXPECT_DOUBLE_EQ(ltfma_seconds(risk, 3, 0.5), 2.0);
}

TEST(Ltfma, ValidatesArguments) {
  const std::vector<double> risk = {0.1};
  EXPECT_THROW(ltfma_steps(risk, 1), std::invalid_argument);
  EXPECT_THROW(ltfma_seconds(risk, 0, 0.0), std::invalid_argument);
}

TEST(Ltfma, SingleStepSeries) {
  EXPECT_EQ(ltfma_steps({0.7}, 0), 1u);
  EXPECT_EQ(ltfma_steps({0.0}, 0), 0u);
}

}  // namespace
}  // namespace iprism::core
