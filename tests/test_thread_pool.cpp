#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace iprism::common {
namespace {

TEST(ThreadPool, ZeroThreadsRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  auto future = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  // With no workers the task has already run by the time submit returns.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(future.get());
}

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ReusableAcrossManySubmitRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.load(), 50 * 8);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesInline) {
  ThreadPool pool(0);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Futures intentionally dropped; the destructor must still run them all.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForEach, NullPoolIsTheSerialLoop) {
  std::vector<int> order;
  parallel_for_each(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial path, caller thread
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for_each(&pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForEach, IndexOwnedSlotsAggregateInOrder) {
  ThreadPool pool(3);
  std::vector<double> results(64, 0.0);
  parallel_for_each(&pool, results.size(), [&](std::size_t i) {
    results[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelForEach, RethrowsTaskFailureAfterAllJobsFinish) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for_each(&pool, 16,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("job 7 failed");
                                   ++completed;
                                 }),
               std::runtime_error);
  // The failure of one index must not cancel the others.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelForEach, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_each(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SharedPool, SingletonIsStableAndSizedForTheHardware) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  // max(2, hardware_concurrency): never fewer than two workers, so the
  // shared pool is a real pool even on a single-core CI box.
  EXPECT_GE(a.thread_count(), 2u);
}

TEST(SharedPool, CurrentIsNullOffWorkersAndSelfOnWorkers) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  auto future = pool.submit([&pool] { return ThreadPool::current() == &pool; });
  EXPECT_TRUE(future.get());
  // A different pool's workers report their own pool, not this one.
  auto shared_future =
      ThreadPool::shared().submit([&pool] { return ThreadPool::current() != &pool; });
  EXPECT_TRUE(shared_future.get());
  EXPECT_EQ(ThreadPool::current(), nullptr);  // unchanged on the main thread
}

TEST(ParallelForEach, NestedFanOutOnTheSamePoolRunsInlineWithoutDeadlock) {
  // A task that fans out onto its own pool must not enqueue (with every
  // worker blocked in a nested wait nothing could ever run the nested jobs);
  // it degrades to the serial loop on the same worker. Saturate the pool so
  // a deadlock — not just slowness — is what a regression would produce.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> inline_runs{0};
  parallel_for_each(&pool, 8, [&](std::size_t) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    parallel_for_each(&pool, 4, [&](std::size_t) {
      ++inner_total;
      if (std::this_thread::get_id() == outer_thread) ++inline_runs;
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
  EXPECT_EQ(inline_runs.load(), 8 * 4);  // every nested index ran inline
}

TEST(ParallelForEach, NestedFanOutOnADifferentPoolStillFansOut) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  parallel_for_each(&outer, 4, [&](std::size_t) {
    parallel_for_each(&inner, 4, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 4 * 4);
}

}  // namespace
}  // namespace iprism::common
