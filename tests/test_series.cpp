#include "eval/series.hpp"

#include "common/units.hpp"

#include <gtest/gtest.h>

#include "core/ltfma.hpp"
#include "roadmap/straight_road.hpp"

namespace iprism::eval {
namespace {

roadmap::MapPtr test_map() {
  return std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);
}

/// Builds a synthetic episode: ego drives at 10 m/s toward a stopped car and
/// collides; everything recorded by hand so series semantics are exact.
EpisodeResult synthetic_accident_episode() {
  EpisodeResult r;
  r.map = test_map();
  r.dt = 0.1;
  ActorTrace ego;
  ego.id = 0;
  ego.is_ego = true;
  ego.dims = {4.5, 2.0};
  ActorTrace npc;
  npc.id = 1;
  npc.dims = {4.5, 2.0};
  dynamics::VehicleState es;
  es.x = 10.0;
  es.y = 5.25;
  es.speed = 10.0;
  dynamics::VehicleState ns;
  ns.x = 60.0;
  ns.y = 5.25;
  ns.speed = 0.0;
  const int steps = 46;  // gap closes 50 m - footprints at 10 m/s
  for (int i = 0; i <= steps; ++i) {
    ego.trajectory.append(common::Seconds{i * 0.1}, es);
    npc.trajectory.append(common::Seconds{i * 0.1}, ns);
    es.x += 1.0;
  }
  r.samples = steps + 1;
  r.actors = {std::move(ego), std::move(npc)};
  r.ego_accident = true;
  r.accident_step = steps;
  r.accident_time = steps * 0.1;
  return r;
}

TEST(Series, RiskSeriesMatchesSampleCount) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::TtcMetric ttc(3.0);
  const auto series = risk_series(ep, ttc_risk(ttc));
  EXPECT_EQ(series.size(), static_cast<std::size_t>(ep.samples));
}

TEST(Series, StrideRepeatsLastValue) {
  const EpisodeResult ep = synthetic_accident_episode();
  int calls = 0;
  const RiskFn counting = [&calls](const core::SceneSnapshot&,
                                   const std::vector<core::ActorForecast>&) {
    ++calls;
    return static_cast<double>(calls);
  };
  const auto series = risk_series(ep, counting, /*stride=*/3);
  EXPECT_EQ(calls, (ep.samples + 2) / 3);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);  // repeated
  EXPECT_DOUBLE_EQ(series[2], 1.0);
  EXPECT_DOUBLE_EQ(series[3], 2.0);
}

TEST(Series, StrideValidation) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::TtcMetric ttc(3.0);
  EXPECT_THROW(risk_series(ep, ttc_risk(ttc), 0), std::invalid_argument);
}

TEST(Series, TtcRiskRisesBeforeImpact) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::TtcMetric ttc(3.0);
  const auto series = risk_series(ep, ttc_risk(ttc));
  EXPECT_DOUBLE_EQ(series.front(), 0.0);  // TTC ~4.6 s at the start
  EXPECT_GT(series[ep.accident_step - 1], 0.0);
}

TEST(Series, BackwardLtfmaMatchesForwardComputation) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::TtcMetric ttc(3.0);
  const auto series = risk_series(ep, ttc_risk(ttc));
  const double forward =
      core::ltfma_seconds(series, static_cast<std::size_t>(ep.accident_step), ep.dt);
  const double backward = ltfma_backward(ep, ttc_risk(ttc));
  EXPECT_NEAR(backward, forward, 1e-9);
}

TEST(Series, BackwardLtfmaRequiresAccident) {
  EpisodeResult ep = synthetic_accident_episode();
  ep.ego_accident = false;
  const core::TtcMetric ttc(3.0);
  EXPECT_THROW(ltfma_backward(ep, ttc_risk(ttc)), std::invalid_argument);
}

TEST(Series, BackwardLtfmaWithStrideApproximatesExact) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::TtcMetric ttc(3.0);
  const double exact = ltfma_backward(ep, ttc_risk(ttc), 1);
  const double strided = ltfma_backward(ep, ttc_risk(ttc), 2);
  EXPECT_NEAR(strided, exact, 2 * ep.dt + 1e-9);
}

TEST(Series, StiAndCipaRisksOperateOnEpisode) {
  const EpisodeResult ep = synthetic_accident_episode();
  const core::StiCalculator sti;
  const core::DistCipaMetric cipa(25.0);
  const double sti_lead = ltfma_backward(ep, sti_risk(sti), 2);
  const double cipa_lead = ltfma_backward(ep, dist_cipa_risk(cipa));
  EXPECT_GT(sti_lead, 0.0);
  EXPECT_GT(cipa_lead, 0.0);
  // STI sees the stopped car as soon as the reach tube touches its future
  // footprint — earlier than the 25 m proximity rule here (3 s at 10 m/s +
  // tube growth vs 25 m).
  EXPECT_GE(sti_lead, cipa_lead - 0.3);
}

}  // namespace
}  // namespace iprism::eval
