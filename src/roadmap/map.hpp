// Drivable-area model M (paper Eq. 1): the map consulted by the reach-tube
// computation ("within the boundary of M"), the scenario generator, and the
// agents. Two concrete maps cover the paper's evaluation: a straight
// multi-lane road (all five NHTSA typologies) and a ring road (the
// roundabout extension of §V-C).
//
// Maps expose a lane-relative (Frenet) frame: `s` is distance along the
// road, `d` is signed lateral offset from the road reference line
// (positive = left of travel).
#pragma once

#include <memory>

#include "geom/obb.hpp"
#include "geom/vec2.hpp"

namespace iprism::roadmap {

/// Abstract drivable area with lane structure and a Frenet frame.
class DrivableMap {
 public:
  virtual ~DrivableMap() = default;

  /// Number of parallel lanes (>= 1).
  virtual int lane_count() const = 0;
  /// Lane width in metres (uniform across lanes).
  virtual double lane_width() const = 0;
  /// Usable longitudinal extent [0, road_length] in the Frenet frame.
  virtual double road_length() const = 0;

  /// True if the point lies on the drivable surface.
  virtual bool contains(const geom::Vec2& p) const = 0;

  /// Lane index at the point (0 = rightmost), or -1 if off-road.
  virtual int lane_at(const geom::Vec2& p) const = 0;

  /// Frenet longitudinal coordinate of the point.
  virtual double arclength(const geom::Vec2& p) const = 0;
  /// Frenet lateral coordinate (signed offset from the road reference line).
  virtual double lateral(const geom::Vec2& p) const = 0;
  /// World point for Frenet coordinates (s, d).
  virtual geom::Vec2 point_at(double s, double d) const = 0;
  /// Travel-direction heading at longitudinal coordinate s.
  virtual double heading_at(double s) const = 0;
  /// Signed curvature of the path followed at lateral offset d (1/m,
  /// positive = turning left). Zero for straight roads.
  virtual double curvature_at(double s, double d) const;

  /// Lateral (Frenet d) coordinate of the centre of the given lane.
  virtual double lane_center_offset(int lane) const = 0;

  /// True if the whole footprint (a margin-shrunk version of the box) lies
  /// on the drivable surface. The default checks the four corners pulled in
  /// by `margin` metres toward the box centre; analytic maps may override
  /// with an exact band test.
  virtual bool contains_box(const geom::OrientedBox& box, double margin = 0.0) const;

  /// Same predicate as contains_box, taking the footprint pieces the batched
  /// reach-tube kernels (geom/batch.hpp) already hold in lane buffers —
  /// centre, half extents, cached long axis, and the corner AABB — instead
  /// of an OrientedBox. Must agree with contains_box for the box those
  /// pieces describe: a map overriding one must override the other to the
  /// same predicate (both defaults here share one implementation, and
  /// StraightRoad overrides both with the same band test; the
  /// GeomKernelIdentity suite fails on the first divergence).
  virtual bool contains_box_geom(const geom::Vec2& center, double half_length,
                                 double half_width, const geom::Vec2& axis_long,
                                 const geom::Aabb& aabb, double margin) const;
};

using MapPtr = std::shared_ptr<const DrivableMap>;

}  // namespace iprism::roadmap
