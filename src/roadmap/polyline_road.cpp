#include "roadmap/polyline_road.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::roadmap {

PolylineRoad::PolylineRoad(geom::Polyline reference, int lanes, double lane_width)
    : reference_(std::move(reference)), lanes_(lanes), lane_width_(lane_width) {
  IPRISM_CHECK(lanes >= 1, "PolylineRoad: need at least one lane");
  IPRISM_CHECK(lane_width > 0.0, "PolylineRoad: lane_width must be positive");
}

bool PolylineRoad::contains(const geom::Vec2& p) const {
  const double s = reference_.project(p);
  const geom::Vec2 on = reference_.point_at(s);
  const geom::Vec2 tangent = geom::heading_vec(reference_.heading_at(s));
  const geom::Vec2 rel = p - on;
  const double d = tangent.cross(rel);
  // Beyond either end the projection clamps, leaving a large longitudinal
  // residual; interior points have only the small residual of the polyline
  // discretization (proportional to the lateral offset times the per-vertex
  // heading step).
  if (std::abs(rel.dot(tangent)) > 0.05 + 0.05 * std::abs(d)) return false;
  return d >= 0.0 && d <= lanes_ * lane_width_;
}

int PolylineRoad::lane_at(const geom::Vec2& p) const {
  if (!contains(p)) return -1;
  const double d = reference_.lateral_offset(p);
  const int lane = static_cast<int>(d / lane_width_);
  return std::clamp(lane, 0, lanes_ - 1);
}

double PolylineRoad::arclength(const geom::Vec2& p) const { return reference_.project(p); }

double PolylineRoad::lateral(const geom::Vec2& p) const {
  return reference_.lateral_offset(p);
}

geom::Vec2 PolylineRoad::point_at(double s, double d) const {
  const geom::Vec2 on = reference_.point_at(s);
  const geom::Vec2 left = geom::heading_vec(reference_.heading_at(s)).perp();
  return on + left * d;
}

double PolylineRoad::heading_at(double s) const { return reference_.heading_at(s); }

double PolylineRoad::curvature_at(double s, double d) const {
  // Centreline curvature by finite differences, corrected for the offset
  // path's radius (r_offset = r_ref - d for a left turn).
  constexpr double kDs = 2.0;
  const double s0 = std::max(s - kDs / 2.0, 0.0);
  const double s1 = std::min(s + kDs / 2.0, reference_.length());
  if (s1 - s0 < 1e-9) return 0.0;
  const double kappa_ref =
      geom::angle_diff(reference_.heading_at(s1), reference_.heading_at(s0)) / (s1 - s0);
  const double denom = 1.0 - kappa_ref * d;
  if (std::abs(denom) < 1e-3) return kappa_ref > 0.0 ? 1e3 : -1e3;
  return kappa_ref / denom;
}

double PolylineRoad::lane_center_offset(int lane) const {
  IPRISM_CHECK(lane >= 0 && lane < lanes_, "PolylineRoad: lane index out of range");
  return (lane + 0.5) * lane_width_;
}

PolylineRoad PolylineRoad::s_curve(int lanes, double lane_width, double arc_radius,
                                   double arc_angle, int samples_per_arc) {
  IPRISM_CHECK(arc_radius > 0.0 && arc_angle > 0.0 && samples_per_arc >= 4,
               "PolylineRoad::s_curve: bad arc parameters");
  std::vector<geom::Vec2> pts;
  // First arc: turn left around a centre above the origin.
  const geom::Vec2 c1{0.0, arc_radius};
  for (int i = 0; i <= samples_per_arc; ++i) {
    const double a = -M_PI / 2.0 + arc_angle * i / samples_per_arc;
    pts.push_back(c1 + geom::Vec2{std::cos(a), std::sin(a)} * arc_radius);
  }
  // Second arc: turn right, tangent-continuous with the first.
  const geom::Vec2 joint = pts.back();
  const double joint_heading = arc_angle;  // started heading +x, turned left
  const geom::Vec2 c2 = joint + geom::heading_vec(joint_heading).perp() * -arc_radius;
  for (int i = 1; i <= samples_per_arc; ++i) {
    const double a = (M_PI / 2.0 + joint_heading) - arc_angle * i / samples_per_arc;
    pts.push_back(c2 + geom::Vec2{std::cos(a), std::sin(a)} * arc_radius);
  }
  return PolylineRoad(geom::Polyline(std::move(pts)), lanes, lane_width);
}

}  // namespace iprism::roadmap
