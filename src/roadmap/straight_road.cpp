#include "roadmap/straight_road.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::roadmap {

double DrivableMap::curvature_at(double /*s*/, double /*d*/) const { return 0.0; }

namespace {

/// Shared body of the two contains_box* defaults: the four margin-shrunk
/// extent corners must lie on the drivable surface. One implementation so
/// the OrientedBox and geometry-pieces entry points cannot drift apart.
bool shrunk_corners_on_surface(const DrivableMap& map, const geom::Vec2& center,
                               const geom::Vec2& axis_long, double half_length,
                               double half_width, double margin) {
  const geom::Vec2 fwd = axis_long * std::max(half_length - margin, 0.0);
  const geom::Vec2 left = axis_long.perp() * std::max(half_width - margin, 0.0);
  return map.contains(center + fwd + left) && map.contains(center + fwd - left) &&
         map.contains(center - fwd + left) && map.contains(center - fwd - left);
}

}  // namespace

bool DrivableMap::contains_box(const geom::OrientedBox& box, double margin) const {
  return shrunk_corners_on_surface(*this, box.center(), box.axis_long(), box.half_length(),
                                   box.half_width(), margin);
}

bool DrivableMap::contains_box_geom(const geom::Vec2& center, double half_length,
                                    double half_width, const geom::Vec2& axis_long,
                                    const geom::Aabb& /*aabb*/, double margin) const {
  return shrunk_corners_on_surface(*this, center, axis_long, half_length, half_width,
                                   margin);
}

StraightRoad::StraightRoad(int lanes, double lane_width, double length)
    : lanes_(lanes), lane_width_(lane_width), length_(length) {
  IPRISM_CHECK(lanes >= 1, "StraightRoad: need at least one lane");
  IPRISM_CHECK(lane_width > 0.0 && length > 0.0,
               "StraightRoad: lane_width and length must be positive");
}

bool StraightRoad::contains(const geom::Vec2& p) const {
  return p.x >= 0.0 && p.x <= length_ && p.y >= 0.0 && p.y <= lanes_ * lane_width_;
}

int StraightRoad::lane_at(const geom::Vec2& p) const {
  if (!contains(p)) return -1;
  const int lane = static_cast<int>(p.y / lane_width_);
  return std::min(lane, lanes_ - 1);
}

double StraightRoad::lane_center_offset(int lane) const {
  IPRISM_CHECK(lane >= 0 && lane < lanes_, "StraightRoad: lane index out of range");
  return (lane + 0.5) * lane_width_;
}

bool StraightRoad::contains_box(const geom::OrientedBox& box, double margin) const {
  return contains_box_geom(box.center(), box.half_length(), box.half_width(),
                           box.axis_long(), box.aabb(), margin);
}

bool StraightRoad::contains_box_geom(const geom::Vec2& center, double /*half_length*/,
                                     double /*half_width*/, const geom::Vec2& /*axis_long*/,
                                     const geom::Aabb& aabb, double margin) const {
  // Exact: the box corners define the extremes on an axis-aligned band.
  const geom::Aabb bb = aabb.inflated(-margin);
  if (bb.empty()) return contains(center);
  return bb.lo.x >= 0.0 && bb.hi.x <= length_ && bb.lo.y >= 0.0 &&
         bb.hi.y <= lanes_ * lane_width_;
}

}  // namespace iprism::roadmap
