#include "roadmap/straight_road.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::roadmap {

double DrivableMap::curvature_at(double /*s*/, double /*d*/) const { return 0.0; }

bool DrivableMap::contains_box(const geom::OrientedBox& box, double margin) const {
  const geom::Vec2 fwd = box.axis_long() * std::max(box.half_length() - margin, 0.0);
  const geom::Vec2 left = box.axis_lat() * std::max(box.half_width() - margin, 0.0);
  return contains(box.center() + fwd + left) && contains(box.center() + fwd - left) &&
         contains(box.center() - fwd + left) && contains(box.center() - fwd - left);
}

StraightRoad::StraightRoad(int lanes, double lane_width, double length)
    : lanes_(lanes), lane_width_(lane_width), length_(length) {
  IPRISM_CHECK(lanes >= 1, "StraightRoad: need at least one lane");
  IPRISM_CHECK(lane_width > 0.0 && length > 0.0,
               "StraightRoad: lane_width and length must be positive");
}

bool StraightRoad::contains(const geom::Vec2& p) const {
  return p.x >= 0.0 && p.x <= length_ && p.y >= 0.0 && p.y <= lanes_ * lane_width_;
}

int StraightRoad::lane_at(const geom::Vec2& p) const {
  if (!contains(p)) return -1;
  const int lane = static_cast<int>(p.y / lane_width_);
  return std::min(lane, lanes_ - 1);
}

double StraightRoad::lane_center_offset(int lane) const {
  IPRISM_CHECK(lane >= 0 && lane < lanes_, "StraightRoad: lane index out of range");
  return (lane + 0.5) * lane_width_;
}

bool StraightRoad::contains_box(const geom::OrientedBox& box, double margin) const {
  // Exact: the box corners define the extremes on an axis-aligned band.
  const geom::Aabb bb = box.aabb().inflated(-margin);
  if (bb.empty()) return contains(box.center());
  return bb.lo.x >= 0.0 && bb.hi.x <= length_ && bb.lo.y >= 0.0 &&
         bb.hi.y <= lanes_ * lane_width_;
}

}  // namespace iprism::roadmap
