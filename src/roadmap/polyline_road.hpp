// General curved road: a multi-lane corridor around an arbitrary polyline
// reference line (the road's right edge). Generalizes StraightRoad/RingRoad
// to S-curves, chicanes, and arbitrary recorded centrelines — the map shape
// real HD-map extracts take.
//
// Frenet frame: s = arclength along the reference polyline, d = signed
// offset to the *left* of travel (the library-wide convention). The
// drivable surface is d in [0, lane_count * lane_width].
#pragma once

#include "geom/polyline.hpp"
#include "roadmap/map.hpp"

namespace iprism::roadmap {

class PolylineRoad final : public DrivableMap {
 public:
  /// `reference` is the right road edge; must have at least two points
  /// (checked by Polyline). Curvature is estimated by finite differences of
  /// the polyline heading, so densely sampled references give smooth
  /// steering feedforward.
  PolylineRoad(geom::Polyline reference, int lanes, double lane_width);

  int lane_count() const override { return lanes_; }
  double lane_width() const override { return lane_width_; }
  double road_length() const override { return reference_.length(); }

  bool contains(const geom::Vec2& p) const override;
  int lane_at(const geom::Vec2& p) const override;

  double arclength(const geom::Vec2& p) const override;
  double lateral(const geom::Vec2& p) const override;
  geom::Vec2 point_at(double s, double d) const override;
  double heading_at(double s) const override;
  double curvature_at(double s, double d) const override;

  double lane_center_offset(int lane) const override;

  const geom::Polyline& reference() const { return reference_; }

  /// Builds a smooth S-curve road (two opposing arcs) — a convenient
  /// test/demo map exercising both curvature signs.
  static PolylineRoad s_curve(int lanes, double lane_width, double arc_radius = 60.0,
                              double arc_angle = 1.2, int samples_per_arc = 48);

 private:
  geom::Polyline reference_;
  int lanes_;
  double lane_width_;
};

}  // namespace iprism::roadmap
