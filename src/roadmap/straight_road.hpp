// Straight multi-lane road along +x. Lane 0 is the rightmost (lowest-y)
// lane; the road surface spans y in [0, lane_count * lane_width] and
// x in [0, length].
#pragma once

#include "roadmap/map.hpp"

namespace iprism::roadmap {

class StraightRoad final : public DrivableMap {
 public:
  /// lanes >= 1, lane_width > 0, length > 0 (checked).
  StraightRoad(int lanes, double lane_width, double length);

  int lane_count() const override { return lanes_; }
  double lane_width() const override { return lane_width_; }
  double road_length() const override { return length_; }

  bool contains(const geom::Vec2& p) const override;
  int lane_at(const geom::Vec2& p) const override;

  double arclength(const geom::Vec2& p) const override { return p.x; }
  double lateral(const geom::Vec2& p) const override { return p.y; }
  geom::Vec2 point_at(double s, double d) const override { return {s, d}; }
  double heading_at(double /*s*/) const override { return 0.0; }

  double lane_center_offset(int lane) const override;

  bool contains_box(const geom::OrientedBox& box, double margin) const override;
  bool contains_box_geom(const geom::Vec2& center, double half_length, double half_width,
                         const geom::Vec2& axis_long, const geom::Aabb& aabb,
                         double margin) const override;

 private:
  int lanes_;
  double lane_width_;
  double length_;
};

}  // namespace iprism::roadmap
