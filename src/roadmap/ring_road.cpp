#include "roadmap/ring_road.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::roadmap {

RingRoad::RingRoad(int lanes, double lane_width, double inner_radius)
    : lanes_(lanes), lane_width_(lane_width), inner_radius_(inner_radius) {
  IPRISM_CHECK(lanes >= 1, "RingRoad: need at least one lane");
  IPRISM_CHECK(lane_width > 0.0 && inner_radius > 0.0,
               "RingRoad: lane_width and inner_radius must be positive");
}

double RingRoad::road_length() const { return 2.0 * M_PI * inner_radius_; }

bool RingRoad::contains(const geom::Vec2& p) const {
  const double r = p.norm();
  return r >= inner_radius_ && r <= outer_radius();
}

int RingRoad::lane_at(const geom::Vec2& p) const {
  if (!contains(p)) return -1;
  const int lane = static_cast<int>((outer_radius() - p.norm()) / lane_width_);
  return std::min(lane, lanes_ - 1);
}

double RingRoad::arclength(const geom::Vec2& p) const {
  double angle = std::atan2(p.y, p.x);
  if (angle < 0.0) angle += 2.0 * M_PI;
  return inner_radius_ * angle;
}

double RingRoad::lateral(const geom::Vec2& p) const { return outer_radius() - p.norm(); }

geom::Vec2 RingRoad::point_at(double s, double d) const {
  const double angle = s / inner_radius_;
  const double r = outer_radius() - d;
  return {r * std::cos(angle), r * std::sin(angle)};
}

double RingRoad::heading_at(double s) const {
  // CCW travel: heading is tangent, 90 degrees ahead of the radial angle.
  return geom::wrap_angle(s / inner_radius_ + M_PI / 2.0);
}

double RingRoad::curvature_at(double /*s*/, double d) const {
  return 1.0 / std::max(outer_radius() - d, 1.0);
}

double RingRoad::lane_center_offset(int lane) const {
  IPRISM_CHECK(lane >= 0 && lane < lanes_, "RingRoad: lane index out of range");
  return (lane + 0.5) * lane_width_;
}

}  // namespace iprism::roadmap
