// Circular (roundabout) road: an annulus centred at the origin, driven
// counter-clockwise. The Frenet lateral axis follows the library-wide
// convention "positive d = left of travel", which on a CCW ring points
// *inward*; lane 0 (the rightmost lane) is therefore the outermost ring.
// Used for the paper's roundabout + ghost cut-in extension (§V-C).
#pragma once

#include "roadmap/map.hpp"

namespace iprism::roadmap {

class RingRoad final : public DrivableMap {
 public:
  /// `inner_radius` is the radius of the inner road edge; lanes stack
  /// outward from it. All parameters positive (checked).
  RingRoad(int lanes, double lane_width, double inner_radius);

  int lane_count() const override { return lanes_; }
  double lane_width() const override { return lane_width_; }
  /// Circumference of the reference line (the inner edge).
  double road_length() const override;

  bool contains(const geom::Vec2& p) const override;
  int lane_at(const geom::Vec2& p) const override;

  /// s = inner_radius * unwrapped CCW angle, in [0, circumference).
  double arclength(const geom::Vec2& p) const override;
  /// d = outer_radius - radius: distance to the *left* of the outer edge.
  double lateral(const geom::Vec2& p) const override;
  geom::Vec2 point_at(double s, double d) const override;
  double heading_at(double s) const override;

  double lane_center_offset(int lane) const override;

  /// CCW travel on a circle of radius outer_radius - d (turning left).
  double curvature_at(double s, double d) const override;

  double inner_radius() const { return inner_radius_; }
  double outer_radius() const { return inner_radius_ + lanes_ * lane_width_; }

 private:
  int lanes_;
  double lane_width_;
  double inner_radius_;
};

}  // namespace iprism::roadmap
