#include "common/cli.hpp"

#include <stdexcept>

namespace iprism::common {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

int CliArgs::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

}  // namespace iprism::common
