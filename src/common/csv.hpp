// CSV emission for benchmark series (Fig. 4 / Fig. 5 / Fig. 6 data dumps),
// so the plotted figures can be regenerated from the printed data.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace iprism::common {

/// Writes one header row followed by data rows. Throws std::runtime_error if
/// the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

}  // namespace iprism::common
