#include "common/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <vector>

namespace iprism::common::telemetry {
namespace {

// The trace epoch is the first clock read, so trace timestamps start near
// zero and Chrome's viewer opens at the interesting part instead of hours
// of dead time since boot.
std::uint64_t steady_ns_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// JSON string escaping for metric names (names are identifiers in practice,
// but the exporter must not be able to emit malformed JSON).
void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control chars never appear in metric names
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint64_t trace_now_ns() {
  static const std::uint64_t epoch = steady_ns_raw();
  return steady_ns_raw() - epoch;
}

// --- Histogram -------------------------------------------------------------
//
// Bucket layout: 4 linear sub-buckets per power-of-two range ("log-linear",
// the HdrHistogram trick at minimal resolution). For a value v with
// bit_width w >= 3, the bucket is 4*(w-3) + the top-two-bits-after-the-MSB
// offset; values 0..7 map to buckets 0..7 exactly. Worst-case relative
// error of the bucket midpoint is 12.5%, plenty for p50/p95/p99 latencies.

std::size_t Histogram::bucket_of(std::uint64_t ns) {
  if (ns < 8) {
    return static_cast<std::size_t>(ns);
  }
  const int w = std::bit_width(ns);           // >= 4
  const int shift = w - 3;                    // bring top 3 bits down
  const auto top3 = static_cast<std::size_t>(ns >> shift);  // in [4, 8)
  const auto bucket = static_cast<std::size_t>(w - 3) * 4 + (top3 - 4) + 4;
  return std::min(bucket, kBucketCount - 1);
}

std::uint64_t Histogram::bucket_mid(std::size_t bucket) {
  if (bucket < 8) {
    return bucket;
  }
  const std::size_t idx = bucket - 4;         // undo the +4 offset
  const int w = static_cast<int>(idx / 4) + 3;
  const std::uint64_t sub = idx % 4;
  const std::uint64_t lo = (std::uint64_t{4} + sub) << (w - 3);
  const std::uint64_t width = std::uint64_t{1} << (w - 3);
  return lo + width / 2;
}

void Histogram::record(std::uint64_t ns) {
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  // min/max via CAS loops: contention is rare (hot-path records mostly
  // leave min/max untouched after warm-up) and the loop is wait-free in
  // the common no-update case.
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur && !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur && !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~std::uint64_t{0} ? 0 : m;
}

std::uint64_t Histogram::percentile_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  const double clamped = std::clamp(q, 0.0, 100.0);
  // Rank of the target observation (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(clamped / 100.0 * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return bucket_mid(b);
    }
  }
  return max();  // counts raced upward mid-walk; max is the safe answer
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- TraceRing -------------------------------------------------------------

std::uint64_t TraceRing::snapshot(TraceEvent* out, std::size_t capacity) const {
  const MutexLock lock(mutex_);
  const std::uint64_t total = head_;
  const std::size_t retained =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, kCapacity));
  const std::size_t n = std::min(retained, capacity);
  // Oldest retained event sits at head_ % kCapacity once the ring has
  // wrapped; before that the ring is a plain array starting at 0.
  const std::size_t start =
      total > kCapacity ? static_cast<std::size_t>(total % kCapacity) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = events_[(start + i) % kCapacity];
  }
  return total;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky singleton: never destroyed, so metric references cached in
  // function-local statics and thread_local ring pointers stay valid for
  // the whole process lifetime, including static-destruction order.
  static MetricsRegistry* inst = new MetricsRegistry();
  return *inst;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mutex_);
  for (auto& e : counters_) {
    if (e.name == name) {
      return e.value;
    }
  }
  // emplace + assign the name: the Named* structs hold atomics, so they are
  // neither copyable nor movable; deque::emplace_back constructs in place
  // and never relocates existing elements.
  counters_.emplace_back();
  counters_.back().name = std::string(name);
  return counters_.back().value;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const MutexLock lock(mutex_);
  for (auto& e : gauges_) {
    if (e.name == name) {
      return e.value;
    }
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  return gauges_.back().value;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const MutexLock lock(mutex_);
  for (auto& e : histograms_) {
    if (e.name == name) {
      return e.value;
    }
  }
  histograms_.emplace_back();
  histograms_.back().name = std::string(name);
  return histograms_.back().value;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const MutexLock lock(mutex_);
  for (const auto& e : counters_) {
    if (e.name == name) {
      return &e.value;
    }
  }
  return nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const MutexLock lock(mutex_);
  for (const auto& e : gauges_) {
    if (e.name == name) {
      return &e.value;
    }
  }
  return nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const MutexLock lock(mutex_);
  for (const auto& e : histograms_) {
    if (e.name == name) {
      return &e.value;
    }
  }
  return nullptr;
}

TraceRing& MetricsRegistry::this_thread_ring() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    const MutexLock lock(mutex_);
    rings_.emplace_back(static_cast<std::uint32_t>(rings_.size()));
    ring = &rings_.back();
  }
  return *ring;
}

void MetricsRegistry::write_chrome_trace(std::ostream& os) const {
  // Build the JSON in a string first so a single stream write emits the
  // whole document (cheap atomicity against interleaved logging).
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";

  {
    // Snapshot ring contents under the registry lock (ring count is
    // guarded), then each ring's own lock inside snapshot().
    const MutexLock lock(mutex_);
    bool first = true;
    std::vector<TraceEvent> events(TraceRing::kCapacity);
    for (const auto& ring : rings_) {
      const std::uint64_t total = ring.snapshot(events.data(), events.size());
      const std::size_t retained =
          static_cast<std::size_t>(std::min<std::uint64_t>(total, TraceRing::kCapacity));
      for (std::size_t i = 0; i < retained; ++i) {
        const TraceEvent& ev = events[i];
        if (ev.name == nullptr) {
          continue;
        }
        if (!first) {
          out += ',';
        }
        first = false;
        out += "{\"name\":\"";
        append_json_escaped(out, ev.name);
        out += "\",\"cat\":\"";
        append_json_escaped(out, ev.category == nullptr ? "iprism" : ev.category);
        // Chrome trace timestamps are microseconds (float); keep three
        // decimals of sub-microsecond resolution.
        out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        out += std::to_string(ring.tid());
        out += ",\"ts\":";
        out += std::to_string(static_cast<double>(ev.start_ns) / 1000.0);
        out += ",\"dur\":";
        out += std::to_string(static_cast<double>(ev.dur_ns) / 1000.0);
        out += '}';
      }
    }
    out += "],\"metrics\":{\"counters\":{";
    first = true;
    for (const auto& e : counters_) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      append_json_escaped(out, e.name);
      out += "\":";
      out += std::to_string(e.value.value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& e : gauges_) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      append_json_escaped(out, e.name);
      out += "\":";
      out += std::to_string(e.value.value());
    }
    out += "},\"histograms_ns\":{";
    first = true;
    for (const auto& e : histograms_) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      append_json_escaped(out, e.name);
      out += "\":{\"count\":";
      out += std::to_string(e.value.count());
      out += ",\"mean\":";
      out += std::to_string(e.value.mean());
      out += ",\"min\":";
      out += std::to_string(e.value.min());
      out += ",\"p50\":";
      out += std::to_string(e.value.percentile_ns(50.0));
      out += ",\"p95\":";
      out += std::to_string(e.value.percentile_ns(95.0));
      out += ",\"p99\":";
      out += std::to_string(e.value.percentile_ns(99.0));
      out += ",\"max\":";
      out += std::to_string(e.value.max());
      out += '}';
    }
    out += "}}}";
  }

  os << out;
}

bool MetricsRegistry::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  write_chrome_trace(os);
  return os.good();
}

void MetricsRegistry::reset_for_testing() {
  const MutexLock lock(mutex_);
  for (auto& e : counters_) {
    e.value.reset();
  }
  for (auto& e : gauges_) {
    e.value.reset();
  }
  for (auto& e : histograms_) {
    e.value.reset();
  }
  for (auto& ring : rings_) {
    ring.reset();
  }
}

}  // namespace iprism::common::telemetry
