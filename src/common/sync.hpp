// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry clang thread-safety capability
// attributes (src/common/annotations.hpp).
//
// libstdc++'s std::mutex has no capability attribute, so a member declared
// IPRISM_GUARDED_BY(some_std_mutex) trips -Wthread-safety-attributes
// ("argument is not a capability") instead of enabling analysis. These
// wrappers are the annotated capability types; they add zero state beyond
// the wrapped primitive and every method is a forwarding inline.
//
// Pattern (see ThreadPool for the live example):
//
//   common::Mutex mutex_;
//   int shared_ IPRISM_GUARDED_BY(mutex_);
//   ...
//   common::MutexLock lock(mutex_);   // scoped acquire, analysis-visible
//   shared_ = 1;                      // ok: mutex_ held
//
// Condition waits release and re-acquire the mutex internally; the analysis
// treats the capability as continuously held across wait() — conservative
// and standard for capability analysis (the caller's invariant "predicate
// re-checked under the lock" is exactly the while-loop idiom).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace iprism::common {

/// Annotated exclusive-lock capability wrapping std::mutex.
class IPRISM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IPRISM_ACQUIRE() { m_.lock(); }
  void unlock() IPRISM_RELEASE() { m_.unlock(); }
  bool try_lock() IPRISM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock over Mutex (std::unique_lock underneath so CondVar can wait
/// on it). Analysis-wise: acquires at construction, releases at scope exit.
class IPRISM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IPRISM_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() IPRISM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexLock. Waits must be wrapped in the
/// usual predicate re-check loop:
///
///   while (!predicate()) cv.wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, blocks, and re-acquires before
  /// returning. Spurious wakeups possible — always re-check the predicate.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace iprism::common
