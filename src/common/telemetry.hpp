// Lightweight, thread-safe observability for the STI pipeline (DESIGN.md
// §11): a process-wide MetricsRegistry of counters, gauges, and fixed-bucket
// latency histograms (p50/p95/p99), RAII ScopedTimers, and per-thread trace
// rings exporting Chrome about://tracing JSON.
//
// Design constraints, in order:
//   1. Compile-time removable. Instrumentation goes through the IPRISM_*
//      macros below; without IPRISM_ENABLE_TELEMETRY every macro expands to
//      nothing (arguments unevaluated), so the instrumented hot paths are
//      bit-for-bit the uninstrumented code. The bench criterion is ≤1%
//      on BM_TubeHotpath*/BM_TubeHotpathStiBaseline with telemetry off.
//   2. Allocation-free on the hot path. Registration (the first time a
//      macro's enclosing scope runs) takes the registry mutex and may
//      allocate; every subsequent hit is a relaxed atomic add (counters,
//      histograms), an atomic store (gauges), or a ring write under a
//      per-thread uncontended mutex. Histogram buckets are a fixed array;
//      trace rings are fixed-capacity (overwrite-oldest) — consistent with
//      DESIGN §9's container discipline.
//   3. Thread-safe by annotation. All shared mutable state is capability-
//      annotated (IPRISM_GUARDED_BY) like the ThreadPool's queue, so clang
//      proves the lock discipline at compile time and tsan re-checks it at
//      runtime (tests/test_telemetry.cpp runs under the tsan preset).
//
// Timing uses std::chrono::steady_clock, and this file (plus bench_util) is
// the only sanctioned home for it — tools/iprism_lint.py telemetry-discipline
// keeps ad-hoc clock reads from bypassing the registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/annotations.hpp"
#include "common/sync.hpp"

namespace iprism::common::telemetry {

/// Nanoseconds since the process's trace epoch (the first telemetry clock
/// read). The single sanctioned steady_clock access point.
std::uint64_t trace_now_ns();

/// Monotonic event counter. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, current risk level).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram: 4 sub-buckets per power of two over
/// uint64 nanoseconds (relative bucket error ≤ 12.5%), plus exact count,
/// sum, min, and max. record() touches only pre-sized atomics — no
/// allocation, no lock. Percentiles return the midpoint of the bucket that
/// crosses the requested rank (0 when empty — telemetry reads are
/// best-effort, unlike common::percentile which IPRISM_CHECKs its input).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 256;

  void record(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  std::uint64_t min() const;  ///< 0 when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Bucket-midpoint estimate of the q-th percentile, q in [0, 100].
  std::uint64_t percentile_ns(double q) const;
  void reset();

  /// Bucket index for a value (exposed for the bucket-resolution tests).
  static std::size_t bucket_of(std::uint64_t ns);
  /// Representative (midpoint) value of a bucket.
  static std::uint64_t bucket_mid(std::size_t bucket);

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// One completed span in a thread's trace ring. `name` and `category` must
/// be string literals (the ring stores the pointers, never copies).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Fixed-capacity per-thread span buffer (overwrite-oldest). Each ring is
/// written by exactly one thread; the mutex exists so an export racing that
/// thread reads consistent events (uncontended in steady state).
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 4096;

  explicit TraceRing(std::uint32_t tid) : tid_(tid) {}

  std::uint32_t tid() const { return tid_; }

  void record(const TraceEvent& event) {
    const MutexLock lock(mutex_);
    events_[head_ % kCapacity] = event;
    ++head_;
  }

  /// Copies the retained events (oldest first) into `out`; returns the total
  /// number ever recorded (so callers can report drops).
  std::uint64_t snapshot(TraceEvent* out, std::size_t capacity) const;

  void reset() {
    const MutexLock lock(mutex_);
    head_ = 0;
  }

 private:
  std::uint32_t tid_;
  mutable Mutex mutex_;
  TraceEvent events_[kCapacity] IPRISM_GUARDED_BY(mutex_) = {};
  std::uint64_t head_ IPRISM_GUARDED_BY(mutex_) = 0;
};

/// Process-wide metric/trace registry. Lookup-or-create is mutex-guarded
/// and allocates; the returned references are stable for the process
/// lifetime, which is what lets the macros cache them in function-local
/// statics and keep the steady-state path allocation- and lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// nullptr when no such metric has been registered (the disabled-build
  /// test probes that the no-op macros register nothing).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// The calling thread's trace ring (created and registered on first use).
  TraceRing& this_thread_ring();

  /// Chrome about://tracing JSON: {"traceEvents": [...]} plus a "metrics"
  /// object (counters/gauges/histogram summaries) that the trace viewer
  /// ignores but humans and scripts can read from the same file.
  void write_chrome_trace(std::ostream& os) const;
  /// write_chrome_trace to a file; false when the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

  /// Zeroes every registered metric and trace ring *in place* (entries and
  /// rings stay allocated, so references cached by the macros — including
  /// thread_local ring pointers — remain valid). Test isolation only.
  void reset_for_testing();

 private:
  MetricsRegistry() = default;

  mutable Mutex mutex_;
  // std::deque: push_back never moves existing elements, so handed-out
  // references stay valid as the registry grows.
  struct NamedCounter {
    std::string name;
    Counter value;
  };
  struct NamedGauge {
    std::string name;
    Gauge value;
  };
  struct NamedHistogram {
    std::string name;
    Histogram value;
  };
  std::deque<NamedCounter> counters_ IPRISM_GUARDED_BY(mutex_);
  std::deque<NamedGauge> gauges_ IPRISM_GUARDED_BY(mutex_);
  std::deque<NamedHistogram> histograms_ IPRISM_GUARDED_BY(mutex_);
  std::deque<TraceRing> rings_ IPRISM_GUARDED_BY(mutex_);
};

/// RAII span: measures its scope with the telemetry clock, records the
/// duration into `hist`, and appends a TraceEvent to the calling thread's
/// ring. `name`/`category` must be string literals.
class ScopedTimer {
 public:
  ScopedTimer(Histogram& hist, const char* name, const char* category)
      : hist_(hist), name_(name), category_(category), start_ns_(trace_now_ns()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const std::uint64_t dur = trace_now_ns() - start_ns_;
    hist_.record(dur);
    MetricsRegistry::instance().this_thread_ring().record(
        TraceEvent{name_, category_, start_ns_, dur});
  }

 private:
  Histogram& hist_;
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_;
};

}  // namespace iprism::common::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. All call sites go through these, never the classes
// directly, so one compile switch removes the entire layer. `name` must be a
// string literal; metric names are dot-separated (e.g. "reachtube.compute").

#if defined(IPRISM_ENABLE_TELEMETRY)

#define IPRISM_TELEMETRY_ENABLED 1

#define IPRISM_TELE_CONCAT_INNER(a, b) a##b
#define IPRISM_TELE_CONCAT(a, b) IPRISM_TELE_CONCAT_INNER(a, b)

/// Adds `delta` to the named counter.
#define IPRISM_COUNT_ADD(name, delta)                                  \
  do {                                                                 \
    static ::iprism::common::telemetry::Counter& iprism_tele_entry =   \
        ::iprism::common::telemetry::MetricsRegistry::instance().counter(name); \
    iprism_tele_entry.add(static_cast<std::uint64_t>(delta));          \
  } while (false)

/// Increments the named counter by one.
#define IPRISM_COUNT(name) IPRISM_COUNT_ADD(name, 1)

/// Sets the named gauge to `value`.
#define IPRISM_GAUGE_SET(name, value)                                  \
  do {                                                                 \
    static ::iprism::common::telemetry::Gauge& iprism_tele_entry =     \
        ::iprism::common::telemetry::MetricsRegistry::instance().gauge(name); \
    iprism_tele_entry.set(static_cast<double>(value));                 \
  } while (false)

/// Records `ns` nanoseconds into the named histogram.
#define IPRISM_HISTOGRAM_NS(name, ns)                                  \
  do {                                                                 \
    static ::iprism::common::telemetry::Histogram& iprism_tele_entry = \
        ::iprism::common::telemetry::MetricsRegistry::instance().histogram(name); \
    iprism_tele_entry.record(static_cast<std::uint64_t>(ns));          \
  } while (false)

/// Times the rest of the enclosing scope into histogram `name` and the
/// thread's trace ring under `category`. Uniquely named per line, so nested
/// scopes may each carry one.
#define IPRISM_SCOPED_TIMER(name, category)                                        \
  static ::iprism::common::telemetry::Histogram& IPRISM_TELE_CONCAT(               \
      iprism_tele_hist_, __LINE__) =                                               \
      ::iprism::common::telemetry::MetricsRegistry::instance().histogram(name);    \
  const ::iprism::common::telemetry::ScopedTimer IPRISM_TELE_CONCAT(               \
      iprism_tele_timer_, __LINE__)(IPRISM_TELE_CONCAT(iprism_tele_hist_, __LINE__), \
                                    name, category)

#else  // !IPRISM_ENABLE_TELEMETRY — every macro is a no-op; arguments are
       // never evaluated (sizeof keeps them semantically checked and
       // silences unused-variable warnings on telemetry-only locals).

#define IPRISM_TELEMETRY_ENABLED 0

#define IPRISM_COUNT_ADD(name, delta) \
  do {                                \
    (void)sizeof(name);               \
    (void)sizeof(delta);              \
  } while (false)
#define IPRISM_COUNT(name) \
  do {                     \
    (void)sizeof(name);    \
  } while (false)
#define IPRISM_GAUGE_SET(name, value) \
  do {                                \
    (void)sizeof(name);               \
    (void)sizeof(value);              \
  } while (false)
#define IPRISM_HISTOGRAM_NS(name, ns) \
  do {                                \
    (void)sizeof(name);               \
    (void)sizeof(ns);                 \
  } while (false)
#define IPRISM_SCOPED_TIMER(name, category) \
  do {                                      \
    (void)sizeof(name);                     \
    (void)sizeof(category);                 \
  } while (false)

#endif  // IPRISM_ENABLE_TELEMETRY
