// Deterministic open-addressing hash containers for the hot paths.
//
// `FlatHashGrid<Value>` maps 64-bit cell keys to values with two properties
// the standard unordered containers cannot give together:
//
//   * iteration order == insertion order, by construction: entries live in a
//     dense vector and the slot table only stores indices into it. Rehashing
//     (or reserving, or clearing-and-refilling) never changes what iteration
//     observes, so callers may pre-reserve freely without perturbing any
//     result that consumes the iteration order (the reach-tube's
//     surviving-representative selection does — DESIGN.md §9);
//   * clear() retains capacity and leaves no tombstones: the slot table is
//     reset wholesale, so a scratch grid reused across loop iterations
//     performs zero steady-state allocations and never degrades from
//     deletion debris (erase is deliberately not provided).
//
// Open addressing with linear probing over a power-of-two slot table; keys
// are finalized through the SplitMix64 mixer so clustered grid keys spread.
// Values must be default-constructible. `FlatKeySet` is the set view
// (`FlatHashGrid<Unit>`), storing 8 bytes per entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace iprism::common {

/// SplitMix64 finalizer: a full-avalanche bijective mix of a 64-bit value.
/// The grid's slot hash, and the sanctioned way to derive a deterministic,
/// platform-independent scrambled order from small integers (sort by
/// splitmix64_mix(i)) where hash-table iteration order used to be relied on
/// for decorrelation.
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Empty mapped type turning FlatHashGrid into a set of keys.
struct Unit {};

template <class Value>
class FlatHashGrid {
 public:
  struct Entry {
    std::uint64_t key;
    [[no_unique_address]] Value value;
  };

  FlatHashGrid() = default;
  explicit FlatHashGrid(std::size_t expected) { reserve(expected); }

  /// Prepares for `expected` entries without rehashing on the way there.
  /// Never shrinks. Safe at any time: a rehash reorders only the slot
  /// table, never the dense entries, so iteration order is unaffected.
  void reserve(std::size_t expected) {
    entries_.reserve(expected);
    const std::size_t needed = slots_for(expected);
    if (needed > slots_.size()) rehash(needed);
  }

  /// Drops all entries, retaining both the entry and slot capacity and
  /// leaving no tombstones (there is no erase; clear is a full reset).
  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Current slot-table width (power of two); 0 before the first insert or
  /// reserve. Exposed for capacity/steady-state-allocation tests.
  std::size_t slot_capacity() const { return slots_.size(); }
  /// Number of slot-table rebuilds so far. A pre-reserved grid operated
  /// within its capacity must keep this at the post-reserve value.
  std::size_t rehash_count() const { return rehashes_; }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  const Value* find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      const std::uint32_t s = slots_[i];
      if (s == kEmpty) return nullptr;
      if (entries_[s].key == key) return &entries_[s].value;
    }
  }
  Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Inserts `key` with a default-constructed value if absent. Returns the
  /// value slot and whether the key was newly inserted. Pointers are
  /// invalidated by the next insert (dense storage may regrow).
  std::pair<Value*, bool> insert(std::uint64_t key) {
    if (Value* v = find(key)) return {v, false};
    if (slots_for(entries_.size() + 1) > slots_.size()) {
      rehash(slots_for(entries_.size() + 1));
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (slots_[i] != kEmpty) i = (i + 1) & mask;
    slots_[i] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{key, Value{}});
    return {&entries_.back().value, true};
  }

  /// Insertion-order iteration over the dense entries.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::size_t kMinSlots = 16;

  static std::uint64_t mix(std::uint64_t x) { return splitmix64_mix(x); }

  /// Smallest power-of-two slot count holding `n` entries at <= 7/8 load.
  static std::size_t slots_for(std::size_t n) {
    if (n == 0) return 0;
    std::size_t slots = kMinSlots;
    while (n * 8 > slots * 7) slots <<= 1;
    return slots;
  }

  /// Rebuilds the slot table at `new_slots` width from the dense entries,
  /// in insertion order — observable order is untouched.
  void rehash(std::size_t new_slots) {
    slots_.assign(new_slots, kEmpty);
    const std::size_t mask = new_slots - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = mix(entries_[e].key) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = static_cast<std::uint32_t>(e);
    }
    ++rehashes_;
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> slots_;
  std::size_t rehashes_ = 0;
};

/// Set of 64-bit keys with FlatHashGrid's determinism and reuse contract.
using FlatKeySet = FlatHashGrid<Unit>;

}  // namespace iprism::common
