// Zero-overhead strong types for the quantities the risk pipeline passes
// around: time, length, speed, angle, actor identity, slice index.
//
// A transposed `(dt, v)` argument pair, a seconds-vs-metres mixup, or an
// actor-id handed to a slice-index parameter is invisible to every runtime
// check and every regex lint — the doubles are all just doubles. These
// wrappers make that whole bug class a *compile error* at the public
// boundaries of the dynamics models and the reach-tube/STI layer, while
// compiling to the identical machine code: each type is a single double (or
// int) with only dimensionally-sound operators, and the static_asserts
// below pin the layout so the claim cannot silently rot.
//
// Deployment policy (DESIGN.md §10): *function signatures* carry units;
// aggregate Params structs and serialized records keep raw doubles (they
// cross CLI/CSV boundaries, and field-by-field aggregate init is the repo
// idiom) with the unit documented on the field. The conversion happens once
// at the API boundary via the explicit constructor.
#pragma once

#include <compare>
#include <cstddef>

namespace iprism::common {

/// One double with a dimension tag. Construction from raw double is
/// explicit; the raw value comes back out only through value(). Same-tag
/// arithmetic and comparisons are defined here; cross-dimension products
/// and quotients are defined as free functions below, one per physically
/// meaningful combination.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v_(value) {}

  constexpr double value() const { return v_; }

  constexpr Quantity operator+(Quantity o) const { return Quantity{v_ + o.v_}; }
  constexpr Quantity operator-(Quantity o) const { return Quantity{v_ - o.v_}; }
  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  /// Scaling by a dimensionless factor keeps the dimension.
  constexpr Quantity operator*(double k) const { return Quantity{v_ * k}; }
  constexpr Quantity operator/(double k) const { return Quantity{v_ / k}; }
  friend constexpr Quantity operator*(double k, Quantity q) {
    return Quantity{k * q.v_};
  }

  /// Ratio of like quantities is dimensionless.
  constexpr double operator/(Quantity o) const { return v_ / o.v_; }

  // NOLINTNEXTLINE(iprism-float-eq): the strong-type layer forwards exact
  // comparison; near() remains the tool for tolerant comparison of values.
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double v_ = 0.0;
};

struct SecondsTag {};
struct MetersTag {};
struct MetersPerSecTag {};
struct RadiansTag {};

using Seconds = Quantity<SecondsTag>;             ///< time
using Meters = Quantity<MetersTag>;               ///< length, world frame
using MetersPerSec = Quantity<MetersPerSecTag>;   ///< speed
using Radians = Quantity<RadiansTag>;             ///< angle, CCW

// The dimensionally-sound cross products/quotients the pipeline needs.
// Anything else (Seconds * Seconds, Meters + Radians, ...) does not compile.
constexpr Meters operator*(MetersPerSec v, Seconds t) {
  return Meters{v.value() * t.value()};
}
constexpr Meters operator*(Seconds t, MetersPerSec v) { return v * t; }
constexpr MetersPerSec operator/(Meters d, Seconds t) {
  return MetersPerSec{d.value() / t.value()};
}
constexpr Seconds operator/(Meters d, MetersPerSec v) {
  return Seconds{d.value() / v.value()};
}

/// Strongly-typed actor identity. Default-constructed (or none()) is the
/// "no actor" sentinel — the counterfactual tube's "exclude nobody".
/// Wrapping the id keeps it from ever landing in a slice-index or count
/// parameter, and vice versa.
class ActorId {
 public:
  constexpr ActorId() = default;
  constexpr explicit ActorId(int id) : id_(id) {}

  static constexpr ActorId none() { return ActorId{}; }

  constexpr int value() const { return id_; }
  constexpr bool valid() const { return id_ >= 0; }

  friend constexpr auto operator<=>(ActorId, ActorId) = default;

 private:
  int id_ = -1;
};

/// Strongly-typed reach-tube time-slice index (0 = the seed slice at t0).
class SliceIdx {
 public:
  constexpr SliceIdx() = default;
  constexpr explicit SliceIdx(std::size_t i) : i_(i) {}

  constexpr std::size_t value() const { return i_; }

  constexpr SliceIdx& operator++() {
    ++i_;
    return *this;
  }
  friend constexpr auto operator<=>(SliceIdx, SliceIdx) = default;

 private:
  std::size_t i_ = 0;
};

/// Opt-in literal suffixes (`using namespace iprism::common::literals;`):
/// 1.5_s, 2.7_m, 40.0_mps, 0.5_rad. Tests and examples read better with
/// them; library code spells the explicit constructor.
namespace literals {
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr MetersPerSec operator""_mps(long double v) {
  return MetersPerSec{static_cast<double>(v)};
}
constexpr MetersPerSec operator""_mps(unsigned long long v) {
  return MetersPerSec{static_cast<double>(v)};
}
constexpr Radians operator""_rad(long double v) {
  return Radians{static_cast<double>(v)};
}
}  // namespace literals

// The zero-overhead claim, pinned: a Quantity is exactly its double, the id
// types exactly their integer — same size, same alignment, trivially
// copyable, so they pass in registers and vectorize like the raw scalars.
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Meters) == sizeof(double));
static_assert(sizeof(MetersPerSec) == sizeof(double));
static_assert(sizeof(Radians) == sizeof(double));
static_assert(alignof(Meters) == alignof(double));
static_assert(sizeof(ActorId) == sizeof(int));
static_assert(sizeof(SliceIdx) == sizeof(std::size_t));
static_assert(std::is_trivially_copyable_v<Meters>);
static_assert(std::is_trivially_copyable_v<ActorId>);
static_assert(std::is_trivially_copyable_v<SliceIdx>);
static_assert(std::is_standard_layout_v<Meters>);

}  // namespace iprism::common
