// Fixed-size, futures-based worker pool — the one sanctioned home for
// threads in this codebase (tools/iprism_lint.py `thread-discipline`).
//
// Design constraints, in order:
//   1. Determinism. The pool never re-orders *results*: callers submit
//      independent jobs and aggregate by index, so a parallel run is
//      bit-identical to a serial one (DESIGN.md §8). There is deliberately
//      no work stealing and no task priorities — nothing whose timing could
//      leak into outputs.
//   2. Serial fallback. `ThreadPool(0)` spawns no workers and `submit`
//      runs the task inline on the caller's thread; `parallel_for_each`
//      accepts a null pool. Every parallel call site therefore degrades to
//      the exact serial code path when `num_threads == 0` (the default).
//   3. Exception transparency. Exceptions thrown by a task travel through
//      the returned std::future; `parallel_for_each` waits for *all* jobs,
//      then rethrows the first failure.
//
// The queue and stop flag are capability-annotated (IPRISM_GUARDED_BY on
// the pool's mutex): clang's -Wthread-safety — an error in clang builds —
// proves at compile time that no code path touches them unlocked. TSan
// checks the schedules a run happens to execute; this checks every compile
// (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "common/telemetry.hpp"

namespace iprism::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 = no workers; tasks run inline in submit().
  explicit ThreadPool(std::size_t threads);

  /// The process-wide pool: constructed on first use, sized
  /// max(2, hardware_concurrency), joined at static destruction. Engines
  /// (StiCalculator, RiskMonitor) default to this pool so M instances share
  /// one set of workers instead of oversubscribing the machine with M pools.
  /// Tests that need an isolated pool pass their own explicitly.
  static ThreadPool& shared();

  /// The pool whose worker is executing the calling thread, or nullptr when
  /// called from a non-worker thread. Lets parallel_for_each detect nested
  /// fan-out onto the pool it is already running on (which would deadlock
  /// once every worker blocks in a nested wait) and degrade it to the serial
  /// loop instead — safe because results are thread-count independent
  /// (DESIGN.md §8).
  static const ThreadPool* current();

  /// Joins all workers after draining the queue (pending futures complete).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `f` and returns its future. With zero workers the task runs
  /// immediately on the calling thread and the future is already ready.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // serial fallback: any exception is captured by the future
      return future;
    }
    {
      const MutexLock lock(mutex_);
      queue_.push([task] { (*task)(); });
      // Depth gauge under the lock: exact at the instant of enqueue. The
      // registry entry is a cached function-local static, so the steady-state
      // cost inside the critical section is one relaxed atomic store.
      IPRISM_GAUGE_SET("threadpool.queue_depth", queue_.size());
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ IPRISM_GUARDED_BY(mutex_);
  bool stopping_ IPRISM_GUARDED_BY(mutex_) = false;
};

/// Runs `fn(i)` for every i in [0, count). With a null pool (or a pool with
/// zero workers) the loop is the plain serial `for` — same call order, same
/// results. Otherwise all indices are enqueued, the call blocks until every
/// job finished, and the first exception (by index order of discovery) is
/// rethrown. `fn` must write only index-owned state; index i is handled by
/// exactly one thread.
///
/// Re-entrancy: when called from a worker of `pool` itself (a task fanning
/// out onto its own pool), the loop runs inline on that worker. Enqueueing
/// would deadlock as soon as every worker blocks waiting on nested futures
/// only the blocked workers could run. Because every call site aggregates by
/// index, inline execution produces the same bits as fanned execution.
template <typename Fn>
void parallel_for_each(ThreadPool* pool, std::size_t count, Fn&& fn) {
  if (pool == nullptr || pool->thread_count() == 0 ||
      ThreadPool::current() == pool) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool->submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace iprism::common
