// Epsilon-tolerant floating-point comparison.
//
// Raw `==` on doubles is flagged by tools/iprism_lint.py (rule float-eq):
// most call sites that write it mean "close enough after rounding", and the
// ones that genuinely mean exact bit equality (comparing against a
// clamped-to-zero sentinel, a value never touched by arithmetic) should say
// so with a lint suppression. Everything else goes through near().
#pragma once

#include <cmath>

namespace iprism::common {

/// Default absolute tolerance for near(): generous enough for accumulated
/// trajectory arithmetic at map scale (~1e3 m coordinates), far below any
/// physically meaningful difference.
inline constexpr double kDefaultEps = 1e-9;

/// True when |a - b| <= eps. NaN compares unequal to everything.
inline bool near(double a, double b, double eps = kDefaultEps) {
  return std::abs(a - b) <= eps;
}

/// True when |v| <= eps.
inline bool near_zero(double v, double eps = kDefaultEps) {
  return std::abs(v) <= eps;
}

}  // namespace iprism::common
