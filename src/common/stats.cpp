#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iprism::common {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  IPRISM_CHECK(q >= 0.0 && q <= 100.0, "percentile: q must be in [0, 100]");
  IPRISM_CHECK(!values.empty(),
               "percentile: empty input has no percentiles (a silent 0.0 is "
               "indistinguishable from a real p=0 — guard at the call site)");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.stddev();
}

SeriesAggregate aggregate_series(const std::vector<std::vector<double>>& series) {
  std::size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  SeriesAggregate out;
  out.mean.resize(longest, 0.0);
  out.stddev.resize(longest, 0.0);
  out.count.resize(longest, 0);
  for (std::size_t i = 0; i < longest; ++i) {
    RunningStat stat;
    for (const auto& s : series) {
      if (i < s.size()) stat.add(s[i]);
    }
    out.mean[i] = stat.mean();
    out.stddev[i] = stat.stddev();
    out.count[i] = stat.count();
  }
  return out;
}

}  // namespace iprism::common
