#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace iprism::common {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  os.flush();
}

}  // namespace iprism::common
