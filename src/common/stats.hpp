// Small statistics helpers used by the evaluation harness: streaming
// mean/stddev (Welford), percentiles, and series aggregation across runs of
// unequal length (needed for the Fig. 4 mean±SD time-series panels).
#pragma once

#include <cstddef>
#include <vector>

namespace iprism::common {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// `q` in [0, 100]. Checked: the input must be non-empty (an empty set has
/// no percentiles; callers that can see empty data decide what 'no data'
/// means for them instead of inheriting a silent 0.0). Copies + sorts.
double percentile(std::vector<double> values, double q);

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev_of(const std::vector<double>& values);

/// Aggregates many time series of unequal length into per-index mean and
/// stddev vectors, out to the longest series; each index aggregates only the
/// series that reach it.
struct SeriesAggregate {
  std::vector<double> mean;
  std::vector<double> stddev;
  std::vector<std::size_t> count;
};
SeriesAggregate aggregate_series(const std::vector<std::vector<double>>& series);

}  // namespace iprism::common
