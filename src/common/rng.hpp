// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (scenario sampling, RL
// exploration, ensemble noise, dataset generation) takes an explicit Rng so
// experiments are reproducible bit-for-bit from a seed. The generator is
// xoshiro256** seeded through SplitMix64, the standard recommendation of its
// authors; it is small, fast, and has no global state (I.2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace iprism::common {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience distributions.
class Rng {
 public:
  /// Seeds the four 64-bit words of state via SplitMix64 so that any seed —
  /// including 0 — yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Picks an index in [0, size) uniformly. Requires size > 0.
  std::size_t index(std::size_t size);

  /// Derives an independent child stream; the child is a pure function of
  /// (this stream's seed lineage, salt), so component streams never alias.
  Rng fork(std::uint64_t salt);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iprism::common
