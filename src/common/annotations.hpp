// Clang thread-safety capability annotations (no-ops on other compilers).
//
// These macros let the compiler prove lock discipline at build time: a
// member declared IPRISM_GUARDED_BY(mu) can only be touched while `mu` is
// held, and -Wthread-safety (promoted to an error in clang builds, see the
// top-level CMakeLists) rejects any code path that violates it. TSan (PR 2)
// checks the schedules a test run happens to execute; this checks *every*
// compile. Both layers stay on.
//
// Usage lives in src/common/sync.hpp (the annotated Mutex/MutexLock/CondVar
// wrappers) and src/common/thread_pool.hpp (the guarded queue/stop flag).
// The std primitives can't be annotated directly with libstdc++ — its
// std::mutex carries no capability attribute — which is why the sync.hpp
// wrappers exist.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IPRISM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IPRISM_THREAD_ANNOTATION
#define IPRISM_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no analysis
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
#define IPRISM_CAPABILITY(name) IPRISM_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define IPRISM_SCOPED_CAPABILITY IPRISM_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be accessed while `x` is held.
#define IPRISM_GUARDED_BY(x) IPRISM_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while `x` is held.
#define IPRISM_PT_GUARDED_BY(x) IPRISM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define IPRISM_REQUIRES(...) \
  IPRISM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define IPRISM_ACQUIRE(...) \
  IPRISM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define IPRISM_RELEASE(...) \
  IPRISM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `result`.
#define IPRISM_TRY_ACQUIRE(result, ...) \
  IPRISM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define IPRISM_EXCLUDES(...) IPRISM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (document why at use).
#define IPRISM_NO_THREAD_SAFETY_ANALYSIS \
  IPRISM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace iprism::common {
// Header-hygiene anchor: this header is macros-only by design; the
// namespace keeps the lint's "opens iprism::" rule meaningful for it too.
}  // namespace iprism::common
