#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  IPRISM_CHECK(lo <= hi, "uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform01();
}

int Rng::uniform_int(int lo, int hi) {
  IPRISM_CHECK(lo <= hi, "uniform_int: lo must not exceed hi");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t size) {
  IPRISM_CHECK(size > 0, "index: size must be positive");
  return static_cast<std::size_t>(next_u64() % size);
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the salt with fresh output so sibling forks differ and forks of
  // forks remain independent.
  std::uint64_t mix = next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

}  // namespace iprism::common
