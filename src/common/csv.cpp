#include "common/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace iprism::common {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    os << cells[i];
  }
  out_ << os.str() << '\n';
}

}  // namespace iprism::common
