// Fixed-width console table rendering for the benchmark harness so every
// reproduced table prints in the same aligned style the paper uses.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace iprism::common {

/// Collects rows of string cells and renders them with per-column widths,
/// a header rule, and a title line.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (no trailing exponent noise).
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iprism::common
