// Precondition / invariant checking helpers.
//
// IPRISM_CHECK throws std::invalid_argument with a source-located message;
// it is used for public-API precondition violations (I.5 / P.7: catch
// run-time errors early, report them loudly).
//
// IPRISM_DCHECK is its debug-only companion for hot-path invariants (slice
// index bounds, non-negative volumes, clamping preconditions): identical
// behavior when NDEBUG is unset or IPRISM_ENABLE_DCHECKS is defined (the
// sanitizer presets define it), compiled out — argument unevaluated — in
// plain release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace iprism {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace iprism

#define IPRISM_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) ::iprism::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#if !defined(NDEBUG) || defined(IPRISM_ENABLE_DCHECKS)
#define IPRISM_DCHECK(expr, msg) IPRISM_CHECK(expr, msg)
#else
#define IPRISM_DCHECK(expr, msg) \
  do {                           \
  } while (false)
#endif
