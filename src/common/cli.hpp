// Minimal `--key=value` command-line parsing for the benchmark binaries.
// Every bench accepts overrides such as --n=1000 or --episodes=150 so the
// quick default runs can be scaled up to the paper's full population sizes.
#pragma once

#include <map>
#include <string>

namespace iprism::common {

/// Parses `--key=value` and bare `--flag` arguments. Unknown positional
/// arguments raise std::invalid_argument so typos fail loudly.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace iprism::common
