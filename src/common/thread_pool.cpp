#include "common/thread_pool.hpp"

#include <algorithm>

namespace iprism::common {

namespace {

// Set for the lifetime of worker_loop; worker threads die with their pool,
// so the pointer can never dangle into a destroyed pool.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool& ThreadPool::shared() {
  // Meyers singleton: joined after main() returns, which is after every
  // engine holding a pointer to it has been destroyed (engines live in
  // automatic or test-fixture storage, never in statics).
  static ThreadPool pool(std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  return pool;
}

const ThreadPool* ThreadPool::current() { return t_worker_pool; }

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      // Manual predicate loop (not the cv.wait(lock, pred) overload) so the
      // guarded reads sit directly in this annotated scope — a predicate
      // lambda would not inherit the capability and would trip the analysis.
      while (!stopping_ && queue_.empty()) {
        IPRISM_COUNT("threadpool.idle_waits");
        cv_.wait(lock);
      }
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    {
      IPRISM_SCOPED_TIMER("threadpool.task", "threadpool");
      job();  // packaged_task: exceptions land in the paired future
    }
  }
}

}  // namespace iprism::common
