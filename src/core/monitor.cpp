#include "core/monitor.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::core {

std::string_view risk_level_name(RiskLevel level) {
  switch (level) {
    case RiskLevel::kSafe: return "safe";
    case RiskLevel::kCaution: return "caution";
    case RiskLevel::kCritical: return "critical";
  }
  return "unknown";
}

RiskMonitor::RiskMonitor(const RiskMonitorParams& params)
    : params_(params), sti_(params.tube) {
  IPRISM_CHECK(params.caution_threshold > 0.0 &&
                   params.critical_threshold > params.caution_threshold,
               "RiskMonitorParams: thresholds must satisfy 0 < caution < critical");
  IPRISM_CHECK(params.hysteresis_updates >= 1,
               "RiskMonitorParams: hysteresis_updates must be >= 1");
}

void RiskMonitor::reset() {
  level_ = RiskLevel::kSafe;
  quiet_streak_ = 0;
  updates_ = 0;
}

RiskMonitor::Assessment RiskMonitor::update(const sim::World& world) {
  IPRISM_CHECK(world.has_ego(), "RiskMonitor: world has no ego");
  ++updates_;

  const auto forecasts =
      cvtr_forecasts(world, params_.tube.horizon, params_.tube.dt);

  Assessment out;
  const bool want_attribution =
      params_.attribute_when_elevated && level_ >= RiskLevel::kCaution &&
      !forecasts.empty();
  if (want_attribution) {
    const StiResult full =
        sti_.compute(world.map(), world.ego().state, common::Seconds{world.time()},
                     forecasts);
    out.sti_combined = full.combined;
    for (const auto& [id, value] : full.per_actor) {
      if (value >= out.riskiest_sti) {
        out.riskiest_sti = value;
        out.riskiest_actor = id;
      }
    }
  } else {
    out.sti_combined =
        sti_.combined(world.map(), world.ego().state, common::Seconds{world.time()},
                      forecasts);
  }

  // STI is clamped to [0, 1] by construction; the threshold comparison
  // below silently misclassifies if that ever breaks.
  IPRISM_DCHECK(out.sti_combined >= 0.0 && out.sti_combined <= 1.0,
                "RiskMonitor: STI must lie in [0, 1]");

  // Instantaneous level implied by the current STI.
  RiskLevel implied = RiskLevel::kSafe;
  if (out.sti_combined >= params_.critical_threshold) {
    implied = RiskLevel::kCritical;
  } else if (out.sti_combined >= params_.caution_threshold) {
    implied = RiskLevel::kCaution;
  }

  if (implied > level_) {
    // Escalation is immediate — a warning must not lag the threat.
    level_ = implied;
    quiet_streak_ = 0;
  } else if (implied < level_) {
    // De-escalation needs a stable quiet period (one level at a time).
    if (++quiet_streak_ >= params_.hysteresis_updates) {
      level_ = static_cast<RiskLevel>(static_cast<int>(level_) - 1);
      quiet_streak_ = 0;
    }
  } else {
    quiet_streak_ = 0;
  }

  out.level = level_;
  return out;
}

}  // namespace iprism::core
