#include "core/monitor.hpp"

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "core/session_state.hpp"

namespace iprism::core {

std::optional<std::pair<int, double>> riskiest_actor_of(const StiResult& sti) {
  std::optional<std::pair<int, double>> best;
  for (const auto& [id, value] : sti.per_actor) {
    // Strict >: ties keep the first actor in forecast order, and an
    // all-zero set never promotes anyone past the nullopt initial.
    if (value > 0.0 && (!best || value > best->second)) {
      best = std::pair<int, double>{id, value};
    }
  }
  return best;
}

std::string_view risk_level_name(RiskLevel level) {
  switch (level) {
    case RiskLevel::kSafe: return "safe";
    case RiskLevel::kCaution: return "caution";
    case RiskLevel::kCritical: return "critical";
  }
  return "unknown";
}

RiskMonitor::RiskMonitor(const RiskMonitorParams& params, common::ThreadPool* pool)
    : params_(params), sti_(params.tube, pool) {
  IPRISM_CHECK(params.caution_threshold > 0.0 &&
                   params.critical_threshold > params.caution_threshold,
               "RiskMonitorParams: thresholds must satisfy 0 < caution < critical");
  IPRISM_CHECK(params.hysteresis_updates >= 1,
               "RiskMonitorParams: hysteresis_updates must be >= 1");
}

void RiskMonitor::reset() { session_.reset(); }

RiskMonitor::Assessment RiskMonitor::update(const sim::World& world) {
  return update(session_, world);
}

RiskMonitor::Assessment RiskMonitor::update(RiskSession& session,
                                            const sim::World& world) const {
  IPRISM_SCOPED_TIMER("monitor.update", "monitor");
  IPRISM_CHECK(world.has_ego(), "RiskMonitor: world has no ego");
  detail::SessionState& st = session.state();
  ++st.updates;

  const auto forecasts =
      cvtr_forecasts(world, params_.tube.horizon, params_.tube.dt);

  Assessment out;
  const bool may_attribute = params_.attribute_when_elevated && !forecasts.empty();

  // Already elevated: the per-actor attribution is wanted every tick, so go
  // straight to the full per-actor compute (one attributed propagation plus
  // N+1 memoized replays under the §12 delta engine). At kSafe, run the
  // cheap combined() first — one attributed tube plus at most one |T^{∅}|
  // replay; steady-state safe ticks never pay for per-actor counterfactuals
  // — and decide attribution from the *implied* level of the STI it returns
  // (below), not from the stale pre-update level_.
  std::optional<StiResult> full;
  if (may_attribute && st.level >= RiskLevel::kCaution) {
    IPRISM_COUNT("monitor.attribution_runs");
    full = sti_.compute(session, world.map(), world.ego().state,
                        common::Seconds{world.time()}, forecasts);
    out.sti_combined = full->combined;
  } else {
    out.sti_combined = sti_.combined(session, world.map(), world.ego().state,
                                     common::Seconds{world.time()}, forecasts);
  }

  // STI is clamped to [0, 1] by construction; the threshold comparison
  // below silently misclassifies if that ever breaks.
  IPRISM_DCHECK(out.sti_combined >= 0.0 && out.sti_combined <= 1.0,
                "RiskMonitor: STI must lie in [0, 1]");

  // Instantaneous level implied by the current STI.
  RiskLevel implied = RiskLevel::kSafe;
  if (out.sti_combined >= params_.critical_threshold) {
    implied = RiskLevel::kCritical;
  } else if (out.sti_combined >= params_.caution_threshold) {
    implied = RiskLevel::kCaution;
  }

  // Escalation-tick attribution: this tick crosses into kCaution/kCritical
  // from below, so the combined()-only fast path above skipped the
  // per-actor pass. Re-run the full compute now — tube evaluation is
  // deterministic (DESIGN.md §8) and both engines derive |T| and |T^{∅}|
  // identically (§12), so full.combined is bit-identical to the value
  // already in out.sti_combined and `implied` stands.
  if (may_attribute && implied > st.level && !full) {
    IPRISM_COUNT("monitor.attribution_runs");
    full = sti_.compute(session, world.map(), world.ego().state,
                        common::Seconds{world.time()}, forecasts);
    // NOLINTNEXTLINE(iprism-float-eq): the determinism contract is bit-exact
    IPRISM_DCHECK(full->combined == out.sti_combined,
                  "RiskMonitor: attribution re-run disagrees with combined()");
  }
  if (full) {
    if (const auto riskiest = riskiest_actor_of(*full)) {
      out.riskiest_actor = riskiest->first;
      out.riskiest_sti = riskiest->second;
    }
  }

  if (implied > st.level) {
    // Escalation is immediate — a warning must not lag the threat.
    IPRISM_COUNT("monitor.level_transitions");
    st.level = implied;
    st.quiet_streak = 0;
  } else if (implied < st.level) {
    // De-escalation needs a stable quiet period (one level at a time).
    if (++st.quiet_streak >= params_.hysteresis_updates) {
      IPRISM_COUNT("monitor.level_transitions");
      st.level = static_cast<RiskLevel>(static_cast<int>(st.level) - 1);
      st.quiet_streak = 0;
    }
  } else {
    st.quiet_streak = 0;
  }
  IPRISM_GAUGE_SET("monitor.level", static_cast<int>(st.level));

  out.level = st.level;
  return out;
}

}  // namespace iprism::core
