#include "core/session.hpp"

#include "core/session_state.hpp"

namespace iprism::core {

RiskSession::RiskSession() : state_(std::make_unique<detail::SessionState>()) {}

RiskSession::~RiskSession() = default;
RiskSession::RiskSession(RiskSession&&) noexcept = default;
RiskSession& RiskSession::operator=(RiskSession&&) noexcept = default;

RiskLevel RiskSession::level() const { return state_->level; }

long RiskSession::updates() const { return state_->updates; }

void RiskSession::reset() {
  state_->level = RiskLevel::kSafe;
  state_->quiet_streak = 0;
  state_->updates = 0;
}

}  // namespace iprism::core
