// Reach-tube computation — the paper's Algorithm 1.
//
// The set of escape routes T_{t:t+k} is approximated by forward-propagating
// the ego state through the kinematic bicycle model over time slices of
// size dt, sampling control inputs (a, phi) at every slice, and discarding
// states that collide with other actors' (forecast) footprints or leave the
// drivable area. Both of the paper's acceleration optimizations are
// implemented and individually switchable for the footnote-5 ablation:
//
//   (1) epsilon-dedup: a propagated state is ignored when it falls in the
//       same quantized state-space cell as an already-visited state. Within
//       each (x, y) epsilon cell, up to four representative states are kept
//       — the speed and heading extremes — which is exactly the state
//       diversity that determines the cell's future spread; interior states
//       add no occupancy;
//   (2) boundary controls: instead of uniform control sampling, enumerate
//       the boundary control combinations (the paper's set
//       {0, a_max} x {phi_min, 0, phi_max}; this library defaults to the
//       symmetric {a_min, 0, a_max} x {phi_min, 0, phi_max} so braking
//       escape routes are represented — see DESIGN.md §5).
//
// |T| — the tube's "volume" / state-space occupancy [45] — is the number of
// distinct occupied (x, y) grid cells summed over time slices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/scene.hpp"
#include "dynamics/bicycle.hpp"
#include "dynamics/state.hpp"
#include "roadmap/map.hpp"

namespace iprism::core {

struct ReachTubeParams {
  double dt = 0.25;          ///< time-slice size (s)
  double horizon = 3.0;      ///< k: look-ahead (s)
  double cell_size = 1.0;    ///< epsilon grid in (x, y) for dedup & volume (m)
  bool dedup = true;         ///< optimization (1)
  /// Hard cap on states kept per slice (guards worst-case blowup; far above
  /// what the epsilon grid admits on realistic maps).
  std::size_t max_states_per_slice = 20000;
  bool boundary_controls = true;  ///< optimization (2); false = uniform sampling
  int uniform_samples = 24;  ///< N: samples per state when boundary_controls off
  bool include_braking_boundary = false;  ///< true = add a_min (ablation); the
  ///< paper's published set {0, a_max} x {phi_min, 0, phi_max} is the default
  dynamics::ControlLimits limits{-6.0, 3.0, -0.35, 0.35};
  dynamics::Dimensions ego_dims{4.5, 2.0};
  double map_margin = 0.3;   ///< footprint shrink for the drivable-area test (m)
  double wheelbase = 2.7;
  std::uint64_t sample_seed = 42;  ///< RNG stream for uniform sampling
  /// Worker threads for the N+2 tube fan-out in StiCalculator (each of |T|,
  /// |T^{∅}|, and the per-actor counterfactuals is an independent tube).
  /// 0 = serial (default). A single tube is always computed on one thread —
  /// its slices are sequentially dependent — so this knob never changes any
  /// result, only wall-clock (DESIGN.md §8). RiskMonitorParams::tube and
  /// SmcTrainConfig::tube plumb it into the monitor and SMC training.
  int num_threads = 0;
  /// Initial reserve (entries) for the per-compute() scratch containers;
  /// 0 = auto (min(max_states_per_slice, 4096)). Purely a performance hint:
  /// the scratch is built on common::FlatHashGrid, whose iteration order is
  /// insertion order regardless of capacity, so tube results are bit-identical
  /// for any value (DESIGN.md §9; enforced by the capacity-invariance tests).
  std::size_t scratch_reserve = 0;
};

/// An actor's footprint at each tube time slice (pre-sampled from its
/// forecast trajectory).
struct ObstacleTimeline {
  /// Defaults to ActorId::none() — an anonymous obstacle no counterfactual
  /// can exclude.
  common::ActorId actor_id;
  std::vector<geom::OrientedBox> by_slice;
  /// circumradius() of each by_slice box, precomputed once per timeline.
  /// The broad-phase test in the tube's innermost loop runs per candidate
  /// state × slice × obstacle; the radius only depends on (obstacle, slice).
  /// Kept in sync by sample_obstacles(); hand-built timelines must call
  /// finalize() before compute().
  std::vector<double> circumradius_by_slice;

  /// Fills circumradius_by_slice from by_slice.
  void finalize();
};

/// The computed tube: surviving states per slice plus the occupancy volume.
struct ReachTube {
  std::vector<std::vector<dynamics::VehicleState>> slices;
  /// State-space occupancy |T|: distinct (x, y) cells summed over slices.
  double volume = 0.0;

  // NOLINTNEXTLINE(iprism-float-eq) volume is an integer-valued cell count, never arithmetic
  bool empty() const { return volume == 0.0; }
};

class ReachTubeComputer {
 public:
  explicit ReachTubeComputer(const ReachTubeParams& params = {});

  /// Validates `params`, throwing via IPRISM_CHECK on the first violated
  /// invariant. Construction-free fail-fast entry point for configs that
  /// embed tube params (e.g. SmcTrainConfig); the constructor runs the same
  /// checks.
  static void validate(const ReachTubeParams& params);

  const ReachTubeParams& params() const { return params_; }
  int slice_count() const { return slices_; }

  /// Samples every forecast's footprint at the tube's slice times
  /// (t0, t0+dt, ..., t0+k). Shared prep for the counterfactual tubes.
  std::vector<ObstacleTimeline> sample_obstacles(
      std::span<const ActorForecast> forecasts, common::Seconds t0) const;

  /// Computes the tube from `ego` at t0 against the given obstacles.
  /// A valid `exclude` drops that actor — the counterfactual "what if
  /// actor i were not present" of Eq. (2); ActorId::none() excludes nobody.
  ReachTube compute(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                    std::span<const ObstacleTimeline> obstacles,
                    common::ActorId exclude = common::ActorId::none()) const;

  /// Convenience: forecast sampling + tube in one call.
  ReachTube compute(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                    common::Seconds t0, std::span<const ActorForecast> forecasts,
                    common::ActorId exclude = common::ActorId::none()) const;

 private:
  /// Collision/off-map test against the slice's *active* obstacle subset
  /// (`active` holds indices into `obstacles`; the caller filters once per
  /// slice against a conservative reachable-disc bound, so the innermost
  /// loop only visits obstacles that could possibly intersect).
  bool state_ok(const roadmap::DrivableMap& map, const dynamics::VehicleState& s,
                std::span<const ObstacleTimeline> obstacles,
                std::span<const std::uint32_t> active, common::SliceIdx slice) const;

  ReachTubeParams params_;
  dynamics::BicycleModel model_;
  int slices_ = 0;
  double ego_circumradius_ = 0.0;  ///< constant of ego_dims, hoisted out of state_ok
  std::vector<dynamics::Control> boundary_set_;
};

}  // namespace iprism::core
