// Reach-tube computation — the paper's Algorithm 1.
//
// The set of escape routes T_{t:t+k} is approximated by forward-propagating
// the ego state through the kinematic bicycle model over time slices of
// size dt, sampling control inputs (a, phi) at every slice, and discarding
// states that collide with other actors' (forecast) footprints or leave the
// drivable area. Both of the paper's acceleration optimizations are
// implemented and individually switchable for the footnote-5 ablation:
//
//   (1) epsilon-dedup: a propagated state is ignored when it falls in the
//       same quantized state-space cell as an already-visited state. Within
//       each (x, y) epsilon cell, up to four representative states are kept
//       — the speed and heading extremes — which is exactly the state
//       diversity that determines the cell's future spread; interior states
//       add no occupancy;
//   (2) boundary controls: instead of uniform control sampling, enumerate
//       the boundary control combinations (the paper's set
//       {0, a_max} x {phi_min, 0, phi_max}; this library defaults to the
//       symmetric {a_min, 0, a_max} x {phi_min, 0, phi_max} so braking
//       escape routes are represented — see DESIGN.md §5).
//
// |T| — the tube's "volume" / state-space occupancy [45] — is the number of
// distinct occupied (x, y) grid cells summed over time slices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/scene.hpp"
#include "core/session.hpp"
#include "dynamics/bicycle.hpp"
#include "dynamics/state.hpp"
#include "roadmap/map.hpp"

namespace iprism::core {

namespace detail {
struct TubeScratch;
}  // namespace detail

struct ReachTubeParams {
  double dt = 0.25;          ///< time-slice size (s)
  double horizon = 3.0;      ///< k: look-ahead (s)
  double cell_size = 1.0;    ///< epsilon grid in (x, y) for dedup & volume (m)
  bool dedup = true;         ///< optimization (1)
  /// Hard cap on states kept per slice (guards worst-case blowup; far above
  /// what the epsilon grid admits on realistic maps).
  std::size_t max_states_per_slice = 20000;
  bool boundary_controls = true;  ///< optimization (2); false = uniform sampling
  int uniform_samples = 24;  ///< N: samples per state when boundary_controls off
  bool include_braking_boundary = false;  ///< true = add a_min (ablation); the
  ///< paper's published set {0, a_max} x {phi_min, 0, phi_max} is the default
  dynamics::ControlLimits limits{-6.0, 3.0, -0.35, 0.35};
  dynamics::Dimensions ego_dims{4.5, 2.0};
  double map_margin = 0.3;   ///< footprint shrink for the drivable-area test (m)
  double wheelbase = 2.7;
  std::uint64_t sample_seed = 42;  ///< RNG stream for uniform sampling
  /// Worker threads for the N+2 tube fan-out in StiCalculator (each of |T|,
  /// |T^{∅}|, and the per-actor counterfactuals is an independent tube).
  /// 0 = serial (default). A single tube is always computed on one thread —
  /// its slices are sequentially dependent — so this knob never changes any
  /// result, only wall-clock (DESIGN.md §8). RiskMonitorParams::tube and
  /// SmcTrainConfig::tube plumb it into the monitor and SMC training.
  int num_threads = 0;
  /// Shared-wavefront counterfactual engine (DESIGN.md §12): propagate the
  /// base tube once with blocked-by attribution, then derive every |T^{-i}|
  /// and |T^{∅}| by memoized replay from the first slice actor i changed.
  /// Results are bit-identical to the from-scratch fan-out for any value of
  /// this flag (enforced by the CounterfactualDeltaIdentity suites); false
  /// restores the N+2 independent propagations for A/B benchmarking.
  bool delta_counterfactuals = true;
  /// Initial reserve (entries) for the per-compute() scratch containers;
  /// 0 = auto (min(max_states_per_slice, 4096)). Purely a performance hint:
  /// the scratch is built on common::FlatHashGrid, whose iteration order is
  /// insertion order regardless of capacity, so tube results are bit-identical
  /// for any value (DESIGN.md §9; enforced by the capacity-invariance tests).
  std::size_t scratch_reserve = 0;
};

/// An actor's footprint at each tube time slice (pre-sampled from its
/// forecast trajectory).
struct ObstacleTimeline {
  /// Defaults to ActorId::none() — an anonymous obstacle no counterfactual
  /// can exclude.
  common::ActorId actor_id;
  std::vector<geom::OrientedBox> by_slice;
  /// circumradius() of each by_slice box, precomputed once per timeline.
  /// The broad-phase test in the tube's innermost loop runs per candidate
  /// state × slice × obstacle; the radius only depends on (obstacle, slice).
  /// Kept in sync by sample_obstacles(); hand-built timelines must call
  /// finalize() before compute().
  std::vector<double> circumradius_by_slice;

  /// Fills circumradius_by_slice from by_slice.
  void finalize();
};

/// The computed tube: surviving states per slice plus the occupancy volume.
struct ReachTube {
  std::vector<std::vector<dynamics::VehicleState>> slices;
  /// State-space occupancy |T|: distinct (x, y) cells summed over slices.
  double volume = 0.0;

  // NOLINTNEXTLINE(iprism-float-eq) volume is an integer-valued cell count, never arithmetic
  bool empty() const { return volume == 0.0; }
};

// --- Blocked-by attribution (DESIGN.md §12) --------------------------------
//
// The N+2 tubes of one STI evaluation share almost their whole wavefront:
// |T^{-i}| differs from |T| only downstream of candidates that actor i alone
// rejected. An *attributed* base propagation records, for every candidate
// state_ok tested, who (if anyone) rejected it; each counterfactual is then
// produced by *memoized replay* — the slices before actor i's first sole
// rejection are copied verbatim, and from there the propagation loop re-runs
// with collision geometry answered from the record. Fresh geometry runs only
// on the delta wavefront, and an actor that rejected nothing gets
// |T^{-i}| ≡ |T| without any re-expansion. Replay executes the exact
// propagation loop, so results are bit-identical (contents, cardinalities,
// SplitMix64 emission order — the §9 contract) to from-scratch
// compute(..., exclude).

/// Classification of one recorded state_ok outcome.
enum class BlockerClass : std::uint8_t {
  kPassed = 0,  ///< state survived every test
  kOffMap = 1,  ///< footprint left the drivable area; no actor removal rescues it
  kSole = 2,    ///< exactly one obstacle intersected (`sole_blocker` says which)
  kMulti = 3,   ///< two or more obstacles intersected; no single removal rescues it
};

/// One blocked-frontier entry: the tested candidate state (full bits, for
/// exact replay matching) plus its blocker attribution.
struct BlockRecord {
  dynamics::VehicleState state;
  std::uint32_t sole_blocker = 0;  ///< index into the obstacles span, valid for kSole
  BlockerClass cls = BlockerClass::kPassed;
};

/// Per-slice memo of every state_ok outcome of an attributed propagation.
/// Flat containers only (§9): records live in a dense vector; `by_state`
/// maps a SplitMix64 hash of the state bits to the first record with that
/// hash (replay verifies full state equality and falls back to geometry on
/// the ~2^-64 mismatch, so collisions cost time, never correctness).
struct SliceAttribution {
  std::vector<BlockRecord> tests;
  common::FlatHashGrid<std::uint32_t> by_state;
};

/// Everything a counterfactual replay needs from the attributed base run.
struct TubeAttribution {
  static constexpr std::uint32_t kNever = 0xFFFFFFFFu;

  std::vector<SliceAttribution> slices;  ///< [0, slice_count]; [0] holds the seed test
  /// Sampling-RNG snapshot at the start of each slice loop (loop j produces
  /// slice j+1), so a replay from slice j* resumes the exact draw sequence
  /// when `boundary_controls` is off. Unfilled past an early pinch-off.
  std::vector<common::Rng> rng_at_loop;
  /// Cumulative |T| through produced slice j — the volume a replay starts
  /// from after copying slices [0, j*).
  std::vector<std::size_t> volume_prefix;
  /// Per obstacle index: earliest slice where it was the *sole* rejector of
  /// a candidate (kNever = rejected nothing alone → |T^{-i}| ≡ |T| free).
  std::vector<std::uint32_t> first_sole_block;
  /// Earliest slice with any actor-attributable rejection (kSole or kMulti);
  /// |T^{∅}| replays from here (kNever = |T^{∅}| ≡ |T| free).
  std::uint32_t first_actor_block = kNever;
  std::size_t obstacle_count = 0;
  /// Total kSole + kMulti records — the blocked frontier the replays re-expand
  /// from (telemetry: reachtube.blocked_frontier_size).
  std::size_t blocked_frontier = 0;
  /// Per-slice active obstacle sets of the base run, flattened: slice j's
  /// set is active_flat[active_offsets[j] .. active_offsets[j+1]) in
  /// ascending obstacle-index order. The set is a pure function of
  /// (obstacle set, seed, slice) — independent of which actors a replay
  /// excludes — so compute_attributed builds it exactly once and the base
  /// propagation plus every counterfactual replay in the fan-out reuse it
  /// read-only (a replay filters its excluded indices out while loading,
  /// which is exactly what rebuilding with exclusions would produce).
  /// Covers every slice [0, slice_count].
  std::vector<std::uint32_t> active_flat;
  std::vector<std::uint32_t> active_offsets;

  /// True when `exclude_index` never solely rejected a candidate, i.e. the
  /// counterfactual is the base tube verbatim.
  bool blocks_nothing(std::size_t exclude_index) const {
    return first_sole_block[exclude_index] == kNever;
  }
};

/// Base tube plus the attribution record the counterfactual replays consume.
struct AttributedTube {
  ReachTube tube;
  TubeAttribution attribution;
};

/// How one counterfactual was produced (telemetry + tests).
struct CounterfactualStats {
  bool free = false;            ///< no divergence: tube copied from the base
  std::uint32_t replay_from = 0;  ///< first re-propagated slice (when !free)
  std::size_t memo_hits = 0;    ///< state_ok answers served from the record
  std::size_t fresh_tests = 0;  ///< geometry tests actually run (the delta)
};

class ReachTubeComputer {
 public:
  explicit ReachTubeComputer(const ReachTubeParams& params = {});

  /// Validates `params`, throwing via IPRISM_CHECK on the first violated
  /// invariant. Construction-free fail-fast entry point for configs that
  /// embed tube params (e.g. SmcTrainConfig); the constructor runs the same
  /// checks.
  static void validate(const ReachTubeParams& params);

  const ReachTubeParams& params() const { return params_; }
  int slice_count() const { return slices_; }

  /// Samples every forecast's footprint at the tube's slice times
  /// (t0, t0+dt, ..., t0+k). Shared prep for the counterfactual tubes.
  std::vector<ObstacleTimeline> sample_obstacles(
      std::span<const ActorForecast> forecasts, common::Seconds t0) const;

  // Every computation below comes in two forms (engine/session split,
  // DESIGN.md §14): the session-first form leases its scratch from the given
  // RiskSession — warm after the first call, so a reused session performs
  // zero steady-state scratch allocations across ticks — and the legacy
  // session-less form, a thin wrapper constructing a transient session.
  // Both are const: the computer is an immutable engine; all mutation lands
  // in the session. Results are bit-identical between the two forms and
  // across fresh vs reused sessions (enforced by the SessionIdentity and
  // TubeAlloc suites).

  /// Computes the tube from `ego` at t0 against the given obstacles.
  /// A valid `exclude` drops that actor — the counterfactual "what if
  /// actor i were not present" of Eq. (2); ActorId::none() excludes nobody.
  ReachTube compute(RiskSession& session, const roadmap::DrivableMap& map,
                    const dynamics::VehicleState& ego,
                    std::span<const ObstacleTimeline> obstacles,
                    common::ActorId exclude = common::ActorId::none()) const;
  ReachTube compute(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                    std::span<const ObstacleTimeline> obstacles,
                    common::ActorId exclude = common::ActorId::none()) const;

  /// Convenience: forecast sampling + tube in one call.
  ReachTube compute(RiskSession& session, const roadmap::DrivableMap& map,
                    const dynamics::VehicleState& ego, common::Seconds t0,
                    std::span<const ActorForecast> forecasts,
                    common::ActorId exclude = common::ActorId::none()) const;
  ReachTube compute(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                    common::Seconds t0, std::span<const ActorForecast> forecasts,
                    common::ActorId exclude = common::ActorId::none()) const;

  /// One attributed base propagation: the tube is bit-identical to
  /// compute(map, ego, obstacles) — attribution only *records*, it never
  /// steers — plus the blocked-by record the replays below consume.
  AttributedTube compute_attributed(RiskSession& session, const roadmap::DrivableMap& map,
                                    const dynamics::VehicleState& ego,
                                    std::span<const ObstacleTimeline> obstacles) const;
  AttributedTube compute_attributed(const roadmap::DrivableMap& map,
                                    const dynamics::VehicleState& ego,
                                    std::span<const ObstacleTimeline> obstacles) const;

  /// |T^{-i}| for `obstacles[exclude_index]` by memoized replay of `base`.
  /// Bit-identical to compute(map, ego, obstacles, obstacles[i].actor_id)
  /// when actor ids are unique; `base` must come from compute_attributed over
  /// the same (map, ego, obstacles). When the obstacle rejected nothing the
  /// base tube is returned verbatim (stats->free, zero re-expansion).
  ReachTube compute_counterfactual(RiskSession& session, const roadmap::DrivableMap& map,
                                   const dynamics::VehicleState& ego,
                                   std::span<const ObstacleTimeline> obstacles,
                                   const AttributedTube& base, std::size_t exclude_index,
                                   CounterfactualStats* stats = nullptr) const;
  ReachTube compute_counterfactual(const roadmap::DrivableMap& map,
                                   const dynamics::VehicleState& ego,
                                   std::span<const ObstacleTimeline> obstacles,
                                   const AttributedTube& base, std::size_t exclude_index,
                                   CounterfactualStats* stats = nullptr) const;

  /// |T^{∅}| by replay with *all* blockers lifted. Bit-identical to
  /// compute(map, ego, {}) — an empty obstacles span.
  ReachTube compute_unblocked(RiskSession& session, const roadmap::DrivableMap& map,
                              const dynamics::VehicleState& ego,
                              std::span<const ObstacleTimeline> obstacles,
                              const AttributedTube& base,
                              CounterfactualStats* stats = nullptr) const;
  ReachTube compute_unblocked(const roadmap::DrivableMap& map,
                              const dynamics::VehicleState& ego,
                              std::span<const ObstacleTimeline> obstacles,
                              const AttributedTube& base,
                              CounterfactualStats* stats = nullptr) const;

 private:

  /// Shared propagation loop: runs slice loops [first_loop, slice_count)
  /// given tube.slices[first_loop] (and everything before it) already
  /// populated. The loop is staged (DESIGN.md §13): parent×control pairs are
  /// queued into structure-of-arrays lane buffers, batch-stepped and
  /// batch-analyzed a block at a time, and then consumed by one sequential
  /// decision pass that replicates the candidate order — and therefore the
  /// dedup/cap/RNG semantics — of the historical generate-then-test loop
  /// exactly. The caller supplies three policy hooks:
  ///
  ///   activate(slice)        — fill scratch.active for the slice;
  ///   analyze(slice)         — batched geometry over the pending lane block
  ///                            (no-op for memoized replays);
  ///   consult(lane, ns, slice) — "does this candidate survive", reading the
  ///                            analyzed lane outcomes (or a memo).
  ///
  /// `on_loop_begin(j)` / `on_slice_done(j, volume)` are the attribution
  /// recorder's hooks; the plain and replay paths pass no-ops that inline
  /// away. Every caller — plain, attributed, replay — funnels through this
  /// one loop, which is the §12 bit-identity argument: a replay differs from
  /// from-scratch only in where state_ok answers come from, and those
  /// answers are proven equal case by case.
  template <class Activate, class Analyze, class Consult, class OnLoopBegin,
            class OnSliceDone>
  void propagate(detail::TubeScratch& scratch, ReachTube& tube,
                 std::size_t& volume_cells, common::Rng& rng, int first_loop,
                 Activate&& activate, Analyze&& analyze, Consult&& consult,
                 OnLoopBegin&& on_loop_begin, OnSliceDone&& on_slice_done) const;

  /// Stages (2)–(4) over the pending lane block: batch footprint axes and
  /// corner AABBs (geom/batch.hpp), then per active obstacle a vectorized
  /// circumradius broad-phase cull followed by scalar narrow-phase SAT for
  /// the survivors. Fills lanes.{ax,ay,lox,loy,hix,hiy,hits,first_hit};
  /// per-lane hit counting saturates at `max_hits` (1 answers pass/fail,
  /// 2 distinguishes kSole from kMulti).
  void analyze_lanes(std::span<const ObstacleTimeline> obstacles,
                     detail::TubeScratch& scratch, common::SliceIdx slice,
                     int max_hits) const;

  /// Loads `scratch.active` for one slice from the attribution's precomputed
  /// per-slice sets, dropping indices flagged in `scratch.excluded`. Equal to
  /// build_active_set with the same exclusions: the disc test is a pure
  /// function of (obstacle, seed, slice), independent of exclusions.
  void load_active_set(const TubeAttribution& attr, detail::TubeScratch& scratch,
                       std::size_t slice) const;

  /// The scratch shape this computer's params demand: expected entries (the
  /// scratch_reserve hint or its auto default), `obstacle_count` exclusion
  /// flags, and lane buffers big enough that the per-slice flush loop never
  /// reallocates (kLaneBlock plus one parent's worst-case control count).
  /// Fed to detail::TubeScratch::reset by every scratch lease.
  struct ScratchShape {
    std::size_t expected = 0;
    std::size_t obstacles = 0;
    std::size_t lanes = 0;
  };
  ScratchShape scratch_shape(std::size_t obstacle_count) const;

  /// Replay core shared by compute_counterfactual / compute_unblocked:
  /// `exclude_index` is ignored when `exclude_all` is set.
  ReachTube replay_counterfactual(RiskSession& session, const roadmap::DrivableMap& map,
                                  const dynamics::VehicleState& ego,
                                  std::span<const ObstacleTimeline> obstacles,
                                  const AttributedTube& base, bool exclude_all,
                                  std::size_t exclude_index,
                                  CounterfactualStats* stats) const;

  /// Rebuilds `scratch.active` for one slice: obstacles whose footprint disc
  /// cannot touch the seed's conservative reachable disc — or whose index is
  /// flagged in `scratch.excluded` — are filtered out.
  void build_active_set(std::span<const ObstacleTimeline> obstacles,
                        const dynamics::VehicleState& seed, detail::TubeScratch& scratch,
                        common::SliceIdx slice) const;

  /// Fail-fast validation that every timeline was sliced for these params
  /// and carries precomputed circumradii.
  void check_timelines(std::span<const ObstacleTimeline> obstacles) const;

  /// Full-attribution variant of state_ok: never stops at the first
  /// intersecting obstacle — it keeps scanning until a *second* blocker is
  /// found (two is enough: no single-actor removal rescues a kMulti).
  BlockRecord classify_state(const roadmap::DrivableMap& map,
                             const dynamics::VehicleState& s,
                             std::span<const ObstacleTimeline> obstacles,
                             std::span<const std::uint32_t> active,
                             common::SliceIdx slice) const;
  /// Collision/off-map test against the slice's *active* obstacle subset
  /// (`active` holds indices into `obstacles`; the caller filters once per
  /// slice against a conservative reachable-disc bound, so the innermost
  /// loop only visits obstacles that could possibly intersect).
  bool state_ok(const roadmap::DrivableMap& map, const dynamics::VehicleState& s,
                std::span<const ObstacleTimeline> obstacles,
                std::span<const std::uint32_t> active, common::SliceIdx slice) const;

  ReachTubeParams params_;
  dynamics::BicycleModel model_;
  int slices_ = 0;
  double ego_circumradius_ = 0.0;  ///< constant of ego_dims, hoisted out of state_ok
  std::vector<dynamics::Control> boundary_set_;
  /// std::tan(boundary_set_[i].steer), hoisted out of the slice loop — the
  /// batch step kernel takes tan(phi) precomputed (same bits: same libm call
  /// on the same input either way).
  std::vector<double> boundary_tan_;
};

}  // namespace iprism::core
