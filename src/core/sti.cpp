#include "core/sti.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"

namespace iprism::core {

double StiResult::max_actor_sti() const {
  double best = 0.0;
  for (const auto& [id, sti] : per_actor) best = std::max(best, sti);
  return best;
}

StiCalculator::StiCalculator(const ReachTubeParams& params, common::ThreadPool* pool)
    : tube_(params) {
  // One process-wide pool by default: before the engine/session split every
  // calculator spawned its own `num_threads` workers, so M monitors meant M
  // pools oversubscribing the machine. `num_threads` now only gates serial
  // vs pooled — the shared pool's width is sized once from the hardware.
  if (params.num_threads > 0) {
    pool_ = pool != nullptr ? pool : &common::ThreadPool::shared();
  }
}

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// The delta engine excludes counterfactual actors by obstacle *index*; the
/// from-scratch reference excludes by ActorId, which removes every timeline
/// carrying that id. The two agree exactly when no valid id repeats — the
/// normal case, since forecasts come one per actor. Duplicate ids (possible
/// with hand-built forecast lists) fall back to from-scratch per-actor tubes
/// so the engines stay bit-identical.
bool has_duplicate_valid_ids(std::span<const ActorForecast> forecasts) {
  std::vector<int> ids;
  ids.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    if (common::ActorId{f.id}.valid()) ids.push_back(f.id);
  }
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) != ids.end();
}

}  // namespace

StiResult StiCalculator::compute(RiskSession& session, const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& ego, common::Seconds t0,
                                 std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);
  if (!tube_.params().delta_counterfactuals) {
    return compute_scratch(session, map, ego, obstacles, forecasts);
  }

  StiResult out;
  // Wave 1: one attributed propagation — |T| plus the blocked-by record
  // every derived tube replays from (DESIGN.md §12).
  AttributedTube base;
  {
    IPRISM_SCOPED_TIMER("sti.wave1", "sti");
    base = tube_.compute_attributed(session, map, ego, obstacles);
  }
  out.volume_all = base.tube.volume;

  const bool dup_ids = has_duplicate_valid_ids(forecasts);

  // Wave 2: |T^{∅}| and the N counterfactuals T^{/i} (Eq. 4), all derived
  // from the shared base and fanned across the pool. Free tubes (actor
  // rejected nothing) return the base volume without touching geometry;
  // replays read the base attribution — including its precomputed
  // per-slice active obstacle sets — as immutable shared state, so no
  // replay re-derives active sets. Per-task work is uneven, but the
  // pool's one-task-per-index submission already load-balances at the
  // finest possible grain. Aggregation is by index, so results are
  // bit-identical to the serial loop. Every task leases its own scratch
  // from the one session — the lease pool is mutex-guarded exactly so a
  // single session can serve its own fan-out.
  std::vector<double> vol(forecasts.size() + 1, 0.0);
  {
    IPRISM_SCOPED_TIMER("sti.wave2", "sti");
    IPRISM_COUNT_ADD("sti.counterfactuals", forecasts.size());
    common::parallel_for_each(pool_, forecasts.size() + 1, [&](std::size_t k) {
      if (k == 0) {
        // |T^{∅}|: every blocker lifted. Identical to a propagation against
        // an empty obstacles span (active-set is empty either way).
        if (base.attribution.first_actor_block == TubeAttribution::kNever) {
          vol[0] = base.tube.volume;
          return;
        }
        IPRISM_SCOPED_TIMER("sti.counterfactual.delta", "sti");
        CounterfactualStats st;
        vol[0] = tube_.compute_unblocked(session, map, ego, obstacles, base, &st).volume;
        IPRISM_COUNT_ADD("sti.cf_delta_states", st.fresh_tests);
        return;
      }
      const std::size_t i = k - 1;
      const common::ActorId id{forecasts[i].id};
      if (!id.valid()) {
        // An anonymous actor cannot be excluded: from-scratch would drop
        // nothing, so |T^{/i}| is |T| by definition.
        vol[k] = out.volume_all;
        IPRISM_COUNT("sti.cf_free");
        return;
      }
      if (dup_ids) {
        IPRISM_SCOPED_TIMER("sti.counterfactual.scratch", "sti");
        vol[k] = tube_.compute(session, map, ego, obstacles, id).volume;
        return;
      }
      if (base.attribution.blocks_nothing(i)) {
        vol[k] = out.volume_all;
        IPRISM_COUNT("sti.cf_free");
        return;
      }
      IPRISM_SCOPED_TIMER("sti.counterfactual.delta", "sti");
      CounterfactualStats st;
      vol[k] =
          tube_.compute_counterfactual(session, map, ego, obstacles, base, i, &st).volume;
      IPRISM_COUNT_ADD("sti.cf_delta_states", st.fresh_tests);
    });
  }
  out.volume_empty = vol[0];
  IPRISM_DCHECK(out.volume_all >= 0.0 && out.volume_empty >= 0.0,
                "STI: tube volumes must be non-negative");

  if (out.volume_empty <= 0.0) {
    // No escape routes even without actors (ego off the drivable area);
    // actor-attributable risk is undefined — report zero rather than
    // dividing by zero. (Every derived tube was free in this case: an
    // off-map seed records no actor-attributable rejection.)
    for (const auto& f : forecasts) out.per_actor.emplace_back(f.id, 0.0);
    return out;
  }

  out.combined = clamp01((out.volume_empty - out.volume_all) / out.volume_empty);

  out.per_actor.reserve(forecasts.size());
  for (std::size_t i = 0; i < forecasts.size(); ++i) {
    // clamp01 precondition: the raw ratio must at least be a number — a NaN
    // here (0/0 escaping the volume_empty guard above) would clamp silently.
    IPRISM_DCHECK(std::isfinite(vol[i + 1]),
                  "STI: counterfactual volume must be finite");
    out.per_actor.emplace_back(
        forecasts[i].id,
        clamp01((vol[i + 1] - out.volume_all) / out.volume_empty));
  }
  return out;
}

StiResult StiCalculator::compute_scratch(RiskSession& session,
                                         const roadmap::DrivableMap& map,
                                         const dynamics::VehicleState& ego,
                                         std::span<const ObstacleTimeline> obstacles,
                                         std::span<const ActorForecast> forecasts) const {
  StiResult out;
  // Wave 1: |T| and |T^{∅}| together — the degenerate-denominator guard
  // below needs both before any counterfactual is worth computing. Each tube
  // is computed whole on one thread; volumes land in index-owned slots.
  {
    IPRISM_SCOPED_TIMER("sti.wave1", "sti");
    double base[2] = {0.0, 0.0};
    common::parallel_for_each(pool_, 2, [&](std::size_t j) {
      base[j] = j == 0
                    ? tube_.compute(session, map, ego, obstacles).volume
                    : tube_.compute(session, map, ego,
                                    std::span<const ObstacleTimeline>{})
                          .volume;
    });
    out.volume_all = base[0];
    out.volume_empty = base[1];
  }
  IPRISM_DCHECK(out.volume_all >= 0.0 && out.volume_empty >= 0.0,
                "STI: tube volumes must be non-negative");

  if (out.volume_empty <= 0.0) {
    // See the delta path: zero rather than a division by zero.
    for (const auto& f : forecasts) out.per_actor.emplace_back(f.id, 0.0);
    return out;
  }

  out.combined = clamp01((out.volume_empty - out.volume_all) / out.volume_empty);

  // Wave 2: the N counterfactual tubes T^{/i} (Eq. 4), fanned across the
  // pool. Aggregation is by forecast index, so per_actor keeps input order
  // and the result is bit-identical to the serial loop.
  std::vector<double> vol_without(forecasts.size(), 0.0);
  {
    IPRISM_SCOPED_TIMER("sti.wave2", "sti");
    IPRISM_COUNT_ADD("sti.counterfactuals", forecasts.size());
    common::parallel_for_each(pool_, forecasts.size(), [&](std::size_t i) {
      IPRISM_SCOPED_TIMER("sti.counterfactual.scratch", "sti");
      vol_without[i] =
          tube_.compute(session, map, ego, obstacles, common::ActorId{forecasts[i].id})
              .volume;
    });
  }

  out.per_actor.reserve(forecasts.size());
  for (std::size_t i = 0; i < forecasts.size(); ++i) {
    IPRISM_DCHECK(std::isfinite(vol_without[i]),
                  "STI: counterfactual volume must be finite");
    out.per_actor.emplace_back(
        forecasts[i].id,
        clamp01((vol_without[i] - out.volume_all) / out.volume_empty));
  }
  return out;
}

double StiCalculator::combined(RiskSession& session, const roadmap::DrivableMap& map,
                               const dynamics::VehicleState& ego, common::Seconds t0,
                               std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);
  if (!tube_.params().delta_counterfactuals) {
    return combined_scratch(session, map, ego, obstacles);
  }
  IPRISM_SCOPED_TIMER("sti.combined", "sti");
  // One attributed propagation; |T^{∅}| derives from it by replay (free when
  // nothing was actor-blocked), so the two-tube wave is now one-plus-a-delta.
  const AttributedTube base = tube_.compute_attributed(session, map, ego, obstacles);
  const double vol_all = base.tube.volume;
  double vol_empty = vol_all;
  if (base.attribution.first_actor_block != TubeAttribution::kNever) {
    CounterfactualStats st;
    vol_empty = tube_.compute_unblocked(session, map, ego, obstacles, base, &st).volume;
    IPRISM_COUNT_ADD("sti.cf_delta_states", st.fresh_tests);
  }
  IPRISM_DCHECK(vol_all >= 0.0 && vol_empty >= 0.0,
                "STI: tube volumes must be non-negative");
  if (vol_empty <= 0.0) return 0.0;
  return clamp01((vol_empty - vol_all) / vol_empty);
}

double StiCalculator::combined_scratch(RiskSession& session,
                                       const roadmap::DrivableMap& map,
                                       const dynamics::VehicleState& ego,
                                       std::span<const ObstacleTimeline> obstacles) const {
  IPRISM_SCOPED_TIMER("sti.combined", "sti");
  double base[2] = {0.0, 0.0};
  common::parallel_for_each(pool_, 2, [&](std::size_t j) {
    base[j] = j == 0
                  ? tube_.compute(session, map, ego, obstacles).volume
                  : tube_.compute(session, map, ego, std::span<const ObstacleTimeline>{})
                        .volume;
  });
  const double vol_all = base[0];
  const double vol_empty = base[1];
  IPRISM_DCHECK(vol_all >= 0.0 && vol_empty >= 0.0,
                "STI: tube volumes must be non-negative");
  if (vol_empty <= 0.0) return 0.0;
  return clamp01((vol_empty - vol_all) / vol_empty);
}

StiResult StiCalculator::compute(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& ego, common::Seconds t0,
                                 std::span<const ActorForecast> forecasts) const {
  // Legacy session-less form: transient session, cold scratch, identical
  // bits (the session only supplies scratch storage — DESIGN.md §14).
  RiskSession session;
  return compute(session, map, ego, t0, forecasts);
}

double StiCalculator::combined(const roadmap::DrivableMap& map,
                               const dynamics::VehicleState& ego, common::Seconds t0,
                               std::span<const ActorForecast> forecasts) const {
  RiskSession session;
  return combined(session, map, ego, t0, forecasts);
}

}  // namespace iprism::core
