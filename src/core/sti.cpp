#include "core/sti.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iprism::core {

double StiResult::max_actor_sti() const {
  double best = 0.0;
  for (const auto& [id, sti] : per_actor) best = std::max(best, sti);
  return best;
}

StiCalculator::StiCalculator(const ReachTubeParams& params) : tube_(params) {}

namespace {

constexpr int kExcludeAll = -2;  // sentinel: no actor id is ever -2

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

StiResult StiCalculator::compute(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& ego, double t0,
                                 std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);

  StiResult out;
  out.volume_all = tube_.compute(map, ego, obstacles).volume;

  // |T^{∅}|: tube against an empty obstacle set.
  out.volume_empty =
      tube_.compute(map, ego, std::span<const ObstacleTimeline>{}).volume;
  IPRISM_DCHECK(out.volume_all >= 0.0 && out.volume_empty >= 0.0,
                "STI: tube volumes must be non-negative");

  if (out.volume_empty <= 0.0) {
    // No escape routes even without actors (ego off the drivable area);
    // actor-attributable risk is undefined — report zero rather than
    // dividing by zero.
    for (const auto& f : forecasts) out.per_actor.emplace_back(f.id, 0.0);
    return out;
  }

  out.combined = clamp01((out.volume_empty - out.volume_all) / out.volume_empty);

  out.per_actor.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    const double vol_without = tube_.compute(map, ego, obstacles, f.id).volume;
    // clamp01 precondition: the raw ratio must at least be a number — a NaN
    // here (0/0 escaping the volume_empty guard above) would clamp silently.
    IPRISM_DCHECK(std::isfinite(vol_without), "STI: counterfactual volume must be finite");
    out.per_actor.emplace_back(
        f.id, clamp01((vol_without - out.volume_all) / out.volume_empty));
  }
  return out;
}

double StiCalculator::combined(const roadmap::DrivableMap& map,
                               const dynamics::VehicleState& ego, double t0,
                               std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);
  const double vol_all = tube_.compute(map, ego, obstacles).volume;
  const double vol_empty =
      tube_.compute(map, ego, std::span<const ObstacleTimeline>{}).volume;
  IPRISM_DCHECK(vol_all >= 0.0 && vol_empty >= 0.0,
                "STI: tube volumes must be non-negative");
  if (vol_empty <= 0.0) return 0.0;
  (void)kExcludeAll;
  return clamp01((vol_empty - vol_all) / vol_empty);
}

}  // namespace iprism::core
