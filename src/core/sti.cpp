#include "core/sti.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"

namespace iprism::core {

double StiResult::max_actor_sti() const {
  double best = 0.0;
  for (const auto& [id, sti] : per_actor) best = std::max(best, sti);
  return best;
}

StiCalculator::StiCalculator(const ReachTubeParams& params) : tube_(params) {
  if (params.num_threads > 0) {
    pool_ = std::make_shared<common::ThreadPool>(
        static_cast<std::size_t>(params.num_threads));
  }
}

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

StiResult StiCalculator::compute(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& ego, common::Seconds t0,
                                 std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);

  StiResult out;
  // Wave 1: |T| and |T^{∅}| together — the degenerate-denominator guard
  // below needs both before any counterfactual is worth computing. Each tube
  // is computed whole on one thread; volumes land in index-owned slots.
  {
    IPRISM_SCOPED_TIMER("sti.wave1", "sti");
    double base[2] = {0.0, 0.0};
    common::parallel_for_each(pool_.get(), 2, [&](std::size_t j) {
      base[j] = j == 0
                    ? tube_.compute(map, ego, obstacles).volume
                    : tube_.compute(map, ego, std::span<const ObstacleTimeline>{})
                          .volume;
    });
    out.volume_all = base[0];
    out.volume_empty = base[1];
  }
  IPRISM_DCHECK(out.volume_all >= 0.0 && out.volume_empty >= 0.0,
                "STI: tube volumes must be non-negative");

  if (out.volume_empty <= 0.0) {
    // No escape routes even without actors (ego off the drivable area);
    // actor-attributable risk is undefined — report zero rather than
    // dividing by zero.
    for (const auto& f : forecasts) out.per_actor.emplace_back(f.id, 0.0);
    return out;
  }

  out.combined = clamp01((out.volume_empty - out.volume_all) / out.volume_empty);

  // Wave 2: the N counterfactual tubes T^{/i} (Eq. 4), fanned across the
  // pool. Aggregation is by forecast index, so per_actor keeps input order
  // and the result is bit-identical to the serial loop.
  std::vector<double> vol_without(forecasts.size(), 0.0);
  {
    IPRISM_SCOPED_TIMER("sti.wave2", "sti");
    IPRISM_COUNT_ADD("sti.counterfactuals", forecasts.size());
    common::parallel_for_each(pool_.get(), forecasts.size(), [&](std::size_t i) {
      vol_without[i] =
          tube_.compute(map, ego, obstacles, common::ActorId{forecasts[i].id}).volume;
    });
  }

  out.per_actor.reserve(forecasts.size());
  for (std::size_t i = 0; i < forecasts.size(); ++i) {
    // clamp01 precondition: the raw ratio must at least be a number — a NaN
    // here (0/0 escaping the volume_empty guard above) would clamp silently.
    IPRISM_DCHECK(std::isfinite(vol_without[i]),
                  "STI: counterfactual volume must be finite");
    out.per_actor.emplace_back(
        forecasts[i].id,
        clamp01((vol_without[i] - out.volume_all) / out.volume_empty));
  }
  return out;
}

double StiCalculator::combined(const roadmap::DrivableMap& map,
                               const dynamics::VehicleState& ego, common::Seconds t0,
                               std::span<const ActorForecast> forecasts) const {
  const auto obstacles = tube_.sample_obstacles(forecasts, t0);
  IPRISM_SCOPED_TIMER("sti.combined", "sti");
  double base[2] = {0.0, 0.0};
  common::parallel_for_each(pool_.get(), 2, [&](std::size_t j) {
    base[j] =
        j == 0 ? tube_.compute(map, ego, obstacles).volume
               : tube_.compute(map, ego, std::span<const ObstacleTimeline>{}).volume;
  });
  const double vol_all = base[0];
  const double vol_empty = base[1];
  IPRISM_DCHECK(vol_all >= 0.0 && vol_empty >= 0.0,
                "STI: tube volumes must be non-negative");
  if (vol_empty <= 0.0) return 0.0;
  return clamp01((vol_empty - vol_all) / vol_empty);
}

}  // namespace iprism::core
