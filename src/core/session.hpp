// Engine/session split (DESIGN.md §14).
//
// Every stateful layer of the risk stack is divided into an immutable,
// shareable *engine* — ReachTubeComputer, StiCalculator, RiskMonitor hold
// only validated params and const kernels after construction — and a cheap,
// reusable *session* holding everything that mutates per stream: the tube
// propagation scratch (which then persists across ticks, extending PR 3's
// zero-steady-state-allocation property from within a tube to across a whole
// stream) and the monitor's level/hysteresis counters.
//
// One engine serves any number of sessions concurrently; one session serves
// one stream at a time. Results are bit-identical whether a session is fresh
// or reused, and identical to the legacy session-less entry points (which
// now build a transient session internally) — the SessionIdentity suites
// enforce this.
#pragma once

#include <memory>

namespace iprism::core {

enum class RiskLevel;  // core/monitor.hpp

namespace detail {
struct SessionState;
}  // namespace detail

/// The mutable half of the risk stack: tube scratch buffers plus monitor
/// level/streak/update state. Opaque — engines reach inside via friendship;
/// callers only construct, reset, and read the monitor-visible fields.
///
/// Thread contract: one session serves one stream at a time (calls on the
/// same session must not overlap), but the internal scratch pool is
/// mutex-guarded, so one evaluation may fan its counterfactual replays
/// across worker threads that all lease scratch from this session. Distinct
/// sessions are fully independent and may run concurrently against one
/// shared engine.
class RiskSession {
 public:
  RiskSession();
  ~RiskSession();

  RiskSession(RiskSession&&) noexcept;
  RiskSession& operator=(RiskSession&&) noexcept;
  RiskSession(const RiskSession&) = delete;
  RiskSession& operator=(const RiskSession&) = delete;

  /// Current monitor risk level (kSafe on a fresh or reset session).
  RiskLevel level() const;
  /// Monitor updates processed through this session.
  long updates() const;

  /// Forgets all monitor state (level back to kSafe, streaks and update
  /// count cleared). Scratch buffers are kept — reset() is about semantics,
  /// not allocation, so a reset session is still warm.
  void reset();

 private:
  friend class ReachTubeComputer;
  friend class StiCalculator;
  friend class RiskMonitor;

  detail::SessionState& state() const { return *state_; }

  std::unique_ptr<detail::SessionState> state_;
};

}  // namespace iprism::core
