#include "core/drac.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace iprism::core {

DracMetric::DracMetric(double comfortable_decel, double max_decel)
    : comfortable_(comfortable_decel), max_(max_decel) {
  IPRISM_CHECK(comfortable_decel > 0.0 && max_decel > comfortable_decel,
               "DracMetric: need 0 < comfortable_decel < max_decel");
}

double DracMetric::value(const SceneSnapshot& scene) const {
  const auto cipa = closest_in_path(scene);
  if (!cipa || cipa->closing_speed <= 0.0) return 0.0;
  const double gap = std::max(cipa->gap, 0.05);
  // Matching the lead's speed after closing the gap:
  // v_rel^2 = 2 * a * gap  =>  a = v_rel^2 / (2 * gap).
  return cipa->closing_speed * cipa->closing_speed / (2.0 * gap);
}

double DracMetric::risk(const SceneSnapshot& scene) const {
  const double required = value(scene);
  if (required <= comfortable_) return 0.0;
  return std::min((required - comfortable_) / (max_ - comfortable_), 1.0);
}

}  // namespace iprism::core
