// Time-to-collision (paper §IV-C): TTC = d / s_r to the closest in-path
// actor. The risk indicator used for LTFMA is thresholded — risk is nonzero
// only once TTC falls below `threshold` seconds, matching how TTC is used
// in forward-collision-warning / ACA systems [11], [13].
#pragma once

#include <limits>

#include "core/scene.hpp"

namespace iprism::core {

class TtcMetric {
 public:
  explicit TtcMetric(double threshold_s = 3.0) : threshold_(threshold_s) {}

  /// Raw TTC in seconds; +infinity when no in-path actor is closing.
  double value(const SceneSnapshot& scene) const;

  /// Normalized risk in [0, 1]: 0 when TTC >= threshold, rising to 1 as
  /// TTC -> 0.
  double risk(const SceneSnapshot& scene) const;

  double threshold() const { return threshold_; }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  double threshold_;
};

}  // namespace iprism::core
