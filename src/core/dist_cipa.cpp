#include "core/dist_cipa.hpp"

#include <algorithm>

namespace iprism::core {

double DistCipaMetric::value(const SceneSnapshot& scene) const {
  const auto cipa = closest_in_path(scene);
  if (!cipa) return kInfinity;
  return std::max(cipa->gap, 0.0);
}

double DistCipaMetric::risk(const SceneSnapshot& scene) const {
  const double d = value(scene);
  if (d >= threshold_) return 0.0;
  return std::clamp((threshold_ - d) / threshold_, 0.0, 1.0);
}

}  // namespace iprism::core
