#include "core/pkl.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dynamics/bicycle.hpp"

namespace iprism::core {
namespace {

/// Softmax of negated costs with temperature; numerically stabilized.
std::vector<double> softmax_neg(const std::vector<double>& costs, double temperature) {
  std::vector<double> p(costs.size());
  const double lo = *std::min_element(costs.begin(), costs.end());
  double z = 0.0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    p[i] = std::exp(-(costs[i] - lo) / temperature);
    z += p[i];
  }
  for (double& v : p) v /= z;
  return p;
}

double kl_divergence(const std::vector<double>& p, const std::vector<double>& q) {
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], 1e-12));
  }
  return std::max(kl, 0.0);
}

}  // namespace

PklMetric::PklMetric(const PklParams& params, const PklWeights& weights)
    : params_(params), weights_(weights) {
  IPRISM_CHECK(params.horizon > 0.0 && params.dt > 0.0,
               "PklParams: horizon and dt must be positive");
  IPRISM_CHECK(!params.accel_options.empty(), "PklParams: need at least one accel option");
}

PklWeights PklMetric::default_weights() {
  // {collision, proximity, progress-deficit, lane-change, comfort, offroad}
  return {8.0, 2.0, 1.5, 0.6, 0.3, 6.0};
}

std::vector<PklCandidate> PklMetric::roll_candidates(const roadmap::DrivableMap& map,
                                                     const SceneSnapshot& scene) const {
  const dynamics::BicycleModel model(common::Meters{params_.wheelbase});
  const int ego_lane = map.lane_at(scene.ego.state.position());
  std::vector<int> lanes;
  if (ego_lane < 0) {
    lanes.push_back(0);
  } else {
    for (int l : {ego_lane, ego_lane - 1, ego_lane + 1}) {
      if (l >= 0 && l < map.lane_count()) lanes.push_back(l);
    }
  }

  const int steps = static_cast<int>(std::lround(params_.horizon / params_.dt));
  const common::Seconds dt{params_.dt};
  std::vector<PklCandidate> out;
  for (int lane : lanes) {
    for (double accel : params_.accel_options) {
      PklCandidate cand;
      cand.target_lane = lane;
      cand.accel = accel;
      dynamics::VehicleState s = scene.ego.state;
      cand.trajectory.append(common::Seconds{scene.time}, s);
      const double d_target = map.lane_center_offset(lane);
      for (int j = 1; j <= steps; ++j) {
        // Proportional steering toward the target lane centre (same control
        // law shape the simulator's vehicles use).
        const double pos_s = map.arclength(s.position());
        const double d = map.lateral(s.position());
        const double offset_cmd = std::clamp(0.35 * (d_target - d),
                                             -params_.max_approach_angle,
                                             params_.max_approach_angle);
        const double desired = geom::wrap_angle(map.heading_at(pos_s) + offset_cmd);
        dynamics::Control u;
        const double steer_ff =
            std::atan(params_.wheelbase * map.curvature_at(pos_s, d_target));
        u.steer = std::clamp(
            steer_ff + 2.5 * geom::angle_diff(desired, s.heading), -0.5, 0.5);
        u.accel = accel;
        s = model.step(s, u, dt);
        cand.trajectory.append(common::Seconds{scene.time} + j * dt, s);
      }
      out.push_back(std::move(cand));
    }
  }
  return out;
}

PklFeatures PklMetric::features(const roadmap::DrivableMap& map, const SceneSnapshot& scene,
                                const PklCandidate& candidate,
                                std::span<const ActorForecast> forecasts,
                                int exclude_id) const {
  const int steps = static_cast<int>(std::lround(params_.horizon / params_.dt));
  // Collision and proximity are *graded* (colliding-slice fraction, mean
  // proximity) rather than binary: in unavoidable-collision scenes a binary
  // feature saturates identically for every candidate and cancels in the
  // softmax, which would make the plan distribution blind to the actor.
  double colliding_slices = 0.0;
  double proximity_sum = 0.0;
  double offroad = 0.0;

  for (int j = 0; j <= steps; ++j) {
    const common::Seconds t{scene.time + j * params_.dt};
    const dynamics::VehicleState s = candidate.trajectory.at(t);
    const geom::OrientedBox ego_box = dynamics::footprint(s, scene.ego.dims);
    if (!map.contains_box(ego_box, 0.3)) offroad += 1.0;
    if (exclude_id == kExcludeAll) continue;
    double slice_proximity = 0.0;
    bool slice_collides = false;
    for (const ActorForecast& f : forecasts) {
      if (f.id == exclude_id) continue;
      const geom::OrientedBox box = f.trajectory.footprint_at(t, f.dims);
      if (ego_box.intersects(box)) {
        slice_collides = true;
        slice_proximity = 1.0;
      } else {
        const double clearance =
            std::max((box.center() - ego_box.center()).norm() - ego_box.circumradius() -
                         box.circumradius(),
                     0.0);
        slice_proximity = std::max(slice_proximity, std::exp(-clearance / 3.0));
      }
    }
    if (slice_collides) colliding_slices += 1.0;
    proximity_sum += slice_proximity;
  }
  const double collision = colliding_slices / (steps + 1);
  const double max_proximity = proximity_sum / (steps + 1);

  const double v0 = scene.ego.state.speed;
  const double ideal = std::max(v0 * params_.horizon, 1.0);
  const double s0 =
      map.arclength(candidate.trajectory.at(common::Seconds{scene.time}).position());
  const double s1 = map.arclength(
      candidate.trajectory.at(common::Seconds{scene.time + params_.horizon}).position());
  double progress = s1 - s0;
  const double road_len = map.road_length();
  if (progress < -road_len / 2.0) progress += road_len;  // ring wrap
  const double progress_deficit = std::clamp(1.0 - progress / ideal, 0.0, 2.0);

  const int ego_lane = std::max(map.lane_at(scene.ego.state.position()), 0);
  const double lane_change = std::abs(candidate.target_lane - ego_lane);
  const double comfort = std::abs(candidate.accel) / 6.0;

  return {collision, max_proximity, progress_deficit, lane_change, comfort,
          offroad / (steps + 1)};
}

std::vector<double> PklMetric::distribution(std::span<const PklFeatures> feats) const {
  std::vector<double> costs(feats.size(), 0.0);
  for (std::size_t i = 0; i < feats.size(); ++i) {
    for (std::size_t k = 0; k < kPklFeatureCount; ++k) costs[i] += weights_[k] * feats[i][k];
  }
  return softmax_neg(costs, params_.temperature);
}

std::vector<std::pair<int, double>> PklMetric::compute(
    const SceneSnapshot& scene, std::span<const ActorForecast> forecasts) const {
  IPRISM_CHECK(scene.map != nullptr, "PklMetric: snapshot has no map");
  const auto& map = *scene.map;
  const auto candidates = roll_candidates(map, scene);

  std::vector<PklFeatures> full;
  full.reserve(candidates.size());
  for (const auto& c : candidates)
    full.push_back(features(map, scene, c, forecasts, kExcludeNone));
  const auto p_full = distribution(full);

  std::vector<std::pair<int, double>> out;
  out.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    std::vector<PklFeatures> drop;
    drop.reserve(candidates.size());
    for (const auto& c : candidates) drop.push_back(features(map, scene, c, forecasts, f.id));
    out.emplace_back(f.id, kl_divergence(p_full, distribution(drop)));
  }
  return out;
}

double PklMetric::combined(const SceneSnapshot& scene,
                           std::span<const ActorForecast> forecasts) const {
  IPRISM_CHECK(scene.map != nullptr, "PklMetric: snapshot has no map");
  const auto& map = *scene.map;
  const auto candidates = roll_candidates(map, scene);
  std::vector<PklFeatures> full;
  std::vector<PklFeatures> none;
  full.reserve(candidates.size());
  none.reserve(candidates.size());
  for (const auto& c : candidates) {
    full.push_back(features(map, scene, c, forecasts, kExcludeNone));
    none.push_back(features(map, scene, c, forecasts, kExcludeAll));
  }
  return kl_divergence(distribution(full), distribution(none));
}

double PklMetric::risk(const SceneSnapshot& scene, std::span<const ActorForecast> forecasts,
                       double floor) const {
  double best = 0.0;
  for (const auto& [id, pkl] : compute(scene, forecasts)) best = std::max(best, pkl);
  return best > floor ? best : 0.0;
}

PklWeights fit_pkl_weights(const std::vector<PklTrainingExample>& data, int epochs,
                           double learning_rate, common::Rng& rng) {
  IPRISM_CHECK(!data.empty(), "fit_pkl_weights: no training data");
  PklWeights w = PklMetric::default_weights();
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double temperature = PklParams{}.temperature;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const PklTrainingExample& ex = data[idx];
      if (ex.candidates.empty()) continue;
      // p(candidate) ∝ exp(-w·f / T); gradient of -log p(expert) wrt w is
      // (f_expert - E_p[f]) / T ... with the sign flipped because the cost
      // is negated inside the softmax.
      std::vector<double> costs(ex.candidates.size(), 0.0);
      for (std::size_t i = 0; i < ex.candidates.size(); ++i)
        for (std::size_t k = 0; k < kPklFeatureCount; ++k)
          costs[i] += w[k] * ex.candidates[i][k];
      const double lo = *std::min_element(costs.begin(), costs.end());
      std::vector<double> p(costs.size());
      double z = 0.0;
      for (std::size_t i = 0; i < costs.size(); ++i) {
        p[i] = std::exp(-(costs[i] - lo) / temperature);
        z += p[i];
      }
      for (double& v : p) v /= z;

      PklFeatures expected{};
      for (std::size_t i = 0; i < ex.candidates.size(); ++i)
        for (std::size_t k = 0; k < kPklFeatureCount; ++k)
          expected[k] += p[i] * ex.candidates[i][k];

      for (std::size_t k = 0; k < kPklFeatureCount; ++k) {
        const double grad =
            (ex.candidates[ex.expert_index][k] - expected[k]) / temperature;
        w[k] -= learning_rate * grad;
      }
    }
  }
  return w;
}

}  // namespace iprism::core
