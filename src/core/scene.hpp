// Scene snapshots and forecasts: the inputs to every risk metric.
//
// A SceneSnapshot is the instantaneous world state (ego + other actors on a
// map); an ActorForecast is an actor's future trajectory X_{t:t+k} — either
// ground truth replayed from a recorded episode (metric characterization,
// paper §IV-C) or a CVTR prediction (SMC training/inference).
#pragma once

#include <optional>
#include <vector>

#include "dynamics/cvtr.hpp"
#include "dynamics/state.hpp"
#include "dynamics/trajectory.hpp"
#include "roadmap/map.hpp"
#include "sim/world.hpp"

namespace iprism::core {

/// One actor's pose at snapshot time.
struct ActorSnapshot {
  int id = -1;
  dynamics::VehicleState state;
  dynamics::Dimensions dims;
};

/// Instantaneous scene: ego plus all other actors. Non-owning map pointer —
/// the snapshot must not outlive the map (callers hold the MapPtr).
struct SceneSnapshot {
  const roadmap::DrivableMap* map = nullptr;
  double time = 0.0;
  ActorSnapshot ego;
  std::vector<ActorSnapshot> others;
};

/// An actor's (predicted or replayed) future trajectory with its footprint
/// dimensions. Trajectory timestamps are absolute.
struct ActorForecast {
  int id = -1;
  dynamics::Trajectory trajectory;
  dynamics::Dimensions dims;
};

/// Snapshot of a live simulation world.
SceneSnapshot snapshot_of(const sim::World& world);

/// CVTR forecasts for every non-ego actor of a world, over `horizon`
/// seconds sampled at `dt` (uses each actor's previous state for the
/// yaw-rate estimate).
std::vector<ActorForecast> cvtr_forecasts(const sim::World& world, double horizon,
                                          double dt);

/// In-path neighbour relative to the snapshot's ego (same definition as
/// sim::closest_in_path, but computable from a bare snapshot so metrics can
/// run offline over recorded traces and dataset logs).
struct InPathActor {
  int id = -1;
  double gap = 0.0;            ///< bumper-to-bumper metres
  double closing_speed = 0.0;  ///< positive = approaching
};
std::optional<InPathActor> closest_in_path(const SceneSnapshot& scene,
                                           double max_range = 120.0);

}  // namespace iprism::core
