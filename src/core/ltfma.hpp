// Lead-Time-for-Mitigating-Accident (paper §V-A): the length of the maximal
// run of consecutive nonzero-risk steps ending at the accident step —
//
//   LTFMA = sum_{i<=t_acc} ( 1[risk(i)!=0] * prod_{j=i+1..t_acc} 1[risk(j)!=0] )
//
// i.e. how long the metric had been continuously flagging risk when the
// accident happened.
#pragma once

#include <cstddef>
#include <vector>

namespace iprism::core {

/// Number of consecutive steps with risk above `eps`, counting backward
/// from `accident_step` (inclusive). `accident_step` must index into
/// `risk` (checked).
std::size_t ltfma_steps(const std::vector<double>& risk, std::size_t accident_step,
                        double eps = 1e-9);

/// LTFMA in seconds given the step period.
double ltfma_seconds(const std::vector<double>& risk, std::size_t accident_step,
                     double dt, double eps = 1e-9);

}  // namespace iprism::core
