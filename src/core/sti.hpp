// Safety-Threat Indicator (paper §III-A, Eqs. 1-6).
//
// STI quantifies the risk an actor poses to the ego as the counterfactual
// change in the ego's escape routes:
//
//   STI_i        = (|T^{/i}| - |T|) / |T^{∅}|        (Eq. 4)
//   STI_combined = (|T^{∅}|  - |T|) / |T^{∅}|        (Eq. 5)
//
// where |T| is the reach-tube volume with all actors present, |T^{/i}|
// with actor i removed, and |T^{∅}| with no actors. Values are clamped to
// [0, 1]: 0 = the actor does not reduce any escape route, 1 = the actor
// eliminates all of them.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/reachtube.hpp"
#include "core/scene.hpp"

namespace iprism::core {

/// Per-computation result.
struct StiResult {
  double combined = 0.0;
  /// (actor id, STI_i) for every forecast actor, in input order. Empty when
  /// the calculator was asked for the combined value only.
  std::vector<std::pair<int, double>> per_actor;
  double volume_all = 0.0;    ///< |T|
  double volume_empty = 0.0;  ///< |T^{∅}|

  /// Highest per-actor STI (0 if none).
  double max_actor_sti() const;
};

// The N+2 tubes an evaluation needs — |T|, |T^{∅}|, and one counterfactual
// per actor — share almost their whole wavefront. With the default
// `ReachTubeParams::delta_counterfactuals`, the base |T| is propagated once
// with blocked-by attribution and every other tube is derived from it by
// memoized replay (DESIGN.md §12): actors that rejected nothing are free,
// the rest re-run fresh geometry only on their delta wavefront. The N+1
// derived tubes are independent const reads of the attributed base, so with
// `num_threads > 0` they fan out over a common::ThreadPool and aggregate by
// index — parallel results stay bit-identical to serial ones (DESIGN.md §8),
// and both engines produce bit-identical StiResults (the
// CounterfactualDeltaIdentity suites enforce this).
class StiCalculator {
 public:
  /// An immutable engine after construction (DESIGN.md §14): every compute
  /// is const and mutates only the session it is handed. With
  /// `params.num_threads > 0` the N+2 fan-out runs on `pool` when given, or
  /// on the process-wide common::ThreadPool::shared() — M calculators share
  /// one set of workers instead of spawning M pools. `num_threads == 0`
  /// stays strictly serial (pool ignored). Thread count and pool choice
  /// never change any result (DESIGN.md §8).
  explicit StiCalculator(const ReachTubeParams& params = {},
                         common::ThreadPool* pool = nullptr);

  const ReachTubeComputer& tube_computer() const { return tube_; }
  /// The pool the fan-out runs on: null when serial, otherwise the injected
  /// pool or ThreadPool::shared(). Exposed so tests can assert the one-pool
  /// property.
  const common::ThreadPool* pool() const { return pool_; }

  /// Full evaluation: combined STI plus one counterfactual tube per actor
  /// (Eq. 4 for each i, Eq. 5 for the combined value). The session-first
  /// form reuses the session's warm scratch across ticks; the session-less
  /// form builds a transient session. Results are bit-identical either way
  /// (SessionIdentity suites).
  StiResult compute(RiskSession& session, const roadmap::DrivableMap& map,
                    const dynamics::VehicleState& ego, common::Seconds t0,
                    std::span<const ActorForecast> forecasts) const;
  StiResult compute(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                    common::Seconds t0, std::span<const ActorForecast> forecasts) const;

  /// Combined STI only (two tubes instead of N+2) — the quantity the SMC
  /// reward needs at every training step.
  double combined(RiskSession& session, const roadmap::DrivableMap& map,
                  const dynamics::VehicleState& ego, common::Seconds t0,
                  std::span<const ActorForecast> forecasts) const;
  double combined(const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
                  common::Seconds t0, std::span<const ActorForecast> forecasts) const;

 private:
  /// The pre-§12 engine: N+2 independent propagations. Kept behind
  /// `delta_counterfactuals = false` for A/B benchmarking and as the
  /// from-scratch reference the identity suites compare against.
  StiResult compute_scratch(RiskSession& session, const roadmap::DrivableMap& map,
                            const dynamics::VehicleState& ego,
                            std::span<const ObstacleTimeline> obstacles,
                            std::span<const ActorForecast> forecasts) const;
  double combined_scratch(RiskSession& session, const roadmap::DrivableMap& map,
                          const dynamics::VehicleState& ego,
                          std::span<const ObstacleTimeline> obstacles) const;

  ReachTubeComputer tube_;
  /// Null when params.num_threads == 0 (serial); otherwise the injected pool
  /// or &ThreadPool::shared(). Never owned: the shared pool outlives every
  /// engine (function-local static), and injected pools are the injector's
  /// responsibility.
  common::ThreadPool* pool_ = nullptr;
};

}  // namespace iprism::core
