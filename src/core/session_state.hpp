// Internal to src/core: the concrete state behind core::RiskSession.
//
// Public callers see only the opaque RiskSession (core/session.hpp); the
// engines' .cpp files include this header to lease scratch and to read or
// advance monitor state. Nothing here is API — layout and members may change
// freely between releases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/flat_hash.hpp"
#include "common/sync.hpp"
#include "core/monitor.hpp"
#include "dynamics/state.hpp"

namespace iprism::core::detail {

/// Lane-block size for the staged propagation (DESIGN.md §13): parent×control
/// pairs are queued into structure-of-arrays buffers until at least this many
/// lanes are pending, then batch-stepped, batch-analyzed, and consumed by one
/// sequential decision pass. The value trades cache residency of the lane
/// buffers against amortizing per-block fixed costs; results are independent
/// of it — every kernel is a pure per-lane computation and the decision pass
/// preserves candidate order.
constexpr std::size_t kLaneBlock = 1024;

/// Per-(x, y)-cell representative bookkeeping: the four extreme states
/// (min/max speed, min/max heading) that determine the cell's future
/// spread. Slots index into the slice's state vector.
struct CellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

/// Per-propagation scratch, reused across the slice loop — and, via the
/// session's ScratchPool below, across *ticks*. Everything is reserved by
/// reset() and cleared per slice with capacity retained, so after the first
/// propagation on a session the whole stream performs zero steady-state
/// scratch allocations (tests/test_tube_alloc.cpp proves both scopes). The
/// hash containers are common::FlatHashGrid: iteration order is insertion
/// order by construction, independent of capacity and load factor, so —
/// unlike the std::unordered_* scratch this replaced — pre-reserving (or
/// varying ReachTubeParams::scratch_reserve) cannot perturb tube results
/// (DESIGN.md §9).
struct TubeScratch {
  common::FlatHashGrid<CellReps> cells;
  common::FlatKeySet occupied;  // volume when dedup is off
  std::vector<dynamics::VehicleState> candidates;
  std::vector<char> seen;  // per-candidate emit flags (collect pass)
  /// Surviving-representative slots paired with their SplitMix64 sort key
  /// (precomputed once so the emission sort never re-mixes in a comparator).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kept;
  std::vector<std::uint32_t> active;  // per-slice obstacle active-set
  /// Per-obstacle exclusion flags, resolved once per propagation (from an
  /// ActorId for the public compute(), from an obstacle index / lift-all for
  /// the counterfactual replays) so the per-slice active-set build does one
  /// byte test per obstacle.
  std::vector<char> excluded;

  /// Structure-of-arrays lane buffers for the staged propagation (§13). A
  /// "lane" is one pending parent×control pair; `count` lanes are queued,
  /// then the whole block runs through stages 1–4 before the decision pass
  /// consumes it. Every array is sized once to the scratch's lane capacity
  /// (kLaneBlock plus one parent's worst-case control count, so the flush
  /// threshold can never overflow a block), keeping the slice loop free of
  /// lane-buffer allocations.
  struct Lanes {
    std::size_t count = 0;
    // Stage-0 inputs, queued parent-major in exact scalar candidate order.
    std::vector<double> px, py, ph, pv, accel, tan_steer;
    // Stage-1 outputs: batch-stepped successor states and their cell keys.
    std::vector<double> nx, ny, nh, nv;
    std::vector<std::uint64_t> key;
    // Stage-2/3 outputs: footprint long axis, corner AABB, broad-phase mask.
    std::vector<double> ax, ay, lo_x, lo_y, hi_x, hi_y;
    std::vector<unsigned char> broad;
    // Stage-4 outputs: saturating hit count and the first hitting obstacle.
    std::vector<std::uint8_t> hits;
    std::vector<std::uint32_t> first_hit;

    void allocate(std::size_t cap) {
      for (auto* v : {&px, &py, &ph, &pv, &accel, &tan_steer, &nx, &ny, &nh, &nv, &ax,
                      &ay, &lo_x, &lo_y, &hi_x, &hi_y}) {
        v->resize(cap);
      }
      key.resize(cap);
      broad.resize(cap);
      hits.resize(cap);
      first_hit.resize(cap);
    }

    void push(const dynamics::VehicleState& s, double a, double tan_phi) {
      px[count] = s.x;
      py[count] = s.y;
      ph[count] = s.heading;
      pv[count] = s.speed;
      accel[count] = a;
      tan_steer[count] = tan_phi;
      ++count;
    }
  };
  Lanes lanes;

  /// Sizes every container for a propagation of the given shape and clears
  /// per-propagation state (exclusion flags back to zero). Idempotent and
  /// monotone: reservations never shrink, vector fills stay within retained
  /// capacity, and FlatHashGrid::clear keeps its table — so on a warm scratch
  /// of the same shape this performs zero allocations.
  void reset(std::size_t expected, std::size_t obstacle_count, std::size_t lane_capacity) {
    cells.reserve(expected);
    cells.clear();
    occupied.reserve(expected);
    occupied.clear();
    candidates.reserve(expected);
    candidates.clear();
    kept.reserve(expected);
    kept.clear();
    active.reserve(obstacle_count);
    active.clear();
    excluded.assign(obstacle_count, 0);
    if (lanes.key.size() < lane_capacity) lanes.allocate(lane_capacity);
    lanes.count = 0;
  }

  void next_slice() {
    cells.clear();
    occupied.clear();
    candidates.clear();
  }
};

/// Mutex-guarded free-list of scratch buffers. One session's evaluation may
/// fan counterfactual replays across worker threads; each task leases its own
/// scratch here, so the pool's high-water mark is the fan-out width and the
/// steady state allocates nothing. Lease via ScratchLease below.
class ScratchPool {
 public:
  std::unique_ptr<TubeScratch> acquire() {
    const common::MutexLock lock(mutex_);
    if (free_.empty()) return nullptr;
    std::unique_ptr<TubeScratch> scratch = std::move(free_.back());
    free_.pop_back();
    return scratch;
  }

  void release(std::unique_ptr<TubeScratch> scratch) {
    const common::MutexLock lock(mutex_);
    free_.push_back(std::move(scratch));
  }

 private:
  common::Mutex mutex_;
  std::vector<std::unique_ptr<TubeScratch>> free_ IPRISM_GUARDED_BY(mutex_);
};

/// RAII scratch lease: acquires a warm scratch from the pool (or constructs
/// one cold on first use), reset() to the requested shape, returned on scope
/// exit. The reset is part of the lease, not the release, so a scratch's
/// contents never leak between propagations.
class ScratchLease {
 public:
  ScratchLease(ScratchPool& pool, std::size_t expected, std::size_t obstacle_count,
               std::size_t lane_capacity)
      : pool_(pool), scratch_(pool.acquire()) {
    if (scratch_ == nullptr) scratch_ = std::make_unique<TubeScratch>();
    scratch_->reset(expected, obstacle_count, lane_capacity);
  }

  ~ScratchLease() { pool_.release(std::move(scratch_)); }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  TubeScratch& operator*() const { return *scratch_; }
  TubeScratch* operator->() const { return scratch_.get(); }

 private:
  ScratchPool& pool_;
  std::unique_ptr<TubeScratch> scratch_;
};

/// Everything a RiskSession owns. Tube/STI layers touch only scratch_pool;
/// the monitor layer owns the rest (RiskMonitor::update is const and reads /
/// writes exclusively through here — the engine itself never mutates).
struct SessionState {
  ScratchPool scratch_pool;

  // Monitor state (moved out of RiskMonitor members by the engine/session
  // split; semantics unchanged).
  RiskLevel level = RiskLevel::kSafe;
  int quiet_streak = 0;
  long updates = 0;
};

}  // namespace iprism::core::detail
