#include "core/scene.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::core {

SceneSnapshot snapshot_of(const sim::World& world) {
  SceneSnapshot scene;
  scene.map = &world.map();
  scene.time = world.time();
  IPRISM_CHECK(world.has_ego(), "snapshot_of: world has no ego actor");
  const sim::Actor& ego = world.ego();
  scene.ego = {ego.id, ego.state, ego.dims};
  for (const sim::Actor& a : world.actors()) {
    if (a.id == ego.id) continue;
    scene.others.push_back({a.id, a.state, a.dims});
  }
  return scene;
}

std::vector<ActorForecast> cvtr_forecasts(const sim::World& world, double horizon,
                                          double dt) {
  dynamics::CvtrPredictor predictor;
  std::vector<ActorForecast> out;
  const int ego_id = world.has_ego() ? world.ego().id : -1;
  for (const sim::Actor& a : world.actors()) {
    if (a.id == ego_id) continue;
    ActorForecast f;
    f.id = a.id;
    f.dims = a.dims;
    if (world.step_count() > 0) {
      f.trajectory = predictor.predict(a.prev_state, a.state, common::Seconds{world.dt()},
                                       common::Seconds{world.time()},
                                       common::Seconds{horizon}, common::Seconds{dt});
    } else {
      f.trajectory = predictor.predict(a.state, common::Seconds{world.time()},
                                       common::Seconds{horizon}, common::Seconds{dt});
    }
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<InPathActor> closest_in_path(const SceneSnapshot& scene, double max_range) {
  IPRISM_CHECK(scene.map != nullptr, "closest_in_path: snapshot has no map");
  const auto& map = *scene.map;
  const double ego_s = map.arclength(scene.ego.state.position());
  const double ego_d = map.lateral(scene.ego.state.position());
  const double corridor = scene.ego.dims.width / 2.0;
  const double road_len = map.road_length();

  auto lane_speed = [&](const ActorSnapshot& a) {
    const double lane_heading = map.heading_at(map.arclength(a.state.position()));
    return a.state.speed * std::cos(geom::angle_diff(a.state.heading, lane_heading));
  };
  const double ego_v = lane_speed(scene.ego);

  std::optional<InPathActor> best;
  for (const ActorSnapshot& other : scene.others) {
    double offset = map.arclength(other.state.position()) - ego_s;
    if (offset > road_len / 2.0) offset -= road_len;
    if (offset < -road_len / 2.0) offset += road_len;
    if (offset <= 0.0) continue;
    const double other_d = map.lateral(other.state.position());
    const double overlap = corridor + other.dims.width / 2.0 - std::abs(other_d - ego_d);
    if (overlap <= 0.0) continue;
    const double gap = offset - scene.ego.dims.length / 2.0 - other.dims.length / 2.0;
    if (gap > max_range) continue;
    if (!best || gap < best->gap) {
      best = InPathActor{other.id, gap, ego_v - lane_speed(other)};
    }
  }
  return best;
}

}  // namespace iprism::core
