// Planner-KL-divergence (paper §IV-C, ref [14]) — surrogate implementation.
//
// PKL measures an actor's influence on the ego's *plan distribution*: how
// differently the ego would plan if that actor were missing from its
// detections. The original uses a learned neural planner; this library uses
// a trainable softmax cost planner over a trajectory lattice (substitution
// documented in DESIGN.md §2):
//
//   - candidates: constant-acceleration rollouts toward each reachable lane
//   - cost:       w · features(candidate, detected actors)
//   - plan dist:  p(candidate) ∝ exp(-cost / temperature)
//   - PKL(i):     KL( p_all-detections ‖ p_without-actor-i )
//
// The weights w are *learned* from demonstrations (the realized ego motion
// of recorded episodes), which reproduces the paper's PKL-All /
// PKL-Holdout training-sensitivity comparison: refitting on a different
// scenario mix yields a different metric.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/scene.hpp"
#include "dynamics/state.hpp"
#include "dynamics/trajectory.hpp"

namespace iprism::core {

inline constexpr std::size_t kPklFeatureCount = 6;
using PklFeatures = std::array<double, kPklFeatureCount>;
using PklWeights = std::array<double, kPklFeatureCount>;

struct PklParams {
  double horizon = 2.5;
  double dt = 0.25;
  /// Constant-acceleration options per candidate.
  std::vector<double> accel_options{-6.0, -3.0, -1.0, 0.0, 1.0, 3.0};
  double temperature = 1.0;
  double wheelbase = 2.7;
  double max_approach_angle = 0.25;  ///< lane-change aggressiveness of candidates
};

/// One plan candidate: its rolled trajectory plus static descriptors.
struct PklCandidate {
  dynamics::Trajectory trajectory;
  int target_lane = 0;
  double accel = 0.0;
};

class PklMetric {
 public:
  explicit PklMetric(const PklParams& params = {},
                     const PklWeights& weights = default_weights());

  const PklWeights& weights() const { return weights_; }
  void set_weights(const PklWeights& w) { weights_ = w; }

  /// Hand-tuned prior weights (used before any fitting):
  /// {collision, proximity, progress-deficit, lane-change, comfort, offroad}.
  static PklWeights default_weights();

  /// Rolls the candidate lattice from the ego state (obstacle-independent).
  std::vector<PklCandidate> roll_candidates(const roadmap::DrivableMap& map,
                                            const SceneSnapshot& scene) const;

  /// Features of one candidate against a set of forecast actors
  /// (`exclude_id` drops one actor; kExcludeAll drops all).
  PklFeatures features(const roadmap::DrivableMap& map, const SceneSnapshot& scene,
                       const PklCandidate& candidate,
                       std::span<const ActorForecast> forecasts, int exclude_id) const;

  static constexpr int kExcludeNone = -1;
  static constexpr int kExcludeAll = -2;

  /// Plan distribution over candidates given per-candidate features.
  std::vector<double> distribution(std::span<const PklFeatures> feats) const;

  /// PKL of each actor: KL(p_full ‖ p_without-that-actor), input order.
  std::vector<std::pair<int, double>> compute(const SceneSnapshot& scene,
                                              std::span<const ActorForecast> forecasts) const;

  /// Combined PKL: KL(p_full ‖ p_without-all-actors).
  double combined(const SceneSnapshot& scene,
                  std::span<const ActorForecast> forecasts) const;

  /// Highest per-actor PKL; 0 when there are no actors. This is the "risk"
  /// series used for LTFMA: an actor counts as influencing the plan only
  /// when its KL exceeds `floor` nats (far-field proximity shifts the
  /// distribution by tiny amounts at any distance, so an unthresholded KL
  /// would register "risk" the moment any actor is on the map).
  double risk(const SceneSnapshot& scene, std::span<const ActorForecast> forecasts,
              double floor = 0.25) const;

 private:
  PklParams params_;
  PklWeights weights_;
};

/// One supervised example for planner fitting: the candidate features of a
/// scene plus the index of the candidate closest to what the ego actually
/// did next (the demonstration).
struct PklTrainingExample {
  std::vector<PklFeatures> candidates;
  std::size_t expert_index = 0;
};

/// Fits planner weights by softmax cross-entropy on demonstrations
/// (mini-batch SGD, deterministic given the rng).
PklWeights fit_pkl_weights(const std::vector<PklTrainingExample>& data, int epochs,
                           double learning_rate, common::Rng& rng);

}  // namespace iprism::core
