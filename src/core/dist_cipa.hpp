// Distance to the closest in-path actor (paper §IV-C): a proximity risk
// indicator. Risk is nonzero once the bumper gap to the closest in-path
// actor falls below `threshold` metres.
#pragma once

#include <limits>

#include "core/scene.hpp"

namespace iprism::core {

class DistCipaMetric {
 public:
  explicit DistCipaMetric(double threshold_m = 25.0) : threshold_(threshold_m) {}

  /// Raw gap in metres; +infinity when there is no in-path actor.
  double value(const SceneSnapshot& scene) const;

  /// Normalized risk in [0, 1]: 0 beyond the threshold, 1 at contact.
  double risk(const SceneSnapshot& scene) const;

  double threshold() const { return threshold_; }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  double threshold_;
};

}  // namespace iprism::core
