#include "core/ttc.hpp"

#include <algorithm>

namespace iprism::core {

double TtcMetric::value(const SceneSnapshot& scene) const {
  const auto cipa = closest_in_path(scene);
  if (!cipa || cipa->closing_speed <= 0.0) return kInfinity;
  return std::max(cipa->gap, 0.0) / cipa->closing_speed;
}

double TtcMetric::risk(const SceneSnapshot& scene) const {
  const double ttc = value(scene);
  if (ttc >= threshold_) return 0.0;
  return std::clamp((threshold_ - ttc) / threshold_, 0.0, 1.0);
}

}  // namespace iprism::core
