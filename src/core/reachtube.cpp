#include "core/reachtube.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "core/session_state.hpp"
#include "dynamics/step_batch.hpp"
#include "geom/batch.hpp"

namespace iprism::core {

// The propagation scratch (detail::TubeScratch, detail::kLaneBlock) lives in
// core/session_state.hpp since the engine/session split: sessions own and
// pool it across ticks, and every entry point below leases it back through a
// detail::ScratchLease.
using detail::CellReps;
using detail::kLaneBlock;
using detail::TubeScratch;

namespace {

/// Packs a quantized (x, y) cell into a hashable key. Coordinates are
/// offset to keep them positive over any realistic map extent. `inv_cell`
/// is the hoisted 1/cell_size — the hot loop multiplies instead of paying
/// two divides per propagated state.
std::uint64_t xy_key(double x, double y, double inv_cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x * inv_cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y * inv_cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

static_assert(sizeof(dynamics::VehicleState) == 4 * sizeof(double),
              "VehicleState must stay four packed doubles: the blocked-by "
              "memo matches replayed candidates by raw state bits");

/// Hash of a state's exact bit pattern — the blocked-by memo key. Two runs
/// testing the same candidate produce identical doubles (the propagation is
/// deterministic), so bit hashing is exact; a hash collision between
/// *different* states is caught by bits_equal below and degrades to a memo
/// miss, never to a wrong answer.
std::uint64_t state_bits_key(const dynamics::VehicleState& s) {
  const auto bits = [](double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  std::uint64_t h = common::splitmix64_mix(bits(s.x));
  h = common::splitmix64_mix(h ^ bits(s.y));
  h = common::splitmix64_mix(h ^ bits(s.heading));
  h = common::splitmix64_mix(h ^ bits(s.speed));
  return h;
}

bool bits_equal(const dynamics::VehicleState& a, const dynamics::VehicleState& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

}  // namespace

void ObstacleTimeline::finalize() {
  circumradius_by_slice.clear();
  circumradius_by_slice.reserve(by_slice.size());
  for (const geom::OrientedBox& box : by_slice) {
    circumradius_by_slice.push_back(box.circumradius());
  }
}

void ReachTubeComputer::validate(const ReachTubeParams& params) {
  IPRISM_CHECK(params.dt > 0.0 && params.horizon > 0.0,
               "ReachTubeParams: dt and horizon must be positive");
  IPRISM_CHECK(params.cell_size > 0.0, "ReachTubeParams: cell_size must be positive");
  IPRISM_CHECK(params.uniform_samples > 0,
               "ReachTubeParams: uniform_samples must be positive");
  IPRISM_CHECK(params.max_states_per_slice > 0,
               "ReachTubeParams: max_states_per_slice must be positive");
  IPRISM_CHECK(params.limits.accel_min < params.limits.accel_max &&
                   params.limits.steer_min < params.limits.steer_max,
               "ReachTubeParams: control limits must span a non-empty range");
  IPRISM_CHECK(params.num_threads >= 0,
               "ReachTubeParams: num_threads must be non-negative (0 = serial)");
  IPRISM_CHECK(static_cast<int>(std::lround(params.horizon / params.dt)) >= 1,
               "ReachTubeParams: horizon must cover at least one slice");
}

ReachTubeComputer::ReachTubeComputer(const ReachTubeParams& params)
    : params_(params), model_(common::Meters{params.wheelbase}) {
  validate(params);
  slices_ = static_cast<int>(std::lround(params.horizon / params.dt));
  // The ego footprint's circumradius depends only on its dimensions, never
  // on the state — hoist the hypot out of the per-state collision test.
  ego_circumradius_ =
      dynamics::footprint(dynamics::VehicleState{}, params_.ego_dims).circumradius();

  const auto& lim = params_.limits;
  std::vector<double> accels;
  if (params_.include_braking_boundary) {
    accels = {lim.accel_min, 0.0, lim.accel_max};
  } else {
    accels = {0.0, lim.accel_max};  // the paper's published boundary set
  }
  for (double a : accels) {
    for (double phi : {lim.steer_min, 0.0, lim.steer_max}) {
      boundary_set_.push_back({a, phi});
    }
  }
  // tan(phi) per boundary control, hoisted out of the step kernel: the same
  // libm call on the same input bits the scalar model makes per step.
  boundary_tan_.reserve(boundary_set_.size());
  for (const dynamics::Control& u : boundary_set_) {
    boundary_tan_.push_back(std::tan(u.steer));
  }
}

std::vector<ObstacleTimeline> ReachTubeComputer::sample_obstacles(
    std::span<const ActorForecast> forecasts, common::Seconds t0) const {
  const common::Seconds dt{params_.dt};
  std::vector<ObstacleTimeline> out;
  out.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    ObstacleTimeline tl;
    tl.actor_id = common::ActorId{f.id};
    tl.by_slice.reserve(static_cast<std::size_t>(slices_) + 1);
    for (int j = 0; j <= slices_; ++j) {
      tl.by_slice.push_back(f.trajectory.footprint_at(t0 + j * dt, f.dims));
    }
    tl.finalize();
    out.push_back(std::move(tl));
  }
  return out;
}

bool ReachTubeComputer::state_ok(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& s,
                                 std::span<const ObstacleTimeline> obstacles,
                                 std::span<const std::uint32_t> active,
                                 common::SliceIdx slice_idx) const {
  const std::size_t slice = slice_idx.value();
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) return false;
  const double ego_r = ego_circumradius_;
  for (const std::uint32_t oi : active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    // Broad phase before the exact SAT test (radius precomputed per timeline).
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

BlockRecord ReachTubeComputer::classify_state(const roadmap::DrivableMap& map,
                                              const dynamics::VehicleState& s,
                                              std::span<const ObstacleTimeline> obstacles,
                                              std::span<const std::uint32_t> active,
                                              common::SliceIdx slice_idx) const {
  const std::size_t slice = slice_idx.value();
  BlockRecord rec;
  rec.state = s;
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) {
    rec.cls = BlockerClass::kOffMap;
    return rec;
  }
  const double ego_r = ego_circumradius_;
  for (const std::uint32_t oi : active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (!ego_box.intersects(box)) continue;
    if (rec.cls == BlockerClass::kSole) {
      // Second blocker found: no single-actor removal rescues this state,
      // and the exact blocker set beyond that is irrelevant — stop scanning.
      rec.cls = BlockerClass::kMulti;
      return rec;
    }
    rec.cls = BlockerClass::kSole;
    rec.sole_blocker = oi;
  }
  return rec;  // kPassed, or kSole with the one blocker recorded
}

template <class Activate, class Analyze, class Consult, class OnLoopBegin,
          class OnSliceDone>
void ReachTubeComputer::propagate(TubeScratch& scratch, ReachTube& tube,
                                  std::size_t& volume_cells, common::Rng& rng,
                                  int first_loop, Activate&& activate, Analyze&& analyze,
                                  Consult&& consult, OnLoopBegin&& on_loop_begin,
                                  OnSliceDone&& on_slice_done) const {
  [[maybe_unused]] std::size_t slices_processed = 0;
  [[maybe_unused]] std::size_t states_expanded = 0;

  auto& cells = scratch.cells;
  auto& occupied = scratch.occupied;
  auto& candidates = scratch.candidates;
  auto& lanes = scratch.lanes;

  const double inv_cell = 1.0 / params_.cell_size;
  const double max_speed = model_.max_speed().value();

  // Per-slice working set (scratch above, allocated once per propagation).
  // With dedup on, each (x, y) epsilon cell keeps up to four representative
  // states (speed/heading extremes); dead cells (first sample collided or
  // left the map) are cached so the whole cell is skipped — optimization (1)
  // at cell granularity.
  for (int j = first_loop; j < slices_; ++j) {
    on_loop_begin(j);
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    scratch.next_slice();

    const common::SliceIdx slice_idx{static_cast<std::size_t>(j) + 1};
    activate(slice_idx);
    std::size_t dead_cells = 0;

    // Stage-5 decision pass: consumes one analyzed block sequentially, in
    // the exact candidate order the historical generate-then-test loop
    // produced — so dedup bookkeeping, the per-slice cap, and the emitted
    // tube are bit-identical by construction.
    auto decide = [&](std::size_t block) {
      for (std::size_t i = 0; i < block; ++i) {
        // `candidates` never shrinks within a slice, so once the cap is hit
        // every remaining lane bails exactly like its scalar call did.
        if (candidates.size() >= params_.max_states_per_slice) return;
        const dynamics::VehicleState ns{lanes.nx[i], lanes.ny[i], lanes.nh[i],
                                        lanes.nv[i]};

        if (!params_.dedup) {
          if (!consult(i, ns, slice_idx)) continue;
          candidates.push_back(ns);
          occupied.insert(lanes.key[i]);
          continue;
        }

        // One probe per candidate: a dead cell (first sample collided or left
        // the map) stays in `cells` as an entry with no representatives
        // (min_v < 0) — the separate dead-key set the old loop needed costs a
        // second hash lookup on every propagated state.
        auto [reps_slot, inserted] = cells.insert(lanes.key[i]);
        if (inserted) {
          if (!consult(i, ns, slice_idx)) {
            ++dead_cells;  // reps_slot keeps its default min_v = -1 dead marker
            continue;
          }
          const int idx = static_cast<int>(candidates.size());
          candidates.push_back(ns);
          reps_slot->min_v = reps_slot->max_v = reps_slot->min_h = reps_slot->max_h = idx;
          reps_slot->v_lo = reps_slot->v_hi = ns.speed;
          reps_slot->h_lo = reps_slot->h_hi = ns.heading;
          continue;
        }
        CellReps& reps = *reps_slot;
        if (reps.min_v < 0) continue;  // dead cell
        const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                              ns.heading < reps.h_lo || ns.heading > reps.h_hi;
        if (!improves) continue;
        if (!consult(i, ns, slice_idx)) continue;
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        if (ns.speed < reps.v_lo) {
          reps.v_lo = ns.speed;
          reps.min_v = idx;
        }
        if (ns.speed > reps.v_hi) {
          reps.v_hi = ns.speed;
          reps.max_v = idx;
        }
        if (ns.heading < reps.h_lo) {
          reps.h_lo = ns.heading;
          reps.min_h = idx;
        }
        if (ns.heading > reps.h_hi) {
          reps.h_hi = ns.heading;
          reps.max_h = idx;
        }
      }
    };

    // Stages 1–5 over the pending block: batch-step every lane, batch the
    // cell keys, run the caller's geometry analysis, then decide. A block
    // queued entirely past the cap is dropped wholesale — the scalar loop
    // never stepped those candidates either, and `decide` would discard
    // every one of them.
    auto flush = [&] {
      const std::size_t block = lanes.count;
      if (block == 0) return;
      if (candidates.size() >= params_.max_states_per_slice) {
        lanes.count = 0;
        return;
      }
      dynamics::step_batch(
          block,
          {lanes.px.data(), lanes.py.data(), lanes.ph.data(), lanes.pv.data(),
           lanes.accel.data(), lanes.tan_steer.data()},
          {lanes.nx.data(), lanes.ny.data(), lanes.nh.data(), lanes.nv.data()},
          params_.dt, params_.wheelbase, max_speed);
      for (std::size_t i = 0; i < block; ++i) {
        lanes.key[i] = xy_key(lanes.nx[i], lanes.ny[i], inv_cell);
      }
      analyze(slice_idx);
      decide(block);
      lanes.count = 0;
    };

    for (const dynamics::VehicleState& s : current) {
      for (std::size_t b = 0; b < boundary_set_.size(); ++b) {
        lanes.push(s, boundary_set_[b].accel, boundary_tan_[b]);
      }
      if (!params_.boundary_controls) {
        // Algorithm 1's unoptimized form: the extreme controls above plus
        // uniform samples up to N. Draws happen at queue time, in the exact
        // per-parent order the scalar loop drew them — the stream never
        // depended on test outcomes (capped candidates still drew), so
        // queuing a block ahead of its decisions leaves it untouched.
        const auto& lim = params_.limits;
        for (int n = static_cast<int>(boundary_set_.size()); n < params_.uniform_samples;
             ++n) {
          const double a = rng.uniform(lim.accel_min, lim.accel_max);
          const double phi = rng.uniform(lim.steer_min, lim.steer_max);
          lanes.push(s, a, std::tan(phi));
        }
      }
      if (lanes.count >= kLaneBlock) flush();
    }
    flush();

    if (params_.dedup) {
      // A dead cell leaves an entry with no representatives; it must not
      // count toward the slice's occupied volume.
      volume_cells += cells.size() - dead_cells;
      // Collect the surviving representatives with a hash-free seen-flags
      // pass in cell insertion order (first-seen wins for slots shared
      // between extremes), then emit them in SplitMix64-scrambled slot
      // order. The scramble decorrelates next-slice propagation order from
      // this slice's spatial wavefront — the statistical role the old
      // unordered_set bucket order played — but is defined by construction:
      // independent of capacity, load factor, standard library, platform,
      // and thread count (DESIGN.md §9).
      scratch.seen.assign(candidates.size(), 0);
      scratch.kept.clear();
      for (const auto& entry : cells) {
        const CellReps& reps = entry.value;
        for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) {
          if (idx < 0) continue;  // dead cell: no representatives
          IPRISM_DCHECK(static_cast<std::size_t>(idx) < candidates.size(),
                        "ReachTube: representative slot out of candidate bounds");
          if (scratch.seen[static_cast<std::size_t>(idx)]) continue;
          scratch.seen[static_cast<std::size_t>(idx)] = 1;
          scratch.kept.emplace_back(
              common::splitmix64_mix(static_cast<std::uint64_t>(idx)),
              static_cast<std::uint32_t>(idx));
        }
      }
      // The mix is bijective, so sorting on it alone is a total order.
      std::sort(scratch.kept.begin(), scratch.kept.end());
      next.reserve(scratch.kept.size());
      for (const auto& [mixed, idx] : scratch.kept) {
        next.push_back(candidates[idx]);
      }
    } else {
      volume_cells += occupied.size();
      // Hand the slice its own right-sized storage and keep the scratch's
      // capacity: moving `candidates` out surrendered its buffer to the tube
      // (forcing a re-reserve allocation every slice) and left each emitted
      // slice holding a full scratch-sized block. One exact allocation per
      // produced slice — the same as the dedup branch — is all that remains,
      // so the zero-steady-state-scratch-allocation guarantee holds for
      // dedup=false too (tests/test_tube_alloc.cpp).
      next.reserve(candidates.size());
      next.insert(next.end(), candidates.begin(), candidates.end());
    }
    ++slices_processed;
    states_expanded += next.size();
    on_slice_done(j, volume_cells);
    if (next.empty()) break;  // tube pinched off; later slices unreachable
  }

  IPRISM_COUNT_ADD("reachtube.slices", slices_processed);
  IPRISM_COUNT_ADD("reachtube.states_expanded", states_expanded);
  IPRISM_COUNT_ADD("reachtube.scratch_rehashes", scratch.cells.rehash_count());
}

void ReachTubeComputer::build_active_set(std::span<const ObstacleTimeline> obstacles,
                                         const dynamics::VehicleState& seed,
                                         TubeScratch& scratch,
                                         common::SliceIdx slice_idx) const {
  // Conservative reachable-disc bound: by slice j (time t = j·dt), every
  // candidate's footprint lies within seed_pos ± (t·v̄(t) + ego_r), where
  // v̄(t) = min(v0 + a_max·t, model v_max) bounds speed (the bicycle model
  // clamps speed to [0, v_max], so braking never adds displacement). An
  // obstacle whose slice-j footprint disc cannot touch that disc is filtered
  // out of the slice's active-set once, instead of being broad-phase-tested
  // per candidate state. kSlack absorbs rounding in the bound arithmetic.
  scratch.active.clear();
  const geom::Vec2 seed_pos{seed.x, seed.y};
  constexpr double kSlack = 0.5;
  const std::size_t slice = slice_idx.value();
  const double t = static_cast<double>(slice) * params_.dt;
  const double v_bound =
      std::min(std::max(seed.speed, 0.0) + std::max(params_.limits.accel_max, 0.0) * t,
               model_.max_speed().value());
  const double reach_r = t * v_bound + ego_circumradius_ + kSlack;
  for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
    if (scratch.excluded[oi]) continue;
    const ObstacleTimeline& obs = obstacles[oi];
    const double r = reach_r + obs.circumradius_by_slice[slice];
    if ((obs.by_slice[slice].center() - seed_pos).norm_sq() > r * r) continue;
    scratch.active.push_back(static_cast<std::uint32_t>(oi));
  }
}

void ReachTubeComputer::analyze_lanes(std::span<const ObstacleTimeline> obstacles,
                                      TubeScratch& scratch, common::SliceIdx slice_idx,
                                      int max_hits) const {
  auto& lanes = scratch.lanes;
  const std::size_t n = lanes.count;
  const std::size_t slice = slice_idx.value();
  // Exactly dynamics::footprint's extents — the batch kernels and the scalar
  // narrow phase must describe the same rectangle to the bit.
  const double half_len = params_.ego_dims.length / 2.0;
  const double half_wid = params_.ego_dims.width / 2.0;

  geom::footprint_axes(n, lanes.nh.data(), lanes.ax.data(), lanes.ay.data());
  geom::footprint_aabbs(n, lanes.nx.data(), lanes.ny.data(), lanes.ax.data(),
                        lanes.ay.data(), half_len, half_wid, lanes.lo_x.data(),
                        lanes.lo_y.data(), lanes.hi_x.data(), lanes.hi_y.data());
  std::fill_n(lanes.hits.begin(), n, std::uint8_t{0});
  // first_hit is only read for lanes whose count is exactly one, and the
  // first hit always writes it — stale values are never observed.

  const auto hits_cap = static_cast<std::uint8_t>(max_hits);
  for (const std::uint32_t oi : scratch.active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    // Stage 3: circumradius broad phase for the whole block at once (radius
    // precomputed per timeline, hoisted per obstacle instead of per lane).
    const double r = ego_circumradius_ + obs.circumradius_by_slice[slice];
    const std::size_t survivors =
        geom::broad_phase_cull(n, lanes.nx.data(), lanes.ny.data(), box.center().x,
                               box.center().y, r * r, lanes.broad.data());
    if (survivors == 0) continue;
    // Stage 4: narrow phase stays scalar — SAT is branchy and short, and
    // typically runs on a small broad-phase remnant (DESIGN.md §13). Hit
    // counting saturates at max_hits (1 answers pass/fail; 2 distinguishes
    // kSole from kMulti), matching the scalar scans' early exits.
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes.broad[i] == 0) continue;
      if (lanes.hits[i] >= hits_cap) continue;
      const geom::OrientedBox ego_box = geom::OrientedBox::with_axis(
          {lanes.nx[i], lanes.ny[i]}, half_len, half_wid, lanes.nh[i],
          {lanes.ax[i], lanes.ay[i]});
      if (!ego_box.intersects(box)) continue;
      if (lanes.hits[i] == 0) lanes.first_hit[i] = oi;
      ++lanes.hits[i];
    }
  }
}

void ReachTubeComputer::load_active_set(const TubeAttribution& attr, TubeScratch& scratch,
                                        std::size_t slice) const {
  IPRISM_DCHECK(slice + 1 < attr.active_offsets.size(),
                "ReachTube: attribution is missing this slice's active set");
  scratch.active.clear();
  const std::size_t begin = attr.active_offsets[slice];
  const std::size_t end = attr.active_offsets[slice + 1];
  for (std::size_t k = begin; k < end; ++k) {
    const std::uint32_t oi = attr.active_flat[k];
    if (scratch.excluded[oi]) continue;
    scratch.active.push_back(oi);
  }
}

ReachTubeComputer::ScratchShape ReachTubeComputer::scratch_shape(
    std::size_t obstacle_count) const {
  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  // Worst-case lanes one parent can queue past the kLaneBlock flush
  // threshold: with boundary controls only, the boundary set; with uniform
  // sampling, whichever of the two control counts is larger.
  const std::size_t per_parent =
      params_.boundary_controls
          ? boundary_set_.size()
          : std::max(boundary_set_.size(),
                     static_cast<std::size_t>(params_.uniform_samples));
  return ScratchShape{expected, obstacle_count, kLaneBlock + per_parent};
}

void ReachTubeComputer::check_timelines(std::span<const ObstacleTimeline> obstacles) const {
  for (const ObstacleTimeline& obs : obstacles) {
    IPRISM_CHECK(obs.by_slice.size() == static_cast<std::size_t>(slices_) + 1,
                 "ReachTube: obstacle timeline sliced with different parameters");
    IPRISM_CHECK(obs.circumradius_by_slice.size() == obs.by_slice.size(),
                 "ReachTube: obstacle timeline missing precomputed circumradii "
                 "(build via sample_obstacles or call ObstacleTimeline::finalize)");
  }
}

ReachTube ReachTubeComputer::compute(RiskSession& session, const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     std::span<const ObstacleTimeline> obstacles,
                                     common::ActorId exclude) const {
  check_timelines(obstacles);

  // Telemetry at compute() granularity only: the per-state hot loop stays
  // untouched; counters accumulate in plain locals and flush once at exit.
  IPRISM_SCOPED_TIMER("reachtube.compute", "reachtube");

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  const ScratchShape shape = scratch_shape(obstacles.size());
  const detail::ScratchLease lease(session.state().scratch_pool, shape.expected,
                                   shape.obstacles, shape.lanes);
  TubeScratch& scratch = *lease;
  // ActorId::none() compares equal to no real (>= 0) actor id, so the
  // default excludes nobody — including anonymous hand-built timelines.
  if (exclude.valid()) {
    for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
      scratch.excluded[oi] = obstacles[oi].actor_id == exclude ? 1 : 0;
    }
  }

  // Slice 0: the current ego state. If it already collides (or is off-map),
  // every escape route is gone and the tube is empty.
  build_active_set(obstacles, ego, scratch, common::SliceIdx{0});
  if (!state_ok(map, ego, obstacles, scratch.active, common::SliceIdx{0})) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  common::Rng rng(params_.sample_seed);
  const double half_len = params_.ego_dims.length / 2.0;
  const double half_wid = params_.ego_dims.width / 2.0;
  propagate(
      scratch, tube, volume_cells, rng, 0,
      [&](common::SliceIdx si) { build_active_set(obstacles, ego, scratch, si); },
      [&](common::SliceIdx si) { analyze_lanes(obstacles, scratch, si, /*max_hits=*/1); },
      [&](std::size_t lane, const dynamics::VehicleState&, common::SliceIdx) {
        const auto& lanes = scratch.lanes;
        // Same conjunction as the scalar state_ok (map ∧ no obstacle hit),
        // with the obstacle side answered from the analyzed block; neither
        // test has side effects, so evaluation order is free — check the
        // in-hand hit count before the virtual map call.
        if (lanes.hits[lane] != 0) return false;
        return map.contains_box_geom(
            {lanes.nx[lane], lanes.ny[lane]}, half_len, half_wid,
            {lanes.ax[lane], lanes.ay[lane]},
            geom::Aabb{{lanes.lo_x[lane], lanes.lo_y[lane]},
                       {lanes.hi_x[lane], lanes.hi_y[lane]}},
            params_.map_margin);
      },
      [](int) {}, [](int, std::size_t) {});

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     std::span<const ObstacleTimeline> obstacles,
                                     common::ActorId exclude) const {
  // Legacy session-less form: a transient session leases a cold scratch and
  // throws it away. Bit-identical by construction — the session only decides
  // *where* scratch comes from, never what the propagation computes
  // (DESIGN.md §9/§14).
  RiskSession session;
  return compute(session, map, ego, obstacles, exclude);
}

AttributedTube ReachTubeComputer::compute_attributed(
    RiskSession& session, const roadmap::DrivableMap& map,
    const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles) const {
  check_timelines(obstacles);
  IPRISM_SCOPED_TIMER("reachtube.compute_attributed", "reachtube");

  AttributedTube out;
  TubeAttribution& attr = out.attribution;
  ReachTube& tube = out.tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});
  attr.slices.resize(static_cast<std::size_t>(slices_) + 1);
  attr.rng_at_loop.assign(static_cast<std::size_t>(slices_), common::Rng{});
  attr.volume_prefix.assign(static_cast<std::size_t>(slices_) + 1, 0);
  attr.first_sole_block.assign(obstacles.size(), TubeAttribution::kNever);
  attr.obstacle_count = obstacles.size();

  const ScratchShape shape = scratch_shape(obstacles.size());
  const detail::ScratchLease lease(session.state().scratch_pool, shape.expected,
                                   shape.obstacles, shape.lanes);
  TubeScratch& scratch = *lease;  // excluded: all zero after reset

  // Per-slice active obstacle sets, built exactly once per (obstacle set,
  // seed): the disc test is a pure function of (obstacle, seed, slice), so
  // the base propagation below and every counterfactual replay load these
  // read-only instead of re-running it per slice per tube.
  attr.active_offsets.reserve(static_cast<std::size_t>(slices_) + 2);
  attr.active_offsets.push_back(0);
  for (int s = 0; s <= slices_; ++s) {
    build_active_set(obstacles, ego, scratch, common::SliceIdx{static_cast<std::size_t>(s)});
    attr.active_flat.insert(attr.active_flat.end(), scratch.active.begin(),
                            scratch.active.end());
    attr.active_offsets.push_back(static_cast<std::uint32_t>(attr.active_flat.size()));
  }

  // Appends one record and maintains the divergence bookkeeping. Slices are
  // processed in increasing order, so "first" assignments are plain min's.
  auto record = [&](const BlockRecord& rec, std::size_t slice) {
    SliceAttribution& sa = attr.slices[slice];
    const auto idx = static_cast<std::uint32_t>(sa.tests.size());
    sa.tests.push_back(rec);
    auto [slot, inserted] = sa.by_state.insert(state_bits_key(rec.state));
    if (inserted) *slot = idx;  // first record wins; replay verifies the bits
    if (rec.cls == BlockerClass::kSole || rec.cls == BlockerClass::kMulti) {
      ++attr.blocked_frontier;
      const auto s32 = static_cast<std::uint32_t>(slice);
      attr.first_actor_block = std::min(attr.first_actor_block, s32);
      if (rec.cls == BlockerClass::kSole) {
        auto& first = attr.first_sole_block[rec.sole_blocker];
        first = std::min(first, s32);
      }
    }
  };

  load_active_set(attr, scratch, 0);
  const BlockRecord seed_rec =
      classify_state(map, ego, obstacles, scratch.active, common::SliceIdx{0});
  record(seed_rec, 0);
  if (seed_rec.cls != BlockerClass::kPassed) {
    IPRISM_COUNT_ADD("reachtube.blocked_frontier_size", attr.blocked_frontier);
    return out;  // empty tube; replays may still rescue the seed
  }
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  attr.volume_prefix[0] = 1;
  common::Rng rng(params_.sample_seed);
  const double half_len = params_.ego_dims.length / 2.0;
  const double half_wid = params_.ego_dims.width / 2.0;
  int last_done = 0;
  propagate(
      scratch, tube, volume_cells, rng, 0,
      [&](common::SliceIdx si) { load_active_set(attr, scratch, si.value()); },
      [&](common::SliceIdx si) { analyze_lanes(obstacles, scratch, si, /*max_hits=*/2); },
      [&](std::size_t lane, const dynamics::VehicleState& ns, common::SliceIdx si) {
        // classify_state over the analyzed block: off-map wins outright (no
        // actor removal rescues it); otherwise the saturating hit count
        // separates kPassed / kSole / kMulti, with first_hit as the sole
        // blocker — the same outcome the scalar two-hit scan produces.
        const auto& lanes = scratch.lanes;
        BlockRecord rec;
        rec.state = ns;
        if (!map.contains_box_geom(
                {lanes.nx[lane], lanes.ny[lane]}, half_len, half_wid,
                {lanes.ax[lane], lanes.ay[lane]},
                geom::Aabb{{lanes.lo_x[lane], lanes.lo_y[lane]},
                           {lanes.hi_x[lane], lanes.hi_y[lane]}},
                params_.map_margin)) {
          rec.cls = BlockerClass::kOffMap;
        } else if (lanes.hits[lane] == 1) {
          rec.cls = BlockerClass::kSole;
          rec.sole_blocker = lanes.first_hit[lane];
        } else if (lanes.hits[lane] >= 2) {
          rec.cls = BlockerClass::kMulti;
        }
        record(rec, si.value());
        return rec.cls == BlockerClass::kPassed;
      },
      [&](int j) { attr.rng_at_loop[static_cast<std::size_t>(j)] = rng; },
      [&](int j, std::size_t volume) {
        attr.volume_prefix[static_cast<std::size_t>(j) + 1] = volume;
        last_done = j + 1;
      });
  // Defensive tail fill past an early pinch-off; replays never start there
  // (no records exist past last_done), but the prefix array stays monotone.
  for (std::size_t k = static_cast<std::size_t>(last_done) + 1;
       k < attr.volume_prefix.size(); ++k) {
    attr.volume_prefix[k] = attr.volume_prefix[static_cast<std::size_t>(last_done)];
  }

  IPRISM_COUNT_ADD("reachtube.blocked_frontier_size", attr.blocked_frontier);
  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return out;
}

AttributedTube ReachTubeComputer::compute_attributed(
    const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles) const {
  RiskSession session;
  return compute_attributed(session, map, ego, obstacles);
}

ReachTube ReachTubeComputer::replay_counterfactual(
    RiskSession& session, const roadmap::DrivableMap& map,
    const dynamics::VehicleState& ego, std::span<const ObstacleTimeline> obstacles,
    const AttributedTube& base, bool exclude_all, std::size_t exclude_index,
    CounterfactualStats* stats) const {
  const TubeAttribution& attr = base.attribution;
  IPRISM_CHECK(attr.obstacle_count == obstacles.size() &&
                   attr.slices.size() == static_cast<std::size_t>(slices_) + 1 &&
                   attr.active_offsets.size() == static_cast<std::size_t>(slices_) + 2,
               "ReachTube: attribution record does not match this obstacles/params set");
  IPRISM_DCHECK(exclude_all || exclude_index < obstacles.size(),
                "ReachTube: counterfactual exclude index out of range");

  CounterfactualStats local;
  CounterfactualStats& st = stats != nullptr ? *stats : local;
  st = CounterfactualStats{};

  const std::uint32_t jstar =
      exclude_all ? attr.first_actor_block : attr.first_sole_block[exclude_index];
  if (jstar == TubeAttribution::kNever) {
    // The lifted blocker(s) never rejected a candidate: every state_ok
    // outcome — and therefore the whole propagation — is unchanged.
    st.free = true;
    return base.tube;
  }
  st.replay_from = jstar;

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  const ScratchShape shape = scratch_shape(obstacles.size());
  const detail::ScratchLease lease(session.state().scratch_pool, shape.expected,
                                   shape.obstacles, shape.lanes);
  TubeScratch& scratch = *lease;
  if (exclude_all) {
    scratch.excluded.assign(obstacles.size(), 1);
  } else {
    scratch.excluded[exclude_index] = 1;
  }

  // Memoized state test: identical candidates take their answer from the
  // base record (converted for the lifted blockers — exact, see §12); delta
  // candidates the base never tested fall through to real geometry.
  auto test = [&](const dynamics::VehicleState& ns, common::SliceIdx si) {
    const SliceAttribution& sa = attr.slices[si.value()];
    if (const std::uint32_t* ti = sa.by_state.find(state_bits_key(ns))) {
      const BlockRecord& rec = sa.tests[*ti];
      if (bits_equal(rec.state, ns)) {
        ++st.memo_hits;
        switch (rec.cls) {
          case BlockerClass::kPassed: return true;   // removal cannot fail it
          case BlockerClass::kOffMap: return false;  // no removal rescues it
          case BlockerClass::kSole:
            return exclude_all || rec.sole_blocker == exclude_index;
          case BlockerClass::kMulti: return exclude_all;
        }
      }
    }
    ++st.fresh_tests;
    return state_ok(map, ns, obstacles, scratch.active, si);
  };

  std::size_t volume_cells = 0;
  common::Rng rng(params_.sample_seed);
  int first_loop = 0;
  if (jstar == 0) {
    // The seed itself was blocker-rejected in the base run; the replay
    // starts from scratch (memo still answers the shared candidates).
    load_active_set(attr, scratch, 0);
    if (!test(ego, common::SliceIdx{0})) return tube;
    tube.slices[0].push_back(ego);
    volume_cells = 1;
  } else {
    // Slices before the divergence are bit-identical by induction: no
    // state_ok outcome differs there, so the exact states (and the RNG
    // stream) are the base run's — copy, don't recompute.
    for (std::size_t k = 0; k < jstar; ++k) tube.slices[k] = base.tube.slices[k];
    volume_cells = attr.volume_prefix[jstar - 1];
    rng = attr.rng_at_loop[jstar - 1];
    first_loop = static_cast<int>(jstar) - 1;
  }
  // Replays share the batch step/key stages but skip the geometry analysis:
  // `test` answers from the memo (or falls back to the scalar state_ok for
  // delta candidates the base never tested), reading nothing from the
  // analyzed lane outcomes. The active set is the base run's, filtered
  // through this replay's exclusions while loading — identical to rebuilding
  // it, since the disc test never depended on exclusions.
  propagate(
      scratch, tube, volume_cells, rng, first_loop,
      [&](common::SliceIdx si) { load_active_set(attr, scratch, si.value()); },
      [](common::SliceIdx) {},
      [&](std::size_t, const dynamics::VehicleState& ns, common::SliceIdx si) {
        return test(ns, si);
      },
      [](int) {}, [](int, std::size_t) {});

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

ReachTube ReachTubeComputer::compute_counterfactual(
    RiskSession& session, const roadmap::DrivableMap& map,
    const dynamics::VehicleState& ego, std::span<const ObstacleTimeline> obstacles,
    const AttributedTube& base, std::size_t exclude_index,
    CounterfactualStats* stats) const {
  return replay_counterfactual(session, map, ego, obstacles, base,
                               /*exclude_all=*/false, exclude_index, stats);
}

ReachTube ReachTubeComputer::compute_counterfactual(
    const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles, const AttributedTube& base,
    std::size_t exclude_index, CounterfactualStats* stats) const {
  RiskSession session;
  return compute_counterfactual(session, map, ego, obstacles, base, exclude_index,
                                stats);
}

ReachTube ReachTubeComputer::compute_unblocked(RiskSession& session,
                                               const roadmap::DrivableMap& map,
                                               const dynamics::VehicleState& ego,
                                               std::span<const ObstacleTimeline> obstacles,
                                               const AttributedTube& base,
                                               CounterfactualStats* stats) const {
  return replay_counterfactual(session, map, ego, obstacles, base,
                               /*exclude_all=*/true, /*exclude_index=*/0, stats);
}

ReachTube ReachTubeComputer::compute_unblocked(const roadmap::DrivableMap& map,
                                               const dynamics::VehicleState& ego,
                                               std::span<const ObstacleTimeline> obstacles,
                                               const AttributedTube& base,
                                               CounterfactualStats* stats) const {
  RiskSession session;
  return compute_unblocked(session, map, ego, obstacles, base, stats);
}

ReachTube ReachTubeComputer::compute(RiskSession& session, const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     common::Seconds t0,
                                     std::span<const ActorForecast> forecasts,
                                     common::ActorId exclude) const {
  const auto obstacles = sample_obstacles(forecasts, t0);
  return compute(session, map, ego, obstacles, exclude);
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     common::Seconds t0,
                                     std::span<const ActorForecast> forecasts,
                                     common::ActorId exclude) const {
  RiskSession session;
  return compute(session, map, ego, t0, forecasts, exclude);
}

}  // namespace iprism::core
