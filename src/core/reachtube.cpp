#include "core/reachtube.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace iprism::core {
namespace {

/// Packs a quantized (x, y) cell into a hashable key. Coordinates are
/// offset to keep them positive over any realistic map extent.
std::uint64_t xy_key(double x, double y, double cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x / cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y / cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

/// Per-(x, y)-cell representative bookkeeping: the four extreme states
/// (min/max speed, min/max heading) that determine the cell's future
/// spread. Slots index into the slice's state vector.
struct CellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

/// Per-compute() scratch buffers, reused across the slice loop: clear()
/// retains capacity, so after the first slice the hot loop performs no
/// regrow allocations. The candidate vector is additionally reserved
/// up-front (bounded by max_states_per_slice). The hash containers are NOT
/// pre-reserved: reserve() changes their bucket count and hence iteration
/// order, and `cells` iteration order feeds the surviving-representative
/// selection — pre-reserving would silently change tube results.
struct TubeScratch {
  std::unordered_map<std::uint64_t, CellReps> cells;
  std::unordered_set<std::uint64_t> dead;
  std::unordered_set<std::uint64_t> occupied;  // volume when dedup is off
  std::vector<dynamics::VehicleState> candidates;

  explicit TubeScratch(std::size_t expected) { candidates.reserve(expected); }

  void next_slice() {
    cells.clear();
    dead.clear();
    occupied.clear();
    candidates.clear();
  }
};

}  // namespace

void ObstacleTimeline::finalize() {
  circumradius_by_slice.clear();
  circumradius_by_slice.reserve(by_slice.size());
  for (const geom::OrientedBox& box : by_slice) {
    circumradius_by_slice.push_back(box.circumradius());
  }
}

void ReachTubeComputer::validate(const ReachTubeParams& params) {
  IPRISM_CHECK(params.dt > 0.0 && params.horizon > 0.0,
               "ReachTubeParams: dt and horizon must be positive");
  IPRISM_CHECK(params.cell_size > 0.0, "ReachTubeParams: cell_size must be positive");
  IPRISM_CHECK(params.uniform_samples > 0,
               "ReachTubeParams: uniform_samples must be positive");
  IPRISM_CHECK(params.max_states_per_slice > 0,
               "ReachTubeParams: max_states_per_slice must be positive");
  IPRISM_CHECK(params.limits.accel_min < params.limits.accel_max &&
                   params.limits.steer_min < params.limits.steer_max,
               "ReachTubeParams: control limits must span a non-empty range");
  IPRISM_CHECK(params.num_threads >= 0,
               "ReachTubeParams: num_threads must be non-negative (0 = serial)");
  IPRISM_CHECK(static_cast<int>(std::lround(params.horizon / params.dt)) >= 1,
               "ReachTubeParams: horizon must cover at least one slice");
}

ReachTubeComputer::ReachTubeComputer(const ReachTubeParams& params)
    : params_(params), model_(params.wheelbase) {
  validate(params);
  slices_ = static_cast<int>(std::lround(params.horizon / params.dt));

  const auto& lim = params_.limits;
  std::vector<double> accels;
  if (params_.include_braking_boundary) {
    accels = {lim.accel_min, 0.0, lim.accel_max};
  } else {
    accels = {0.0, lim.accel_max};  // the paper's published boundary set
  }
  for (double a : accels) {
    for (double phi : {lim.steer_min, 0.0, lim.steer_max}) {
      boundary_set_.push_back({a, phi});
    }
  }
}

std::vector<ObstacleTimeline> ReachTubeComputer::sample_obstacles(
    std::span<const ActorForecast> forecasts, double t0) const {
  std::vector<ObstacleTimeline> out;
  out.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    ObstacleTimeline tl;
    tl.actor_id = f.id;
    tl.by_slice.reserve(static_cast<std::size_t>(slices_) + 1);
    for (int j = 0; j <= slices_; ++j) {
      tl.by_slice.push_back(f.trajectory.footprint_at(t0 + j * params_.dt, f.dims));
    }
    tl.finalize();
    out.push_back(std::move(tl));
  }
  return out;
}

bool ReachTubeComputer::state_ok(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& s,
                                 std::span<const ObstacleTimeline> obstacles,
                                 std::size_t slice, int exclude_id) const {
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) return false;
  const double ego_r = ego_box.circumradius();
  for (const ObstacleTimeline& obs : obstacles) {
    if (obs.actor_id == exclude_id) continue;
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    // Broad phase before the exact SAT test (radius precomputed per timeline).
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     std::span<const ObstacleTimeline> obstacles,
                                     int exclude_id) const {
  for (const ObstacleTimeline& obs : obstacles) {
    IPRISM_CHECK(obs.by_slice.size() == static_cast<std::size_t>(slices_) + 1,
                 "ReachTube: obstacle timeline sliced with different parameters");
    IPRISM_CHECK(obs.circumradius_by_slice.size() == obs.by_slice.size(),
                 "ReachTube: obstacle timeline missing precomputed circumradii "
                 "(build via sample_obstacles or call ObstacleTimeline::finalize)");
  }

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  // Slice 0: the current ego state. If it already collides (or is off-map),
  // every escape route is gone and the tube is empty.
  if (!state_ok(map, ego, obstacles, 0, exclude_id)) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  common::Rng rng(params_.sample_seed);

  // Per-slice working set, allocated once per compute() call. With dedup
  // on, each (x, y) epsilon cell keeps up to four representative states
  // (speed/heading extremes); dead cells (first sample collided or left the
  // map) are cached so the whole cell is skipped — optimization (1) at cell
  // granularity.
  TubeScratch scratch(std::min<std::size_t>(params_.max_states_per_slice, 4096));
  auto& cells = scratch.cells;
  auto& dead = scratch.dead;
  auto& occupied = scratch.occupied;
  auto& candidates = scratch.candidates;

  for (int j = 0; j < slices_; ++j) {
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    scratch.next_slice();

    const std::size_t slice_idx = static_cast<std::size_t>(j) + 1;
    auto try_control = [&](const dynamics::VehicleState& s, const dynamics::Control& u) {
      if (candidates.size() >= params_.max_states_per_slice) return;
      const dynamics::VehicleState ns = model_.step(s, u, params_.dt);

      if (!params_.dedup) {
        if (!state_ok(map, ns, obstacles, slice_idx, exclude_id)) return;
        candidates.push_back(ns);
        occupied.insert(xy_key(ns.x, ns.y, params_.cell_size));
        return;
      }

      const std::uint64_t key = xy_key(ns.x, ns.y, params_.cell_size);
      if (dead.contains(key)) return;
      auto it = cells.find(key);
      if (it == cells.end()) {
        if (!state_ok(map, ns, obstacles, slice_idx, exclude_id)) {
          dead.insert(key);
          return;
        }
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        CellReps reps;
        reps.min_v = reps.max_v = reps.min_h = reps.max_h = idx;
        reps.v_lo = reps.v_hi = ns.speed;
        reps.h_lo = reps.h_hi = ns.heading;
        cells.emplace(key, reps);
        return;
      }
      CellReps& reps = it->second;
      const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                            ns.heading < reps.h_lo || ns.heading > reps.h_hi;
      if (!improves) return;
      if (!state_ok(map, ns, obstacles, slice_idx, exclude_id)) return;
      const int idx = static_cast<int>(candidates.size());
      candidates.push_back(ns);
      if (ns.speed < reps.v_lo) {
        reps.v_lo = ns.speed;
        reps.min_v = idx;
      }
      if (ns.speed > reps.v_hi) {
        reps.v_hi = ns.speed;
        reps.max_v = idx;
      }
      if (ns.heading < reps.h_lo) {
        reps.h_lo = ns.heading;
        reps.min_h = idx;
      }
      if (ns.heading > reps.h_hi) {
        reps.h_hi = ns.heading;
        reps.max_h = idx;
      }
    };

    for (const dynamics::VehicleState& s : current) {
      for (const dynamics::Control& u : boundary_set_) try_control(s, u);
      if (!params_.boundary_controls) {
        // Algorithm 1's unoptimized form: the extreme controls above plus
        // uniform samples up to N.
        const auto& lim = params_.limits;
        for (int n = static_cast<int>(boundary_set_.size()); n < params_.uniform_samples;
             ++n) {
          try_control(s, {rng.uniform(lim.accel_min, lim.accel_max),
                          rng.uniform(lim.steer_min, lim.steer_max)});
        }
      }
    }

    if (params_.dedup) {
      volume_cells += cells.size();
      // Collect the surviving representatives (deduplicating shared slots).
      // NOTE: `kept` is deliberately rebuilt per slice rather than hoisted
      // into TubeScratch — its iteration order sets the order of `next`, and
      // a cleared-but-bucket-retaining set iterates differently from a fresh
      // one, which perturbs tube sampling downstream. The hoisted buffers
      // above are safe: their iteration never reaches the output.
      std::unordered_set<int> kept;
      for (const auto& [key, reps] : cells) {
        for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) kept.insert(idx);
      }
      next.reserve(kept.size());
      for (int idx : kept) {
        IPRISM_DCHECK(idx >= 0 && static_cast<std::size_t>(idx) < candidates.size(),
                      "ReachTube: representative slot out of candidate bounds");
        next.push_back(candidates[static_cast<std::size_t>(idx)]);
      }
    } else {
      volume_cells += occupied.size();
      next = candidates;
    }
    if (next.empty()) break;  // tube pinched off; later slices unreachable
  }

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego, double t0,
                                     std::span<const ActorForecast> forecasts,
                                     int exclude_id) const {
  const auto obstacles = sample_obstacles(forecasts, t0);
  return compute(map, ego, obstacles, exclude_id);
}

}  // namespace iprism::core
