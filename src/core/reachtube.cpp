#include "core/reachtube.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace iprism::core {
namespace {

/// Packs a quantized (x, y) cell into a hashable key. Coordinates are
/// offset to keep them positive over any realistic map extent. `inv_cell`
/// is the hoisted 1/cell_size — the hot loop multiplies instead of paying
/// two divides per propagated state.
std::uint64_t xy_key(double x, double y, double inv_cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x * inv_cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y * inv_cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

/// Per-(x, y)-cell representative bookkeeping: the four extreme states
/// (min/max speed, min/max heading) that determine the cell's future
/// spread. Slots index into the slice's state vector.
struct CellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

/// Per-compute() scratch, reused across the slice loop. Everything is
/// pre-reserved once and cleared per slice with capacity retained, so after
/// the first slice the loop performs zero steady-state allocations. The
/// hash containers are common::FlatHashGrid: iteration order is insertion
/// order by construction, independent of capacity and load factor, so —
/// unlike the std::unordered_* scratch this replaced — pre-reserving (or
/// varying ReachTubeParams::scratch_reserve) cannot perturb tube results
/// (DESIGN.md §9).
struct TubeScratch {
  common::FlatHashGrid<CellReps> cells;
  common::FlatKeySet occupied;  // volume when dedup is off
  std::vector<dynamics::VehicleState> candidates;
  std::vector<char> seen;  // per-candidate emit flags (collect pass)
  /// Surviving-representative slots paired with their SplitMix64 sort key
  /// (precomputed once so the emission sort never re-mixes in a comparator).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kept;
  std::vector<std::uint32_t> active;      // per-slice obstacle active-set

  explicit TubeScratch(std::size_t expected, std::size_t obstacle_count) {
    cells.reserve(expected);
    occupied.reserve(expected);
    candidates.reserve(expected);
    kept.reserve(expected);
    active.reserve(obstacle_count);
  }

  void next_slice() {
    cells.clear();
    occupied.clear();
    candidates.clear();
  }
};

}  // namespace

void ObstacleTimeline::finalize() {
  circumradius_by_slice.clear();
  circumradius_by_slice.reserve(by_slice.size());
  for (const geom::OrientedBox& box : by_slice) {
    circumradius_by_slice.push_back(box.circumradius());
  }
}

void ReachTubeComputer::validate(const ReachTubeParams& params) {
  IPRISM_CHECK(params.dt > 0.0 && params.horizon > 0.0,
               "ReachTubeParams: dt and horizon must be positive");
  IPRISM_CHECK(params.cell_size > 0.0, "ReachTubeParams: cell_size must be positive");
  IPRISM_CHECK(params.uniform_samples > 0,
               "ReachTubeParams: uniform_samples must be positive");
  IPRISM_CHECK(params.max_states_per_slice > 0,
               "ReachTubeParams: max_states_per_slice must be positive");
  IPRISM_CHECK(params.limits.accel_min < params.limits.accel_max &&
                   params.limits.steer_min < params.limits.steer_max,
               "ReachTubeParams: control limits must span a non-empty range");
  IPRISM_CHECK(params.num_threads >= 0,
               "ReachTubeParams: num_threads must be non-negative (0 = serial)");
  IPRISM_CHECK(static_cast<int>(std::lround(params.horizon / params.dt)) >= 1,
               "ReachTubeParams: horizon must cover at least one slice");
}

ReachTubeComputer::ReachTubeComputer(const ReachTubeParams& params)
    : params_(params), model_(common::Meters{params.wheelbase}) {
  validate(params);
  slices_ = static_cast<int>(std::lround(params.horizon / params.dt));
  // The ego footprint's circumradius depends only on its dimensions, never
  // on the state — hoist the hypot out of the per-state collision test.
  ego_circumradius_ =
      dynamics::footprint(dynamics::VehicleState{}, params_.ego_dims).circumradius();

  const auto& lim = params_.limits;
  std::vector<double> accels;
  if (params_.include_braking_boundary) {
    accels = {lim.accel_min, 0.0, lim.accel_max};
  } else {
    accels = {0.0, lim.accel_max};  // the paper's published boundary set
  }
  for (double a : accels) {
    for (double phi : {lim.steer_min, 0.0, lim.steer_max}) {
      boundary_set_.push_back({a, phi});
    }
  }
}

std::vector<ObstacleTimeline> ReachTubeComputer::sample_obstacles(
    std::span<const ActorForecast> forecasts, common::Seconds t0) const {
  const common::Seconds dt{params_.dt};
  std::vector<ObstacleTimeline> out;
  out.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    ObstacleTimeline tl;
    tl.actor_id = common::ActorId{f.id};
    tl.by_slice.reserve(static_cast<std::size_t>(slices_) + 1);
    for (int j = 0; j <= slices_; ++j) {
      tl.by_slice.push_back(f.trajectory.footprint_at(t0 + j * dt, f.dims));
    }
    tl.finalize();
    out.push_back(std::move(tl));
  }
  return out;
}

bool ReachTubeComputer::state_ok(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& s,
                                 std::span<const ObstacleTimeline> obstacles,
                                 std::span<const std::uint32_t> active,
                                 common::SliceIdx slice_idx) const {
  const std::size_t slice = slice_idx.value();
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) return false;
  const double ego_r = ego_circumradius_;
  for (const std::uint32_t oi : active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    // Broad phase before the exact SAT test (radius precomputed per timeline).
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     std::span<const ObstacleTimeline> obstacles,
                                     common::ActorId exclude) const {
  for (const ObstacleTimeline& obs : obstacles) {
    IPRISM_CHECK(obs.by_slice.size() == static_cast<std::size_t>(slices_) + 1,
                 "ReachTube: obstacle timeline sliced with different parameters");
    IPRISM_CHECK(obs.circumradius_by_slice.size() == obs.by_slice.size(),
                 "ReachTube: obstacle timeline missing precomputed circumradii "
                 "(build via sample_obstacles or call ObstacleTimeline::finalize)");
  }

  // Telemetry at compute() granularity only: the per-state hot loop stays
  // untouched; counters accumulate in plain locals and flush once at exit.
  IPRISM_SCOPED_TIMER("reachtube.compute", "reachtube");
  [[maybe_unused]] std::size_t slices_processed = 0;
  [[maybe_unused]] std::size_t states_expanded = 0;

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  TubeScratch scratch(expected, obstacles.size());
  auto& cells = scratch.cells;
  auto& occupied = scratch.occupied;
  auto& candidates = scratch.candidates;
  auto& active = scratch.active;

  // Conservative reachable-disc bound: by slice j (time t = j·dt), every
  // candidate's footprint lies within seed_pos ± (t·v̄(t) + ego_r), where
  // v̄(t) = min(v0 + a_max·t, model v_max) bounds speed (the bicycle model
  // clamps speed to [0, v_max], so braking never adds displacement). An
  // obstacle whose slice-j footprint disc cannot touch that disc is filtered
  // out of the slice's active-set once, instead of being broad-phase-tested
  // per candidate state. kSlack absorbs rounding in the bound arithmetic.
  const geom::Vec2 seed_pos{ego.x, ego.y};
  const double ego_r = ego_circumradius_;
  constexpr double kSlack = 0.5;
  auto build_active = [&](common::SliceIdx slice_idx) {
    active.clear();
    const std::size_t slice = slice_idx.value();
    const double t = static_cast<double>(slice) * params_.dt;
    const double v_bound =
        std::min(std::max(ego.speed, 0.0) + std::max(params_.limits.accel_max, 0.0) * t,
                 model_.max_speed().value());
    const double reach_r = t * v_bound + ego_r + kSlack;
    for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
      const ObstacleTimeline& obs = obstacles[oi];
      // ActorId::none() compares equal to no real (>= 0) actor id, so the
      // default excludes nobody — including anonymous hand-built timelines.
      if (exclude.valid() && obs.actor_id == exclude) continue;
      const double r = reach_r + obs.circumradius_by_slice[slice];
      if ((obs.by_slice[slice].center() - seed_pos).norm_sq() > r * r) continue;
      active.push_back(static_cast<std::uint32_t>(oi));
    }
  };

  // Slice 0: the current ego state. If it already collides (or is off-map),
  // every escape route is gone and the tube is empty.
  build_active(common::SliceIdx{0});
  if (!state_ok(map, ego, obstacles, active, common::SliceIdx{0})) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  common::Rng rng(params_.sample_seed);
  const double inv_cell = 1.0 / params_.cell_size;
  const common::Seconds dt{params_.dt};  // hoisted: one conversion per compute()

  // Per-slice working set (scratch above, allocated once per compute()
  // call). With dedup on, each (x, y) epsilon cell keeps up to four
  // representative states (speed/heading extremes); dead cells (first
  // sample collided or left the map) are cached so the whole cell is
  // skipped — optimization (1) at cell granularity.
  for (int j = 0; j < slices_; ++j) {
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    scratch.next_slice();

    const common::SliceIdx slice_idx{static_cast<std::size_t>(j) + 1};
    build_active(slice_idx);
    std::size_t dead_cells = 0;
    auto try_control = [&](const dynamics::VehicleState& s, const dynamics::Control& u) {
      if (candidates.size() >= params_.max_states_per_slice) return;
      const dynamics::VehicleState ns = model_.step(s, u, dt);

      if (!params_.dedup) {
        if (!state_ok(map, ns, obstacles, active, slice_idx)) return;
        candidates.push_back(ns);
        occupied.insert(xy_key(ns.x, ns.y, inv_cell));
        return;
      }

      // One probe per candidate: a dead cell (first sample collided or left
      // the map) stays in `cells` as an entry with no representatives
      // (min_v < 0) — the separate dead-key set the old loop needed costs a
      // second hash lookup on every propagated state.
      const std::uint64_t key = xy_key(ns.x, ns.y, inv_cell);
      auto [reps_slot, inserted] = cells.insert(key);
      if (inserted) {
        if (!state_ok(map, ns, obstacles, active, slice_idx)) {
          ++dead_cells;  // reps_slot keeps its default min_v = -1 dead marker
          return;
        }
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        reps_slot->min_v = reps_slot->max_v = reps_slot->min_h = reps_slot->max_h = idx;
        reps_slot->v_lo = reps_slot->v_hi = ns.speed;
        reps_slot->h_lo = reps_slot->h_hi = ns.heading;
        return;
      }
      CellReps& reps = *reps_slot;
      if (reps.min_v < 0) return;  // dead cell
      const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                            ns.heading < reps.h_lo || ns.heading > reps.h_hi;
      if (!improves) return;
      if (!state_ok(map, ns, obstacles, active, slice_idx)) return;
      const int idx = static_cast<int>(candidates.size());
      candidates.push_back(ns);
      if (ns.speed < reps.v_lo) {
        reps.v_lo = ns.speed;
        reps.min_v = idx;
      }
      if (ns.speed > reps.v_hi) {
        reps.v_hi = ns.speed;
        reps.max_v = idx;
      }
      if (ns.heading < reps.h_lo) {
        reps.h_lo = ns.heading;
        reps.min_h = idx;
      }
      if (ns.heading > reps.h_hi) {
        reps.h_hi = ns.heading;
        reps.max_h = idx;
      }
    };

    for (const dynamics::VehicleState& s : current) {
      for (const dynamics::Control& u : boundary_set_) try_control(s, u);
      if (!params_.boundary_controls) {
        // Algorithm 1's unoptimized form: the extreme controls above plus
        // uniform samples up to N.
        const auto& lim = params_.limits;
        for (int n = static_cast<int>(boundary_set_.size()); n < params_.uniform_samples;
             ++n) {
          try_control(s, {rng.uniform(lim.accel_min, lim.accel_max),
                          rng.uniform(lim.steer_min, lim.steer_max)});
        }
      }
    }

    if (params_.dedup) {
      // A dead cell leaves an entry with no representatives; it must not
      // count toward the slice's occupied volume.
      volume_cells += cells.size() - dead_cells;
      // Collect the surviving representatives with a hash-free seen-flags
      // pass in cell insertion order (first-seen wins for slots shared
      // between extremes), then emit them in SplitMix64-scrambled slot
      // order. The scramble decorrelates next-slice propagation order from
      // this slice's spatial wavefront — the statistical role the old
      // unordered_set bucket order played — but is defined by construction:
      // independent of capacity, load factor, standard library, platform,
      // and thread count (DESIGN.md §9).
      scratch.seen.assign(candidates.size(), 0);
      scratch.kept.clear();
      for (const auto& entry : cells) {
        const CellReps& reps = entry.value;
        for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) {
          if (idx < 0) continue;  // dead cell: no representatives
          IPRISM_DCHECK(static_cast<std::size_t>(idx) < candidates.size(),
                        "ReachTube: representative slot out of candidate bounds");
          if (scratch.seen[static_cast<std::size_t>(idx)]) continue;
          scratch.seen[static_cast<std::size_t>(idx)] = 1;
          scratch.kept.emplace_back(
              common::splitmix64_mix(static_cast<std::uint64_t>(idx)),
              static_cast<std::uint32_t>(idx));
        }
      }
      // The mix is bijective, so sorting on it alone is a total order.
      std::sort(scratch.kept.begin(), scratch.kept.end());
      next.reserve(scratch.kept.size());
      for (const auto& [mixed, idx] : scratch.kept) {
        next.push_back(candidates[idx]);
      }
    } else {
      volume_cells += occupied.size();
      // Hand the slice over without the full copy this branch used to pay;
      // the moved-from scratch gets its capacity re-reserved for the next
      // slice.
      next = std::move(candidates);
      candidates.clear();
      candidates.reserve(expected);
    }
    ++slices_processed;
    states_expanded += next.size();  // candidates may have been moved into next
    if (next.empty()) break;  // tube pinched off; later slices unreachable
  }

  IPRISM_COUNT_ADD("reachtube.slices", slices_processed);
  IPRISM_COUNT_ADD("reachtube.states_expanded", states_expanded);
  IPRISM_COUNT_ADD("reachtube.scratch_rehashes", scratch.cells.rehash_count());

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     common::Seconds t0,
                                     std::span<const ActorForecast> forecasts,
                                     common::ActorId exclude) const {
  const auto obstacles = sample_obstacles(forecasts, t0);
  return compute(map, ego, obstacles, exclude);
}

}  // namespace iprism::core
