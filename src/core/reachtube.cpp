#include "core/reachtube.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace iprism::core {
namespace {

/// Packs a quantized (x, y) cell into a hashable key. Coordinates are
/// offset to keep them positive over any realistic map extent. `inv_cell`
/// is the hoisted 1/cell_size — the hot loop multiplies instead of paying
/// two divides per propagated state.
std::uint64_t xy_key(double x, double y, double inv_cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x * inv_cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y * inv_cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

/// Per-(x, y)-cell representative bookkeeping: the four extreme states
/// (min/max speed, min/max heading) that determine the cell's future
/// spread. Slots index into the slice's state vector.
struct CellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

static_assert(sizeof(dynamics::VehicleState) == 4 * sizeof(double),
              "VehicleState must stay four packed doubles: the blocked-by "
              "memo matches replayed candidates by raw state bits");

/// Hash of a state's exact bit pattern — the blocked-by memo key. Two runs
/// testing the same candidate produce identical doubles (the propagation is
/// deterministic), so bit hashing is exact; a hash collision between
/// *different* states is caught by bits_equal below and degrades to a memo
/// miss, never to a wrong answer.
std::uint64_t state_bits_key(const dynamics::VehicleState& s) {
  const auto bits = [](double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  std::uint64_t h = common::splitmix64_mix(bits(s.x));
  h = common::splitmix64_mix(h ^ bits(s.y));
  h = common::splitmix64_mix(h ^ bits(s.heading));
  h = common::splitmix64_mix(h ^ bits(s.speed));
  return h;
}

bool bits_equal(const dynamics::VehicleState& a, const dynamics::VehicleState& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

}  // namespace

/// Per-propagation scratch, reused across the slice loop. Everything is
/// pre-reserved once and cleared per slice with capacity retained, so after
/// the first slice the loop performs zero steady-state allocations. The
/// hash containers are common::FlatHashGrid: iteration order is insertion
/// order by construction, independent of capacity and load factor, so —
/// unlike the std::unordered_* scratch this replaced — pre-reserving (or
/// varying ReachTubeParams::scratch_reserve) cannot perturb tube results
/// (DESIGN.md §9).
struct ReachTubeComputer::TubeScratch {
  common::FlatHashGrid<CellReps> cells;
  common::FlatKeySet occupied;  // volume when dedup is off
  std::vector<dynamics::VehicleState> candidates;
  std::vector<char> seen;  // per-candidate emit flags (collect pass)
  /// Surviving-representative slots paired with their SplitMix64 sort key
  /// (precomputed once so the emission sort never re-mixes in a comparator).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kept;
  std::vector<std::uint32_t> active;  // per-slice obstacle active-set
  /// Per-obstacle exclusion flags, resolved once per propagation (from an
  /// ActorId for the public compute(), from an obstacle index / lift-all for
  /// the counterfactual replays) so the per-slice active-set build does one
  /// byte test per obstacle.
  std::vector<char> excluded;

  TubeScratch(std::size_t expected, std::size_t obstacle_count) {
    cells.reserve(expected);
    occupied.reserve(expected);
    candidates.reserve(expected);
    kept.reserve(expected);
    active.reserve(obstacle_count);
    excluded.assign(obstacle_count, 0);
  }

  void next_slice() {
    cells.clear();
    occupied.clear();
    candidates.clear();
  }
};

void ObstacleTimeline::finalize() {
  circumradius_by_slice.clear();
  circumradius_by_slice.reserve(by_slice.size());
  for (const geom::OrientedBox& box : by_slice) {
    circumradius_by_slice.push_back(box.circumradius());
  }
}

void ReachTubeComputer::validate(const ReachTubeParams& params) {
  IPRISM_CHECK(params.dt > 0.0 && params.horizon > 0.0,
               "ReachTubeParams: dt and horizon must be positive");
  IPRISM_CHECK(params.cell_size > 0.0, "ReachTubeParams: cell_size must be positive");
  IPRISM_CHECK(params.uniform_samples > 0,
               "ReachTubeParams: uniform_samples must be positive");
  IPRISM_CHECK(params.max_states_per_slice > 0,
               "ReachTubeParams: max_states_per_slice must be positive");
  IPRISM_CHECK(params.limits.accel_min < params.limits.accel_max &&
                   params.limits.steer_min < params.limits.steer_max,
               "ReachTubeParams: control limits must span a non-empty range");
  IPRISM_CHECK(params.num_threads >= 0,
               "ReachTubeParams: num_threads must be non-negative (0 = serial)");
  IPRISM_CHECK(static_cast<int>(std::lround(params.horizon / params.dt)) >= 1,
               "ReachTubeParams: horizon must cover at least one slice");
}

ReachTubeComputer::ReachTubeComputer(const ReachTubeParams& params)
    : params_(params), model_(common::Meters{params.wheelbase}) {
  validate(params);
  slices_ = static_cast<int>(std::lround(params.horizon / params.dt));
  // The ego footprint's circumradius depends only on its dimensions, never
  // on the state — hoist the hypot out of the per-state collision test.
  ego_circumradius_ =
      dynamics::footprint(dynamics::VehicleState{}, params_.ego_dims).circumradius();

  const auto& lim = params_.limits;
  std::vector<double> accels;
  if (params_.include_braking_boundary) {
    accels = {lim.accel_min, 0.0, lim.accel_max};
  } else {
    accels = {0.0, lim.accel_max};  // the paper's published boundary set
  }
  for (double a : accels) {
    for (double phi : {lim.steer_min, 0.0, lim.steer_max}) {
      boundary_set_.push_back({a, phi});
    }
  }
}

std::vector<ObstacleTimeline> ReachTubeComputer::sample_obstacles(
    std::span<const ActorForecast> forecasts, common::Seconds t0) const {
  const common::Seconds dt{params_.dt};
  std::vector<ObstacleTimeline> out;
  out.reserve(forecasts.size());
  for (const ActorForecast& f : forecasts) {
    ObstacleTimeline tl;
    tl.actor_id = common::ActorId{f.id};
    tl.by_slice.reserve(static_cast<std::size_t>(slices_) + 1);
    for (int j = 0; j <= slices_; ++j) {
      tl.by_slice.push_back(f.trajectory.footprint_at(t0 + j * dt, f.dims));
    }
    tl.finalize();
    out.push_back(std::move(tl));
  }
  return out;
}

bool ReachTubeComputer::state_ok(const roadmap::DrivableMap& map,
                                 const dynamics::VehicleState& s,
                                 std::span<const ObstacleTimeline> obstacles,
                                 std::span<const std::uint32_t> active,
                                 common::SliceIdx slice_idx) const {
  const std::size_t slice = slice_idx.value();
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) return false;
  const double ego_r = ego_circumradius_;
  for (const std::uint32_t oi : active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    // Broad phase before the exact SAT test (radius precomputed per timeline).
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

BlockRecord ReachTubeComputer::classify_state(const roadmap::DrivableMap& map,
                                              const dynamics::VehicleState& s,
                                              std::span<const ObstacleTimeline> obstacles,
                                              std::span<const std::uint32_t> active,
                                              common::SliceIdx slice_idx) const {
  const std::size_t slice = slice_idx.value();
  BlockRecord rec;
  rec.state = s;
  const geom::OrientedBox ego_box = dynamics::footprint(s, params_.ego_dims);
  if (!map.contains_box(ego_box, params_.map_margin)) {
    rec.cls = BlockerClass::kOffMap;
    return rec;
  }
  const double ego_r = ego_circumradius_;
  for (const std::uint32_t oi : active) {
    const ObstacleTimeline& obs = obstacles[oi];
    IPRISM_DCHECK(slice < obs.by_slice.size(),
                  "ReachTube: slice index out of obstacle timeline bounds");
    const geom::OrientedBox& box = obs.by_slice[slice];
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (!ego_box.intersects(box)) continue;
    if (rec.cls == BlockerClass::kSole) {
      // Second blocker found: no single-actor removal rescues this state,
      // and the exact blocker set beyond that is irrelevant — stop scanning.
      rec.cls = BlockerClass::kMulti;
      return rec;
    }
    rec.cls = BlockerClass::kSole;
    rec.sole_blocker = oi;
  }
  return rec;  // kPassed, or kSole with the one blocker recorded
}

template <class TestState, class OnLoopBegin, class OnSliceDone>
void ReachTubeComputer::propagate(const roadmap::DrivableMap& map,
                                  std::span<const ObstacleTimeline> obstacles,
                                  TubeScratch& scratch, ReachTube& tube,
                                  std::size_t& volume_cells, common::Rng& rng,
                                  int first_loop, TestState&& test,
                                  OnLoopBegin&& on_loop_begin,
                                  OnSliceDone&& on_slice_done) const {
  [[maybe_unused]] std::size_t slices_processed = 0;
  [[maybe_unused]] std::size_t states_expanded = 0;

  auto& cells = scratch.cells;
  auto& occupied = scratch.occupied;
  auto& candidates = scratch.candidates;
  auto& active = scratch.active;

  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  const double inv_cell = 1.0 / params_.cell_size;
  const common::Seconds dt{params_.dt};  // hoisted: one conversion per propagation

  // Per-slice working set (scratch above, allocated once per propagation).
  // With dedup on, each (x, y) epsilon cell keeps up to four representative
  // states (speed/heading extremes); dead cells (first sample collided or
  // left the map) are cached so the whole cell is skipped — optimization (1)
  // at cell granularity.
  for (int j = first_loop; j < slices_; ++j) {
    on_loop_begin(j);
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    scratch.next_slice();

    const common::SliceIdx slice_idx{static_cast<std::size_t>(j) + 1};
    build_active_set(obstacles, tube.slices[0].front(), scratch, slice_idx);
    std::size_t dead_cells = 0;
    auto try_control = [&](const dynamics::VehicleState& s, const dynamics::Control& u) {
      if (candidates.size() >= params_.max_states_per_slice) return;
      const dynamics::VehicleState ns = model_.step(s, u, dt);

      if (!params_.dedup) {
        if (!test(ns, slice_idx)) return;
        candidates.push_back(ns);
        occupied.insert(xy_key(ns.x, ns.y, inv_cell));
        return;
      }

      // One probe per candidate: a dead cell (first sample collided or left
      // the map) stays in `cells` as an entry with no representatives
      // (min_v < 0) — the separate dead-key set the old loop needed costs a
      // second hash lookup on every propagated state.
      const std::uint64_t key = xy_key(ns.x, ns.y, inv_cell);
      auto [reps_slot, inserted] = cells.insert(key);
      if (inserted) {
        if (!test(ns, slice_idx)) {
          ++dead_cells;  // reps_slot keeps its default min_v = -1 dead marker
          return;
        }
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        reps_slot->min_v = reps_slot->max_v = reps_slot->min_h = reps_slot->max_h = idx;
        reps_slot->v_lo = reps_slot->v_hi = ns.speed;
        reps_slot->h_lo = reps_slot->h_hi = ns.heading;
        return;
      }
      CellReps& reps = *reps_slot;
      if (reps.min_v < 0) return;  // dead cell
      const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                            ns.heading < reps.h_lo || ns.heading > reps.h_hi;
      if (!improves) return;
      if (!test(ns, slice_idx)) return;
      const int idx = static_cast<int>(candidates.size());
      candidates.push_back(ns);
      if (ns.speed < reps.v_lo) {
        reps.v_lo = ns.speed;
        reps.min_v = idx;
      }
      if (ns.speed > reps.v_hi) {
        reps.v_hi = ns.speed;
        reps.max_v = idx;
      }
      if (ns.heading < reps.h_lo) {
        reps.h_lo = ns.heading;
        reps.min_h = idx;
      }
      if (ns.heading > reps.h_hi) {
        reps.h_hi = ns.heading;
        reps.max_h = idx;
      }
    };

    for (const dynamics::VehicleState& s : current) {
      for (const dynamics::Control& u : boundary_set_) try_control(s, u);
      if (!params_.boundary_controls) {
        // Algorithm 1's unoptimized form: the extreme controls above plus
        // uniform samples up to N.
        const auto& lim = params_.limits;
        for (int n = static_cast<int>(boundary_set_.size()); n < params_.uniform_samples;
             ++n) {
          try_control(s, {rng.uniform(lim.accel_min, lim.accel_max),
                          rng.uniform(lim.steer_min, lim.steer_max)});
        }
      }
    }

    if (params_.dedup) {
      // A dead cell leaves an entry with no representatives; it must not
      // count toward the slice's occupied volume.
      volume_cells += cells.size() - dead_cells;
      // Collect the surviving representatives with a hash-free seen-flags
      // pass in cell insertion order (first-seen wins for slots shared
      // between extremes), then emit them in SplitMix64-scrambled slot
      // order. The scramble decorrelates next-slice propagation order from
      // this slice's spatial wavefront — the statistical role the old
      // unordered_set bucket order played — but is defined by construction:
      // independent of capacity, load factor, standard library, platform,
      // and thread count (DESIGN.md §9).
      scratch.seen.assign(candidates.size(), 0);
      scratch.kept.clear();
      for (const auto& entry : cells) {
        const CellReps& reps = entry.value;
        for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) {
          if (idx < 0) continue;  // dead cell: no representatives
          IPRISM_DCHECK(static_cast<std::size_t>(idx) < candidates.size(),
                        "ReachTube: representative slot out of candidate bounds");
          if (scratch.seen[static_cast<std::size_t>(idx)]) continue;
          scratch.seen[static_cast<std::size_t>(idx)] = 1;
          scratch.kept.emplace_back(
              common::splitmix64_mix(static_cast<std::uint64_t>(idx)),
              static_cast<std::uint32_t>(idx));
        }
      }
      // The mix is bijective, so sorting on it alone is a total order.
      std::sort(scratch.kept.begin(), scratch.kept.end());
      next.reserve(scratch.kept.size());
      for (const auto& [mixed, idx] : scratch.kept) {
        next.push_back(candidates[idx]);
      }
    } else {
      volume_cells += occupied.size();
      // Hand the slice over without the full copy this branch used to pay;
      // the moved-from scratch gets its capacity re-reserved for the next
      // slice.
      next = std::move(candidates);
      candidates.clear();
      candidates.reserve(expected);
    }
    ++slices_processed;
    states_expanded += next.size();  // candidates may have been moved into next
    on_slice_done(j, volume_cells);
    if (next.empty()) break;  // tube pinched off; later slices unreachable
  }

  IPRISM_COUNT_ADD("reachtube.slices", slices_processed);
  IPRISM_COUNT_ADD("reachtube.states_expanded", states_expanded);
  IPRISM_COUNT_ADD("reachtube.scratch_rehashes", scratch.cells.rehash_count());
}

void ReachTubeComputer::build_active_set(std::span<const ObstacleTimeline> obstacles,
                                         const dynamics::VehicleState& seed,
                                         TubeScratch& scratch,
                                         common::SliceIdx slice_idx) const {
  // Conservative reachable-disc bound: by slice j (time t = j·dt), every
  // candidate's footprint lies within seed_pos ± (t·v̄(t) + ego_r), where
  // v̄(t) = min(v0 + a_max·t, model v_max) bounds speed (the bicycle model
  // clamps speed to [0, v_max], so braking never adds displacement). An
  // obstacle whose slice-j footprint disc cannot touch that disc is filtered
  // out of the slice's active-set once, instead of being broad-phase-tested
  // per candidate state. kSlack absorbs rounding in the bound arithmetic.
  scratch.active.clear();
  const geom::Vec2 seed_pos{seed.x, seed.y};
  constexpr double kSlack = 0.5;
  const std::size_t slice = slice_idx.value();
  const double t = static_cast<double>(slice) * params_.dt;
  const double v_bound =
      std::min(std::max(seed.speed, 0.0) + std::max(params_.limits.accel_max, 0.0) * t,
               model_.max_speed().value());
  const double reach_r = t * v_bound + ego_circumradius_ + kSlack;
  for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
    if (scratch.excluded[oi]) continue;
    const ObstacleTimeline& obs = obstacles[oi];
    const double r = reach_r + obs.circumradius_by_slice[slice];
    if ((obs.by_slice[slice].center() - seed_pos).norm_sq() > r * r) continue;
    scratch.active.push_back(static_cast<std::uint32_t>(oi));
  }
}

void ReachTubeComputer::check_timelines(std::span<const ObstacleTimeline> obstacles) const {
  for (const ObstacleTimeline& obs : obstacles) {
    IPRISM_CHECK(obs.by_slice.size() == static_cast<std::size_t>(slices_) + 1,
                 "ReachTube: obstacle timeline sliced with different parameters");
    IPRISM_CHECK(obs.circumradius_by_slice.size() == obs.by_slice.size(),
                 "ReachTube: obstacle timeline missing precomputed circumradii "
                 "(build via sample_obstacles or call ObstacleTimeline::finalize)");
  }
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     std::span<const ObstacleTimeline> obstacles,
                                     common::ActorId exclude) const {
  check_timelines(obstacles);

  // Telemetry at compute() granularity only: the per-state hot loop stays
  // untouched; counters accumulate in plain locals and flush once at exit.
  IPRISM_SCOPED_TIMER("reachtube.compute", "reachtube");

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  TubeScratch scratch(expected, obstacles.size());
  // ActorId::none() compares equal to no real (>= 0) actor id, so the
  // default excludes nobody — including anonymous hand-built timelines.
  if (exclude.valid()) {
    for (std::size_t oi = 0; oi < obstacles.size(); ++oi) {
      scratch.excluded[oi] = obstacles[oi].actor_id == exclude ? 1 : 0;
    }
  }

  // Slice 0: the current ego state. If it already collides (or is off-map),
  // every escape route is gone and the tube is empty.
  build_active_set(obstacles, ego, scratch, common::SliceIdx{0});
  if (!state_ok(map, ego, obstacles, scratch.active, common::SliceIdx{0})) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  common::Rng rng(params_.sample_seed);
  propagate(
      map, obstacles, scratch, tube, volume_cells, rng, 0,
      [&](const dynamics::VehicleState& ns, common::SliceIdx si) {
        return state_ok(map, ns, obstacles, scratch.active, si);
      },
      [](int) {}, [](int, std::size_t) {});

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

AttributedTube ReachTubeComputer::compute_attributed(
    const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles) const {
  check_timelines(obstacles);
  IPRISM_SCOPED_TIMER("reachtube.compute_attributed", "reachtube");

  AttributedTube out;
  TubeAttribution& attr = out.attribution;
  ReachTube& tube = out.tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});
  attr.slices.resize(static_cast<std::size_t>(slices_) + 1);
  attr.rng_at_loop.assign(static_cast<std::size_t>(slices_), common::Rng{});
  attr.volume_prefix.assign(static_cast<std::size_t>(slices_) + 1, 0);
  attr.first_sole_block.assign(obstacles.size(), TubeAttribution::kNever);
  attr.obstacle_count = obstacles.size();

  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  TubeScratch scratch(expected, obstacles.size());  // excluded: all zero

  // Appends one record and maintains the divergence bookkeeping. Slices are
  // processed in increasing order, so "first" assignments are plain min's.
  auto record = [&](const BlockRecord& rec, std::size_t slice) {
    SliceAttribution& sa = attr.slices[slice];
    const auto idx = static_cast<std::uint32_t>(sa.tests.size());
    sa.tests.push_back(rec);
    auto [slot, inserted] = sa.by_state.insert(state_bits_key(rec.state));
    if (inserted) *slot = idx;  // first record wins; replay verifies the bits
    if (rec.cls == BlockerClass::kSole || rec.cls == BlockerClass::kMulti) {
      ++attr.blocked_frontier;
      const auto s32 = static_cast<std::uint32_t>(slice);
      attr.first_actor_block = std::min(attr.first_actor_block, s32);
      if (rec.cls == BlockerClass::kSole) {
        auto& first = attr.first_sole_block[rec.sole_blocker];
        first = std::min(first, s32);
      }
    }
  };

  build_active_set(obstacles, ego, scratch, common::SliceIdx{0});
  const BlockRecord seed_rec =
      classify_state(map, ego, obstacles, scratch.active, common::SliceIdx{0});
  record(seed_rec, 0);
  if (seed_rec.cls != BlockerClass::kPassed) {
    IPRISM_COUNT_ADD("reachtube.blocked_frontier_size", attr.blocked_frontier);
    return out;  // empty tube; replays may still rescue the seed
  }
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;  // the seed's own cell
  attr.volume_prefix[0] = 1;
  common::Rng rng(params_.sample_seed);
  int last_done = 0;
  propagate(
      map, obstacles, scratch, tube, volume_cells, rng, 0,
      [&](const dynamics::VehicleState& ns, common::SliceIdx si) {
        const BlockRecord rec =
            classify_state(map, ns, obstacles, scratch.active, si);
        record(rec, si.value());
        return rec.cls == BlockerClass::kPassed;
      },
      [&](int j) { attr.rng_at_loop[static_cast<std::size_t>(j)] = rng; },
      [&](int j, std::size_t volume) {
        attr.volume_prefix[static_cast<std::size_t>(j) + 1] = volume;
        last_done = j + 1;
      });
  // Defensive tail fill past an early pinch-off; replays never start there
  // (no records exist past last_done), but the prefix array stays monotone.
  for (std::size_t k = static_cast<std::size_t>(last_done) + 1;
       k < attr.volume_prefix.size(); ++k) {
    attr.volume_prefix[k] = attr.volume_prefix[static_cast<std::size_t>(last_done)];
  }

  IPRISM_COUNT_ADD("reachtube.blocked_frontier_size", attr.blocked_frontier);
  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return out;
}

ReachTube ReachTubeComputer::replay_counterfactual(
    const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles, const AttributedTube& base,
    bool exclude_all, std::size_t exclude_index, CounterfactualStats* stats) const {
  const TubeAttribution& attr = base.attribution;
  IPRISM_CHECK(attr.obstacle_count == obstacles.size() &&
                   attr.slices.size() == static_cast<std::size_t>(slices_) + 1,
               "ReachTube: attribution record does not match this obstacles/params set");
  IPRISM_DCHECK(exclude_all || exclude_index < obstacles.size(),
                "ReachTube: counterfactual exclude index out of range");

  CounterfactualStats local;
  CounterfactualStats& st = stats != nullptr ? *stats : local;
  st = CounterfactualStats{};

  const std::uint32_t jstar =
      exclude_all ? attr.first_actor_block : attr.first_sole_block[exclude_index];
  if (jstar == TubeAttribution::kNever) {
    // The lifted blocker(s) never rejected a candidate: every state_ok
    // outcome — and therefore the whole propagation — is unchanged.
    st.free = true;
    return base.tube;
  }
  st.replay_from = jstar;

  ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices_) + 1, {});

  const std::size_t expected =
      params_.scratch_reserve > 0
          ? params_.scratch_reserve
          : std::min<std::size_t>(params_.max_states_per_slice, 4096);
  TubeScratch scratch(expected, obstacles.size());
  if (exclude_all) {
    scratch.excluded.assign(obstacles.size(), 1);
  } else {
    scratch.excluded[exclude_index] = 1;
  }

  // Memoized state test: identical candidates take their answer from the
  // base record (converted for the lifted blockers — exact, see §12); delta
  // candidates the base never tested fall through to real geometry.
  auto test = [&](const dynamics::VehicleState& ns, common::SliceIdx si) {
    const SliceAttribution& sa = attr.slices[si.value()];
    if (const std::uint32_t* ti = sa.by_state.find(state_bits_key(ns))) {
      const BlockRecord& rec = sa.tests[*ti];
      if (bits_equal(rec.state, ns)) {
        ++st.memo_hits;
        switch (rec.cls) {
          case BlockerClass::kPassed: return true;   // removal cannot fail it
          case BlockerClass::kOffMap: return false;  // no removal rescues it
          case BlockerClass::kSole:
            return exclude_all || rec.sole_blocker == exclude_index;
          case BlockerClass::kMulti: return exclude_all;
        }
      }
    }
    ++st.fresh_tests;
    return state_ok(map, ns, obstacles, scratch.active, si);
  };

  std::size_t volume_cells = 0;
  common::Rng rng(params_.sample_seed);
  int first_loop = 0;
  if (jstar == 0) {
    // The seed itself was blocker-rejected in the base run; the replay
    // starts from scratch (memo still answers the shared candidates).
    build_active_set(obstacles, ego, scratch, common::SliceIdx{0});
    if (!test(ego, common::SliceIdx{0})) return tube;
    tube.slices[0].push_back(ego);
    volume_cells = 1;
  } else {
    // Slices before the divergence are bit-identical by induction: no
    // state_ok outcome differs there, so the exact states (and the RNG
    // stream) are the base run's — copy, don't recompute.
    for (std::size_t k = 0; k < jstar; ++k) tube.slices[k] = base.tube.slices[k];
    volume_cells = attr.volume_prefix[jstar - 1];
    rng = attr.rng_at_loop[jstar - 1];
    first_loop = static_cast<int>(jstar) - 1;
  }
  propagate(map, obstacles, scratch, tube, volume_cells, rng, first_loop, test,
            [](int) {}, [](int, std::size_t) {});

  tube.volume = static_cast<double>(volume_cells);
  IPRISM_DCHECK(tube.volume >= 1.0, "ReachTube: non-empty tube must have positive volume");
  return tube;
}

ReachTube ReachTubeComputer::compute_counterfactual(
    const roadmap::DrivableMap& map, const dynamics::VehicleState& ego,
    std::span<const ObstacleTimeline> obstacles, const AttributedTube& base,
    std::size_t exclude_index, CounterfactualStats* stats) const {
  return replay_counterfactual(map, ego, obstacles, base, /*exclude_all=*/false,
                               exclude_index, stats);
}

ReachTube ReachTubeComputer::compute_unblocked(const roadmap::DrivableMap& map,
                                               const dynamics::VehicleState& ego,
                                               std::span<const ObstacleTimeline> obstacles,
                                               const AttributedTube& base,
                                               CounterfactualStats* stats) const {
  return replay_counterfactual(map, ego, obstacles, base, /*exclude_all=*/true,
                               /*exclude_index=*/0, stats);
}

ReachTube ReachTubeComputer::compute(const roadmap::DrivableMap& map,
                                     const dynamics::VehicleState& ego,
                                     common::Seconds t0,
                                     std::span<const ActorForecast> forecasts,
                                     common::ActorId exclude) const {
  const auto obstacles = sample_obstacles(forecasts, t0);
  return compute(map, ego, obstacles, exclude);
}

}  // namespace iprism::core
