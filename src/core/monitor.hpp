// Streaming risk monitor: the deployable wrapper around STI that an ADS
// integration would actually run (paper §V-B takeaway (b): STI is "an
// effective metric for monitoring and mitigating hazardous situations").
//
// Feed it the live world once per step; it computes STI(combined) from
// CVTR forecasts, maintains a discrete risk level with hysteresis (levels
// escalate immediately but de-escalate only after a stable quiet period, so
// a flickering threat cannot toggle alarms), and identifies the riskiest
// actor while elevated.
#pragma once

#include <optional>
#include <utility>

#include "core/session.hpp"
#include "core/sti.hpp"

namespace iprism::core {

enum class RiskLevel { kSafe = 0, kCaution = 1, kCritical = 2 };

/// Human-readable level name.
std::string_view risk_level_name(RiskLevel level);

/// The (actor id, STI) pair the monitor reports as "riskiest": the maximum
/// per-actor STI under strict comparison, so ties resolve to the *first*
/// actor in forecast order (stable across runs — per_actor preserves input
/// order). Returns nullopt when no actor has STI > 0: an all-zero per-actor
/// set means no single actor is attributably responsible (e.g. fully
/// redundant blockers), and naming one anyway would be noise.
std::optional<std::pair<int, double>> riskiest_actor_of(const StiResult& sti);

struct RiskMonitorParams {
  double caution_threshold = 0.15;   ///< STI(combined) entering kCaution
  double critical_threshold = 0.45;  ///< STI(combined) entering kCritical
  /// Consecutive below-threshold updates required to de-escalate one level.
  int hysteresis_updates = 5;
  /// Compute the per-actor attribution only at kCaution and above (the
  /// counterfactual tubes are the expensive part).
  bool attribute_when_elevated = true;
  /// Tube configuration; `tube.num_threads > 0` fans the monitor's N+2 tube
  /// evaluations across a thread pool without changing any assessment
  /// (DESIGN.md §8).
  ReachTubeParams tube;
};

/// An immutable engine after construction (DESIGN.md §14): params plus the
/// embedded STI engine. All mutable monitoring state — level, quiet streak,
/// update count — lives in a RiskSession, so one monitor serves any number
/// of concurrent streams, each with its own session. The session-less
/// overloads below run against a monitor-owned session, preserving the
/// pre-split single-stream API and semantics exactly.
class RiskMonitor {
 public:
  /// `pool` is forwarded to the STI engine: null = the process-wide
  /// common::ThreadPool::shared() when `params.tube.num_threads > 0`.
  explicit RiskMonitor(const RiskMonitorParams& params = {},
                       common::ThreadPool* pool = nullptr);

  struct Assessment {
    double sti_combined = 0.0;
    RiskLevel level = RiskLevel::kSafe;
    /// Riskiest actor id and its STI, per riskiest_actor_of (strict max,
    /// first-wins ties, empty when every per-actor STI is zero). Populated
    /// on any tick at — or escalating into — kCaution and above; empty below
    /// kCaution, when attribution is disabled, or when there are no actors.
    std::optional<int> riskiest_actor;
    double riskiest_sti = 0.0;
  };

  /// One monitoring step of `session`'s stream on the live world (checked:
  /// world needs an ego). Const: every mutation lands in the session, so
  /// concurrent calls with *distinct* sessions are safe on one monitor.
  Assessment update(RiskSession& session, const sim::World& world) const;

  /// Single-stream form: runs against the monitor's own session.
  Assessment update(const sim::World& world);

  const StiCalculator& sti_calculator() const { return sti_; }

  // Owned-session accessors (the legacy single-stream API; for external
  // sessions read RiskSession::level() / updates() directly).
  RiskLevel level() const { return session_.level(); }
  /// Number of updates processed so far.
  long updates() const { return session_.updates(); }

  /// Forgets the owned session's state (level back to kSafe).
  void reset();

 private:
  RiskMonitorParams params_;
  StiCalculator sti_;
  /// Backs the session-less update() overload. Not touched by the
  /// session-first overload.
  RiskSession session_;
};

}  // namespace iprism::core
