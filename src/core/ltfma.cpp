#include "core/ltfma.hpp"

#include "common/check.hpp"

namespace iprism::core {

std::size_t ltfma_steps(const std::vector<double>& risk, std::size_t accident_step,
                        double eps) {
  IPRISM_CHECK(accident_step < risk.size(), "ltfma: accident_step out of range");
  std::size_t count = 0;
  for (std::size_t i = accident_step + 1; i-- > 0;) {
    if (risk[i] > eps) {
      ++count;
    } else {
      break;
    }
  }
  return count;
}

double ltfma_seconds(const std::vector<double>& risk, std::size_t accident_step, double dt,
                     double eps) {
  IPRISM_CHECK(dt > 0.0, "ltfma: dt must be positive");
  return static_cast<double>(ltfma_steps(risk, accident_step, eps)) * dt;
}

}  // namespace iprism::core
