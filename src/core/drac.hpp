// Deceleration Rate to Avoid Crash (DRAC) — another kinematics-based
// surrogate safety metric from the criticality-metric family the paper's
// related-work survey covers ([10], [12]): the constant braking rate the
// ego would need, from this instant, to avoid striking the closest in-path
// actor. Included as an additional baseline; like TTC/CIPA it is blind to
// out-of-path threats, which is the contrast STI exists to fix.
#pragma once

#include <limits>

#include "core/scene.hpp"

namespace iprism::core {

class DracMetric {
 public:
  /// Risk is nonzero once the required deceleration exceeds
  /// `comfortable_decel` and saturates at `max_decel` (braking demands
  /// beyond the vehicle's limit mean the crash is unavoidable by braking).
  explicit DracMetric(double comfortable_decel = 3.5, double max_decel = 8.0);

  /// Required deceleration in m/s^2 (0 when nothing is closing in path).
  double value(const SceneSnapshot& scene) const;

  /// Normalized risk in [0, 1]: 0 at/below the comfortable rate, 1 at or
  /// beyond the vehicle's braking limit.
  double risk(const SceneSnapshot& scene) const;

  double comfortable_decel() const { return comfortable_; }
  double max_decel() const { return max_; }

 private:
  double comfortable_;
  double max_;
};

}  // namespace iprism::core
