#include "agents/lbc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/behaviors.hpp"
#include "sim/queries.hpp"

namespace iprism::agents {

void LbcAgent::reset() {
  steps_until_eval_ = 0;
  held_hazard_accel_ = 0.0;
}

dynamics::Control LbcAgent::act(const sim::World& world) {
  const sim::Actor& ego = world.ego();
  dynamics::Control u = sim::lane_keep_control(world, ego, p_.route_lane, p_.cruise_speed);

  const auto& map = world.map();
  const double lane_center = map.lane_center_offset(p_.route_lane);
  const double detect_band = p_.detection_lane_fraction * map.lane_width();

  // The emergency reflex runs every step; the deliberative hazard response
  // only every decision interval (camera-policy latency).
  bool emergency = false;
  const bool evaluate = steps_until_eval_ <= 0;
  double worst_needed_decel = 0.0;

  for (const sim::Actor& other : world.actors()) {
    if (other.id == ego.id) continue;
    const double offset = sim::longitudinal_offset(world, ego, other);
    if (offset <= 0.0) continue;  // no rear awareness
    const double d = map.lateral(other.state.position());
    if (std::abs(d - lane_center) > detect_band) continue;  // not "in lane" yet

    const double gap = offset - ego.dims.length / 2.0 - other.dims.length / 2.0;
    if (gap < p_.standoff) {
      emergency = true;
      continue;
    }
    if (!evaluate) continue;

    const double lane_heading = map.heading_at(map.arclength(other.state.position()));
    const double other_v =
        other.state.speed * std::cos(geom::angle_diff(other.state.heading, lane_heading));
    const double closing = ego.state.speed - other_v;
    if (closing <= 0.0) continue;
    // Deceleration needed to match the hazard's speed with the standoff kept.
    const double usable = std::max(gap - p_.standoff, 0.1);
    const double needed = closing * closing / (2.0 * usable);
    worst_needed_decel = std::max(worst_needed_decel, needed);
  }

  if (evaluate) {
    held_hazard_accel_ = worst_needed_decel > p_.reaction_decel
                             ? -std::min(1.25 * worst_needed_decel, p_.comfort_brake)
                             : 0.0;
    steps_until_eval_ = p_.decision_interval_steps;
  }
  --steps_until_eval_;

  if (emergency) {
    u.accel = -p_.max_brake;
  } else if (held_hazard_accel_ < 0.0) {
    u.accel = held_hazard_accel_;
  }
  return u;
}

}  // namespace iprism::agents
