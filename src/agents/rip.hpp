// RIP-WCM surrogate agent (paper §IV-D, ref [16]).
//
// Robust Imitative Planning evaluates candidate plans under an ensemble of
// imitation-learned models and executes the plan that is best under the
// worst-case model (WCM). The paper's finding — reproduced here at the
// behaviour level — is that on OOD safety-critical scenarios the ensemble's
// likelihoods stop tracking true risk, so RIP underperforms even the LBC
// baseline on the lead cut-in / lead slowdown typologies.
//
// The surrogate keeps the WCM decision rule exactly, over a candidate set
// of target speeds, but evaluates collision risk with each ensemble
// member's *miscalibrated* perception: per-member position noise that grows
// with scene novelty (closing speeds / lateral manoeuvres outside the
// benign training distribution), plus an imitation prior that pulls toward
// cruise speed. Deterministic given (seed, step, member).
#pragma once

#include <vector>

#include "agents/agent.hpp"

namespace iprism::agents {

class RipAgent final : public DrivingAgent {
 public:
  struct Params {
    int route_lane = 1;
    double cruise_speed = 8.0;
    int ensemble_size = 5;
    /// Candidate target speeds (m/s) the planner scores.
    std::vector<double> speed_options{0.0, 2.0, 4.0, 6.0, 8.0, 10.0};
    double plan_horizon = 2.0;
    double plan_dt = 0.25;
    /// Imitation prior: cost per m/s deviation from cruise speed.
    double prior_weight = 0.45;
    /// Collision cost under a member's perceived rollout.
    double collision_weight = 4.0;
    /// Base per-member perception noise (m).
    double base_noise = 0.4;
    /// Extra noise per unit of scene novelty (m).
    double novelty_noise = 2.4;
    /// Imitative optimism: in-path actors are predicted to keep flowing at
    /// no less than this speed (m/s) — benign training data contains no
    /// mid-road stops, which is the paper's "likelihood values often do
    /// not correspond to the actual risks" failure on lead typologies.
    double benign_floor_speed = 6.5;
    std::uint64_t seed = 7;
  };

  RipAgent() : RipAgent(Params{}) {}
  explicit RipAgent(const Params& params) : p_(params) {}

  dynamics::Control act(const sim::World& world) override;
  void reset() override { step_ = 0; }
  std::string_view name() const override { return "RIP-WCM"; }

 private:
  /// Novelty of the scene w.r.t. benign training data: large closing
  /// speeds and lateral manoeuvres are out-of-distribution.
  double novelty(const sim::World& world) const;

  Params p_;
  int step_ = 0;
};

}  // namespace iprism::agents
