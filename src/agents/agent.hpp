// Driving agents (the ADS under test) and mitigation controllers (safety
// overlays such as TTC-based ACA and iPrism's SMC).
//
// iPrism's architecture (paper Fig. 2) keeps the ADS and the mitigation
// controller separate: the ADS produces the nominal control every step; a
// MitigationController may override it. The evaluation harness composes any
// agent with any controller, which is what makes the LBC+X / RIP+X rows of
// Table III expressible.
#pragma once

#include <optional>
#include <string_view>

#include "dynamics/state.hpp"
#include "sim/world.hpp"

namespace iprism::agents {

/// The autonomous driving system controlling the ego. Agents observe the
/// whole world (the LBC agent "cheats" with ground-truth state by design;
/// our surrogates inherit that interface).
class DrivingAgent {
 public:
  virtual ~DrivingAgent() = default;

  /// Nominal control for the current step.
  virtual dynamics::Control act(const sim::World& world) = 0;

  /// Clears per-episode state before a new scenario.
  virtual void reset() {}

  virtual std::string_view name() const = 0;
};

/// A safety overlay: given the world (and the ADS's nominal control),
/// either returns an override control or std::nullopt for "no operation".
class MitigationController {
 public:
  virtual ~MitigationController() = default;

  virtual std::optional<dynamics::Control> intervene(const sim::World& world,
                                                     const dynamics::Control& nominal) = 0;

  virtual void reset() {}

  virtual std::string_view name() const = 0;
};

}  // namespace iprism::agents
