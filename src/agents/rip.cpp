#include "agents/rip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "sim/behaviors.hpp"
#include "sim/queries.hpp"

namespace iprism::agents {
namespace {

/// Per-actor novelty w.r.t. benign training traffic: closing speeds beyond
/// ~3 m/s and lateral manoeuvres beyond ~0.5 m/s are out-of-distribution.
double actor_novelty(const sim::World& world, const sim::Actor& ego,
                     const sim::Actor& other) {
  const auto& map = world.map();
  const double lane_heading = map.heading_at(map.arclength(other.state.position()));
  const double heading_off = std::abs(geom::angle_diff(other.state.heading, lane_heading));
  const double lateral_speed = other.state.speed * std::sin(heading_off);
  const double closing =
      std::abs(ego.state.speed - other.state.speed * std::cos(heading_off));
  // Benign traffic: closing <~ 3 m/s, lateral <~ 0.5 m/s, speeds <~ 10 m/s.
  // Speeding actors (fast overtakers) are strongly OOD for data collected
  // from rule-abiding drivers.
  return std::min(std::max(0.0, (closing - 3.0) / 6.0) +
                      std::max(0.0, (lateral_speed - 0.5) / 1.5) +
                      std::max(0.0, (other.state.speed - 10.0) / 3.0),
                  2.0);
}

/// Whether the actor overlaps the ego's straight-ahead corridor.
bool in_ego_path(const sim::World& world, const sim::Actor& ego, const sim::Actor& other) {
  const auto& map = world.map();
  const double d_ego = map.lateral(ego.state.position());
  const double d_other = map.lateral(other.state.position());
  const double overlap =
      ego.dims.width / 2.0 + other.dims.width / 2.0 - std::abs(d_other - d_ego);
  return overlap > 0.0 && sim::longitudinal_offset(world, ego, other) > 0.0;
}

}  // namespace

double RipAgent::novelty(const sim::World& world) const {
  const sim::Actor& ego = world.ego();
  double nov = 0.0;
  for (const sim::Actor& other : world.actors()) {
    if (other.id == ego.id) continue;
    if (geom::distance(other.state.position(), ego.state.position()) > 60.0) continue;
    nov = std::max(nov, actor_novelty(world, ego, other));
  }
  return nov;
}

dynamics::Control RipAgent::act(const sim::World& world) {
  const sim::Actor& ego = world.ego();
  const int steps = static_cast<int>(std::lround(p_.plan_horizon / p_.plan_dt));

  double best_cost = std::numeric_limits<double>::infinity();
  double best_speed = p_.cruise_speed;

  for (double target : p_.speed_options) {
    // Worst-case-model aggregation: the candidate's cost is its maximum
    // over ensemble members.
    double worst = 0.0;
    for (int m = 0; m < p_.ensemble_size; ++m) {
      // A deterministic per-(step, member, candidate) noise stream.
      common::Rng rng(p_.seed ^ (static_cast<std::uint64_t>(step_) << 24) ^
                      (static_cast<std::uint64_t>(m) << 8) ^
                      static_cast<std::uint64_t>(target * 16.0 + 64.0));
      double cost = p_.prior_weight * std::abs(target - p_.cruise_speed);

      // Constant-acceleration rollout of the ego toward the target speed,
      // against each actor as *this imitative member* models it. Two OOD
      // failure modes, both documented in DESIGN.md §2:
      //  - in-path actors: imitation-learned world models have never seen
      //    traffic stop mid-road, so decelerating leads are predicted to
      //    keep flowing at a benign floor speed (optimism -> late braking);
      //  - out-of-path actors: positions are perceived with noise that
      //    grows with the actor's novelty (pessimism -> phantom braking).
      bool collided = false;
      for (const sim::Actor& other : world.actors()) {
        if (other.id == ego.id || collided) continue;
        const double nov = actor_novelty(world, ego, other);
        const bool in_path = in_ego_path(world, ego, other);

        geom::Vec2 opos = other.state.position();
        geom::Vec2 ovel = other.state.velocity();
        if (in_path && other.state.speed > 0.5) {
          // Stopped vehicles (parked cars, wreckage) do appear in benign
          // data and are modelled correctly; it is *decelerating-but-
          // moving* traffic the imitative prior refuses to believe in.
          const double predicted =
              std::max(other.state.speed, p_.benign_floor_speed);
          ovel = geom::heading_vec(other.state.heading) * predicted;
        } else if (!in_path) {
          const double noise = p_.base_noise + p_.novelty_noise * nov;
          opos += geom::Vec2{rng.normal(0.0, noise), rng.normal(0.0, noise)};
        }

        double ev = ego.state.speed;
        geom::Vec2 epos = ego.state.position();
        const geom::Vec2 edir = geom::heading_vec(ego.state.heading);
        for (int j = 0; j < steps && !collided; ++j) {
          const double accel = std::clamp(1.2 * (target - ev), -6.0, 3.0);
          ev = std::max(ev + accel * p_.plan_dt, 0.0);
          epos += edir * (ev * p_.plan_dt);
          opos += ovel * p_.plan_dt;
          const double clearance = geom::distance(epos, opos) -
                                   (ego.dims.length + other.dims.length) / 2.0;
          if (clearance < 0.5) collided = true;
        }
      }
      if (collided) cost += p_.collision_weight;
      worst = std::max(worst, cost);
    }
    if (worst < best_cost) {
      best_cost = worst;
      best_speed = target;
    }
  }

  ++step_;
  return sim::lane_keep_control(world, ego, p_.route_lane, best_speed);
}

}  // namespace iprism::agents
