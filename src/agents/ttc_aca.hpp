// TTC-based Automatic Collision Avoidance (paper §IV-D baseline 2): the
// standard rule-based safety controller — full braking once the
// time-to-collision to the closest in-path actor falls below a threshold.
// Reactive by construction: it cannot fire before the hazard is in path,
// which is exactly the weakness Table III exposes on cut-in typologies.
#pragma once

#include "agents/agent.hpp"

namespace iprism::agents {

class TtcAcaController final : public MitigationController {
 public:
  struct Params {
    double ttc_threshold = 1.8;  ///< seconds
    double max_brake = 6.0;
  };

  TtcAcaController() : TtcAcaController(Params{}) {}
  explicit TtcAcaController(const Params& params) : p_(params) {}

  std::optional<dynamics::Control> intervene(const sim::World& world,
                                             const dynamics::Control& nominal) override;

  std::string_view name() const override { return "TTC-based ACA"; }

 private:
  Params p_;
};

}  // namespace iprism::agents
