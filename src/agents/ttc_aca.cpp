#include "agents/ttc_aca.hpp"

#include "sim/queries.hpp"

namespace iprism::agents {

std::optional<dynamics::Control> TtcAcaController::intervene(
    const sim::World& world, const dynamics::Control& nominal) {
  const auto cipa = sim::closest_in_path(world, world.ego());
  if (!cipa || cipa->closing_speed <= 0.0) return std::nullopt;
  const double ttc = std::max(cipa->gap, 0.0) / cipa->closing_speed;
  if (ttc >= p_.ttc_threshold) return std::nullopt;
  dynamics::Control u = nominal;
  u.accel = -p_.max_brake;
  return u;
}

}  // namespace iprism::agents
