// LBC-surrogate baseline agent.
//
// The paper uses Chen et al.'s Learning-by-Cheating network "as is" as the
// fallible baseline ADS. This library substitutes a scripted controller
// that reproduces LBC's *failure profile* on the NHTSA typologies
// (substitution documented in DESIGN.md §2):
//
//   - keeps its route lane at cruise speed (good lane keeping);
//   - brakes for actors that are already substantially inside its lane
//     corridor — so abrupt side cut-ins are detected late (ghost cut-in
//     weakness);
//   - reacts proportionally to required deceleration, so gentle lead
//     slowdowns are usually handled while aggressive ones are not;
//   - has no rear awareness at all (rear-end weakness, like a camera-only
//     forward-facing policy).
#pragma once

#include "agents/agent.hpp"

namespace iprism::agents {

class LbcAgent final : public DrivingAgent {
 public:
  struct Params {
    int route_lane = 1;
    double cruise_speed = 8.0;
    /// An actor registers as a hazard only once its centre is within this
    /// fraction of a lane width from the route-lane centre (late detection
    /// of cut-ins is the point).
    double detection_lane_fraction = 0.55;
    /// Reaction is triggered when the kinematically-required deceleration
    /// exceeds this (m/s^2).
    double reaction_decel = 2.2;
    /// Margin kept to stopped traffic (m).
    double standoff = 4.0;
    /// Cap on reactive (comfort) braking — imitation policies brake
    /// smoothly; full braking is reserved for the emergency standoff zone.
    double comfort_brake = 4.0;
    double max_brake = 6.0;
    /// The hazard response is re-evaluated only every this many steps —
    /// the perception/decision latency of a camera policy; the braking
    /// command is held in between. Lane keeping and the emergency reflex
    /// still run every step.
    int decision_interval_steps = 5;
  };

  LbcAgent() : LbcAgent(Params{}) {}
  explicit LbcAgent(const Params& params) : p_(params) {}

  dynamics::Control act(const sim::World& world) override;
  void reset() override;
  std::string_view name() const override { return "LBC"; }

  const Params& params() const { return p_; }

 private:
  Params p_;
  int steps_until_eval_ = 0;
  double held_hazard_accel_ = 0.0;  ///< held braking command; 0 = none
};

}  // namespace iprism::agents
