#include "dataset/scan.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace iprism::dataset {

double StiScanResult::actor_percentile(double q) const {
  // An empty corpus (or one with no actors) has no samples; for a scan
  // summary "no data" reads as zero risk, so keep the historical 0.0 here
  // rather than inheriting common::percentile's non-empty check.
  return actor_sti.empty() ? 0.0 : common::percentile(actor_sti, q);
}

double StiScanResult::combined_percentile(double q) const {
  return combined_sti.empty() ? 0.0 : common::percentile(combined_sti, q);
}

double StiScanResult::actor_zero_fraction() const {
  if (actor_sti.empty()) return 0.0;
  const auto zeros = static_cast<double>(
      std::count_if(actor_sti.begin(), actor_sti.end(), [](double v) { return v < 1e-9; }));
  return zeros / static_cast<double>(actor_sti.size());
}

StiScanResult scan_logs(std::span<const TrafficLog> logs, const core::StiCalculator& sti,
                        int stride) {
  StiScanResult out;
  for (const TrafficLog& log : logs) {
    for (int step = 0; step < log.samples(); step += stride) {
      const auto scene = log.snapshot_at(step);
      const auto forecasts = log.forecasts_at(step);
      const core::StiResult r =
          sti.compute(log.map(), scene.ego.state, common::Seconds{scene.time},
                      forecasts);
      out.combined_sti.push_back(r.combined);
      for (const auto& [id, value] : r.per_actor) out.actor_sti.push_back(value);
    }
  }
  return out;
}

std::vector<RankedActor> rank_actors(const TrafficLog& log, int step,
                                     const core::StiCalculator& sti) {
  const auto scene = log.snapshot_at(step);
  const auto forecasts = log.forecasts_at(step);
  const core::StiResult r = sti.compute(log.map(), scene.ego.state,
                                        common::Seconds{scene.time}, forecasts);
  std::vector<RankedActor> ranked;
  ranked.reserve(r.per_actor.size());
  for (const auto& [id, value] : r.per_actor) ranked.push_back({id, value});
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedActor& a, const RankedActor& b) { return a.sti > b.sti; });
  return ranked;
}

}  // namespace iprism::dataset
