// Synthetic benign-traffic log corpus.
//
// Real-world datasets are collected "in a controlled environment with human
// drivers who obey traffic rules and avoid dangerous scenarios" (paper
// §IV-B1) — so the corpus generated here consists of rule-abiding,
// gap-keeping traffic with only a small fraction of logs containing mildly
// risky interactions (a tight merge or a late-braking lead). This
// reproduces the property the Fig. 6 experiment measures: a long-tailed
// STI distribution with most per-actor mass at zero.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dataset/log.hpp"

namespace iprism::dataset {

struct DatasetParams {
  int log_count = 60;
  double seconds = 18.0;
  double dt = 0.1;
  int min_actors = 5;   ///< non-ego actors per log
  int max_actors = 9;
  /// Fraction of logs seeded with one mildly risky interaction.
  double risky_fraction = 0.08;
  double road_length = 500.0;
  int lanes = 3;
  double lane_width = 3.5;
  std::uint64_t seed = 2024;
};

/// Generates a deterministic corpus of recorded logs.
std::vector<TrafficLog> generate_dataset(const DatasetParams& params);

}  // namespace iprism::dataset
