#include "dataset/log.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::dataset {

TrafficLog::TrafficLog(roadmap::MapPtr map, double dt) : map_(std::move(map)), dt_(dt) {
  IPRISM_CHECK(map_ != nullptr, "TrafficLog: map must not be null");
  IPRISM_CHECK(dt > 0.0, "TrafficLog: dt must be positive");
}

void TrafficLog::add_actor(LoggedActor actor) {
  IPRISM_CHECK(!actor.trajectory.empty(), "TrafficLog: actor trajectory is empty");
  if (actor.is_ego) {
    for (const auto& a : actors_) IPRISM_CHECK(!a.is_ego, "TrafficLog: only one ego");
  }
  actors_.push_back(std::move(actor));
}

int TrafficLog::samples() const {
  if (actors_.empty()) return 0;
  std::size_t n = std::numeric_limits<std::size_t>::max();
  for (const auto& a : actors_) n = std::min(n, a.trajectory.size());
  return static_cast<int>(n);
}

const LoggedActor& TrafficLog::ego() const {
  for (const auto& a : actors_) {
    if (a.is_ego) return a;
  }
  IPRISM_CHECK(false, "TrafficLog: no ego actor");
  std::abort();  // unreachable; IPRISM_CHECK throws
}

core::SceneSnapshot TrafficLog::snapshot_at(int step) const {
  IPRISM_CHECK(step >= 0 && step < samples(), "TrafficLog: step out of range");
  core::SceneSnapshot scene;
  scene.map = map_.get();
  const double t = step * dt_;
  scene.time = t;
  const common::Seconds ts{t};
  for (const LoggedActor& a : actors_) {
    if (a.is_ego) {
      scene.ego = {a.id, a.trajectory.at(ts), a.dims};
    } else {
      scene.others.push_back({a.id, a.trajectory.at(ts), a.dims});
    }
  }
  return scene;
}

std::vector<core::ActorForecast> TrafficLog::forecasts_at(int step) const {
  IPRISM_CHECK(step >= 0 && step < samples(), "TrafficLog: step out of range");
  std::vector<core::ActorForecast> out;
  for (const LoggedActor& a : actors_) {
    if (a.is_ego) continue;
    core::ActorForecast f{a.id, a.trajectory, a.dims};
    // Continue past the recording's end so late-log steps still see moving
    // actors as moving (same truncation fix as EpisodeResult).
    dynamics::extend_with_constant_velocity(f.trajectory, common::Seconds{6.0},
                                            common::Seconds{0.25});
    out.push_back(std::move(f));
  }
  return out;
}

TrafficLog record_log(sim::World world, sim::Behavior& ego_behavior, double seconds) {
  IPRISM_CHECK(world.has_ego(), "record_log: world has no ego");
  TrafficLog log(world.map_ptr(), world.dt());

  std::vector<LoggedActor> slots;
  for (const sim::Actor& a : world.actors()) {
    LoggedActor la;
    la.id = a.id;
    la.is_ego = a.kind == sim::ActorKind::kEgo;
    la.dims = a.dims;
    la.trajectory.append(common::Seconds{world.time()}, a.state);
    slots.push_back(std::move(la));
  }

  const int steps = static_cast<int>(seconds / world.dt());
  for (int i = 0; i < steps; ++i) {
    const dynamics::Control ego_u = ego_behavior.decide(world.ego(), world);
    world.step(ego_u);
    for (LoggedActor& la : slots) {
      la.trajectory.append(common::Seconds{world.time()}, world.actor(la.id).state);
    }
  }

  for (LoggedActor& la : slots) log.add_actor(std::move(la));
  return log;
}

}  // namespace iprism::dataset
