// STI scan over a log corpus (paper §V-D / Fig. 6): evaluates per-actor and
// combined STI at every sampled step of every log, producing the percentile
// characterization and per-scene actor rankings.
#pragma once

#include <span>
#include <vector>

#include "core/sti.hpp"
#include "dataset/log.hpp"

namespace iprism::dataset {

struct StiScanResult {
  /// STI of every (actor, step) pair across the corpus.
  std::vector<double> actor_sti;
  /// Combined STI of every step across the corpus.
  std::vector<double> combined_sti;

  /// Corpus percentiles; 0.0 on an empty corpus (a scan with no samples
  /// reports zero risk — the empty case is decided here, not in
  /// common::percentile, which rejects empty input).
  double actor_percentile(double q) const;
  double combined_percentile(double q) const;
  /// Fraction of per-actor samples that are (numerically) zero.
  double actor_zero_fraction() const;
};

/// Scans all logs, evaluating STI every `stride` steps.
StiScanResult scan_logs(std::span<const TrafficLog> logs, const core::StiCalculator& sti,
                        int stride = 5);

/// Per-actor STI ranking of one scene step, highest risk first.
struct RankedActor {
  int id = -1;
  double sti = 0.0;
};
std::vector<RankedActor> rank_actors(const TrafficLog& log, int step,
                                     const core::StiCalculator& sti);

}  // namespace iprism::dataset
