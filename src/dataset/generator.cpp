#include "dataset/generator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::dataset {
namespace {

dynamics::VehicleState lane_state(const roadmap::DrivableMap& map, int lane, double s,
                                  double speed) {
  dynamics::VehicleState st;
  const geom::Vec2 pos = map.point_at(s, map.lane_center_offset(lane));
  st.x = pos.x;
  st.y = pos.y;
  st.heading = map.heading_at(s);
  st.speed = speed;
  return st;
}

}  // namespace

std::vector<TrafficLog> generate_dataset(const DatasetParams& params) {
  IPRISM_CHECK(params.log_count > 0, "DatasetParams: log_count must be positive");
  IPRISM_CHECK(params.min_actors >= 1 && params.max_actors >= params.min_actors,
               "DatasetParams: bad actor count range");
  IPRISM_CHECK(params.dt > 0.0 && params.seconds > 0.0,
               "DatasetParams: dt and seconds must be positive");
  common::Rng master(params.seed);
  std::vector<TrafficLog> logs;
  logs.reserve(static_cast<std::size_t>(params.log_count));

  for (int i = 0; i < params.log_count; ++i) {
    common::Rng rng = master.fork(static_cast<std::uint64_t>(i));
    auto map = std::make_shared<roadmap::StraightRoad>(params.lanes, params.lane_width,
                                                       params.road_length);
    sim::World world(map, params.dt);

    const int ego_lane = rng.uniform_int(0, params.lanes - 1);
    const double ego_speed = rng.uniform(6.0, 9.5);
    const double ego_s = rng.uniform(20.0, 60.0);
    world.add_ego(lane_state(*map, ego_lane, ego_s, ego_speed));

    // Rule-abiding traffic: dense but with per-lane spacing no human driver
    // would violate (rear-to-front gaps of at least ~14 m at spawn).
    std::vector<double> last_s(static_cast<std::size_t>(params.lanes), -1e9);
    last_s[static_cast<std::size_t>(ego_lane)] = ego_s;
    const int actor_count = rng.uniform_int(params.min_actors, params.max_actors);
    double next_s = ego_s - rng.uniform(15.0, 35.0);
    for (int a = 0; a < actor_count; ++a) {
      const int lane = rng.uniform_int(0, params.lanes - 1);
      next_s += rng.uniform(14.0, 45.0);
      const double s_pos = std::max(next_s, last_s[static_cast<std::size_t>(lane)] + 14.0);
      last_s[static_cast<std::size_t>(lane)] = s_pos;
      sim::LaneFollowBehavior::Params lf;
      lf.lane = lane;
      lf.target_speed = rng.uniform(5.0, 10.0);
      lf.keep_gap = true;
      lf.time_headway = rng.uniform(1.2, 2.2);
      sim::Actor npc;
      npc.kind = sim::ActorKind::kVehicle;
      npc.state = lane_state(*map, lane, s_pos, lf.target_speed);
      npc.behavior = std::make_unique<sim::LaneFollowBehavior>(lf);
      world.add_actor(std::move(npc));
    }

    // A small fraction of logs get one mildly risky interaction: a vehicle
    // that merges into the ego lane with a modest gap.
    if (rng.bernoulli(params.risky_fraction)) {
      sim::CutInBehavior::Params cb;
      cb.start_lane = ego_lane > 0 ? ego_lane - 1 : ego_lane + 1;
      cb.target_lane = ego_lane;
      cb.mode = sim::CutInBehavior::TriggerMode::kSelfAheadOfEgo;
      cb.trigger_offset = rng.uniform(10.0, 16.0);  // tight but human-safe
      cb.cruise_speed = ego_speed + rng.uniform(1.0, 2.5);
      cb.post_speed = ego_speed - rng.uniform(0.0, 1.0);
      cb.lateral_speed = rng.uniform(0.7, 1.2);
      // Spawn the merger behind the ego with clearance from any traffic
      // already occupying its lane.
      const double merger_s =
          std::min(ego_s - rng.uniform(10.0, 20.0),
                   last_s[static_cast<std::size_t>(cb.start_lane)] == -1e9
                       ? 1e9
                       : last_s[static_cast<std::size_t>(cb.start_lane)] - 14.0);
      sim::Actor npc;
      npc.kind = sim::ActorKind::kVehicle;
      npc.state = lane_state(*map, cb.start_lane, merger_s, cb.cruise_speed);
      npc.behavior = std::make_unique<sim::CutInBehavior>(cb);
      world.add_actor(std::move(npc));
    }

    // The recording ego drives politely too.
    sim::LaneFollowBehavior::Params ego_lf;
    ego_lf.lane = ego_lane;
    ego_lf.target_speed = ego_speed;
    ego_lf.keep_gap = true;
    ego_lf.time_headway = 1.8;
    sim::LaneFollowBehavior ego_behavior(ego_lf);

    logs.push_back(record_log(std::move(world), ego_behavior, params.seconds));
  }
  return logs;
}

}  // namespace iprism::dataset
