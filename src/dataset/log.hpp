// Recorded traffic logs — the data model of the synthetic "real-world
// dataset" that substitutes for Argoverse (paper §IV-B2; substitution
// documented in DESIGN.md §2). A log is a map plus per-actor trajectories
// sampled on a fixed clock, with one actor designated as the recording ego.
#pragma once

#include <vector>

#include "core/scene.hpp"
#include "dynamics/trajectory.hpp"
#include "roadmap/map.hpp"
#include "sim/world.hpp"

namespace iprism::dataset {

struct LoggedActor {
  int id = -1;
  bool is_ego = false;
  dynamics::Dimensions dims;
  dynamics::Trajectory trajectory;
};

class TrafficLog {
 public:
  TrafficLog(roadmap::MapPtr map, double dt);

  void add_actor(LoggedActor actor);

  const roadmap::DrivableMap& map() const { return *map_; }
  roadmap::MapPtr map_ptr() const { return map_; }
  double dt() const { return dt_; }
  /// Number of recorded time steps (min over actors; 0 when empty).
  int samples() const;
  const std::vector<LoggedActor>& actors() const { return actors_; }
  const LoggedActor& ego() const;

  /// Scene snapshot at a recorded step.
  core::SceneSnapshot snapshot_at(int step) const;
  /// Ground-truth forecasts (the recorded futures) at a step.
  std::vector<core::ActorForecast> forecasts_at(int step) const;

 private:
  roadmap::MapPtr map_;
  double dt_;
  std::vector<LoggedActor> actors_;
};

/// Records a world for `seconds`, driving the ego with the given behavior
/// (dataset logs are human-driven: the ego is just another scripted actor).
TrafficLog record_log(sim::World world, sim::Behavior& ego_behavior, double seconds);

}  // namespace iprism::dataset
