#include "dataset/cases.hpp"

#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::dataset {
namespace {

dynamics::VehicleState make_state(double x, double y, double heading, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.heading = heading;
  s.speed = speed;
  return s;
}

sim::Actor scripted(const dynamics::VehicleState& state, const dynamics::Dimensions& dims,
                    std::unique_ptr<sim::Behavior> behavior) {
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = state;
  a.dims = dims;
  a.behavior = std::move(behavior);
  return a;
}

sim::LaneFollowBehavior::Params polite(int lane, double speed) {
  sim::LaneFollowBehavior::Params p;
  p.lane = lane;
  p.target_speed = speed;
  p.keep_gap = true;
  p.time_headway = 1.8;
  return p;
}

CaseScene record_case(std::string name, std::string description, sim::World world,
                      double seconds, int analysis_step, double ego_speed, int ego_lane) {
  sim::LaneFollowBehavior ego_behavior(polite(ego_lane, ego_speed));
  CaseScene scene{std::move(name), std::move(description),
                  record_log(std::move(world), ego_behavior, seconds), analysis_step};
  return scene;
}

}  // namespace

std::vector<CaseScene> build_case_scenes() {
  std::vector<CaseScene> scenes;
  const double kLaneW = 3.5;

  // (a) Pedestrian crossing: a pedestrian steps into the road ahead of the
  // ego, forcing it to yield.
  {
    auto map = std::make_shared<roadmap::StraightRoad>(2, kLaneW, 200.0);
    sim::World world(map, 0.1);
    world.add_ego(make_state(20.0, 0.5 * kLaneW, 0.0, 7.0));
    sim::PedestrianCrossBehavior::Params pb;
    pb.trigger_distance = 16.0;  // steps out late, forcing a hard yield
    pb.walk_speed = 1.0;
    pb.walk_heading = M_PI / 2.0;
    sim::Actor ped;
    ped.kind = sim::ActorKind::kPedestrian;
    ped.dims = {0.6, 0.6};
    ped.state = make_state(58.0, 0.4, M_PI / 2.0, 0.0);  // kerb side, facing across
    ped.behavior = std::make_unique<sim::PedestrianCrossBehavior>(pb);
    world.add_actor(std::move(ped));
    // A benign car far ahead in the other lane for contrast.
    world.add_actor(scripted(make_state(95.0, 1.5 * kLaneW, 0.0, 7.0), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(1, 7.0))));
    scenes.push_back(record_case(
        "pedestrian_crossing",
        "A pedestrian crossing the street forces the ego to stop and yield.",
        std::move(world), 8.0, /*analysis_step=*/45, 7.0, 0));
  }

  // (b) Oversized actor: a wide truck in the adjacent lane partially
  // occupies the ego lane without ever being on a collision path.
  {
    auto map = std::make_shared<roadmap::StraightRoad>(2, kLaneW, 250.0);
    sim::World world(map, 0.1);
    world.add_ego(make_state(30.0, 0.5 * kLaneW, 0.0, 7.0));
    // Scripted as behavior-free: constant speed, straight — it holds its
    // (encroaching) lateral offset.
    sim::Actor truck;
    truck.kind = sim::ActorKind::kVehicle;
    truck.dims = {9.0, 3.4};
    truck.state = make_state(38.0, 1.5 * kLaneW - 0.9, 0.0, 7.0);
    world.add_actor(std::move(truck));
    // Normal car well ahead in the ego lane.
    world.add_actor(scripted(make_state(80.0, 0.5 * kLaneW, 0.0, 7.5), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(0, 7.5))));
    scenes.push_back(record_case(
        "oversized_actor",
        "An oversized truck straddles the lane line; no trajectory intersects the "
        "ego's, yet it blocks the ego's escape routes.",
        std::move(world), 8.0, /*analysis_step=*/20, 7.0, 0));
  }

  // (c) Cluttered street: a badly parked car nosing into the ego lane, one
  // actor leaving the ego lane behind, one entering it ahead.
  {
    auto map = std::make_shared<roadmap::StraightRoad>(3, kLaneW, 250.0);
    sim::World world(map, 0.1);
    world.add_ego(make_state(30.0, 1.5 * kLaneW, 0.0, 6.5));
    // Badly parked: stationary, angled into the ego lane.
    sim::Actor parked;
    parked.kind = sim::ActorKind::kVehicle;
    parked.state = make_state(72.0, 0.5 * kLaneW + 1.1, 0.25, 0.0);
    world.add_actor(std::move(parked));
    // Exiting actor: behind the ego, drifting to the outer lane.
    world.add_actor(scripted(make_state(16.0, 1.5 * kLaneW, 0.0, 6.0), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(2, 6.0))));
    // Entering actor: ahead in the outer lane, merging into the ego lane.
    world.add_actor(scripted(make_state(58.0, 2.5 * kLaneW, 0.0, 5.5), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(1, 5.5))));
    scenes.push_back(record_case(
        "cluttered_street",
        "Actors entering and exiting the ego lane plus a badly parked car "
        "partially blocking it.",
        std::move(world), 8.0, /*analysis_step=*/25, 6.5, 1));
  }

  // (d) Actor pulling out of a parking spot into the ego lane while two
  // actors occupy the top (escape) lane.
  {
    auto map = std::make_shared<roadmap::StraightRoad>(2, kLaneW, 250.0);
    sim::World world(map, 0.1);
    world.add_ego(make_state(25.0, 0.5 * kLaneW, 0.0, 6.5));
    // Pulling out: creeping from the kerb into the ego lane at an angle.
    sim::Actor puller;
    puller.kind = sim::ActorKind::kVehicle;
    puller.state = make_state(60.0, 0.35 * kLaneW, 0.35, 0.8);
    world.add_actor(std::move(puller));
    // Two actors in the top lane — they block the obvious escape.
    world.add_actor(scripted(make_state(40.0, 1.5 * kLaneW, 0.0, 6.5), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(1, 6.5))));
    world.add_actor(scripted(make_state(58.0, 1.5 * kLaneW, 0.0, 6.5), {4.5, 2.0},
                             std::make_unique<sim::LaneFollowBehavior>(polite(1, 6.5))));
    scenes.push_back(record_case(
        "actor_pulling_out",
        "A parked car pulls out into the ego lane; the top lane the ego might "
        "use is occupied by two through actors.",
        std::move(world), 8.0, /*analysis_step=*/25, 6.5, 0));
  }

  return scenes;
}

}  // namespace iprism::dataset
