// The four hand-built case-study scenes of paper Fig. 7 — real-world
// situations where STI's ranking of risky actors disagrees with
// closest-actor / in-path heuristics:
//
//   (a) pedestrian crossing      — crossing pedestrian dominates the risk
//   (b) oversized actor          — a wide truck partially in the ego lane,
//                                  never on a collision path, still risky
//   (c) cluttered street         — badly-parked + entering + exiting actors
//   (d) actor pulling out        — parked car nosing into the ego lane plus
//                                  two actors occupying the escape lane
#pragma once

#include <string>
#include <vector>

#include "dataset/log.hpp"

namespace iprism::dataset {

struct CaseScene {
  std::string name;
  std::string description;
  TrafficLog log;
  /// Recorded step at which the paper-style per-actor STI ranking is read.
  int analysis_step = 0;
};

/// Builds all four Fig. 7 scenes (deterministic).
std::vector<CaseScene> build_case_scenes();

}  // namespace iprism::dataset
