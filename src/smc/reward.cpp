#include "smc/reward.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace iprism::smc {

double smc_reward(const RewardParams& p, double sti_combined, double progress,
                  double interval, bool mitigated) {
  IPRISM_CHECK(interval > 0.0, "smc_reward: interval must be positive");
  IPRISM_CHECK(p.cruise_speed > 0.0, "RewardParams: cruise_speed must be positive");
  double r = 0.0;
  if (p.use_sti) {
    r += p.alpha0 * (1.0 - std::clamp(sti_combined, 0.0, 1.0));
  }
  const double ideal = std::max(p.cruise_speed * interval, 1e-6);
  r += p.alpha1 * std::clamp(progress / ideal, -0.5, 1.25);
  if (mitigated) r += p.alpha2;
  return r;
}

}  // namespace iprism::smc
