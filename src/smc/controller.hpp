// Safety-hazard Mitigation Controller — inference side (paper §III-B,
// Eq. 10). Holds a trained Q-network; each decision step it picks the
// action with the highest Q-value and, unless that action is No-Op,
// overrides the ADS's longitudinal control (the paper's implementation
// "augments (in our implementation, overwrites)" the ADS action; steering
// stays with the ADS because the studied action set is braking /
// acceleration).
#pragma once

#include <iosfwd>
#include <memory>

#include "agents/agent.hpp"
#include "common/rng.hpp"
#include "rl/mlp.hpp"

namespace iprism::smc {

/// Discrete mitigation actions (paper §III-B: BR, ACC, No-Op; LCL/LCR are
/// the paper's named future work, implemented here as an optional extended
/// action set — see ablation_smc_actions).
enum class SmcAction : int {
  kNoOp = 0,
  kBrake = 1,
  kAccelerate = 2,
  kLaneChangeLeft = 3,
  kLaneChangeRight = 4,
};

/// Number of actions for a given action-set configuration.
inline constexpr int kActionCountBrakeOnly = 2;     ///< {No-Op, BR}
inline constexpr int kActionCountBrakeAccel = 3;    ///< {No-Op, BR, ACC}
inline constexpr int kActionCountFull = 5;          ///< + {LCL, LCR}

struct SmcControlParams {
  double brake_accel = -6.0;
  double accel_accel = 3.0;
  /// Lane-change lateral aggressiveness (approach-angle cap, radians).
  double lane_change_angle = 0.28;
  /// SMC decision period in simulator steps (action held in between).
  int decision_period = 2;
  /// Observation-noise injection: Gaussian noise of this standard deviation
  /// is added to every feature before the Q-network sees it (0 = clean).
  /// Used by the sensor-robustness ablation; deterministic per seed.
  double feature_noise_std = 0.0;
  std::uint64_t noise_seed = 97;
};

/// Maps a mitigation action onto a control override given the ADS's nominal
/// control. No-Op — and a lane change with no lane on that side — yields
/// std::nullopt (the ADS keeps control). Shared by the controller and the
/// trainer so training and deployment act identically.
std::optional<dynamics::Control> apply_smc_action(SmcAction action,
                                                  const sim::World& world,
                                                  const dynamics::Control& nominal,
                                                  const SmcControlParams& params);

class SmcController final : public agents::MitigationController {
 public:
  SmcController(rl::Mlp policy, const SmcControlParams& params = {});

  std::optional<dynamics::Control> intervene(const sim::World& world,
                                             const dynamics::Control& nominal) override;
  void reset() override;
  std::string_view name() const override { return "SMC"; }

  /// Q-greedy action for a feature vector (Eq. 10).
  SmcAction policy_action(std::span<const double> features) const;

  const rl::Mlp& policy() const { return policy_; }

  void save(std::ostream& os) const { policy_.save(os); }
  static SmcController load(std::istream& is, const SmcControlParams& params = {});

 private:
  rl::Mlp policy_;
  SmcControlParams params_;
  common::Rng noise_rng_;
  int steps_since_decision_ = 0;
  SmcAction held_action_ = SmcAction::kNoOp;
  bool first_decision_done_ = false;
};

}  // namespace iprism::smc
