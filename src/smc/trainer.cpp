#include "smc/trainer.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "common/units.hpp"
#include "core/scene.hpp"
#include "smc/features.hpp"

namespace iprism::smc {

double SmcTrainStats::recent_collision_rate(std::size_t window) const {
  if (episode_collided.empty()) return 0.0;
  const std::size_t n = std::min(window, episode_collided.size());
  std::size_t hits = 0;
  for (std::size_t i = episode_collided.size() - n; i < episode_collided.size(); ++i) {
    if (episode_collided[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double SmcTrainStats::recent_reward_per_decision(std::size_t window) const {
  if (episode_returns.empty()) return 0.0;
  const std::size_t n = std::min(window, episode_returns.size());
  double reward = 0.0;
  long decisions = 0;
  for (std::size_t i = episode_returns.size() - n; i < episode_returns.size(); ++i) {
    reward += episode_returns[i];
    decisions += i < episode_decisions.size() ? episode_decisions[i] : 0;
  }
  return decisions > 0 ? reward / static_cast<double>(decisions) : 0.0;
}

SmcTrainer::SmcTrainer(const SmcTrainConfig& config) : config_(config) {
  IPRISM_CHECK(config.episodes > 0, "SmcTrainConfig: episodes must be positive");
  IPRISM_CHECK(config.action_count == kActionCountBrakeOnly ||
                   config.action_count == kActionCountBrakeAccel ||
                   config.action_count == kActionCountFull,
               "SmcTrainConfig: unsupported action count");
  // Fail fast: surface tube misconfiguration at construction, not mid-episode.
  core::ReachTubeComputer::validate(config.tube);
}

rl::Mlp SmcTrainer::train(const std::function<sim::World(int)>& world_factory,
                          agents::DrivingAgent& base_agent, SmcTrainStats* stats) {
  IPRISM_CHECK(config_.max_attempts >= 1, "SmcTrainer: max_attempts must be >= 1");
  // The per-decision reward of clean cruising: (1 - STI) ~ 1 plus the full
  // path-completion term. A policy below `min_reward_fraction` of it is a
  // park-in-place degenerate even if it never collides.
  const double cruise_reward =
      (config_.reward.use_sti ? config_.reward.alpha0 : 0.0) + config_.reward.alpha1;
  const double min_rpd = config_.min_reward_fraction * cruise_reward;

  std::optional<rl::Mlp> best;
  SmcTrainStats best_stats;
  double best_score = -1e18;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    SmcTrainStats attempt_stats;
    const std::uint64_t seed =
        config_.seed + 0x9E3779B9ULL * static_cast<std::uint64_t>(attempt);
    rl::Mlp policy = train_once(world_factory, base_agent, seed, attempt_stats);
    const double cr = attempt_stats.recent_collision_rate(20);
    const double rpd = attempt_stats.recent_reward_per_decision(20);
    const bool acceptable = cr <= config_.acceptable_train_cr && rpd >= min_rpd;
    // Rank acceptable attempts above all others; within a tier, prefer the
    // higher per-decision reward net of collisions.
    const double score = (acceptable ? 100.0 : 0.0) + rpd - cr;
    if (score > best_score) {
      best_score = score;
      best = std::move(policy);
      best_stats = std::move(attempt_stats);
    }
    if (acceptable) break;
  }
  if (stats) *stats = std::move(best_stats);
  return std::move(*best);
}

rl::Mlp SmcTrainer::train_once(const std::function<sim::World(int)>& world_factory,
                               agents::DrivingAgent& base_agent, std::uint64_t seed,
                               SmcTrainStats& stats_ref) {
  SmcTrainStats* stats = &stats_ref;
  rl::DdqnTrainer ddqn(kFeatureCount, config_.action_count, config_.hidden, config_.ddqn,
                       seed);
  const core::StiCalculator sti(config_.tube);

  for (int episode = 0; episode < config_.episodes; ++episode) {
    sim::World world = world_factory(episode);
    IPRISM_CHECK(world.has_ego(), "SmcTrainer: training world has no ego");
    base_agent.reset();

    const int max_steps = static_cast<int>(config_.max_seconds / world.dt());
    double episode_return = 0.0;
    bool collided = false;
    int step = 0;
    int decisions = 0;

    while (step < max_steps) {
      ++decisions;
      const std::vector<double> state = extract_features(world);
      const int action = ddqn.select_action(state);
      const auto smc_action = static_cast<SmcAction>(action);

      // Hold the action for one decision period (paper: the mitigation
      // action overwrites the ADS's longitudinal command).
      const double s_before = world.map().arclength(world.ego().state.position());
      bool done = false;
      bool reached_end = false;
      bool acted = false;
      for (int k = 0; k < config_.control.decision_period && step < max_steps; ++k) {
        dynamics::Control u = base_agent.act(world);
        if (const auto overridden =
                apply_smc_action(smc_action, world, u, config_.control)) {
          u = *overridden;
          acted = true;
        }
        world.step(u);
        ++step;
        if (world.ego_collided()) {
          collided = true;
          done = true;
          break;
        }
        if (world.map().arclength(world.ego().state.position()) >=
            world.map().road_length() - config_.end_margin) {
          reached_end = true;
          done = true;
          break;
        }
      }

      double progress =
          world.map().arclength(world.ego().state.position()) - s_before;
      const double road_len = world.map().road_length();
      if (progress < -road_len / 2.0) progress += road_len;  // ring wrap

      // Eq. 7/8: STI of the post-transition state, from CVTR predictions.
      double sti_combined = 0.0;
      if (config_.reward.use_sti && !collided) {
        const auto forecasts =
            core::cvtr_forecasts(world, config_.tube.horizon, config_.tube.dt);
        sti_combined = sti.combined(world.map(), world.ego().state,
                                    common::Seconds{world.time()}, forecasts);
      } else if (collided) {
        sti_combined = 1.0;  // escape routes exhausted by definition (§II)
      }

      const double interval = config_.control.decision_period * world.dt();
      const double reward =
          smc_reward(config_.reward, sti_combined, progress, interval, acted);
      episode_return += reward;

      rl::Transition t;
      t.state = state;
      t.action = action;
      t.reward = reward;
      t.next_state = extract_features(world);
      t.done = done;
      ddqn.observe(std::move(t));
      for (int u = 0; u < config_.updates_per_decision; ++u) ddqn.train_step();

      if (done || reached_end) break;
    }

    if (stats) {
      stats->episode_returns.push_back(episode_return);
      stats->episode_collided.push_back(collided);
      stats->episode_decisions.push_back(decisions);
    }
  }

  rl::Mlp policy = ddqn.online();
  return policy;
}

}  // namespace iprism::smc
