#include "smc/features.hpp"

#include <algorithm>
#include <array>

#include "sim/queries.hpp"

namespace iprism::smc {
namespace {

constexpr double kGapScale = 60.0;      // metres
constexpr double kClosingScale = 12.0;  // m/s
constexpr double kSpeedScale = 20.0;    // m/s

void push_neighbor(std::vector<double>& f, const std::optional<sim::Neighbor>& n) {
  if (n) {
    f.push_back(1.0);  // present
    f.push_back(std::clamp(n->gap / kGapScale, 0.0, 1.0));
    f.push_back(std::clamp(n->closing_speed / kClosingScale, -1.0, 1.0));
  } else {
    f.push_back(0.0);
    f.push_back(1.0);  // "far away"
    f.push_back(0.0);
  }
}

}  // namespace

std::vector<double> extract_features(const sim::World& world) {
  const sim::Actor& ego = world.ego();
  const auto& map = world.map();
  std::vector<double> f;
  f.reserve(kFeatureCount);

  f.push_back(std::clamp(ego.state.speed / kSpeedScale, 0.0, 1.0));
  const int ego_lane = std::max(sim::lane_of(world, ego), 0);
  const double lane_center = map.lane_center_offset(ego_lane);
  f.push_back(std::clamp(
      (map.lateral(ego.state.position()) - lane_center) / map.lane_width(), -1.0, 1.0));

  // Same-lane blocks first.
  push_neighbor(f, sim::lead_in_lane(world, ego, ego_lane));
  push_neighbor(f, sim::rear_in_lane(world, ego, ego_lane));

  // Side lanes are presented in *threat order*, not left/right order, so a
  // policy trained against a threat on one side transfers to the mirror
  // scenario (the typologies draw the threat side per instance).
  struct Side {
    std::optional<sim::Neighbor> ahead;
    std::optional<sim::Neighbor> behind;
    double threat = 0.0;
  };
  auto score = [](const std::optional<sim::Neighbor>& n) {
    if (!n) return 0.0;
    return (1.0 + std::max(n->closing_speed, 0.0)) / (std::max(n->gap, 0.0) + 1.0);
  };
  std::array<Side, 2> sides;
  for (int k = 0; k < 2; ++k) {
    const int lane = ego_lane + (k == 0 ? -1 : 1);
    if (lane >= 0 && lane < map.lane_count()) {
      sides[k].ahead = sim::lead_in_lane(world, ego, lane);
      sides[k].behind = sim::rear_in_lane(world, ego, lane);
    }
    sides[k].threat = std::max(score(sides[k].ahead), score(sides[k].behind));
  }
  if (sides[1].threat > sides[0].threat) std::swap(sides[0], sides[1]);
  for (const Side& side : sides) {
    push_neighbor(f, side.ahead);
    push_neighbor(f, side.behind);
  }
  return f;
}

}  // namespace iprism::smc
