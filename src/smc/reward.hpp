// SMC reward model (paper Eq. 8):
//
//   r_t = alpha0 * (1 - STI_combined) + alpha1 * r_pc + alpha2 * p_am
//
// where r_pc rewards path completion (longitudinal progress normalized by
// the cruise distance per decision) and p_am = 1[a != No-Op] penalizes
// mitigation activations. alpha2 is negative. The ablation agent
// ("SMC w/o STI", Table III) simply drops the alpha0 term.
#pragma once

namespace iprism::smc {

struct RewardParams {
  double alpha0 = 1.0;    ///< weight on (1 - STI_combined)
  double alpha1 = 0.6;    ///< weight on path completion
  double alpha2 = -0.35;  ///< penalty per activated mitigation (negative)
  bool use_sti = true;    ///< false = the Table III ablation
  double cruise_speed = 8.0;
};

/// Reward for one decision interval.
/// `progress` is the ego's longitudinal progress over the interval (m),
/// `interval` its duration (s), `mitigated` whether a non-No-Op action ran.
double smc_reward(const RewardParams& p, double sti_combined, double progress,
                  double interval, bool mitigated);

}  // namespace iprism::smc
