// SMC training (paper §III-B, Fig. 2): D-DQN over episodes of a safety-
// critical scenario, with the base ADS driving and the SMC's exploratory
// actions overriding its longitudinal control. The reward is Eq. 8, with
// STI_combined computed online from CVTR-predicted actor trajectories
// (§IV-C: predictions, not ground truth, during SMC training/inference).
#pragma once

#include <functional>
#include <vector>

#include "agents/agent.hpp"
#include "core/sti.hpp"
#include "rl/ddqn.hpp"
#include "smc/controller.hpp"
#include "smc/reward.hpp"

namespace iprism::smc {

struct SmcTrainConfig {
  int episodes = 80;
  double max_seconds = 30.0;
  /// Mitigation action set size: kActionCountBrakeOnly for the cut-in /
  /// slowdown typologies, kActionCountBrakeAccel for rear-end (§V-C
  /// "Extension to other mitigation actions").
  int action_count = kActionCountBrakeAccel;
  SmcControlParams control;
  RewardParams reward;
  rl::DdqnConfig ddqn;
  /// Tube configuration for the reward's STI term; `tube.num_threads > 0`
  /// parallelizes each STI evaluation inside training episodes (results,
  /// and therefore the learned policy, are unchanged — DESIGN.md §8).
  core::ReachTubeParams tube;
  std::vector<int> hidden{48, 48};
  std::uint64_t seed = 1234;
  int updates_per_decision = 1;
  /// End-of-road margin treated as successful episode completion.
  double end_margin = 15.0;
  /// D-DQN is seed-sensitive; an attempt is accepted when, over the last
  /// 20 *training* episodes, the collision rate is at most
  /// `acceptable_train_cr` AND the per-decision reward is at least
  /// `min_reward_fraction` of the safe-cruising reward (the second test
  /// rejects degenerate park-in-place policies, which avoid collisions by
  /// not driving). Otherwise retrain with a derived seed, up to
  /// `max_attempts` total, keeping the best attempt. Selection uses
  /// training statistics only — evaluation scenarios are never consulted.
  int max_attempts = 3;
  double acceptable_train_cr = 0.45;
  double min_reward_fraction = 0.55;
};

struct SmcTrainStats {
  std::vector<double> episode_returns;
  std::vector<bool> episode_collided;
  std::vector<int> episode_decisions;

  /// Collision rate over the last `window` episodes.
  double recent_collision_rate(std::size_t window = 20) const;
  /// Mean reward per decision over the last `window` episodes (0 if empty).
  /// Distinguishes policies that drive from degenerate park-in-place
  /// policies, whose per-decision reward lacks the path-completion term.
  double recent_reward_per_decision(std::size_t window = 20) const;
};

class SmcTrainer {
 public:
  explicit SmcTrainer(const SmcTrainConfig& config = {});

  /// Trains on episodes produced by `world_factory` (called with the
  /// episode index; the paper trains on a single selected scenario per
  /// typology, so the factory usually rebuilds one spec — typically with
  /// small per-episode jitter, see scenario::jitter_spec). Returns the
  /// trained Q-network.
  rl::Mlp train(const std::function<sim::World(int)>& world_factory,
                agents::DrivingAgent& base_agent, SmcTrainStats* stats = nullptr);

  const SmcTrainConfig& config() const { return config_; }

 private:
  rl::Mlp train_once(const std::function<sim::World(int)>& world_factory,
                     agents::DrivingAgent& base_agent, std::uint64_t seed,
                     SmcTrainStats& stats);

  SmcTrainConfig config_;
};

}  // namespace iprism::smc
