// SMC state features S_t.
//
// The paper feeds three camera frames through the LBC backbone CNN; this
// library substitutes the equivalent engineered observation (DESIGN.md §2):
// an ego-centric summary of the three lanes around the ego — gap, closing
// speed, and presence of the nearest actor ahead and behind per lane — plus
// ego speed and lane offset. This carries exactly the information the CNN
// extracts for a 2-D traffic scene, and keeps the decision problem (actions,
// reward, D-DQN) identical.
#pragma once

#include <vector>

#include "sim/world.hpp"

namespace iprism::smc {

/// Dimension of the feature vector.
inline constexpr int kFeatureCount = 2 + 3 * 2 * 3;  // ego(2) + 3 lanes x 2 dirs x 3

/// Extracts the normalized feature vector for the current world state.
std::vector<double> extract_features(const sim::World& world);

}  // namespace iprism::smc
