#include "smc/controller.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/behaviors.hpp"
#include "sim/queries.hpp"
#include "smc/features.hpp"

namespace iprism::smc {

std::optional<dynamics::Control> apply_smc_action(SmcAction action,
                                                  const sim::World& world,
                                                  const dynamics::Control& nominal,
                                                  const SmcControlParams& params) {
  switch (action) {
    case SmcAction::kNoOp:
      return std::nullopt;
    case SmcAction::kBrake:
      return dynamics::Control{params.brake_accel, nominal.steer};
    case SmcAction::kAccelerate:
      return dynamics::Control{params.accel_accel, nominal.steer};
    case SmcAction::kLaneChangeLeft:
    case SmcAction::kLaneChangeRight: {
      const sim::Actor& ego = world.ego();
      const int current = sim::lane_of(world, ego);
      if (current < 0) return std::nullopt;
      const int target =
          current + (action == SmcAction::kLaneChangeLeft ? 1 : -1);
      if (target < 0 || target >= world.map().lane_count()) return std::nullopt;
      // Full control override: steer toward the adjacent lane while holding
      // the current speed (the ADS would otherwise fight the manoeuvre —
      // the integration conflict the paper's future-work section names).
      return sim::lane_keep_control(world, ego, target, ego.state.speed,
                                    params.lane_change_angle);
    }
  }
  return std::nullopt;
}

SmcController::SmcController(rl::Mlp policy, const SmcControlParams& params)
    : policy_(std::move(policy)), params_(params), noise_rng_(params.noise_seed) {
  IPRISM_CHECK(params.feature_noise_std >= 0.0,
               "SmcControlParams: feature_noise_std must be non-negative");
  IPRISM_CHECK(params.decision_period >= 1,
               "SmcControlParams: decision_period must be >= 1");
  IPRISM_CHECK(params.brake_accel < 0.0 && params.accel_accel > 0.0,
               "SmcControlParams: brake_accel must be negative and accel_accel positive");
  IPRISM_CHECK(policy_.input_size() == kFeatureCount,
               "SmcController: policy input size != feature count");
}

void SmcController::reset() {
  noise_rng_ = common::Rng(params_.noise_seed);
  steps_since_decision_ = 0;
  held_action_ = SmcAction::kNoOp;
  first_decision_done_ = false;
}

SmcAction SmcController::policy_action(std::span<const double> features) const {
  const std::vector<double> q = policy_.forward(features);
  const auto best = std::max_element(q.begin(), q.end());
  return static_cast<SmcAction>(best - q.begin());
}

std::optional<dynamics::Control> SmcController::intervene(
    const sim::World& world, const dynamics::Control& nominal) {
  if (!first_decision_done_ || ++steps_since_decision_ >= params_.decision_period) {
    std::vector<double> features = extract_features(world);
    if (params_.feature_noise_std > 0.0) {
      for (double& f : features) f += noise_rng_.normal(0.0, params_.feature_noise_std);
    }
    held_action_ = policy_action(features);
    steps_since_decision_ = 0;
    first_decision_done_ = true;
  }
  return apply_smc_action(held_action_, world, nominal, params_);
}

SmcController SmcController::load(std::istream& is, const SmcControlParams& params) {
  return SmcController(rl::Mlp::load(is), params);
}

}  // namespace iprism::smc
