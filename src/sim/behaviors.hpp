// Concrete Behavior scripts. Between them these express every actor role in
// the paper's five NHTSA pre-crash typologies (§IV-B1, Fig. 3) plus the
// benign rule-abiding traffic of the synthetic "recorded log" dataset:
//
//   LaneFollowBehavior      benign traffic / lead vehicles / rear-end fillers
//   CutInBehavior           ghost cut-in and lead cut-in threats
//   SlowdownBehavior        lead slowdown threat
//   RearChaseBehavior       rear-end threat (approaches ego from behind)
//   MergeColliderBehavior   front accident (two NPCs collide ahead of ego)
//   PedestrianCrossBehavior dataset case study (pedestrian crossing)
#pragma once

#include <memory>
#include <optional>

#include "sim/behavior.hpp"

namespace iprism::sim {

/// Lane-keeping control law shared by all vehicle behaviors and the driving
/// agents: proportional steering toward the target lane centre plus
/// proportional speed control. `max_approach_angle` caps the heading the
/// controller will take relative to the lane direction, which fixes the
/// lateral speed of lane changes (aggressiveness knob).
dynamics::Control lane_keep_control(const World& world, const Actor& self, int target_lane,
                                    double target_speed,
                                    double max_approach_angle = 0.18);

/// Converts a desired lateral speed into the approach-angle cap that
/// lane_keep_control expects, given the current forward speed.
double approach_angle_for_lateral_speed(double lateral_speed, double forward_speed);

/// Follows a lane at a target speed; optionally keeps a time-headway gap to
/// the lead vehicle in its lane (benign traffic does, threat actors do not).
class LaneFollowBehavior final : public Behavior {
 public:
  struct Params {
    int lane = 0;
    double target_speed = 8.0;
    bool keep_gap = false;
    double time_headway = 1.2;   ///< desired gap = speed * headway + min_gap
    double min_gap = 5.0;
  };
  explicit LaneFollowBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

 private:
  Params p_;
};

/// Cuts from its own lane into the target (ego) lane when a longitudinal
/// trigger fires, then follows that lane at `post_speed`. Covers both
/// cut-in typologies:
///   - ghost cut-in:  TriggerMode::kSelfAheadOfEgo — the actor approaches
///     from behind in the adjacent lane and cuts once it has pulled
///     `trigger_offset` metres ahead of the ego;
///   - lead cut-in:   TriggerMode::kEgoWithinDistance — the actor drives
///     ahead in the adjacent lane and cuts once the ego closes to within
///     `trigger_offset` metres.
class CutInBehavior final : public Behavior {
 public:
  enum class TriggerMode { kSelfAheadOfEgo, kEgoWithinDistance };
  struct Params {
    int start_lane = 0;
    int target_lane = 1;
    TriggerMode mode = TriggerMode::kSelfAheadOfEgo;
    double trigger_offset = 2.0;   ///< metres; see TriggerMode semantics
    double cruise_speed = 11.0;    ///< speed before the cut
    double post_speed = 6.0;       ///< speed after/during the cut
    double lateral_speed = 2.0;    ///< metres/second across the lane line
  };
  explicit CutInBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

  bool triggered() const { return triggered_; }

 private:
  Params p_;
  bool triggered_ = false;
};

/// Drives ahead of the ego in the same lane, then brakes to a stop when the
/// ego closes to within the trigger distance (lead slowdown typology).
class SlowdownBehavior final : public Behavior {
 public:
  struct Params {
    int lane = 1;
    double cruise_speed = 6.0;
    double trigger_distance = 25.0;  ///< ego gap that triggers braking
    double decel = 5.0;              ///< braking rate once triggered
  };
  explicit SlowdownBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

  bool triggered() const { return triggered_; }

 private:
  Params p_;
  bool triggered_ = false;
};

/// Approaches the ego from behind in the ego's lane at high speed and does
/// not yield (rear-end typology). Steers toward the ego's current lane so
/// late ego lane changes do not trivially dodge it.
class RearChaseBehavior final : public Behavior {
 public:
  struct Params {
    double speed = 16.0;
    bool track_ego_lane = true;
    int lane = 1;  ///< used when track_ego_lane is false
  };
  explicit RearChaseBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

 private:
  Params p_;
};

/// Merges into a partner actor's lane to create a non-ego collision ahead
/// of the ego (front-accident typology). The partner simply lane-follows.
class MergeColliderBehavior final : public Behavior {
 public:
  struct Params {
    int start_lane = 0;
    int target_lane = 1;
    int partner_id = -1;           ///< actor to merge into (checked at run time)
    double trigger_offset = 4.0;   ///< merge when partner within this many metres ahead
    double speed = 9.0;
    double lateral_speed = 2.5;
  };
  explicit MergeColliderBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

 private:
  Params p_;
  bool triggered_ = false;
};

/// Pedestrian: stands at the roadside until the ego approaches within the
/// trigger distance, then walks straight across the road.
class PedestrianCrossBehavior final : public Behavior {
 public:
  struct Params {
    double trigger_distance = 30.0;
    double walk_speed = 1.4;
    double walk_heading = M_PI / 2.0;  ///< crossing direction
  };
  explicit PedestrianCrossBehavior(const Params& p) : p_(p) {}

  dynamics::Control decide(const Actor& self, const World& world) override;
  std::unique_ptr<Behavior> clone() const override;

 private:
  Params p_;
  bool walking_ = false;
};

}  // namespace iprism::sim
