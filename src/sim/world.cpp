#include "sim/world.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::sim {

World::World(roadmap::MapPtr map, double dt) : map_(std::move(map)), dt_(dt) {
  IPRISM_CHECK(map_ != nullptr, "World: map must not be null");
  IPRISM_CHECK(dt > 0.0, "World: dt must be positive");
}

World World::clone() const {
  World copy(map_, dt_);
  copy.time_ = time_;
  copy.step_count_ = step_count_;
  copy.ego_index_ = ego_index_;
  copy.next_id_ = next_id_;
  copy.collisions_ = collisions_;
  copy.vehicle_model_ = vehicle_model_;
  copy.npc_limits_ = npc_limits_;
  copy.ego_limits_ = ego_limits_;
  copy.actors_.reserve(actors_.size());
  for (const Actor& a : actors_) {
    Actor b;
    b.id = a.id;
    b.kind = a.kind;
    b.dims = a.dims;
    b.state = a.state;
    b.prev_state = a.prev_state;
    b.behavior = a.behavior ? a.behavior->clone() : nullptr;
    b.crashed = a.crashed;
    copy.actors_.push_back(std::move(b));
  }
  return copy;
}

int World::add_actor(Actor actor) {
  if (actor.kind == ActorKind::kEgo) {
    IPRISM_CHECK(ego_index_ < 0, "World: only one ego actor allowed");
    ego_index_ = static_cast<int>(actors_.size());
  }
  actor.id = next_id_++;
  actor.prev_state = actor.state;
  actors_.push_back(std::move(actor));
  return actors_.back().id;
}

int World::add_ego(const dynamics::VehicleState& state, const dynamics::Dimensions& dims) {
  Actor ego;
  ego.kind = ActorKind::kEgo;
  ego.state = state;
  ego.dims = dims;
  return add_actor(std::move(ego));
}

const Actor& World::ego() const {
  IPRISM_CHECK(ego_index_ >= 0, "World: no ego actor");
  return actors_[static_cast<std::size_t>(ego_index_)];
}

int World::ego_id() const { return ego().id; }

const Actor& World::actor(int id) const {
  for (const Actor& a : actors_) {
    if (a.id == id) return a;
  }
  IPRISM_CHECK(false, "World: unknown actor id");
  std::abort();  // unreachable; IPRISM_CHECK throws
}

bool World::has_actor(int id) const {
  return std::any_of(actors_.begin(), actors_.end(),
                     [id](const Actor& a) { return a.id == id; });
}

bool World::ego_collided() const { return ego_collision_time().has_value(); }

std::optional<double> World::ego_collision_time() const {
  if (ego_index_ < 0) return std::nullopt;
  const int id = ego().id;
  for (const CollisionEvent& c : collisions_) {
    if (c.actor_a == id || c.actor_b == id) return c.time;
  }
  return std::nullopt;
}

bool World::npc_collision_occurred() const {
  const int id = ego_index_ >= 0 ? ego().id : -1;
  return std::any_of(collisions_.begin(), collisions_.end(), [id](const CollisionEvent& c) {
    return c.actor_a != id && c.actor_b != id;
  });
}

void World::integrate(Actor& actor, const dynamics::Control& u) {
  actor.prev_state = actor.state;
  if (actor.kind == ActorKind::kPedestrian) {
    // Holonomic point: `steer` is interpreted as yaw rate, `accel` as speed
    // change; pedestrians turn in place if needed.
    dynamics::VehicleState s = actor.state;
    s.speed = std::clamp(s.speed + u.accel * dt_, 0.0, 3.0);
    s.heading = geom::wrap_angle(s.heading + u.steer * dt_);
    s.x += s.speed * std::cos(s.heading) * dt_;
    s.y += s.speed * std::sin(s.heading) * dt_;
    actor.state = s;
    return;
  }
  actor.state = vehicle_model_.step(actor.state, u, common::Seconds{dt_});
}

void World::step(std::optional<dynamics::Control> ego_control) {
  // Phase 1: all decisions from the pre-step state (synchronous update).
  std::vector<dynamics::Control> controls(actors_.size());
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    Actor& a = actors_[i];
    if (a.crashed) {
      // Wreckage: hard stop, no steering.
      controls[i] = {npc_limits_.accel_min, 0.0};
    } else if (a.kind == ActorKind::kEgo) {
      controls[i] = ego_control ? ego_limits_.clamp(*ego_control) : dynamics::Control{};
    } else if (a.behavior) {
      controls[i] = npc_limits_.clamp(a.behavior->decide(a, *this));
    } else {
      controls[i] = {};
    }
  }

  // Phase 2: integrate.
  for (std::size_t i = 0; i < actors_.size(); ++i) integrate(actors_[i], controls[i]);

  time_ += dt_;
  ++step_count_;

  // Phase 3: collisions at the post-step poses.
  detect_collisions();
}

void World::detect_collisions() {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    for (std::size_t j = i + 1; j < actors_.size(); ++j) {
      Actor& a = actors_[i];
      Actor& b = actors_[j];
      if (a.crashed && b.crashed) continue;  // already wreckage
      if (a.footprint().intersects(b.footprint())) {
        a.crashed = true;
        b.crashed = true;
        collisions_.push_back({time_, std::min(a.id, b.id), std::max(a.id, b.id)});
      }
    }
  }
}

}  // namespace iprism::sim
