// Behavior: the scripted control policy of a non-ego actor. Behaviors
// observe the whole world (scenario scripts are omniscient by design — they
// exist to create precisely-timed safety threats) and emit a Control each
// step.
#pragma once

#include <memory>

#include "dynamics/state.hpp"

namespace iprism::sim {

class World;
struct Actor;

class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Control for `self` at the world's current time. Called once per step,
  /// before any state advances (synchronous update).
  virtual dynamics::Control decide(const Actor& self, const World& world) = 0;

  /// Deep copy, including mutable script state (trigger latches etc.), so a
  /// cloned world replays identically.
  virtual std::unique_ptr<Behavior> clone() const = 0;
};

}  // namespace iprism::sim
