#include "sim/behaviors.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/queries.hpp"
#include "sim/world.hpp"

namespace iprism::sim {

double approach_angle_for_lateral_speed(double lateral_speed, double forward_speed) {
  const double ratio = std::clamp(lateral_speed / std::max(forward_speed, 0.5), 0.0, 0.9);
  return std::asin(ratio);
}

dynamics::Control lane_keep_control(const World& world, const Actor& self, int target_lane,
                                    double target_speed, double max_approach_angle) {
  const auto& map = world.map();
  const geom::Vec2 pos = self.state.position();
  const double s = map.arclength(pos);
  const double d = map.lateral(pos);
  const double d_target = map.lane_center_offset(target_lane);
  const double lane_heading = map.heading_at(s);

  // Steering: aim at a heading offset proportional to the lateral error,
  // capped by the approach angle; then a proportional controller on heading.
  constexpr double kLateralGain = 0.35;   // rad per metre of lateral error
  constexpr double kHeadingGain = 2.5;    // steer per rad of heading error
  constexpr double kSpeedGain = 1.2;      // accel per m/s of speed error
  const double offset_cmd =
      std::clamp(kLateralGain * (d_target - d), -max_approach_angle, max_approach_angle);
  const double desired_heading = geom::wrap_angle(lane_heading + offset_cmd);
  const double heading_err = geom::angle_diff(desired_heading, self.state.heading);

  // Curvature feedforward: on curved roads a pure proportional law has a
  // persistent heading error and spirals off the lane.
  const double kWheelbase = 2.7;  // matches the world's vehicle model
  const double steer_ff =
      std::atan(kWheelbase * map.curvature_at(s, d_target));

  dynamics::Control u;
  u.steer = std::clamp(steer_ff + kHeadingGain * heading_err, -0.5, 0.5);
  u.accel = kSpeedGain * (target_speed - self.state.speed);
  return u;
}

// ---------------------------------------------------------------------------
// LaneFollowBehavior

dynamics::Control LaneFollowBehavior::decide(const Actor& self, const World& world) {
  dynamics::Control u = lane_keep_control(world, self, p_.lane, p_.target_speed);
  if (p_.keep_gap) {
    if (auto lead = lead_in_lane(world, self, p_.lane)) {
      const double desired = self.state.speed * p_.time_headway + p_.min_gap;
      if (lead->gap < desired) {
        // Proportional braking that strengthens as the gap closes.
        const double severity = std::clamp(1.0 - lead->gap / desired, 0.0, 1.0);
        const double brake = -2.0 - 6.0 * severity;
        u.accel = std::min(u.accel, brake * std::max(severity, 0.3));
      }
    }
  }
  return u;
}

std::unique_ptr<Behavior> LaneFollowBehavior::clone() const {
  return std::make_unique<LaneFollowBehavior>(*this);
}

// ---------------------------------------------------------------------------
// CutInBehavior

dynamics::Control CutInBehavior::decide(const Actor& self, const World& world) {
  if (!triggered_ && world.has_ego()) {
    const double offset = longitudinal_offset(world, world.ego(), self);
    switch (p_.mode) {
      case TriggerMode::kSelfAheadOfEgo:
        triggered_ = offset >= p_.trigger_offset;
        break;
      case TriggerMode::kEgoWithinDistance:
        triggered_ = offset >= 0.0 && offset <= p_.trigger_offset;
        break;
    }
  }
  if (!triggered_) {
    return lane_keep_control(world, self, p_.start_lane, p_.cruise_speed);
  }
  const double angle =
      approach_angle_for_lateral_speed(p_.lateral_speed, self.state.speed);
  return lane_keep_control(world, self, p_.target_lane, p_.post_speed, angle);
}

std::unique_ptr<Behavior> CutInBehavior::clone() const {
  return std::make_unique<CutInBehavior>(*this);
}

// ---------------------------------------------------------------------------
// SlowdownBehavior

dynamics::Control SlowdownBehavior::decide(const Actor& self, const World& world) {
  if (!triggered_ && world.has_ego()) {
    const double offset = longitudinal_offset(world, world.ego(), self);
    const double gap = offset - world.ego().dims.length / 2.0 - self.dims.length / 2.0;
    triggered_ = offset > 0.0 && gap <= p_.trigger_distance;
  }
  if (!triggered_) {
    return lane_keep_control(world, self, p_.lane, p_.cruise_speed);
  }
  dynamics::Control u = lane_keep_control(world, self, p_.lane, 0.0);
  u.accel = -p_.decel;
  return u;
}

std::unique_ptr<Behavior> SlowdownBehavior::clone() const {
  return std::make_unique<SlowdownBehavior>(*this);
}

// ---------------------------------------------------------------------------
// RearChaseBehavior

dynamics::Control RearChaseBehavior::decide(const Actor& self, const World& world) {
  int lane = p_.lane;
  if (p_.track_ego_lane && world.has_ego()) {
    const int ego_lane = lane_of(world, world.ego());
    if (ego_lane >= 0) lane = ego_lane;
  }
  return lane_keep_control(world, self, lane, p_.speed);
}

std::unique_ptr<Behavior> RearChaseBehavior::clone() const {
  return std::make_unique<RearChaseBehavior>(*this);
}

// ---------------------------------------------------------------------------
// MergeColliderBehavior

dynamics::Control MergeColliderBehavior::decide(const Actor& self, const World& world) {
  IPRISM_CHECK(world.has_actor(p_.partner_id), "MergeColliderBehavior: unknown partner");
  if (!triggered_) {
    const double offset = longitudinal_offset(world, self, world.actor(p_.partner_id));
    triggered_ = std::abs(offset) <= p_.trigger_offset;
  }
  if (!triggered_) {
    return lane_keep_control(world, self, p_.start_lane, p_.speed);
  }
  const double angle =
      approach_angle_for_lateral_speed(p_.lateral_speed, self.state.speed);
  return lane_keep_control(world, self, p_.target_lane, p_.speed, angle);
}

std::unique_ptr<Behavior> MergeColliderBehavior::clone() const {
  return std::make_unique<MergeColliderBehavior>(*this);
}

// ---------------------------------------------------------------------------
// PedestrianCrossBehavior

dynamics::Control PedestrianCrossBehavior::decide(const Actor& self, const World& world) {
  if (!walking_ && world.has_ego()) {
    const double offset = longitudinal_offset(world, world.ego(), self);
    walking_ = offset > 0.0 && offset <= p_.trigger_distance;
  }
  dynamics::Control u;
  if (!walking_) {
    u.accel = -3.0;  // stand still
    return u;
  }
  // Turn toward the crossing heading, then walk.
  const double heading_err = geom::angle_diff(p_.walk_heading, self.state.heading);
  u.steer = std::clamp(4.0 * heading_err, -3.0, 3.0);  // yaw rate for pedestrians
  u.accel = 2.0 * (p_.walk_speed - self.state.speed);
  return u;
}

std::unique_ptr<Behavior> PedestrianCrossBehavior::clone() const {
  return std::make_unique<PedestrianCrossBehavior>(*this);
}

}  // namespace iprism::sim
