// Actors in the traffic world: the ego vehicle, other (NPC) vehicles, and
// pedestrians. NPC motion is scripted by Behaviors (sim/behavior.hpp); the
// ego's control comes from a DrivingAgent outside the world.
#pragma once

#include <memory>

#include "dynamics/state.hpp"
#include "dynamics/trajectory.hpp"
#include "geom/obb.hpp"

namespace iprism::sim {

class Behavior;

enum class ActorKind { kEgo, kVehicle, kPedestrian };

/// One entity in the world. Move-only (owns its behavior); World::clone()
/// deep-copies via Behavior::clone().
struct Actor {
  int id = -1;
  ActorKind kind = ActorKind::kVehicle;
  dynamics::Dimensions dims;
  dynamics::VehicleState state;
  /// State one simulator step ago (for yaw-rate estimation by CVTR).
  dynamics::VehicleState prev_state;
  /// nullptr for the ego (driven externally) and for static props.
  std::unique_ptr<Behavior> behavior;
  /// Set when this actor has been in a collision; crashed actors brake to a
  /// stop and become static wreckage.
  bool crashed = false;

  geom::OrientedBox footprint() const {
    return dynamics::footprint(state, dims);
  }
};

}  // namespace iprism::sim
