// The traffic world: a fixed-step, deterministic 2-D simulator that stands
// in for CARLA (substitution documented in DESIGN.md §2). Vehicles follow
// the kinematic bicycle model; pedestrians are holonomic points; collisions
// are exact OBB overlaps. The ego actor is driven externally by a
// DrivingAgent; all other actors are driven by their Behavior scripts.
#pragma once

#include <optional>
#include <vector>

#include "dynamics/bicycle.hpp"
#include "dynamics/state.hpp"
#include "roadmap/map.hpp"
#include "sim/actor.hpp"
#include "sim/behavior.hpp"

namespace iprism::sim {

/// A collision between two actors (ids ordered a < b).
struct CollisionEvent {
  double time = 0.0;
  int actor_a = -1;
  int actor_b = -1;
};

class World {
 public:
  /// dt must be positive (checked); 0.1 s matches the evaluation setup.
  World(roadmap::MapPtr map, double dt = 0.1);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) = default;
  World& operator=(World&&) = default;

  /// Deep copy (behaviors cloned) for counterfactual replay.
  World clone() const;

  /// Adds an actor and returns its id. At most one ego (checked).
  int add_actor(Actor actor);

  /// Convenience: adds the ego vehicle (no behavior; driven externally).
  int add_ego(const dynamics::VehicleState& state,
              const dynamics::Dimensions& dims = {});

  /// Advances one step: behaviors decide, states integrate, collisions
  /// resolve. `ego_control` is applied to the ego if one exists (clamped to
  /// `ego_limits()`); pass std::nullopt to hold the ego's current speed.
  void step(std::optional<dynamics::Control> ego_control);

  double time() const { return time_; }
  double dt() const { return dt_; }
  int step_count() const { return step_count_; }
  const roadmap::DrivableMap& map() const { return *map_; }
  roadmap::MapPtr map_ptr() const { return map_; }

  bool has_ego() const { return ego_index_ >= 0; }
  const Actor& ego() const;
  int ego_id() const;

  const std::vector<Actor>& actors() const { return actors_; }
  const Actor& actor(int id) const;
  bool has_actor(int id) const;

  const std::vector<CollisionEvent>& collisions() const { return collisions_; }
  /// True once the ego has been involved in any collision.
  bool ego_collided() const;
  /// Time of the first ego collision; empty if none.
  std::optional<double> ego_collision_time() const;
  /// True if a collision not involving the ego has occurred.
  bool npc_collision_occurred() const;

  const dynamics::ControlLimits& ego_limits() const { return ego_limits_; }
  void set_ego_limits(const dynamics::ControlLimits& limits) { ego_limits_ = limits; }

  const dynamics::BicycleModel& vehicle_model() const { return vehicle_model_; }

 private:
  void integrate(Actor& actor, const dynamics::Control& u);
  void detect_collisions();

  roadmap::MapPtr map_;
  double dt_;
  double time_ = 0.0;
  int step_count_ = 0;
  std::vector<Actor> actors_;
  int ego_index_ = -1;
  int next_id_ = 0;
  std::vector<CollisionEvent> collisions_;
  dynamics::BicycleModel vehicle_model_{};
  dynamics::ControlLimits npc_limits_{-8.0, 4.0, -0.6, 0.6};
  dynamics::ControlLimits ego_limits_{};
};

}  // namespace iprism::sim
