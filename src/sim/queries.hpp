// Read-only world queries shared by behaviors, agents, and risk metrics:
// lane-relative neighbour lookup (lead / rear actor, gaps, closing speeds).
// All longitudinal quantities are Frenet arclengths on the world's map;
// gaps are bumper-to-bumper (footprints subtracted).
#pragma once

#include <optional>

#include "sim/world.hpp"

namespace iprism::sim {

/// A neighbour relative to a query actor.
struct Neighbor {
  int actor_id = -1;
  /// Bumper-to-bumper longitudinal gap, metres (>= 0 unless overlapping).
  double gap = 0.0;
  /// Closing speed: positive when the gap is shrinking.
  double closing_speed = 0.0;
};

/// Lane index of an actor on the world's map (-1 if off-road).
int lane_of(const World& world, const Actor& actor);

/// Nearest actor ahead of `from` in the given lane within `max_range`
/// metres of longitudinal gap. Skips `from` itself.
std::optional<Neighbor> lead_in_lane(const World& world, const Actor& from, int lane,
                                     double max_range = 120.0);

/// Nearest actor behind `from` in the given lane within `max_range`.
std::optional<Neighbor> rear_in_lane(const World& world, const Actor& from, int lane,
                                     double max_range = 120.0);

/// Longitudinal (arclength) offset of `other` relative to `from`
/// (positive = ahead of `from` in the travel direction).
double longitudinal_offset(const World& world, const Actor& from, const Actor& other);

/// An in-path actor (paper footnote 6): its current lane-projected position
/// lies ahead of `from` with lateral overlap against `from`'s lane corridor.
/// Returns the nearest such actor.
std::optional<Neighbor> closest_in_path(const World& world, const Actor& from,
                                        double max_range = 120.0);

}  // namespace iprism::sim
