#include "sim/queries.hpp"

#include <cmath>

namespace iprism::sim {
namespace {

/// Longitudinal speed of an actor along the lane direction at its position.
double lane_speed(const World& world, const Actor& a) {
  const double lane_heading = world.map().heading_at(world.map().arclength(a.state.position()));
  return a.state.speed * std::cos(geom::angle_diff(a.state.heading, lane_heading));
}

/// Half-length projected on the lane direction (approximate bumper offset).
double half_len(const Actor& a) { return a.dims.length / 2.0; }

}  // namespace

int lane_of(const World& world, const Actor& actor) {
  return world.map().lane_at(actor.state.position());
}

double longitudinal_offset(const World& world, const Actor& from, const Actor& other) {
  const auto& map = world.map();
  double delta = map.arclength(other.state.position()) - map.arclength(from.state.position());
  // On a ring the offset wraps; take the representation in [-L/2, L/2).
  const double length = map.road_length();
  if (delta > length / 2.0) delta -= length;
  if (delta < -length / 2.0) delta += length;
  return delta;
}

namespace {

std::optional<Neighbor> scan_lane(const World& world, const Actor& from, int lane,
                                  double max_range, bool ahead) {
  std::optional<Neighbor> best;
  for (const Actor& other : world.actors()) {
    if (other.id == from.id) continue;
    if (lane_of(world, other) != lane) continue;
    const double offset = longitudinal_offset(world, from, other);
    if (ahead && offset <= 0.0) continue;
    if (!ahead && offset >= 0.0) continue;
    const double gap = std::abs(offset) - half_len(from) - half_len(other);
    if (gap > max_range) continue;
    if (!best || gap < best->gap) {
      Neighbor n;
      n.actor_id = other.id;
      n.gap = gap;
      const double v_from = lane_speed(world, from);
      const double v_other = lane_speed(world, other);
      n.closing_speed = ahead ? (v_from - v_other) : (v_other - v_from);
      best = n;
    }
  }
  return best;
}

}  // namespace

std::optional<Neighbor> lead_in_lane(const World& world, const Actor& from, int lane,
                                     double max_range) {
  return scan_lane(world, from, lane, max_range, /*ahead=*/true);
}

std::optional<Neighbor> rear_in_lane(const World& world, const Actor& from, int lane,
                                     double max_range) {
  return scan_lane(world, from, lane, max_range, /*ahead=*/false);
}

std::optional<Neighbor> closest_in_path(const World& world, const Actor& from,
                                        double max_range) {
  const auto& map = world.map();
  const double from_d = map.lateral(from.state.position());
  const double corridor = from.dims.width / 2.0;
  std::optional<Neighbor> best;
  for (const Actor& other : world.actors()) {
    if (other.id == from.id) continue;
    const double offset = longitudinal_offset(world, from, other);
    if (offset <= 0.0) continue;
    // Lateral overlap of footprints against the ego's straight-ahead corridor.
    const double other_d = map.lateral(other.state.position());
    const double overlap =
        corridor + other.dims.width / 2.0 - std::abs(other_d - from_d);
    if (overlap <= 0.0) continue;
    const double gap = offset - half_len(from) - half_len(other);
    if (gap > max_range) continue;
    if (!best || gap < best->gap) {
      Neighbor n;
      n.actor_id = other.id;
      n.gap = gap;
      n.closing_speed = lane_speed(world, from) - lane_speed(world, other);
      best = n;
    }
  }
  return best;
}

}  // namespace iprism::sim
