// Kinematic bicycle model (paper §III-A, refs [42]-[44]): the forward model
// used both to propagate reach-tube samples and to integrate vehicle motion
// in the simulator. Parameters follow the passenger-car configuration used
// by [46] (wheelbase ~2.7 m, steering |phi| <= 0.5 rad).
#pragma once

#include "dynamics/state.hpp"

namespace iprism::dynamics {

/// Kinematic bicycle:
///   x'     = v cos(theta)
///   y'     = v sin(theta)
///   theta' = v / L * tan(phi)
///   v'     = a            (v clamped at 0 and at v_max)
class BicycleModel {
 public:
  /// wheelbase must be positive; v_max bounds the speed reachable under
  /// sustained acceleration (physical top speed, not a control limit).
  explicit BicycleModel(double wheelbase = 2.7, double max_speed = 40.0);

  double wheelbase() const { return wheelbase_; }
  double max_speed() const { return max_speed_; }

  /// Integrates one step of length dt (midpoint rule on heading so that
  /// constant-steer arcs are followed accurately at simulator step sizes).
  VehicleState step(const VehicleState& s, const Control& u, double dt) const;

 private:
  double wheelbase_;
  double max_speed_;
};

}  // namespace iprism::dynamics
