// Kinematic bicycle model (paper §III-A, refs [42]-[44]): the forward model
// used both to propagate reach-tube samples and to integrate vehicle motion
// in the simulator. Parameters follow the passenger-car configuration used
// by [46] (wheelbase ~2.7 m, steering |phi| <= 0.5 rad).
#pragma once

#include "common/units.hpp"
#include "dynamics/state.hpp"

namespace iprism::dynamics {

/// Kinematic bicycle:
///   x'     = v cos(theta)
///   y'     = v sin(theta)
///   theta' = v / L * tan(phi)
///   v'     = a            (v clamped at 0 and at v_max)
///
/// The public surface is unit-typed (common/units.hpp): wheelbase is a
/// length, max_speed a speed, and step's dt a duration — so a transposed
/// `(wheelbase, max_speed)` pair or a speed handed to the dt parameter is a
/// compile error, not a silently wrong tube.
class BicycleModel {
 public:
  /// wheelbase must be positive; v_max bounds the speed reachable under
  /// sustained acceleration (physical top speed, not a control limit).
  explicit BicycleModel(common::Meters wheelbase = common::Meters{2.7},
                        common::MetersPerSec max_speed = common::MetersPerSec{40.0});

  common::Meters wheelbase() const { return common::Meters{wheelbase_}; }
  common::MetersPerSec max_speed() const { return common::MetersPerSec{max_speed_}; }

  /// Integrates one step of length dt (midpoint rule on heading so that
  /// constant-steer arcs are followed accurately at simulator step sizes).
  VehicleState step(const VehicleState& s, const Control& u, common::Seconds dt) const;

 private:
  double wheelbase_;
  double max_speed_;
};

}  // namespace iprism::dynamics
