// Vehicle state and control types shared by the simulator, the reach-tube
// computation, and the agents. Matches the paper's state definition
// x = [x, y, theta, v] (§III-A).
#pragma once

#include <algorithm>

#include "common/units.hpp"
#include "geom/vec2.hpp"

namespace iprism::dynamics {

/// Kinematic vehicle state: rear-axle reference position, heading, speed.
/// Speed is non-negative (the library models forward driving; braking
/// saturates at standstill).
///
/// Fields are raw doubles — the struct is aggregate-initialized all over the
/// scenario/serialization layer — with the unit fixed in the name and
/// comment; the typed accessors below are the bridge into unit-checked code
/// (common/units.hpp).
struct VehicleState {
  double x = 0.0;        ///< metres, world frame
  double y = 0.0;        ///< metres, world frame
  double heading = 0.0;  ///< radians, CCW from +x
  double speed = 0.0;    ///< metres / second, >= 0

  geom::Vec2 position() const { return {x, y}; }
  geom::Vec2 velocity() const { return geom::heading_vec(heading) * speed; }

  common::Radians heading_angle() const { return common::Radians{heading}; }
  common::MetersPerSec speed_mps() const { return common::MetersPerSec{speed}; }
};

/// Control input u = (a, phi): longitudinal acceleration and front-wheel
/// steering angle (the bicycle model's "turning angle").
struct Control {
  double accel = 0.0;  ///< metres / second^2
  double steer = 0.0;  ///< radians
};

/// Box constraints on the control input, [a_min, a_max] x [phi_min, phi_max].
struct ControlLimits {
  double accel_min = -6.0;
  double accel_max = 3.0;
  double steer_min = -0.5;
  double steer_max = 0.5;

  Control clamp(const Control& u) const {
    return {std::clamp(u.accel, accel_min, accel_max),
            std::clamp(u.steer, steer_min, steer_max)};
  }
};

/// Physical footprint of an actor (vehicle or pedestrian), metres.
struct Dimensions {
  double length = 4.5;
  double width = 2.0;
};

}  // namespace iprism::dynamics
