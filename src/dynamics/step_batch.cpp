// Kernel TU: compiled with -ffp-contract=off (and, under
// IPRISM_ENABLE_SIMD=OFF, with the tree vectorizers disabled) so the lane
// loop evaluates the exact scalar expression sequence of
// BicycleModel::step in bicycle.cpp — same association order, no fused
// multiply-add — and SIMD-on and SIMD-off builds produce identical bits.
// Any edit here must be mirrored in bicycle.cpp (and vice versa); the
// GeomKernelIdentity suite fails on the first diverging bit.
#include "dynamics/step_batch.hpp"

#include <algorithm>
#include <cmath>

#include "geom/vec2.hpp"

namespace iprism::dynamics {

void step_batch(std::size_t n, const StepBatchIn& in, const StepBatchOut& out, double dt,
                double wheelbase, double max_speed) {
  // The trig on heading_mid is a scalar libm call per lane (no vector libm
  // in the portability envelope); everything else is straight-line
  // lane-parallel arithmetic the compiler schedules across lanes. The libm
  // calls stay byte-for-byte the calls step() would make: same function,
  // same input bits.
  for (std::size_t i = 0; i < n; ++i) {
    const double v0 = in.speed[i];
    const double a = in.accel[i];
    const double v1 = std::clamp(v0 + a * dt, 0.0, max_speed);
    double move_dt = dt;
    // NOLINTNEXTLINE(iprism-float-eq) exact: std::clamp pins a full stop to literal 0.0
    if (v1 == 0.0 && v0 > 0.0 && a < 0.0) {
      move_dt = std::min(dt, v0 / -a);
    }
    const double v_mid = 0.5 * (v0 + v1);

    const double yaw_rate = v_mid / wheelbase * in.tan_steer[i];
    const double heading_mid = in.heading[i] + 0.5 * yaw_rate * move_dt;

    out.x[i] = in.x[i] + v_mid * std::cos(heading_mid) * move_dt;
    out.y[i] = in.y[i] + v_mid * std::sin(heading_mid) * move_dt;
    out.heading[i] = geom::wrap_angle(in.heading[i] + yaw_rate * move_dt);
    out.speed[i] = v1;
  }
}

}  // namespace iprism::dynamics
