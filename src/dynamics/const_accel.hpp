// Constant-acceleration trajectory predictor: the classical alternative to
// CVTR (paper §IV-C). Estimates longitudinal acceleration from the two most
// recent observations and holds it (speed clamped at zero), with the yaw
// rate held as in CVTR. Used by the prediction-model ablation
// (bench/ablation_prediction) to quantify how much the choice of predictor
// moves online STI away from its ground-truth value.
#pragma once

#include "dynamics/trajectory.hpp"

namespace iprism::dynamics {

class ConstantAccelPredictor {
 public:
  /// Single-observation form: zero acceleration and yaw rate (degenerates
  /// to straight constant-velocity motion).
  Trajectory predict(const VehicleState& now, common::Seconds now_time,
                     common::Seconds horizon, common::Seconds dt) const;

  /// Two-observation form: accel = (v_now - v_prev) / obs_dt, yaw rate from
  /// the heading difference. obs_dt/horizon/dt must be positive (checked).
  Trajectory predict(const VehicleState& prev, const VehicleState& now,
                     common::Seconds obs_dt, common::Seconds now_time,
                     common::Seconds horizon, common::Seconds dt) const;

 private:
  Trajectory roll(const VehicleState& now, double accel, double yaw_rate,
                  common::Seconds now_time, common::Seconds horizon,
                  common::Seconds dt) const;
};

}  // namespace iprism::dynamics
