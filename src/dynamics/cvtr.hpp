// Constant-Velocity-and-Turn-Rate predictor (paper §IV-C): the trajectory
// prediction model used for other actors during SMC training and inference,
// where ground-truth futures are unavailable.
#pragma once

#include "dynamics/trajectory.hpp"

namespace iprism::dynamics {

/// Predicts a future trajectory by holding speed and yaw rate constant.
/// The yaw rate is estimated from the two most recent observed headings; a
/// single observation predicts straight-line motion.
class CvtrPredictor {
 public:
  /// Predict from a single state (yaw rate assumed 0).
  /// dt/horizon must be positive (checked).
  Trajectory predict(const VehicleState& now, common::Seconds now_time,
                     common::Seconds horizon, common::Seconds dt) const;

  /// Predict with a yaw-rate estimate from the previous state, observed
  /// `obs_dt` seconds before `now`.
  Trajectory predict(const VehicleState& prev, const VehicleState& now,
                     common::Seconds obs_dt, common::Seconds now_time,
                     common::Seconds horizon, common::Seconds dt) const;

 private:
  Trajectory roll(const VehicleState& now, double yaw_rate, common::Seconds now_time,
                  common::Seconds horizon, common::Seconds dt) const;
};

}  // namespace iprism::dynamics
