#include "dynamics/cvtr.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::dynamics {

Trajectory CvtrPredictor::predict(const VehicleState& now, common::Seconds now_time,
                                  common::Seconds horizon, common::Seconds dt) const {
  return roll(now, 0.0, now_time, horizon, dt);
}

Trajectory CvtrPredictor::predict(const VehicleState& prev, const VehicleState& now,
                                  common::Seconds obs_dt, common::Seconds now_time,
                                  common::Seconds horizon, common::Seconds dt) const {
  IPRISM_CHECK(obs_dt.value() > 0.0, "CvtrPredictor: obs_dt must be positive");
  const double yaw_rate = geom::angle_diff(now.heading, prev.heading) / obs_dt.value();
  return roll(now, yaw_rate, now_time, horizon, dt);
}

Trajectory CvtrPredictor::roll(const VehicleState& now, double yaw_rate,
                               common::Seconds now_time, common::Seconds horizon,
                               common::Seconds dt_s) const {
  const double dt = dt_s.value();
  IPRISM_CHECK(dt > 0.0 && horizon.value() > 0.0,
               "CvtrPredictor: dt and horizon must be positive");
  Trajectory traj;
  VehicleState s = now;
  traj.append(now_time, s);
  const int steps = static_cast<int>(std::ceil(horizon / dt_s));
  for (int i = 1; i <= steps; ++i) {
    // Exact integration of constant speed + constant yaw rate.
    const double heading_mid = s.heading + 0.5 * yaw_rate * dt;
    s.x += s.speed * std::cos(heading_mid) * dt;
    s.y += s.speed * std::sin(heading_mid) * dt;
    s.heading = geom::wrap_angle(s.heading + yaw_rate * dt);
    traj.append(now_time + i * dt_s, s);
  }
  return traj;
}

}  // namespace iprism::dynamics
