#include "dynamics/trajectory.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace iprism::dynamics {

void Trajectory::append(common::Seconds t, const VehicleState& s) {
  IPRISM_CHECK(samples_.empty() || t.value() > samples_.back().t,
               "Trajectory: timestamps must be strictly increasing");
  samples_.push_back({t.value(), s});
}

common::Seconds Trajectory::start_time() const {
  IPRISM_CHECK(!samples_.empty(), "Trajectory: empty");
  return common::Seconds{samples_.front().t};
}

common::Seconds Trajectory::end_time() const {
  IPRISM_CHECK(!samples_.empty(), "Trajectory: empty");
  return common::Seconds{samples_.back().t};
}

VehicleState Trajectory::at(common::Seconds ts) const {
  IPRISM_CHECK(!samples_.empty(), "Trajectory: empty");
  const double t = ts.value();
  if (t <= samples_.front().t) return samples_.front().state;
  if (t >= samples_.back().t) return samples_.back().state;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const TimedState& a, double time) { return a.t < time; });
  const TimedState& hi = *it;
  const TimedState& lo = *(it - 1);
  const double u = (t - lo.t) / (hi.t - lo.t);
  VehicleState out;
  out.x = lo.state.x + u * (hi.state.x - lo.state.x);
  out.y = lo.state.y + u * (hi.state.y - lo.state.y);
  out.heading = geom::wrap_angle(lo.state.heading +
                                 u * geom::angle_diff(hi.state.heading, lo.state.heading));
  out.speed = lo.state.speed + u * (hi.state.speed - lo.state.speed);
  return out;
}

geom::OrientedBox Trajectory::footprint_at(common::Seconds t,
                                           const Dimensions& dims) const {
  return footprint(at(t), dims);
}

geom::OrientedBox footprint(const VehicleState& s, const Dimensions& dims) {
  return geom::OrientedBox(s.position(), dims.length / 2.0, dims.width / 2.0, s.heading);
}

void extend_with_constant_velocity(Trajectory& trajectory, common::Seconds seconds,
                                   common::Seconds dt) {
  IPRISM_CHECK(!trajectory.empty(), "extend_with_constant_velocity: empty trajectory");
  IPRISM_CHECK(seconds.value() > 0.0 && dt.value() > 0.0,
               "extend_with_constant_velocity: seconds and dt must be positive");
  const common::Seconds t_end = trajectory.end_time();
  VehicleState s = trajectory.at(t_end);
  const geom::Vec2 vel = s.velocity();
  const int steps = static_cast<int>(std::ceil(seconds / dt));
  for (int i = 1; i <= steps; ++i) {
    s.x += vel.x * dt.value();
    s.y += vel.y * dt.value();
    trajectory.append(t_end + i * dt, s);
  }
}

}  // namespace iprism::dynamics
