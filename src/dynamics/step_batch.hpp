// Structure-of-arrays batch form of BicycleModel::step (DESIGN.md §13).
//
// The reach-tube propagation steps every parent×control pair of a slice;
// doing that one out-of-line step() call at a time leaves the lane-parallel
// arithmetic (clamp, midpoint, displacement) unexposed to the
// autovectorizer and re-derives tan(steer) per call even though the control
// set is fixed per propagation. step_batch takes the lanes as parallel
// arrays — with tan(steer) precomputed once per control — and produces
// results **bit-identical** to calling BicycleModel::step per lane: the
// per-lane arithmetic is the exact expression sequence of bicycle.cpp (same
// association, no FMA contraction — the TU compiles with -ffp-contract=off
// and the identity suite in tests/test_geom_kernel_identity.cpp enforces
// equality at the bit level).
#pragma once

#include <cstddef>

namespace iprism::dynamics {

/// Input lanes: parent state (x/y/heading/speed) plus the control per lane.
/// `tan_steer` carries std::tan(steer) — precomputed by the caller; the same
/// input bits through the same libm give the same tangent bits step() would
/// compute inline.
struct StepBatchIn {
  const double* x;
  const double* y;
  const double* heading;
  const double* speed;
  const double* accel;
  const double* tan_steer;
};

/// Output lanes (may not alias the inputs).
struct StepBatchOut {
  double* x;
  double* y;
  double* heading;
  double* speed;
};

/// Steps `n` lanes through the kinematic bicycle model. Bit-identical per
/// lane to BicycleModel{wheelbase, max_speed}.step(state, control, dt).
void step_batch(std::size_t n, const StepBatchIn& in, const StepBatchOut& out, double dt,
                double wheelbase, double max_speed);

}  // namespace iprism::dynamics
