#include "dynamics/bicycle.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iprism::dynamics {

BicycleModel::BicycleModel(common::Meters wheelbase, common::MetersPerSec max_speed)
    : wheelbase_(wheelbase.value()), max_speed_(max_speed.value()) {
  IPRISM_CHECK(wheelbase_ > 0.0, "BicycleModel: wheelbase must be positive");
  IPRISM_CHECK(max_speed_ > 0.0, "BicycleModel: max_speed must be positive");
}

VehicleState BicycleModel::step(const VehicleState& s, const Control& u,
                                common::Seconds dt_s) const {
  const double dt = dt_s.value();
  // Speed first: if braking reaches standstill inside the step, split the
  // step at the stop time so the vehicle does not reverse.
  double v0 = s.speed;
  double v1 = std::clamp(v0 + u.accel * dt, 0.0, max_speed_);
  double move_dt = dt;
  // NOLINTNEXTLINE(iprism-float-eq) exact: std::clamp pins a full stop to literal 0.0
  if (v1 == 0.0 && v0 > 0.0 && u.accel < 0.0) {
    move_dt = std::min(dt, v0 / -u.accel);
  }
  const double v_mid = 0.5 * (v0 + v1);

  const double yaw_rate = v_mid / wheelbase_ * std::tan(u.steer);
  const double heading_mid = s.heading + 0.5 * yaw_rate * move_dt;

  VehicleState out;
  out.x = s.x + v_mid * std::cos(heading_mid) * move_dt;
  out.y = s.y + v_mid * std::sin(heading_mid) * move_dt;
  out.heading = geom::wrap_angle(s.heading + yaw_rate * move_dt);
  out.speed = v1;
  return out;
}

}  // namespace iprism::dynamics
