#include "dynamics/const_accel.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iprism::dynamics {

Trajectory ConstantAccelPredictor::predict(const VehicleState& now,
                                           common::Seconds now_time,
                                           common::Seconds horizon,
                                           common::Seconds dt) const {
  return roll(now, 0.0, 0.0, now_time, horizon, dt);
}

Trajectory ConstantAccelPredictor::predict(const VehicleState& prev,
                                           const VehicleState& now,
                                           common::Seconds obs_dt,
                                           common::Seconds now_time,
                                           common::Seconds horizon,
                                           common::Seconds dt) const {
  IPRISM_CHECK(obs_dt.value() > 0.0, "ConstantAccelPredictor: obs_dt must be positive");
  const double accel = (now.speed - prev.speed) / obs_dt.value();
  const double yaw_rate = geom::angle_diff(now.heading, prev.heading) / obs_dt.value();
  return roll(now, accel, yaw_rate, now_time, horizon, dt);
}

Trajectory ConstantAccelPredictor::roll(const VehicleState& now, double accel,
                                        double yaw_rate, common::Seconds now_time,
                                        common::Seconds horizon,
                                        common::Seconds dt_s) const {
  const double dt = dt_s.value();
  IPRISM_CHECK(dt > 0.0 && horizon.value() > 0.0,
               "ConstantAccelPredictor: dt and horizon must be positive");
  Trajectory traj;
  VehicleState s = now;
  traj.append(now_time, s);
  const int steps = static_cast<int>(std::ceil(horizon / dt_s));
  for (int i = 1; i <= steps; ++i) {
    const double v0 = s.speed;
    const double v1 = std::max(v0 + accel * dt, 0.0);
    const double v_mid = 0.5 * (v0 + v1);
    const double heading_mid = s.heading + 0.5 * yaw_rate * dt;
    s.x += v_mid * std::cos(heading_mid) * dt;
    s.y += v_mid * std::sin(heading_mid) * dt;
    s.heading = geom::wrap_angle(s.heading + yaw_rate * dt);
    s.speed = v1;
    traj.append(now_time + i * dt_s, s);
  }
  return traj;
}

}  // namespace iprism::dynamics
