// Time-stamped trajectories: an actor's realized or predicted motion
// X_{t:t+k} (paper §II). Supports interpolation at arbitrary times and
// footprint extraction, which the reach-tube computation consumes as
// per-time-slice obstacles.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "dynamics/state.hpp"
#include "geom/obb.hpp"

namespace iprism::dynamics {

/// One trajectory sample. The timestamp stays a raw double (the struct is a
/// serialization record — PKL logs, CSV dumps); the Trajectory API around it
/// speaks common::Seconds.
struct TimedState {
  double t = 0.0;  ///< seconds, scenario clock
  VehicleState state;
};

/// A time-ordered sequence of states (strictly increasing timestamps,
/// checked on append). Queries before the first sample return the first
/// state; queries after the last sample hold the last state (actors are
/// assumed stationary in their final pose beyond the recorded horizon).
class Trajectory {
 public:
  Trajectory() = default;

  void append(common::Seconds t, const VehicleState& s);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<TimedState>& samples() const { return samples_; }
  common::Seconds start_time() const;
  common::Seconds end_time() const;

  /// Linear interpolation in position/speed, shortest-arc in heading;
  /// clamped at both ends. Requires a non-empty trajectory (checked).
  VehicleState at(common::Seconds t) const;

  /// Oriented footprint of an actor with the given dimensions at time t,
  /// with the state position as the box centre.
  geom::OrientedBox footprint_at(common::Seconds t, const Dimensions& dims) const;

 private:
  std::vector<TimedState> samples_;
};

/// Footprint of a state (box centred on the state's position).
geom::OrientedBox footprint(const VehicleState& s, const Dimensions& dims);

/// Appends a constant-velocity continuation of `seconds` seconds (sampled
/// every `dt`) after the trajectory's last sample. Used when a *recorded*
/// trajectory must serve as a future forecast beyond the recording's end —
/// without it, a moving actor would appear to freeze at the final sample
/// (a pure truncation artifact). Requires a non-empty trajectory and
/// positive seconds/dt (checked).
void extend_with_constant_velocity(Trajectory& trajectory, common::Seconds seconds,
                                   common::Seconds dt);

}  // namespace iprism::dynamics
