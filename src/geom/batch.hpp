// Structure-of-arrays batch kernels for footprint geometry (DESIGN.md §13).
//
// The reach-tube inner loop needs, per candidate state: the footprint's
// local axes (cos/sin of the heading), its four corners, the corner AABB
// (consumed by the drivable-area band test), and a circumradius distance
// cull against each active obstacle. These kernels compute those quantities
// for whole lanes at a time, **bit-identically** to the scalar path
// (dynamics::footprint → OrientedBox::corners()/aabb() and the broad-phase
// predicate in ReachTubeComputer::state_ok): every expression replicates
// the scalar association order exactly, and the TU compiles with
// -ffp-contract=off so no fused multiply-add can re-round an intermediate.
// The narrow-phase SAT test deliberately stays scalar
// (OrientedBox::intersects) — it runs only on broad-phase survivors, a few
// per thousand lanes, where batching would cost more than it saves.
#pragma once

#include <cstddef>

namespace iprism::geom {

/// Footprint local axes per lane: ax = cos(heading), ay = sin(heading) —
/// the exact bits heading_vec() (and therefore the OrientedBox constructor)
/// produces for the same heading.
void footprint_axes(std::size_t n, const double* heading, double* ax, double* ay);

/// Corner SoA per lane, CCW from (+x, +y) in the local frame — bit-identical
/// to OrientedBox(center, hl, hw, heading).corners(). `cx/cy` are the box
/// centres, `ax/ay` the axes from footprint_axes, `hl/hw` the shared half
/// extents. `corner_x[k]` / `corner_y[k]` (k in [0, 4)) each point at `n`
/// doubles.
void footprint_corners(std::size_t n, const double* cx, const double* cy, const double* ax,
                       const double* ay, double hl, double hw, double* const corner_x[4],
                       double* const corner_y[4]);

/// Corner AABB per lane — bit-identical to OrientedBox::aabb() (corners
/// folded through Aabb::expand in corner order). Corners are formed in
/// registers with the exact footprint_corners expressions; nothing is
/// stored but the bounds.
void footprint_aabbs(std::size_t n, const double* cx, const double* cy, const double* ax,
                     const double* ay, double hl, double hw, double* lo_x, double* lo_y,
                     double* hi_x, double* hi_y);

/// Broad-phase circumradius cull of one obstacle against all lanes:
/// mask[i] = 1 iff the lane needs the narrow-phase SAT test, i.e. iff
/// !((ox - cx[i])² + (oy - cy[i])² > r²) — the exact complement of the
/// state_ok broad-phase `continue`. Returns the number of surviving lanes
/// so callers can skip the narrow phase wholesale when it is zero.
std::size_t broad_phase_cull(std::size_t n, const double* cx, const double* cy, double ox,
                             double oy, double r_sq, unsigned char* mask);

}  // namespace iprism::geom
