#include "geom/obb.hpp"

#include <cmath>

#include "common/check.hpp"

namespace iprism::geom {

OrientedBox::OrientedBox(const Vec2& center, double half_length, double half_width,
                         double heading)
    : center_(center),
      half_length_(half_length),
      half_width_(half_width),
      heading_(heading),
      axis_(heading_vec(heading)) {
  IPRISM_CHECK(half_length >= 0.0 && half_width >= 0.0,
               "OrientedBox: extents must be non-negative");
}

OrientedBox OrientedBox::with_axis(const Vec2& center, double half_length,
                                   double half_width, double heading, const Vec2& axis) {
  IPRISM_DCHECK(axis == heading_vec(heading),
                "OrientedBox::with_axis: axis must be heading_vec(heading) bit-exactly");
  OrientedBox box;
  box.center_ = center;
  box.half_length_ = half_length;
  box.half_width_ = half_width;
  box.heading_ = heading;
  box.axis_ = axis;
  return box;
}

std::array<Vec2, 4> OrientedBox::corners() const {
  const Vec2 fwd = axis_long() * half_length_;
  const Vec2 left = axis_lat() * half_width_;
  return {center_ + fwd + left, center_ - fwd + left, center_ - fwd - left,
          center_ + fwd - left};
}

double OrientedBox::circumradius() const { return std::hypot(half_length_, half_width_); }

Aabb OrientedBox::aabb() const {
  Aabb box;
  for (const auto& c : corners()) box.expand(c);
  return box;
}

bool OrientedBox::contains(const Vec2& p) const {
  const Vec2 d = p - center_;
  return std::abs(d.dot(axis_long())) <= half_length_ &&
         std::abs(d.dot(axis_lat())) <= half_width_;
}

bool OrientedBox::intersects(const OrientedBox& other) const {
  const Vec2 d = other.center_ - center_;
  // Broad phase: circumscribed circles.
  const double r = circumradius() + other.circumradius();
  if (d.norm_sq() > r * r) return false;

  const std::array<Vec2, 4> axes = {axis_long(), axis_lat(), other.axis_long(),
                                    other.axis_lat()};
  auto projected_radius = [](const OrientedBox& b, const Vec2& axis) {
    return b.half_length_ * std::abs(b.axis_long().dot(axis)) +
           b.half_width_ * std::abs(b.axis_lat().dot(axis));
  };
  for (const auto& axis : axes) {
    const double sep = std::abs(d.dot(axis));
    if (sep > projected_radius(*this, axis) + projected_radius(other, axis)) return false;
  }
  return true;
}

double OrientedBox::distance_to(const Vec2& p) const {
  const Vec2 d = p - center_;
  const double lx = std::abs(d.dot(axis_long())) - half_length_;
  const double ly = std::abs(d.dot(axis_lat())) - half_width_;
  const double cx = std::max(lx, 0.0);
  const double cy = std::max(ly, 0.0);
  return std::hypot(cx, cy);
}

}  // namespace iprism::geom
