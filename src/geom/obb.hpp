// Oriented bounding box and the exact separating-axis intersection test.
// Vehicle footprints (and reach-tube collision probes) are oriented
// rectangles; OBB–OBB overlap is the simulator's ground-truth collision
// predicate.
#pragma once

#include <array>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"

namespace iprism::geom {

/// Oriented rectangle: centre, half extents along its local axes, heading of
/// the local +x axis in the world frame.
class OrientedBox {
 public:
  OrientedBox() = default;
  /// half_length/half_width must be non-negative (checked).
  OrientedBox(const Vec2& center, double half_length, double half_width, double heading);

  /// Constructs with a caller-supplied unit axis, skipping the constructor's
  /// cos/sin. `axis` must be heading_vec(heading) to the bit (DCHECKed) —
  /// the batched geometry kernels (geom/batch.hpp) compute the axes once per
  /// lane and rebuild boxes for the scalar narrow phase without re-deriving
  /// them, so the box is indistinguishable from one built the normal way.
  static OrientedBox with_axis(const Vec2& center, double half_length, double half_width,
                               double heading, const Vec2& axis);

  const Vec2& center() const { return center_; }
  double half_length() const { return half_length_; }
  double half_width() const { return half_width_; }
  double heading() const { return heading_; }

  /// Corners in CCW order starting at (+x, +y) in the local frame.
  std::array<Vec2, 4> corners() const;

  /// Local axes (unit forward, unit left); cached at construction.
  Vec2 axis_long() const { return axis_; }
  Vec2 axis_lat() const { return axis_.perp(); }

  /// Radius of the circumscribed circle — cheap broad-phase bound.
  double circumradius() const;

  Aabb aabb() const;

  bool contains(const Vec2& p) const;

  /// Exact overlap test via the separating-axis theorem (4 candidate axes).
  /// Touching boxes count as intersecting.
  bool intersects(const OrientedBox& other) const;

  /// Minimum distance from `p` to this box (0 if inside).
  double distance_to(const Vec2& p) const;

 private:
  Vec2 center_{};
  double half_length_ = 0.0;
  double half_width_ = 0.0;
  double heading_ = 0.0;
  Vec2 axis_{1.0, 0.0};  // unit vector along heading, cached
};

}  // namespace iprism::geom
