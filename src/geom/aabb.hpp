// Axis-aligned bounding box, used as the broad phase for oriented-box
// collision queries in the simulator and reach-tube computation.
#pragma once

#include <algorithm>

#include "geom/vec2.hpp"

namespace iprism::geom {

/// Axis-aligned box [lo, hi]. Default-constructed box is "empty"
/// (lo > hi) and absorbs points via expand().
struct Aabb {
  Vec2 lo{1.0, 1.0};
  Vec2 hi{-1.0, -1.0};

  bool empty() const { return lo.x > hi.x || lo.y > hi.y; }

  void expand(const Vec2& p) {
    if (empty()) {
      lo = hi = p;
      return;
    }
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  bool contains(const Vec2& p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool intersects(const Aabb& o) const {
    if (empty() || o.empty()) return false;
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y && hi.y >= o.lo.y;
  }

  /// Box grown by `m` on all sides.
  Aabb inflated(double m) const { return {{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}}; }
};

}  // namespace iprism::geom
