#include "geom/polyline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace iprism::geom {

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  IPRISM_CHECK(points_.size() >= 2, "Polyline: needs at least two points");
  cumulative_.reserve(points_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double d = distance(points_[i - 1], points_[i]);
    IPRISM_CHECK(d > 0.0, "Polyline: consecutive points must be distinct");
    cumulative_.push_back(cumulative_.back() + d);
  }
}

std::pair<std::size_t, double> Polyline::locate(double s) const {
  s = std::clamp(s, 0.0, length());
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  std::size_t i = it == cumulative_.begin()
                      ? 0
                      : static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  i = std::min(i, points_.size() - 2);
  const double seg_len = cumulative_[i + 1] - cumulative_[i];
  const double t = (s - cumulative_[i]) / seg_len;
  return {i, t};
}

Vec2 Polyline::point_at(double s) const {
  const auto [i, t] = locate(s);
  return lerp(points_[i], points_[i + 1], t);
}

double Polyline::heading_at(double s) const {
  const auto [i, t] = locate(s);
  (void)t;
  const Vec2 d = points_[i + 1] - points_[i];
  return std::atan2(d.y, d.x);
}

double Polyline::project(const Vec2& p) const {
  double best_s = 0.0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Vec2 a = points_[i];
    const Vec2 b = points_[i + 1];
    const Vec2 ab = b - a;
    const double t = std::clamp((p - a).dot(ab) / ab.norm_sq(), 0.0, 1.0);
    const Vec2 q = a + ab * t;
    const double d2 = (p - q).norm_sq();
    if (d2 < best_d2) {
      best_d2 = d2;
      best_s = cumulative_[i] + t * ab.norm();
    }
  }
  return best_s;
}

double Polyline::lateral_offset(const Vec2& p) const {
  const double s = project(p);
  const Vec2 on = point_at(s);
  const Vec2 tangent = heading_vec(heading_at(s));
  return tangent.cross(p - on);
}

}  // namespace iprism::geom
