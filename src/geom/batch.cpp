// Kernel TU: compiled with -ffp-contract=off (and, under
// IPRISM_ENABLE_SIMD=OFF, with the tree vectorizers disabled). Every loop
// body replicates the scalar expression sequence — OrientedBox::corners(),
// Aabb::expand in corner order, the state_ok broad-phase predicate — with
// the same association, so SIMD-on, SIMD-off, and the scalar path agree to
// the bit (enforced by tests/test_geom_kernel_identity.cpp). Any edit here
// must be mirrored against obb.cpp / aabb.hpp.
#include "geom/batch.hpp"

#include <algorithm>
#include <cmath>

namespace iprism::geom {

void footprint_axes(std::size_t n, const double* heading, double* ax, double* ay) {
  for (std::size_t i = 0; i < n; ++i) {
    ax[i] = std::cos(heading[i]);
    ay[i] = std::sin(heading[i]);
  }
}

void footprint_corners(std::size_t n, const double* cx, const double* cy, const double* ax,
                       const double* ay, double hl, double hw, double* const corner_x[4],
                       double* const corner_y[4]) {
  for (std::size_t i = 0; i < n; ++i) {
    // fwd = axis_long * hl; left = axis_lat * hw, axis_lat = perp = (-ay, ax).
    const double fx = ax[i] * hl;
    const double fy = ay[i] * hl;
    const double lx = -ay[i] * hw;
    const double ly = ax[i] * hw;
    // corners() order: c+f+l, c-f+l, c-f-l, c+f-l (Vec2 ops left-associate).
    corner_x[0][i] = (cx[i] + fx) + lx;
    corner_y[0][i] = (cy[i] + fy) + ly;
    corner_x[1][i] = (cx[i] - fx) + lx;
    corner_y[1][i] = (cy[i] - fy) + ly;
    corner_x[2][i] = (cx[i] - fx) - lx;
    corner_y[2][i] = (cy[i] - fy) - ly;
    corner_x[3][i] = (cx[i] + fx) - lx;
    corner_y[3][i] = (cy[i] + fy) - ly;
  }
}

void footprint_aabbs(std::size_t n, const double* cx, const double* cy, const double* ax,
                     const double* ay, double hl, double hw, double* lo_x, double* lo_y,
                     double* hi_x, double* hi_y) {
  for (std::size_t i = 0; i < n; ++i) {
    const double fx = ax[i] * hl;
    const double fy = ay[i] * hl;
    const double lx = -ay[i] * hw;
    const double ly = ax[i] * hw;
    const double c0x = (cx[i] + fx) + lx;
    const double c0y = (cy[i] + fy) + ly;
    const double c1x = (cx[i] - fx) + lx;
    const double c1y = (cy[i] - fy) + ly;
    const double c2x = (cx[i] - fx) - lx;
    const double c2y = (cy[i] - fy) - ly;
    const double c3x = (cx[i] + fx) - lx;
    const double c3y = (cy[i] + fy) - ly;
    // Aabb::expand fold in corner order: lo = hi = c0, then min/max with
    // c1, c2, c3 sequentially (left fold — ties, incl. signed zeros,
    // resolve exactly as the scalar path does).
    lo_x[i] = std::min(std::min(std::min(c0x, c1x), c2x), c3x);
    lo_y[i] = std::min(std::min(std::min(c0y, c1y), c2y), c3y);
    hi_x[i] = std::max(std::max(std::max(c0x, c1x), c2x), c3x);
    hi_y[i] = std::max(std::max(std::max(c0y, c1y), c2y), c3y);
  }
}

std::size_t broad_phase_cull(std::size_t n, const double* cx, const double* cy, double ox,
                             double oy, double r_sq, unsigned char* mask) {
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = ox - cx[i];
    const double dy = oy - cy[i];
    // state_ok skips the SAT test when norm_sq > r² — the mask is the exact
    // complement (NaN distances fall through to the narrow phase there too).
    const unsigned char hit = (dx * dx + dy * dy > r_sq) ? 0 : 1;
    mask[i] = hit;
    survivors += hit;
  }
  return survivors;
}

}  // namespace iprism::geom
