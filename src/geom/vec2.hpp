// 2-D vector and angle arithmetic. All simulator and reachability geometry
// lives in a planar world frame (metres, radians, x east / y north).
#pragma once

#include <cmath>

namespace iprism::geom {

/// Plain 2-D vector. A value type with no invariant (Core Guidelines C.2),
/// hence a struct with public members.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  // NOLINTNEXTLINE(iprism-float-eq) exact: value identity for grid keys and tests, not tolerance
  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; positive when `o` is CCW of this.
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector; returns (0, 0) for the zero vector rather than dividing
  /// by zero — callers treat a zero direction as "no preferred direction".
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  Vec2 rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {x * c - y * s, x * s + y * c};
  }

  /// Perpendicular (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

inline Vec2 lerp(const Vec2& a, const Vec2& b, double t) { return a + (b - a) * t; }

/// Unit vector with the given heading.
inline Vec2 heading_vec(double heading) { return {std::cos(heading), std::sin(heading)}; }

/// Wraps an angle to (-pi, pi].
inline double wrap_angle(double a) {
  a = std::fmod(a + M_PI, 2.0 * M_PI);
  if (a < 0.0) a += 2.0 * M_PI;
  return a - M_PI;
}

/// Signed smallest rotation from `from` to `to`, in (-pi, pi].
inline double angle_diff(double to, double from) { return wrap_angle(to - from); }

}  // namespace iprism::geom
