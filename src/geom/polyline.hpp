// Arclength-parameterised polyline: lane centrelines, recorded paths, and
// pedestrian routes are all polylines with projection / sampling queries.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace iprism::geom {

/// A piecewise-linear curve with at least two points (checked); provides
/// arclength sampling and closest-point projection.
class Polyline {
 public:
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  double length() const { return cumulative_.back(); }

  /// Point at arclength s, clamped to [0, length].
  Vec2 point_at(double s) const;

  /// Tangent heading (radians) at arclength s.
  double heading_at(double s) const;

  /// Projection of p: arclength of the closest point on the polyline.
  double project(const Vec2& p) const;

  /// Signed lateral offset of p (positive = left of travel direction).
  double lateral_offset(const Vec2& p) const;

 private:
  /// Segment index and interpolation parameter for arclength s.
  std::pair<std::size_t, double> locate(double s) const;

  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = arclength at points_[i]
};

}  // namespace iprism::geom
