// Scenario suite (de)serialization. The paper publishes its 4810 generated
// scenarios as a benchmark for future safety research; this is the
// equivalent facility — suites round-trip through a plain CSV so they can
// be shipped, diffed, and re-run elsewhere.
//
// Format: header `typology,instance,<param>=value,...` — one row per
// scenario, hyperparameters as name=value pairs (order-independent).
#pragma once

#include <iosfwd>
#include <vector>

#include "scenario/spec.hpp"

namespace iprism::scenario {

/// Writes one spec per line.
void write_suite(std::ostream& os, const std::vector<ScenarioSpec>& specs);

/// Parses a suite written by write_suite. Throws std::invalid_argument on
/// malformed rows or unknown typology names.
std::vector<ScenarioSpec> read_suite(std::istream& is);

/// Typology from its table name (inverse of typology_name; checked).
Typology typology_from_name(std::string_view name);

}  // namespace iprism::scenario
