// Builds simulation worlds from scenario specs and samples spec suites with
// uniformly-drawn hyperparameters (paper §IV-B1: "We varied the
// hyperparameters uniformly for each typology").
#pragma once

#include "common/rng.hpp"
#include "roadmap/map.hpp"
#include "scenario/spec.hpp"
#include "sim/world.hpp"

namespace iprism::scenario {

/// World-building configuration shared by all typologies.
struct ScenarioConfig {
  int lanes = 3;
  double lane_width = 3.5;
  double road_length = 600.0;
  double dt = 0.1;
  int ego_lane = 1;
  double ego_start_s = 40.0;
  double ego_speed = 8.0;  ///< the LBC agent's cruise speed
  double episode_seconds = 30.0;
};

class ScenarioFactory {
 public:
  explicit ScenarioFactory(const ScenarioConfig& config = {});

  const ScenarioConfig& config() const { return config_; }

  /// Draws one spec with uniform hyperparameters (ranges in factory.cpp).
  ScenarioSpec sample(Typology typology, std::uint64_t instance, common::Rng& rng) const;

  /// Deterministically constructs the world for a spec. Ego is added but
  /// undriven — attach a DrivingAgent via the eval runner.
  sim::World build(const ScenarioSpec& spec) const;

  /// Builds the roundabout variant of a ghost cut-in spec (§V-C extension):
  /// same threat script on a RingRoad map.
  sim::World build_roundabout(const ScenarioSpec& spec) const;

  /// Front-accident validity (paper: 810 of 1000 draws were valid): true if
  /// the two threat actors collide with each other — with the ego simply
  /// cruising — within the episode. Always true for other typologies.
  bool valid(const ScenarioSpec& spec) const;

 private:
  sim::World make_world(roadmap::MapPtr map) const;

  ScenarioConfig config_;
};

}  // namespace iprism::scenario
