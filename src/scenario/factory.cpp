#include "scenario/factory.hpp"

#include <cmath>

#include "common/check.hpp"
#include "roadmap/ring_road.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

namespace iprism::scenario {

std::string_view typology_name(Typology t) {
  switch (t) {
    case Typology::kGhostCutIn: return "Ghost Cut-in";
    case Typology::kLeadCutIn: return "Lead Cut-in";
    case Typology::kLeadSlowdown: return "Lead Slowdown";
    case Typology::kFrontAccident: return "Front Accident";
    case Typology::kRearEnd: return "Rear-end";
  }
  return "unknown";
}

double ScenarioSpec::param(const std::string& key) const {
  const auto it = hyperparams.find(key);
  IPRISM_CHECK(it != hyperparams.end(), "ScenarioSpec: missing hyperparameter " + key);
  return it->second;
}

ScenarioFactory::ScenarioFactory(const ScenarioConfig& config) : config_(config) {
  IPRISM_CHECK(config.lanes >= 2, "ScenarioConfig: typologies need at least two lanes");
  IPRISM_CHECK(config.ego_lane >= 0 && config.ego_lane < config.lanes,
               "ScenarioConfig: ego_lane out of range");
}

// ---------------------------------------------------------------------------
// Hyperparameter sampling. Names follow Table I; ranges are chosen so that
// the spread of criticality reproduces the paper's baseline accident-rate
// profile (LBC worst on rear-end and ghost cut-in, clean on front accident).

ScenarioSpec ScenarioFactory::sample(Typology typology, std::uint64_t instance,
                                     common::Rng& rng) const {
  ScenarioSpec spec;
  spec.typology = typology;
  spec.instance = instance;
  auto& p = spec.hyperparams;
  switch (typology) {
    case Typology::kGhostCutIn:
      p["distance_same_lane"] = rng.uniform(8.0, 30.0);     // start gap behind ego
      p["distance_lane_change"] = rng.uniform(0.5, 6.0);    // lead when the cut starts
      p["speed_lane_change"] = rng.uniform(1.5, 4.0);       // lateral cut speed
      p["approach_speed"] = rng.uniform(10.5, 14.0);        // pre-cut cruise
      p["post_speed"] = rng.uniform(3.0, 6.5);              // speed held while cutting
      break;
    case Typology::kLeadCutIn:
      p["event_trigger_distance"] = rng.uniform(8.0, 30.0);  // ego gap that triggers cut
      p["distance_lane_change"] = rng.uniform(25.0, 60.0);   // start gap ahead of ego
      p["speed_lane_change"] = rng.uniform(1.2, 3.5);
      p["npc_speed"] = rng.uniform(2.5, 5.5);                // slower than the ego
      break;
    case Typology::kLeadSlowdown:
      p["npc_vehicle_location"] = rng.uniform(12.0, 55.0);   // start gap ahead of ego
      p["npc_vehicle_speed"] = rng.uniform(4.0, 8.0);
      p["event_trigger_distance"] = rng.uniform(4.0, 28.0);  // ego gap that triggers braking
      p["decel"] = rng.uniform(4.0, 9.0);
      break;
    case Typology::kFrontAccident:
      p["distance_same_lane"] = rng.uniform(55.0, 90.0);     // partner ahead in ego lane
      p["distance_lane_change"] = rng.uniform(8.0, 35.0);    // merger behind its partner
      p["event_trigger_distance"] = rng.uniform(2.0, 8.0);   // offset at which it merges
      p["merger_speed"] = rng.uniform(7.0, 12.0);            // partner holds 7.5 m/s
      break;
    case Typology::kRearEnd:
      p["npc_vehicle_1_speed"] = rng.uniform(8.3, 15.0);     // rear chaser
      p["npc_vehicle_2_speed"] = rng.uniform(8.2, 9.2);      // lead blocker
      p["npc_vehicle_1_location"] = rng.uniform(35.0, 100.0); // chaser start gap behind
      break;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// World building.

sim::World ScenarioFactory::make_world(roadmap::MapPtr map) const {
  sim::World world(std::move(map), config_.dt);
  return world;
}

namespace {

dynamics::VehicleState lane_state(const roadmap::DrivableMap& map, int lane, double s,
                                  double speed) {
  dynamics::VehicleState st;
  const geom::Vec2 pos = map.point_at(s, map.lane_center_offset(lane));
  st.x = pos.x;
  st.y = pos.y;
  st.heading = map.heading_at(s);
  st.speed = speed;
  return st;
}

sim::Actor npc(const roadmap::DrivableMap& map, int lane, double s, double speed,
               std::unique_ptr<sim::Behavior> behavior) {
  sim::Actor a;
  a.kind = sim::ActorKind::kVehicle;
  a.state = lane_state(map, lane, s, speed);
  a.behavior = std::move(behavior);
  return a;
}

}  // namespace

sim::World ScenarioFactory::build(const ScenarioSpec& spec) const {
  auto map = std::make_shared<roadmap::StraightRoad>(config_.lanes, config_.lane_width,
                                                     config_.road_length);
  sim::World world = make_world(map);
  const double ego_s = config_.ego_start_s;
  world.add_ego(lane_state(*map, config_.ego_lane, ego_s, config_.ego_speed));

  // The threat approaches from the right lane on even instances, the left
  // lane on odd ones (when the ego lane has both neighbours).
  const int side_lane = (spec.instance % 2 == 0 && config_.ego_lane > 0)
                            ? config_.ego_lane - 1
                            : std::min(config_.ego_lane + 1, config_.lanes - 1);

  switch (spec.typology) {
    case Typology::kGhostCutIn: {
      sim::CutInBehavior::Params b;
      b.start_lane = side_lane;
      b.target_lane = config_.ego_lane;
      b.mode = sim::CutInBehavior::TriggerMode::kSelfAheadOfEgo;
      b.trigger_offset = spec.param("distance_lane_change");
      b.cruise_speed = spec.param("approach_speed");
      b.post_speed = spec.param("post_speed");
      b.lateral_speed = spec.param("speed_lane_change");
      world.add_actor(npc(*map, side_lane, ego_s - spec.param("distance_same_lane"),
                          b.cruise_speed, std::make_unique<sim::CutInBehavior>(b)));
      break;
    }
    case Typology::kLeadCutIn: {
      sim::CutInBehavior::Params b;
      b.start_lane = side_lane;
      b.target_lane = config_.ego_lane;
      b.mode = sim::CutInBehavior::TriggerMode::kEgoWithinDistance;
      b.trigger_offset = spec.param("event_trigger_distance");
      b.cruise_speed = spec.param("npc_speed");
      b.post_speed = spec.param("npc_speed");
      b.lateral_speed = spec.param("speed_lane_change");
      world.add_actor(npc(*map, side_lane, ego_s + spec.param("distance_lane_change"),
                          b.cruise_speed, std::make_unique<sim::CutInBehavior>(b)));
      break;
    }
    case Typology::kLeadSlowdown: {
      sim::SlowdownBehavior::Params b;
      b.lane = config_.ego_lane;
      b.cruise_speed = spec.param("npc_vehicle_speed");
      b.trigger_distance = spec.param("event_trigger_distance");
      b.decel = spec.param("decel");
      world.add_actor(npc(*map, config_.ego_lane,
                          ego_s + spec.param("npc_vehicle_location"), b.cruise_speed,
                          std::make_unique<sim::SlowdownBehavior>(b)));
      break;
    }
    case Typology::kFrontAccident: {
      // Partner cruises in the ego lane; the merger comes up in the side
      // lane and merges into it, wrecking both ahead of the ego.
      const double partner_s = ego_s + spec.param("distance_same_lane");
      sim::LaneFollowBehavior::Params lf;
      lf.lane = config_.ego_lane;
      lf.target_speed = 7.5;
      const int partner_id =
          world.add_actor(npc(*map, config_.ego_lane, partner_s, lf.target_speed,
                              std::make_unique<sim::LaneFollowBehavior>(lf)));
      sim::MergeColliderBehavior::Params mb;
      mb.start_lane = side_lane;
      mb.target_lane = config_.ego_lane;
      mb.partner_id = partner_id;
      mb.trigger_offset = spec.param("event_trigger_distance");
      mb.speed = spec.param("merger_speed");
      world.add_actor(npc(*map, side_lane,
                          partner_s - spec.param("distance_lane_change"), mb.speed,
                          std::make_unique<sim::MergeColliderBehavior>(mb)));
      break;
    }
    case Typology::kRearEnd: {
      sim::RearChaseBehavior::Params cb;
      cb.speed = spec.param("npc_vehicle_1_speed");
      world.add_actor(npc(*map, config_.ego_lane,
                          ego_s - spec.param("npc_vehicle_1_location"), cb.speed,
                          std::make_unique<sim::RearChaseBehavior>(cb)));
      // The lead blocker sits beyond the ego's reach-tube horizon and the
      // CIPA threshold, pacing traffic: it does not register as a forward
      // risk, but it caps how long an acceleration escape can be sustained
      // (the §V-C rear-end mitigation constraint).
      sim::LaneFollowBehavior::Params lf;
      lf.lane = config_.ego_lane;
      lf.target_speed = spec.param("npc_vehicle_2_speed");
      world.add_actor(npc(*map, config_.ego_lane, ego_s + 75.0, lf.target_speed,
                          std::make_unique<sim::LaneFollowBehavior>(lf)));
      break;
    }
  }
  return world;
}

sim::World ScenarioFactory::build_roundabout(const ScenarioSpec& spec) const {
  IPRISM_CHECK(spec.typology == Typology::kGhostCutIn,
               "build_roundabout: only the ghost cut-in variant is defined");
  auto map = std::make_shared<roadmap::RingRoad>(2, config_.lane_width, 30.0);
  sim::World world = make_world(map);
  const double ego_s = 10.0;
  world.add_ego(lane_state(*map, 0, ego_s, config_.ego_speed));

  sim::CutInBehavior::Params b;
  b.start_lane = 1;
  b.target_lane = 0;
  b.mode = sim::CutInBehavior::TriggerMode::kSelfAheadOfEgo;
  b.trigger_offset = spec.param("distance_lane_change");
  b.cruise_speed = spec.param("approach_speed");
  b.post_speed = spec.param("post_speed");
  b.lateral_speed = spec.param("speed_lane_change");
  world.add_actor(npc(*map, 1, ego_s - spec.param("distance_same_lane"), b.cruise_speed,
                      std::make_unique<sim::CutInBehavior>(b)));
  return world;
}

bool ScenarioFactory::valid(const ScenarioSpec& spec) const {
  if (spec.typology != Typology::kFrontAccident) return true;
  sim::World world = build(spec);
  const int steps = static_cast<int>(config_.episode_seconds / config_.dt);
  for (int i = 0; i < steps; ++i) {
    world.step(dynamics::Control{0.0, 0.0});  // ego cruises; threat actors script
    if (world.npc_collision_occurred()) return true;
    if (world.ego_collided()) return false;  // ego got entangled first
  }
  return false;
}

}  // namespace iprism::scenario
