#include "scenario/suite.hpp"

#include "common/check.hpp"

namespace iprism::scenario {

SuiteResult generate_suite(const ScenarioFactory& factory, Typology typology, int count,
                           std::uint64_t seed) {
  IPRISM_CHECK(count > 0, "generate_suite: count must be positive");
  common::Rng rng(seed);
  SuiteResult out;
  out.specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ScenarioSpec spec = factory.sample(typology, static_cast<std::uint64_t>(i), rng);
    if (factory.valid(spec)) {
      out.specs.push_back(std::move(spec));
    } else {
      ++out.discarded;
    }
  }
  return out;
}

ScenarioSpec jitter_spec(const ScenarioSpec& spec, double fraction, common::Rng& rng) {
  IPRISM_CHECK(fraction >= 0.0 && fraction < 1.0, "jitter_spec: fraction must be in [0, 1)");
  ScenarioSpec out = spec;
  for (auto& [key, value] : out.hyperparams) {
    value *= rng.uniform(1.0 - fraction, 1.0 + fraction);
  }
  return out;
}

}  // namespace iprism::scenario
