#include "scenario/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace iprism::scenario {

Typology typology_from_name(std::string_view name) {
  for (Typology t : kAllTypologies) {
    if (typology_name(t) == name) return t;
  }
  IPRISM_CHECK(false, "typology_from_name: unknown typology '" + std::string(name) + "'");
  std::abort();  // unreachable; IPRISM_CHECK throws
}

void write_suite(std::ostream& os, const std::vector<ScenarioSpec>& specs) {
  os.precision(17);
  for (const ScenarioSpec& spec : specs) {
    os << typology_name(spec.typology) << ',' << spec.instance;
    for (const auto& [key, value] : spec.hyperparams) {
      os << ',' << key << '=' << value;
    }
    os << '\n';
  }
}

std::vector<ScenarioSpec> read_suite(std::istream& is) {
  std::vector<ScenarioSpec> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;

    ScenarioSpec spec;
    IPRISM_CHECK(std::getline(row, cell, ','), "read_suite: missing typology column");
    spec.typology = typology_from_name(cell);
    IPRISM_CHECK(std::getline(row, cell, ','), "read_suite: missing instance column");
    spec.instance = std::stoull(cell);

    while (std::getline(row, cell, ',')) {
      const auto eq = cell.find('=');
      IPRISM_CHECK(eq != std::string::npos && eq > 0,
                   "read_suite: malformed hyperparameter cell '" + cell + "'");
      spec.hyperparams[cell.substr(0, eq)] = std::stod(cell.substr(eq + 1));
    }
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace iprism::scenario
