// Safety-critical scenario typologies (paper §IV-B1, Fig. 3, Table I).
//
// A typology is a high-level pre-crash pattern from the NHTSA typology
// report; a ScenarioSpec instantiates one with concrete hyperparameter
// values (Table I lists the hyperparameter names per typology). Specs are
// plain data: the same spec always builds the same world.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace iprism::scenario {

enum class Typology {
  kGhostCutIn,
  kLeadCutIn,
  kLeadSlowdown,
  kFrontAccident,
  kRearEnd,
};

inline constexpr Typology kAllTypologies[] = {
    Typology::kGhostCutIn, Typology::kLeadCutIn, Typology::kLeadSlowdown,
    Typology::kFrontAccident, Typology::kRearEnd};

/// Human-readable typology name (matches the paper's tables).
std::string_view typology_name(Typology t);

/// One concrete safety-critical scenario.
struct ScenarioSpec {
  Typology typology = Typology::kGhostCutIn;
  /// Instance index within its suite; also salts deterministic per-instance
  /// choices (e.g. which adjacent lane the threat uses).
  std::uint64_t instance = 0;
  /// Named hyperparameters, keyed by the Table I names.
  std::map<std::string, double> hyperparams;

  double param(const std::string& key) const;
};

}  // namespace iprism::scenario
