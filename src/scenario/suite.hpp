// Scenario suite generation: the 4810-scenario benchmark of the paper
// (1000 draws per typology; front-accident draws that do not produce a
// non-ego collision are discarded, which left the paper with 810).
#pragma once

#include <vector>

#include "scenario/factory.hpp"

namespace iprism::scenario {

struct SuiteResult {
  std::vector<ScenarioSpec> specs;
  int discarded = 0;  ///< invalid draws (front accident only)
};

/// Draws `count` specs of a typology from the seed and filters invalid
/// ones. Deterministic: (typology, count, seed, config) fixes the suite.
SuiteResult generate_suite(const ScenarioFactory& factory, Typology typology, int count,
                           std::uint64_t seed);

/// Perturbs every hyperparameter by a uniform factor in
/// [1 - fraction, 1 + fraction]. SMC training rolls many episodes of one
/// selected scenario; jittering stands in for the episode-to-episode
/// nondeterminism a full 3-D simulator would provide, so the trainer sees
/// both savable and doomed variants of the same situation.
ScenarioSpec jitter_spec(const ScenarioSpec& spec, double fraction, common::Rng& rng);

}  // namespace iprism::scenario
