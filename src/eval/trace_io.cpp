#include "eval/trace_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::eval {

void write_episode_csv(std::ostream& os, const EpisodeResult& episode) {
  os << "actor_id,is_ego,length,width,t,x,y,heading,speed\n";
  os.precision(17);
  for (const ActorTrace& actor : episode.actors) {
    for (const auto& sample : actor.trajectory.samples()) {
      os << actor.id << ',' << (actor.is_ego ? 1 : 0) << ',' << actor.dims.length << ','
         << actor.dims.width << ',' << sample.t << ',' << sample.state.x << ','
         << sample.state.y << ',' << sample.state.heading << ',' << sample.state.speed
         << '\n';
    }
  }
}

std::vector<ActorTrace> read_episode_csv(std::istream& is) {
  std::string line;
  IPRISM_CHECK(static_cast<bool>(std::getline(is, line)),
               "read_episode_csv: missing header");
  IPRISM_CHECK(line.rfind("actor_id,", 0) == 0, "read_episode_csv: unexpected header");

  std::map<int, ActorTrace> by_id;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next = [&]() {
      IPRISM_CHECK(static_cast<bool>(std::getline(row, cell, ',')),
                   "read_episode_csv: truncated row '" + line + "'");
      return cell;
    };
    const int id = std::stoi(next());
    const bool is_ego = std::stoi(next()) != 0;
    const double length = std::stod(next());
    const double width = std::stod(next());
    const double t = std::stod(next());
    dynamics::VehicleState state;
    state.x = std::stod(next());
    state.y = std::stod(next());
    state.heading = std::stod(next());
    state.speed = std::stod(next());

    ActorTrace& trace = by_id[id];
    trace.id = id;
    trace.is_ego = is_ego;
    trace.dims = {length, width};
    trace.trajectory.append(common::Seconds{t}, state);
  }

  std::vector<ActorTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, trace] : by_id) out.push_back(std::move(trace));
  return out;
}

}  // namespace iprism::eval
