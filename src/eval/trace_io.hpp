// Episode trace (de)serialization: dumps every actor's recorded trajectory
// of an episode to CSV for external analysis/plotting, and reads such a
// dump back into trace form. This is how evaluation runs become shareable
// artifacts (the counterpart of the paper's released evaluation pipelines).
//
// Format: header `actor_id,is_ego,length,width,t,x,y,heading,speed` — one
// row per (actor, sample).
#pragma once

#include <iosfwd>
#include <vector>

#include "eval/runner.hpp"

namespace iprism::eval {

/// Writes all recorded samples of all actors.
void write_episode_csv(std::ostream& os, const EpisodeResult& episode);

/// Reads traces written by write_episode_csv. Returns actor traces with
/// trajectories; episode-level metadata (map, accident flags) is not part
/// of the format. Throws std::invalid_argument on malformed input.
std::vector<ActorTrace> read_episode_csv(std::istream& is);

}  // namespace iprism::eval
