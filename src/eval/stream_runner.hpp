// Multi-stream serving runner (DESIGN.md §14).
//
// The ROADMAP north star is a production-scale system serving many concurrent
// monitoring workloads; fleet-style deployments of this class of risk monitor
// run one immutable engine against many independent vehicle streams. The
// StreamRunner is that serving layer in-process: M scenario streams, each a
// (world, session, monitor loop) triple, driven concurrently over the one
// process-wide thread pool against a single shared const RiskMonitor.
//
// Determinism: each stream's outcome is a pure function of its index — the
// world maker is called with the stream index, the session is fresh per
// stream, and results land in index-owned slots — so an M-stream concurrent
// run is bit-identical to running the same streams serially (DESIGN.md §8;
// enforced by the StreamRunner suite and verified before every
// stream_throughput bench recording).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "common/thread_pool.hpp"
#include "core/monitor.hpp"
#include "sim/world.hpp"

namespace iprism::eval {

/// Per-stream result summary, index-owned during the concurrent run.
struct StreamOutcome {
  std::size_t stream = 0;
  std::string label;           ///< "<label_prefix>.<index>" — also the telemetry label
  int steps = 0;               ///< world steps taken
  long monitor_updates = 0;    ///< session's update count (== steps)
  double max_sti = 0.0;        ///< highest combined STI seen
  double mean_sti = 0.0;       ///< mean combined STI over updates
  int escalations = 0;         ///< level-raising transitions observed
  core::RiskLevel final_level = core::RiskLevel::kSafe;
  std::optional<int> last_riskiest_actor;  ///< most recent attribution, if any
  bool ego_collided = false;
};

/// Drives M independent scenario streams over one shared monitor engine.
class StreamRunner {
 public:
  /// Builds the world for stream `index`. Must be deterministic in the index
  /// (and thread-safe: makers run concurrently on pool workers).
  using WorldMaker = std::function<sim::World(std::size_t)>;
  /// Builds the ego agent for stream `index`; an empty maker (or a returned
  /// nullptr) coasts the ego with zero control.
  using AgentMaker = std::function<std::unique_ptr<agents::DrivingAgent>(std::size_t)>;

  struct Options {
    /// Monitor/STI/tube configuration shared by every stream.
    core::RiskMonitorParams monitor;
    double max_seconds = 10.0;
    bool stop_on_ego_collision = true;
    /// Prefix for per-stream telemetry metric names and outcome labels.
    std::string label_prefix = "stream";
  };

  /// The runner fans streams across `pool` (default: the process-wide shared
  /// pool) and forwards the same pool to the monitor engine, so stream-level
  /// and tube-level parallelism share one set of workers — a monitor fan-out
  /// issued from a stream task runs inline on that worker (nested same-pool
  /// parallel_for_each), never deadlocking it. Pass nullptr to run streams
  /// strictly serially (the determinism reference).
  explicit StreamRunner(const Options& options,
                        common::ThreadPool* pool = &common::ThreadPool::shared());

  /// Runs streams [0, streams), one session + world + monitor loop each,
  /// and returns their outcomes in stream-index order.
  std::vector<StreamOutcome> run(std::size_t streams, const WorldMaker& world_maker,
                                 const AgentMaker& agent_maker = {}) const;

  const core::RiskMonitor& monitor() const { return monitor_; }
  const common::ThreadPool* pool() const { return pool_; }

 private:
  StreamOutcome run_stream(std::size_t index, const WorldMaker& world_maker,
                           const AgentMaker& agent_maker) const;

  Options options_;
  core::RiskMonitor monitor_;  ///< one shared engine; sessions are per stream
  common::ThreadPool* pool_;
};

}  // namespace iprism::eval
