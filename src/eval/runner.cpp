#include "eval/runner.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::eval {

const ActorTrace& EpisodeResult::ego_trace() const {
  for (const ActorTrace& t : actors) {
    if (t.is_ego) return t;
  }
  IPRISM_CHECK(false, "EpisodeResult: no ego trace");
  std::abort();  // unreachable; IPRISM_CHECK throws
}

core::SceneSnapshot EpisodeResult::snapshot_at(int step) const {
  IPRISM_CHECK(step >= 0 && step < samples, "snapshot_at: step out of range");
  core::SceneSnapshot scene;
  scene.map = map.get();
  const double t = step * dt;
  scene.time = t;
  const common::Seconds ts{t};
  for (const ActorTrace& a : actors) {
    if (a.is_ego) {
      scene.ego = {a.id, a.trajectory.at(ts), a.dims};
    } else {
      scene.others.push_back({a.id, a.trajectory.at(ts), a.dims});
    }
  }
  return scene;
}

std::vector<core::ActorForecast> EpisodeResult::ground_truth_forecasts(int step) const {
  IPRISM_CHECK(step >= 0 && step < samples, "ground_truth_forecasts: step out of range");
  std::vector<core::ActorForecast> out;
  for (const ActorTrace& a : actors) {
    if (a.is_ego) continue;
    core::ActorForecast f{a.id, a.trajectory, a.dims};
    // The recording stops at the accident (or episode end); continue each
    // actor at constant velocity so a moving threat does not spuriously
    // freeze at the final recorded sample.
    dynamics::extend_with_constant_velocity(f.trajectory, common::Seconds{6.0},
                                            common::Seconds{0.25});
    out.push_back(std::move(f));
  }
  return out;
}

EpisodeResult run_episode(sim::World world, agents::DrivingAgent& agent,
                          agents::MitigationController* controller,
                          const RunOptions& options) {
  IPRISM_CHECK(world.has_ego(), "run_episode: world has no ego");
  agent.reset();
  if (controller) controller->reset();

  EpisodeResult result;
  result.map = world.map_ptr();
  result.dt = world.dt();

  // Trace slots, ego first.
  for (const sim::Actor& a : world.actors()) {
    ActorTrace t;
    t.id = a.id;
    t.is_ego = a.kind == sim::ActorKind::kEgo;
    t.dims = a.dims;
    result.actors.push_back(std::move(t));
  }
  for (ActorTrace& t : result.actors) {
    t.trajectory.append(common::Seconds{world.time()}, world.actor(t.id).state);
  }
  result.samples = 1;

  const double start_s = world.map().arclength(world.ego().state.position());
  const int max_steps = static_cast<int>(options.max_seconds / world.dt());

  for (int step = 0; step < max_steps; ++step) {
    dynamics::Control u = agent.act(world);
    if (controller) {
      if (auto overridden = controller->intervene(world, u)) {
        u = *overridden;
        if (!result.first_mitigation_time) result.first_mitigation_time = world.time();
        ++result.mitigation_steps;
      }
    }
    world.step(u);
    for (ActorTrace& t : result.actors) {
      t.trajectory.append(common::Seconds{world.time()}, world.actor(t.id).state);
    }
    ++result.samples;

    if (world.ego_collided()) {
      result.ego_accident = true;
      result.accident_step = result.samples - 1;
      result.accident_time = world.time();
      if (options.stop_on_ego_collision) break;
    }
    const double ego_s = world.map().arclength(world.ego().state.position());
    if (ego_s >= world.map().road_length() - options.end_margin) {
      result.reached_road_end = true;
      break;
    }
  }

  result.ego_progress =
      world.map().arclength(world.ego().state.position()) - start_s;
  return result;
}

}  // namespace iprism::eval
