// Episode execution and trace recording.
//
// The runner drives one world with a DrivingAgent (optionally overlaid with
// a MitigationController), recording every actor's realized trajectory.
// Recorded traces are what the offline metric characterization consumes:
// the paper evaluates STI/TTC/CIPA/PKL with *ground-truth* actor
// trajectories (§IV-C), which for a recorded episode are exactly the
// replayed traces.
#pragma once

#include <functional>
#include <optional>

#include "agents/agent.hpp"
#include "core/scene.hpp"
#include "dynamics/trajectory.hpp"
#include "sim/world.hpp"

namespace iprism::eval {

/// One actor's recorded motion over an episode.
struct ActorTrace {
  int id = -1;
  bool is_ego = false;
  dynamics::Dimensions dims;
  dynamics::Trajectory trajectory;
};

struct EpisodeResult {
  roadmap::MapPtr map;
  double dt = 0.0;
  /// Number of recorded snapshots (steps + 1; index 0 is the initial state).
  int samples = 0;
  std::vector<ActorTrace> actors;

  bool ego_accident = false;
  int accident_step = -1;       ///< snapshot index of the first ego collision
  double accident_time = 0.0;

  std::optional<double> first_mitigation_time;
  int mitigation_steps = 0;     ///< steps on which the controller overrode

  double ego_progress = 0.0;    ///< arclength travelled by the ego
  bool reached_road_end = false;

  const ActorTrace& ego_trace() const;

  /// Scene snapshot at a recorded step (states interpolated exactly at the
  /// recorded sample).
  core::SceneSnapshot snapshot_at(int step) const;

  /// Ground-truth forecasts at a step: each non-ego actor's *recorded*
  /// future trajectory (Trajectory::at holds the final state beyond the
  /// episode end).
  std::vector<core::ActorForecast> ground_truth_forecasts(int step) const;
};

struct RunOptions {
  double max_seconds = 30.0;
  bool stop_on_ego_collision = true;
  /// Stop when the ego is within this margin of the road end.
  double end_margin = 15.0;
};

/// Runs one episode to completion. The world is consumed (episodes are
/// replayable by rebuilding the world from its spec).
EpisodeResult run_episode(sim::World world, agents::DrivingAgent& agent,
                          agents::MitigationController* controller = nullptr,
                          const RunOptions& options = {});

}  // namespace iprism::eval
