#include "eval/pkl_training.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::eval {

std::vector<core::PklTrainingExample> collect_pkl_examples(const EpisodeResult& episode,
                                                           const core::PklMetric& metric,
                                                           int stride) {
  IPRISM_CHECK(stride >= 1, "collect_pkl_examples: stride must be >= 1");
  std::vector<core::PklTrainingExample> out;
  const double horizon = 2.5;  // matches PklParams default
  const int horizon_steps = static_cast<int>(horizon / episode.dt);

  const ActorTrace& ego = episode.ego_trace();

  for (int step = 0; step + horizon_steps < episode.samples; step += stride) {
    const auto scene = episode.snapshot_at(step);
    const auto forecasts = episode.ground_truth_forecasts(step);
    const auto candidates = metric.roll_candidates(*scene.map, scene);
    if (candidates.empty()) continue;

    // Expert label: the candidate closest to the realized ego motion,
    // compared at three probe times across the horizon.
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      double dist = 0.0;
      for (double frac : {0.33, 0.66, 1.0}) {
        const common::Seconds t{scene.time + frac * horizon};
        const auto planned = candidates[c].trajectory.at(t);
        const auto realized = ego.trajectory.at(t);
        dist += std::hypot(planned.x - realized.x, planned.y - realized.y);
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }

    core::PklTrainingExample ex;
    ex.expert_index = best;
    ex.candidates.reserve(candidates.size());
    for (const auto& c : candidates) {
      ex.candidates.push_back(
          metric.features(*scene.map, scene, c, forecasts, core::PklMetric::kExcludeNone));
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace iprism::eval
