// ASCII scene rendering: a top-down plan view of a world/snapshot with the
// ego, other actors, and (optionally) the reach-tube occupancy. Meant for
// examples, debugging, and log inspection — the textual counterpart of the
// paper's Fig. 1/Fig. 7 diagrams.
#pragma once

#include <string>

#include "core/reachtube.hpp"
#include "core/scene.hpp"

namespace iprism::eval {

struct RenderOptions {
  /// Metres per character cell, horizontal and vertical.
  double x_scale = 2.0;
  double y_scale = 1.2;
  /// Window: longitudinal metres shown behind / ahead of the ego.
  double behind = 20.0;
  double ahead = 60.0;
};

/// Renders the scene in the ego's road-aligned (Frenet) window:
///   'E' ego, 'A'..'Z' other actors (by order), '.' reach-tube occupancy,
///   '=' lane lines, '#' road edge. Multi-line string, top row = leftmost
///   lane edge.
std::string render_scene(const core::SceneSnapshot& scene,
                         const core::ReachTube* tube = nullptr,
                         const RenderOptions& options = {});

/// Convenience: renders a live world, optionally with the ego's current
/// reach-tube (computed from CVTR forecasts).
std::string render_world(const sim::World& world, bool with_tube = false,
                         const RenderOptions& options = {});

}  // namespace iprism::eval
