#include "eval/series.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::eval {

std::vector<double> risk_series(const EpisodeResult& episode, const RiskFn& fn,
                                int stride) {
  IPRISM_CHECK(stride >= 1, "risk_series: stride must be >= 1");
  std::vector<double> out(static_cast<std::size_t>(episode.samples), 0.0);
  double last = 0.0;
  for (int step = 0; step < episode.samples; ++step) {
    if (step % stride == 0) {
      last = fn(episode.snapshot_at(step), episode.ground_truth_forecasts(step));
    }
    out[static_cast<std::size_t>(step)] = last;
  }
  return out;
}

RiskFn sti_risk(const core::StiCalculator& calc) {
  return [&calc](const core::SceneSnapshot& scene,
                 const std::vector<core::ActorForecast>& forecasts) {
    return calc.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                         forecasts);
  };
}

RiskFn ttc_risk(const core::TtcMetric& metric) {
  return [&metric](const core::SceneSnapshot& scene,
                   const std::vector<core::ActorForecast>&) {
    return metric.risk(scene);
  };
}

RiskFn dist_cipa_risk(const core::DistCipaMetric& metric) {
  return [&metric](const core::SceneSnapshot& scene,
                   const std::vector<core::ActorForecast>&) {
    return metric.risk(scene);
  };
}

RiskFn pkl_risk(const core::PklMetric& metric) {
  return [&metric](const core::SceneSnapshot& scene,
                   const std::vector<core::ActorForecast>& forecasts) {
    return metric.risk(scene, forecasts);
  };
}

double ltfma_backward(const EpisodeResult& episode, const RiskFn& fn, int stride) {
  IPRISM_CHECK(episode.ego_accident && episode.accident_step >= 0,
               "ltfma_backward: episode has no accident");
  IPRISM_CHECK(stride >= 1, "ltfma_backward: stride must be >= 1");
  int nonzero = 0;
  // Walk back from the accident step; a zero-risk evaluation ends the run.
  // With stride > 1 each evaluation stands for `stride` steps.
  for (int step = episode.accident_step; step >= 0; step -= stride) {
    const double risk =
        fn(episode.snapshot_at(step), episode.ground_truth_forecasts(step));
    if (risk <= 1e-9) break;
    nonzero += std::min(stride, step + 1);
  }
  const int capped = std::min(nonzero, episode.accident_step + 1);
  return capped * episode.dt;
}

}  // namespace iprism::eval
