#include "eval/render.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace iprism::eval {
namespace {

/// Canvas indexed [row][col]; row 0 is the *left* road edge (the paper's
/// figures put the leftmost lane on top).
class Canvas {
 public:
  Canvas(int rows, int cols) : cols_(cols), cells_(static_cast<std::size_t>(rows) * cols, ' ') {}

  int rows() const { return static_cast<int>(cells_.size()) / cols_; }
  int cols() const { return cols_; }

  void put(int row, int col, char c, bool overwrite = true) {
    if (row < 0 || row >= rows() || col < 0 || col >= cols_) return;
    char& cell = cells_[static_cast<std::size_t>(row) * cols_ + col];
    if (overwrite || cell == ' ') cell = c;
  }

  std::string str() const {
    std::string out;
    out.reserve(cells_.size() + static_cast<std::size_t>(rows()));
    for (int r = 0; r < rows(); ++r) {
      out.append(cells_.begin() + static_cast<std::size_t>(r) * cols_,
                 cells_.begin() + static_cast<std::size_t>(r + 1) * cols_);
      out.push_back('\n');
    }
    return out;
  }

 private:
  int cols_;
  std::vector<char> cells_;
};

}  // namespace

std::string render_scene(const core::SceneSnapshot& scene, const core::ReachTube* tube,
                         const RenderOptions& options) {
  IPRISM_CHECK(scene.map != nullptr, "render_scene: snapshot has no map");
  IPRISM_CHECK(options.x_scale > 0.0 && options.y_scale > 0.0,
               "render_scene: scales must be positive");
  const auto& map = *scene.map;
  const double road_width = map.lane_count() * map.lane_width();
  const double ego_s = map.arclength(scene.ego.state.position());

  const int cols =
      static_cast<int>((options.behind + options.ahead) / options.x_scale) + 1;
  const int rows = static_cast<int>(road_width / options.y_scale) + 3;  // edges
  Canvas canvas(rows, cols);

  auto to_cell = [&](double s, double d, int& row, int& col) {
    col = static_cast<int>((s - (ego_s - options.behind)) / options.x_scale);
    // d grows to the left; row 0 is the left edge.
    row = 1 + static_cast<int>((road_width - d) / options.y_scale);
  };

  // Road edges and lane lines.
  for (int c = 0; c < cols; ++c) {
    int row, col;
    to_cell(ego_s, road_width, row, col);
    canvas.put(row - 1, c, '#');
    to_cell(ego_s, 0.0, row, col);
    canvas.put(row + 1, c, '#');
    for (int lane = 1; lane < map.lane_count(); ++lane) {
      to_cell(ego_s, lane * map.lane_width(), row, col);
      if (c % 3 != 2) canvas.put(row, c, '=', /*overwrite=*/false);
    }
  }

  // Reach-tube occupancy (under the actors).
  if (tube != nullptr) {
    for (const auto& slice : tube->slices) {
      for (const auto& state : slice) {
        int row, col;
        to_cell(map.arclength(state.position()), map.lateral(state.position()), row, col);
        canvas.put(row, col, '.', /*overwrite=*/false);
      }
    }
  }

  // Actors: footprint extent along the road.
  auto draw_actor = [&](const core::ActorSnapshot& actor, char symbol) {
    const double s = map.arclength(actor.state.position());
    const double d = map.lateral(actor.state.position());
    const int half = std::max(static_cast<int>(actor.dims.length / 2.0 / options.x_scale), 0);
    for (int k = -half; k <= half; ++k) {
      int row, col;
      to_cell(s, d, row, col);
      canvas.put(row, col + k, symbol);
    }
  };
  char symbol = 'A';
  for (const auto& other : scene.others) {
    draw_actor(other, symbol);
    symbol = symbol == 'Z' ? 'A' : static_cast<char>(symbol + 1);
  }
  draw_actor(scene.ego, 'E');

  return canvas.str();
}

std::string render_world(const sim::World& world, bool with_tube,
                         const RenderOptions& options) {
  const core::SceneSnapshot scene = core::snapshot_of(world);
  if (!with_tube) return render_scene(scene, nullptr, options);
  const core::ReachTubeComputer rt;
  const auto forecasts = core::cvtr_forecasts(world, rt.params().horizon, rt.params().dt);
  const core::ReachTube tube =
      rt.compute(world.map(), scene.ego.state, common::Seconds{scene.time}, forecasts);
  return render_scene(scene, &tube, options);
}

}  // namespace iprism::eval
