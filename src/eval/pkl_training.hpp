// PKL planner supervision from recorded episodes.
//
// The PKL metric's planner is *learned* (paper [14]); its demonstrations
// here are recorded episodes: at each sampled step the expert label is the
// plan candidate that best matches what the ego actually drove over the
// planner horizon. Fitting on different typology mixes produces the
// PKL-All / PKL-Holdout variants of Table II.
#pragma once

#include <vector>

#include "core/pkl.hpp"
#include "eval/runner.hpp"

namespace iprism::eval {

/// Extracts one training example per `stride` steps of the episode. Steps
/// whose planner horizon extends beyond the recording are skipped.
std::vector<core::PklTrainingExample> collect_pkl_examples(const EpisodeResult& episode,
                                                           const core::PklMetric& metric,
                                                           int stride = 5);

}  // namespace iprism::eval
