// Per-step risk series over recorded episodes — the data behind Table II
// (LTFMA) and the Fig. 4 / Fig. 5 time-series panels.
#pragma once

#include <functional>
#include <vector>

#include "core/dist_cipa.hpp"
#include "core/pkl.hpp"
#include "core/sti.hpp"
#include "core/ttc.hpp"
#include "eval/runner.hpp"

namespace iprism::eval {

/// A risk function evaluated on one recorded step: snapshot + ground-truth
/// forecasts -> risk value (0 = no risk).
using RiskFn = std::function<double(const core::SceneSnapshot&,
                                    const std::vector<core::ActorForecast>&)>;

/// Evaluates a risk function at every `stride`-th recorded step (values
/// between strides repeat the last computed one, so series indices align
/// with snapshot indices).
std::vector<double> risk_series(const EpisodeResult& episode, const RiskFn& fn,
                                int stride = 1);

/// Standard risk functions for the four metrics compared in the paper.
RiskFn sti_risk(const core::StiCalculator& calc);
RiskFn ttc_risk(const core::TtcMetric& metric);
RiskFn dist_cipa_risk(const core::DistCipaMetric& metric);
RiskFn pkl_risk(const core::PklMetric& metric);

/// LTFMA-oriented variant: computes the series *backward* from the
/// accident step and stops at the first zero-risk step — equivalent to the
/// full series for LTFMA purposes but far cheaper for expensive metrics.
/// Returns the lead time in seconds. The episode must contain an accident
/// (checked).
double ltfma_backward(const EpisodeResult& episode, const RiskFn& fn, int stride = 1);

}  // namespace iprism::eval
