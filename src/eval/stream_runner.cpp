#include "eval/stream_runner.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/telemetry.hpp"

namespace iprism::eval {

StreamRunner::StreamRunner(const Options& options, common::ThreadPool* pool)
    : options_(options), monitor_(options.monitor, pool), pool_(pool) {}

std::vector<StreamOutcome> StreamRunner::run(std::size_t streams,
                                             const WorldMaker& world_maker,
                                             const AgentMaker& agent_maker) const {
  IPRISM_CHECK(static_cast<bool>(world_maker), "StreamRunner: world maker required");
  IPRISM_SCOPED_TIMER("stream_runner.run", "stream");
  IPRISM_GAUGE_SET("stream_runner.streams", streams);
  std::vector<StreamOutcome> out(streams);
  // Stream-major fan-out: one task per stream, results in index-owned slots.
  // Tube-level fan-out issued inside a stream task targets the same pool and
  // therefore runs inline on the task's worker (nested same-pool
  // parallel_for_each) — stream and tube parallelism compose deadlock-free,
  // and neither changes any outcome (DESIGN.md §8).
  common::parallel_for_each(pool_, streams, [&](std::size_t i) {
    out[i] = run_stream(i, world_maker, agent_maker);
  });
  return out;
}

StreamOutcome StreamRunner::run_stream(std::size_t index, const WorldMaker& world_maker,
                                       const AgentMaker& agent_maker) const {
  StreamOutcome out;
  out.stream = index;
  out.label = options_.label_prefix + "." + std::to_string(index);

#if IPRISM_TELEMETRY_ENABLED
  // Per-stream metric labels are runtime-built names, which the literal-only
  // IPRISM_* macros cannot cache — so this (alone) talks to the registry
  // directly. References are stable for the registry's lifetime; the lookup
  // is hoisted out of the step loop.
  auto& registry = common::telemetry::MetricsRegistry::instance();
  common::telemetry::Counter& updates_counter = registry.counter(out.label + ".updates");
  common::telemetry::Histogram& update_hist = registry.histogram(out.label + ".update_ns");
#endif

  sim::World world = world_maker(index);
  IPRISM_CHECK(world.has_ego(), "StreamRunner: world maker produced a world without an ego");
  std::unique_ptr<agents::DrivingAgent> agent;
  if (agent_maker) {
    agent = agent_maker(index);
    if (agent != nullptr) agent->reset();
  }

  core::RiskSession session;
  double sti_sum = 0.0;
  const int max_steps = static_cast<int>(options_.max_seconds / world.dt());
  for (int step = 0; step < max_steps; ++step) {
    const core::RiskLevel before = session.level();
#if IPRISM_TELEMETRY_ENABLED
    const std::uint64_t begin_ns = common::telemetry::trace_now_ns();
#endif
    const core::RiskMonitor::Assessment assessment = monitor_.update(session, world);
#if IPRISM_TELEMETRY_ENABLED
    update_hist.record(common::telemetry::trace_now_ns() - begin_ns);
    updates_counter.add(1);
#endif
    sti_sum += assessment.sti_combined;
    out.max_sti = std::max(out.max_sti, assessment.sti_combined);
    if (assessment.level > before) ++out.escalations;
    if (assessment.riskiest_actor) out.last_riskiest_actor = assessment.riskiest_actor;

    world.step(agent != nullptr ? agent->act(world) : dynamics::Control{});
    ++out.steps;
    if (world.ego_collided()) {
      out.ego_collided = true;
      if (options_.stop_on_ego_collision) break;
    }
  }
  out.monitor_updates = session.updates();
  out.final_level = session.level();
  if (out.monitor_updates > 0) {
    out.mean_sti = sti_sum / static_cast<double>(out.monitor_updates);
  }
  return out;
}

}  // namespace iprism::eval
