#include "rl/mlp.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace iprism::rl {

Mlp::Mlp(const std::vector<int>& sizes) : sizes_(sizes) {
  IPRISM_CHECK(sizes.size() >= 2, "Mlp: need at least input and output sizes");
  for (int s : sizes) IPRISM_CHECK(s > 0, "Mlp: layer sizes must be positive");
  layers_.resize(sizes.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    const std::size_t n = static_cast<std::size_t>(layer.in) * layer.out;
    layer.weights.assign(n, 0.0);
    layer.biases.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.grad_w.assign(n, 0.0);
    layer.grad_b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.m_w.assign(n, 0.0);
    layer.v_w.assign(n, 0.0);
    layer.m_b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.v_b.assign(static_cast<std::size_t>(layer.out), 0.0);
  }
}

Mlp::Mlp(const std::vector<int>& sizes, common::Rng& rng) : Mlp(sizes) {
  for (Layer& layer : layers_) {
    const double scale = std::sqrt(2.0 / layer.in);  // He init for ReLU
    for (double& w : layer.weights) w = rng.normal(0.0, scale);
  }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  IPRISM_CHECK(static_cast<int>(input.size()) == input_size(), "Mlp: input size mismatch");
  std::vector<double> x(input.begin(), input.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> y(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.biases[static_cast<std::size_t>(o)];
      const double* w = &layer.weights[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) acc += w[i] * x[static_cast<std::size_t>(i)];
      // ReLU on hidden layers, linear output head.
      y[static_cast<std::size_t>(o)] =
          (l + 1 < layers_.size()) ? std::max(acc, 0.0) : acc;
    }
    x = std::move(y);
  }
  return x;
}

double Mlp::accumulate_gradient(std::span<const double> input, int action, double target) {
  IPRISM_CHECK(static_cast<int>(input.size()) == input_size(), "Mlp: input size mismatch");
  IPRISM_CHECK(action >= 0 && action < output_size(), "Mlp: action out of range");

  // Forward pass with cached activations.
  std::vector<std::vector<double>> acts;
  acts.reserve(layers_.size() + 1);
  acts.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> y(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.biases[static_cast<std::size_t>(o)];
      const double* w = &layer.weights[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) acc += w[i] * acts.back()[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(o)] =
          (l + 1 < layers_.size()) ? std::max(acc, 0.0) : acc;
    }
    acts.push_back(std::move(y));
  }

  const double td_error = acts.back()[static_cast<std::size_t>(action)] - target;

  // Backward pass: dL/dy at the output is td_error on the chosen action, 0
  // elsewhere.
  std::vector<double> delta(acts.back().size(), 0.0);
  delta[static_cast<std::size_t>(action)] = td_error;

  for (std::size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const std::vector<double>& in_act = acts[l];
    const std::vector<double>& out_act = acts[l + 1];

    // ReLU derivative applies to hidden layers only.
    if (l + 1 < layers_.size()) {
      for (int o = 0; o < layer.out; ++o) {
        if (out_act[static_cast<std::size_t>(o)] <= 0.0) delta[static_cast<std::size_t>(o)] = 0.0;
      }
    }

    std::vector<double> prev_delta(static_cast<std::size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      // NOLINTNEXTLINE(iprism-float-eq) exact: ReLU writes literal 0.0; skip dead units
      if (d == 0.0) continue;
      layer.grad_b[static_cast<std::size_t>(o)] += d;
      double* gw = &layer.grad_w[static_cast<std::size_t>(o) * layer.in];
      const double* w = &layer.weights[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) {
        gw[i] += d * in_act[static_cast<std::size_t>(i)];
        prev_delta[static_cast<std::size_t>(i)] += d * w[i];
      }
    }
    delta = std::move(prev_delta);
  }

  ++grad_count_;
  return td_error;
}

void Mlp::apply_adam(double learning_rate) {
  if (grad_count_ == 0) return;
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  ++adam_t_;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
  const double inv_n = 1.0 / static_cast<double>(grad_count_);

  auto update = [&](std::vector<double>& w, std::vector<double>& g, std::vector<double>& m,
                    std::vector<double>& v) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double grad = g[i] * inv_n;
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad;
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad * grad;
      const double mh = m[i] / bias1;
      const double vh = v[i] / bias2;
      w[i] -= learning_rate * mh / (std::sqrt(vh) + kEps);
      g[i] = 0.0;
    }
  };
  for (Layer& layer : layers_) {
    update(layer.weights, layer.grad_w, layer.m_w, layer.v_w);
    update(layer.biases, layer.grad_b, layer.m_b, layer.v_b);
  }
  grad_count_ = 0;
}

void Mlp::copy_weights_from(const Mlp& other) {
  IPRISM_CHECK(sizes_ == other.sizes_, "Mlp: architecture mismatch in copy_weights_from");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].weights = other.layers_[l].weights;
    layers_[l].biases = other.layers_[l].biases;
  }
}

void Mlp::save(std::ostream& os) const {
  os << sizes_.size() << '\n';
  for (int s : sizes_) os << s << ' ';
  os << '\n';
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (double w : layer.weights) os << w << ' ';
    os << '\n';
    for (double b : layer.biases) os << b << ' ';
    os << '\n';
  }
}

Mlp Mlp::load(std::istream& is) {
  std::size_t n = 0;
  is >> n;
  IPRISM_CHECK(is.good() && n >= 2 && n < 64, "Mlp::load: bad layer count");
  std::vector<int> sizes(n);
  for (int& s : sizes) is >> s;
  Mlp net(sizes);
  for (Layer& layer : net.layers_) {
    for (double& w : layer.weights) is >> w;
    for (double& b : layer.biases) is >> b;
  }
  IPRISM_CHECK(is.good() || is.eof(), "Mlp::load: truncated stream");
  return net;
}

}  // namespace iprism::rl
