// Double Deep Q-Network trainer (van Hasselt et al. [47], the paper's RL
// algorithm for the SMC, Fig. 2).
//
// Standard DQN with the double-Q target:
//   a* = argmax_a Q_online(s', a)
//   y  = r + gamma * Q_target(s', a*)          (y = r when done)
// and a periodically-synced target network. Exploration follows a linear
// epsilon schedule over environment steps.
#pragma once

#include "rl/mlp.hpp"
#include "rl/replay.hpp"

namespace iprism::rl {

struct DdqnConfig {
  double gamma = 0.95;
  double learning_rate = 1e-3;
  int batch_size = 64;
  int target_sync_interval = 250;  ///< gradient steps between target syncs
  std::size_t replay_capacity = 50000;
  int warmup_transitions = 256;    ///< no updates until this many observed
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  int epsilon_decay_steps = 6000;  ///< env steps to anneal epsilon over
};

class DdqnTrainer {
 public:
  /// `hidden` lists the hidden layer widths.
  DdqnTrainer(int state_size, int action_count, const std::vector<int>& hidden,
              const DdqnConfig& config, std::uint64_t seed);

  /// Epsilon-greedy action for the current schedule position.
  int select_action(std::span<const double> state);

  /// Greedy action under the online network.
  int greedy_action(std::span<const double> state) const;

  /// Current exploration rate.
  double epsilon() const;

  /// Stores a transition and advances the schedule.
  void observe(Transition t);

  /// One gradient step (if warm). Returns the mean |TD error| of the batch
  /// or 0 when skipped.
  double train_step();

  const Mlp& online() const { return online_; }
  int action_count() const { return online_.output_size(); }

 private:
  DdqnConfig config_;
  Mlp online_;
  Mlp target_;
  ReplayBuffer buffer_;
  common::Rng rng_;
  long env_steps_ = 0;
  long grad_steps_ = 0;
};

}  // namespace iprism::rl
