#include "rl/replay.hpp"

#include "common/check.hpp"

namespace iprism::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  IPRISM_CHECK(capacity > 0, "ReplayBuffer: capacity must be positive");
  buffer_.reserve(capacity);
}

void ReplayBuffer::push(Transition t) {
  IPRISM_DCHECK(buffer_.size() <= capacity_, "ReplayBuffer: size exceeded capacity");
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(t));
  } else {
    IPRISM_DCHECK(next_ < capacity_, "ReplayBuffer: write cursor out of bounds");
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t count,
                                                    common::Rng& rng) const {
  IPRISM_CHECK(!buffer_.empty(), "ReplayBuffer: cannot sample from empty buffer");
  std::vector<const Transition*> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(&buffer_[rng.index(buffer_.size())]);
  return out;
}

}  // namespace iprism::rl
