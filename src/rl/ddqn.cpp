#include "rl/ddqn.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace iprism::rl {
namespace {

std::vector<int> layer_sizes(int state_size, const std::vector<int>& hidden,
                             int action_count) {
  std::vector<int> sizes;
  sizes.push_back(state_size);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(action_count);
  return sizes;
}

int argmax(const std::vector<double>& v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

DdqnTrainer::DdqnTrainer(int state_size, int action_count, const std::vector<int>& hidden,
                         const DdqnConfig& config, std::uint64_t seed)
    : config_(config),
      online_([&] {
        common::Rng init_rng(seed);
        return Mlp(layer_sizes(state_size, hidden, action_count), init_rng);
      }()),
      target_([&] {
        common::Rng init_rng(seed);
        return Mlp(layer_sizes(state_size, hidden, action_count), init_rng);
      }()),
      buffer_(config.replay_capacity),
      rng_(seed ^ 0xD1CEBEEFULL) {
  IPRISM_CHECK(action_count >= 2, "DdqnTrainer: need at least two actions");
  IPRISM_CHECK(config.gamma >= 0.0 && config.gamma <= 1.0,
               "DdqnConfig: gamma must lie in [0, 1]");
  IPRISM_CHECK(config.learning_rate > 0.0, "DdqnConfig: learning_rate must be positive");
  IPRISM_CHECK(config.batch_size > 0, "DdqnConfig: batch_size must be positive");
  IPRISM_CHECK(config.target_sync_interval > 0,
               "DdqnConfig: target_sync_interval must be positive");
  IPRISM_CHECK(config.warmup_transitions > 0,
               "DdqnConfig: warmup_transitions must be positive");
  IPRISM_CHECK(config.epsilon_start >= 0.0 && config.epsilon_start <= 1.0 &&
                   config.epsilon_end >= 0.0 && config.epsilon_end <= 1.0,
               "DdqnConfig: epsilon schedule endpoints must lie in [0, 1]");
  target_.copy_weights_from(online_);
}

double DdqnTrainer::epsilon() const {
  const double frac = std::min(
      static_cast<double>(env_steps_) / std::max(config_.epsilon_decay_steps, 1), 1.0);
  return config_.epsilon_start + frac * (config_.epsilon_end - config_.epsilon_start);
}

int DdqnTrainer::select_action(std::span<const double> state) {
  if (rng_.bernoulli(epsilon())) {
    return static_cast<int>(rng_.index(static_cast<std::size_t>(action_count())));
  }
  return greedy_action(state);
}

int DdqnTrainer::greedy_action(std::span<const double> state) const {
  return argmax(online_.forward(state));
}

void DdqnTrainer::observe(Transition t) {
  buffer_.push(std::move(t));
  ++env_steps_;
}

double DdqnTrainer::train_step() {
  if (buffer_.size() < static_cast<std::size_t>(config_.warmup_transitions)) return 0.0;
  const auto batch = buffer_.sample(static_cast<std::size_t>(config_.batch_size), rng_);

  double abs_td = 0.0;
  for (const Transition* t : batch) {
    double target = t->reward;
    if (!t->done) {
      // Double-DQN: online net selects, target net evaluates.
      const int best = argmax(online_.forward(t->next_state));
      IPRISM_DCHECK(best >= 0 && best < action_count(),
                    "DdqnTrainer: selected action out of range");
      target += config_.gamma *
                target_.forward(t->next_state)[static_cast<std::size_t>(best)];
    }
    abs_td += std::abs(online_.accumulate_gradient(t->state, t->action, target));
  }
  IPRISM_DCHECK(!batch.empty(), "DdqnTrainer: training batch must be non-empty");
  online_.apply_adam(config_.learning_rate);

  ++grad_steps_;
  if (grad_steps_ % config_.target_sync_interval == 0) {
    target_.copy_weights_from(online_);
  }
  return abs_td / static_cast<double>(batch.size());
}

}  // namespace iprism::rl
