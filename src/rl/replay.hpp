// Experience replay buffer for off-policy Q-learning (paper §III-B uses the
// standard D-DQN training setup [47], [49]).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace iprism::rl {

struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition t);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Uniformly samples `count` transitions (with replacement). Requires a
  /// non-empty buffer (checked).
  std::vector<const Transition*> sample(std::size_t count, common::Rng& rng) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> buffer_;
};

}  // namespace iprism::rl
