// Multi-layer perceptron with manual backpropagation and Adam — the Q-value
// function approximator V_theta of the SMC (paper Eq. 9). The paper uses a
// CNN over camera frames; this library's SMC observes an engineered
// feature vector instead (substitution documented in DESIGN.md §2), for
// which an MLP is the appropriate approximator. ReLU hidden layers, linear
// output head sized to the action count.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace iprism::rl {

class Mlp {
 public:
  /// `sizes` = {input, hidden..., output}; at least one hidden layer is not
  /// required but sizes must have >= 2 entries (checked). He-initialized.
  Mlp(const std::vector<int>& sizes, common::Rng& rng);

  int input_size() const { return sizes_.front(); }
  int output_size() const { return sizes_.back(); }

  /// Forward pass (thread-compatible: const, no shared scratch).
  std::vector<double> forward(std::span<const double> input) const;

  /// Accumulates the gradient of 0.5 * (f(x)[action] - target)^2 into the
  /// pending batch. Returns the TD error f(x)[action] - target.
  double accumulate_gradient(std::span<const double> input, int action, double target);

  /// Applies one Adam step using the accumulated (batch-averaged)
  /// gradients, then clears them. No-op if nothing was accumulated.
  void apply_adam(double learning_rate);

  /// Copies weights (not optimizer state) — target-network sync.
  void copy_weights_from(const Mlp& other);

  /// Plain-text serialization of architecture + weights.
  void save(std::ostream& os) const;
  /// Loads a network previously saved with save() (architecture must be
  /// reconstructible; returns a new network).
  static Mlp load(std::istream& is);

 private:
  explicit Mlp(const std::vector<int>& sizes);  // uninitialized weights, for load()

  struct Layer {
    // Row-major weights[out][in], plus biases[out].
    std::vector<double> weights;
    std::vector<double> biases;
    std::vector<double> grad_w;
    std::vector<double> grad_b;
    // Adam moments.
    std::vector<double> m_w, v_w, m_b, v_b;
    int in = 0, out = 0;
  };

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  std::size_t grad_count_ = 0;
  long adam_t_ = 0;
};

}  // namespace iprism::rl
