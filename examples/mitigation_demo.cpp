// Mitigation demo: train a small SMC on one ghost cut-in scenario, then
// watch LBC and LBC+iPrism drive the same scenario side by side, printing
// the per-second state of both episodes (the Fig. 1 story, in text).
//
// Build & run:  cmake --build build && ./build/examples/mitigation_demo
#include <iomanip>
#include <iostream>

#include "agents/lbc.hpp"
#include "eval/runner.hpp"
#include "eval/series.hpp"
#include "scenario/suite.hpp"
#include "smc/controller.hpp"
#include "smc/trainer.hpp"

using namespace iprism;

int main() {
  const scenario::ScenarioFactory factory;

  // A deterministic, fairly aggressive ghost cut-in instance.
  common::Rng rng(2024);
  scenario::ScenarioSpec spec;
  for (int i = 0; i < 64; ++i) {
    spec = factory.sample(scenario::Typology::kGhostCutIn, static_cast<std::uint64_t>(i),
                          rng);
    agents::LbcAgent probe;
    if (eval::run_episode(factory.build(spec), probe).ego_accident) break;
  }

  // 1. Baseline: plain LBC drives into the cut-in.
  agents::LbcAgent lbc;
  const eval::EpisodeResult baseline = eval::run_episode(factory.build(spec), lbc);
  std::cout << "LBC alone: " << (baseline.ego_accident ? "ACCIDENT" : "safe");
  if (baseline.ego_accident) {
    std::cout << " at t=" << baseline.accident_time << " s";
  }
  std::cout << "\n\n";

  // 2. Train a brake-only SMC on this scenario (small budget: the demo
  //    takes ~15 s; the benchmarks train with larger budgets).
  std::cout << "Training SMC (D-DQN, 50 episodes, reward = Eq. 8)...\n";
  smc::SmcTrainConfig config;
  config.episodes = 50;
  config.action_count = smc::kActionCountBrakeOnly;
  agents::LbcAgent trainee_base;
  smc::SmcTrainer trainer(config);
  smc::SmcTrainStats stats;
  common::Rng jitter(7);
  rl::Mlp policy = trainer.train(
      [&](int) { return factory.build(scenario::jitter_spec(spec, 0.1, jitter)); },
      trainee_base, &stats);
  std::cout << "training collision rate over the last 20 episodes: "
            << stats.recent_collision_rate(20) << "\n\n";

  // 3. LBC + iPrism on the same scenario.
  agents::LbcAgent lbc2;
  smc::SmcController controller(std::move(policy));
  const eval::EpisodeResult mitigated =
      eval::run_episode(factory.build(spec), lbc2, &controller);
  std::cout << "LBC+iPrism: " << (mitigated.ego_accident ? "ACCIDENT" : "safe");
  if (mitigated.first_mitigation_time) {
    std::cout << " (first mitigation at t=" << *mitigated.first_mitigation_time << " s, "
              << mitigated.mitigation_steps << " intervened steps)";
  }
  std::cout << "\n\n";

  // 4. Side-by-side STI trace.
  const core::StiCalculator sti;
  const auto base_series = eval::risk_series(baseline, eval::sti_risk(sti), 3);
  const auto mit_series = eval::risk_series(mitigated, eval::sti_risk(sti), 3);
  std::cout << "t(s)  STI[LBC]  STI[LBC+iPrism]\n";
  const int per_second = static_cast<int>(1.0 / baseline.dt);
  for (std::size_t i = 0;; i += per_second) {
    const bool has_base = i < base_series.size();
    const bool has_mit = i < mit_series.size();
    if (!has_base && !has_mit) break;
    std::cout << std::setw(4) << i * baseline.dt << "  ";
    if (has_base) {
      std::cout << std::setw(8) << base_series[i] << "  ";
    } else {
      std::cout << std::setw(8) << "-" << "  ";  // episode already over
    }
    if (has_mit) {
      std::cout << std::setw(8) << mit_series[i];
    } else {
      std::cout << std::setw(8) << "-";
    }
    if (has_base && baseline.ego_accident &&
        static_cast<int>(i) + per_second > baseline.accident_step) {
      std::cout << "   <- LBC accident";
    }
    std::cout << '\n';
    if (!has_base && !has_mit) break;
  }
  return 0;
}
