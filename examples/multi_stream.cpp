// Multi-stream serving: one immutable risk engine, many concurrent streams.
//
// The engine/session split (DESIGN.md §14) turns "monitor M vehicles" from
// M complete monitor stacks into ONE shared const engine plus M cheap
// core::RiskSession contexts. This example drives eight scenario streams —
// walls at increasing range, so each stream carries a different risk level —
// concurrently over the process-wide thread pool, then shows the same
// engine/session API used directly for a single hand-driven stream.
//
// Outcomes are bit-identical to running the streams one at a time
// (tests/test_stream_runner.cpp); concurrency is purely a wall-clock knob.
//
// Build & run:  cmake --build build && ./build/examples/multi_stream
#include <cstdio>
#include <memory>

#include "core/monitor.hpp"
#include "eval/stream_runner.hpp"
#include "roadmap/straight_road.hpp"

using namespace iprism;

namespace {

dynamics::VehicleState make_state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

/// Stream i: ego at 10 m/s, a three-lane wall 10 + 2 i metres ahead.
/// Deterministic in the index — the only requirement StreamRunner places on
/// a world maker (makers run concurrently on pool workers).
sim::World make_stream_world(std::size_t index) {
  sim::World w(std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0), 0.1);
  w.add_ego(make_state(50.0, 5.25, 10.0));
  const double gap = 10.0 + 2.0 * static_cast<double>(index);
  for (double y : {1.75, 5.25, 8.75}) {
    sim::Actor blocker;
    blocker.kind = sim::ActorKind::kVehicle;
    blocker.state = make_state(50.0 + gap + 4.5, y, 0.0);
    w.add_actor(std::move(blocker));
  }
  return w;
}

}  // namespace

int main() {
  // 1. The serving layer: 8 streams, 3 simulated seconds each, fanned over
  //    common::ThreadPool::shared() against one const RiskMonitor engine.
  eval::StreamRunner::Options options;
  options.max_seconds = 3.0;
  options.label_prefix = "demo";
  const eval::StreamRunner runner(options);
  const auto outcomes = runner.run(8, make_stream_world);

  std::printf("%-8s %6s %10s %10s %12s %10s\n", "stream", "steps", "max STI",
              "mean STI", "escalations", "collided");
  for (const auto& o : outcomes) {
    std::printf("%-8s %6d %10.3f %10.3f %12d %10s\n", o.label.c_str(), o.steps,
                o.max_sti, o.mean_sti, o.escalations, o.ego_collided ? "yes" : "no");
  }

  // 2. The same engine/session API, hand-driven: engines hoist, sessions
  //    iterate. The session keeps the propagation scratch warm across ticks
  //    (steady-state updates allocate only the tube they return) and carries
  //    the monitor's level/hysteresis state.
  const core::RiskMonitor engine;  // immutable: update() is const
  core::RiskSession session;       // this stream's entire mutable state
  sim::World world = make_stream_world(0);
  for (int step = 0; step < 10 && !world.ego_collided(); ++step) {
    const auto assessment = engine.update(session, world);
    std::printf("tick %2d  STI %.3f  level %s\n", step, assessment.sti_combined,
                std::string(core::risk_level_name(assessment.level)).c_str());
    world.step(dynamics::Control{});
  }
  std::printf("session: %ld updates, final level %s\n", session.updates(),
              std::string(core::risk_level_name(session.level())).c_str());
  return 0;
}
