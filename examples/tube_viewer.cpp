// Tube viewer: watch the ego's escape routes shrink as a ghost cut-in
// unfolds — an ASCII rendition of the paper's Fig. 1. Prints the plan view
// ('E' ego, 'A' the cutting actor, '.' reach-tube occupancy) together with
// the live STI at four moments of the scenario.
//
// Build & run:  cmake --build build && ./build/examples/tube_viewer
#include <iostream>

#include "agents/lbc.hpp"
#include "core/sti.hpp"
#include "eval/render.hpp"
#include "scenario/factory.hpp"

using namespace iprism;

int main() {
  const scenario::ScenarioFactory factory;
  common::Rng rng(41);
  // A reasonably aggressive ghost cut-in instance.
  scenario::ScenarioSpec spec = factory.sample(scenario::Typology::kGhostCutIn, 0, rng);
  spec.hyperparams["distance_lane_change"] = 3.0;
  spec.hyperparams["post_speed"] = 4.5;

  sim::World world = factory.build(spec);
  agents::LbcAgent lbc;
  const core::StiCalculator sti;

  const double probe_times[] = {0.5, 3.0, 5.0, 6.5};
  std::size_t next_probe = 0;

  while (world.time() < 12.0 && next_probe < std::size(probe_times)) {
    world.step(lbc.act(world));
    if (world.time() + 1e-9 < probe_times[next_probe]) continue;
    ++next_probe;

    const auto forecasts = core::cvtr_forecasts(world, 3.0, 0.25);
    const auto result =
        sti.compute(world.map(), world.ego().state, common::Seconds{world.time()}, forecasts);
    std::cout << "t = " << world.time() << " s — STI(combined) = " << result.combined;
    for (const auto& [id, v] : result.per_actor) {
      std::cout << ", STI(actor " << id << ") = " << v;
    }
    std::cout << (world.ego_collided() ? "  [COLLIDED]" : "") << "\n";
    std::cout << eval::render_world(world, /*with_tube=*/true) << "\n";
    if (world.ego_collided()) break;
  }

  std::cout << "Reading: '.' cells are states the ego can still safely reach within\n"
               "the 3 s horizon; the cutting actor ('A') erases them as it merges,\n"
               "which is exactly what STI quantifies.\n";
  return 0;
}
