// Custom scenario: build your own safety-critical situation from behavior
// scripts, run any agent through it, and evaluate every risk metric on the
// recorded episode — the full public API in one tour.
//
// The scenario: the ego follows its lane while (a) a van brakes hard ahead
// and (b) a scooter-like vehicle squeezes in from the right at the same
// time — a combined threat none of the five NHTSA typologies covers.
//
// Build & run:  cmake --build build && ./build/examples/custom_scenario
#include <iostream>

#include "agents/lbc.hpp"
#include "agents/ttc_aca.hpp"
#include "common/table.hpp"
#include "core/dist_cipa.hpp"
#include "core/pkl.hpp"
#include "core/sti.hpp"
#include "core/ttc.hpp"
#include "eval/runner.hpp"
#include "eval/series.hpp"
#include "roadmap/straight_road.hpp"
#include "sim/behaviors.hpp"

using namespace iprism;

namespace {

dynamics::VehicleState lane_state(const roadmap::DrivableMap& map, int lane, double s,
                                  double speed) {
  dynamics::VehicleState st;
  const geom::Vec2 p = map.point_at(s, map.lane_center_offset(lane));
  st.x = p.x;
  st.y = p.y;
  st.heading = map.heading_at(s);
  st.speed = speed;
  return st;
}

sim::World build_world() {
  auto map = std::make_shared<roadmap::StraightRoad>(3, 3.5, 400.0);
  sim::World world(map, 0.1);
  world.add_ego(lane_state(*map, 1, 30.0, 8.0));

  // (a) Van braking hard ahead once the ego closes in.
  sim::SlowdownBehavior::Params van;
  van.lane = 1;
  van.cruise_speed = 7.0;
  van.trigger_distance = 18.0;
  van.decel = 7.0;
  sim::Actor van_actor;
  van_actor.kind = sim::ActorKind::kVehicle;
  van_actor.dims = {6.0, 2.3};
  van_actor.state = lane_state(*map, 1, 65.0, 7.0);
  van_actor.behavior = std::make_unique<sim::SlowdownBehavior>(van);
  world.add_actor(std::move(van_actor));

  // (b) Narrow vehicle cutting in from the right at the same time.
  sim::CutInBehavior::Params scooter;
  scooter.start_lane = 0;
  scooter.target_lane = 1;
  scooter.mode = sim::CutInBehavior::TriggerMode::kSelfAheadOfEgo;
  scooter.trigger_offset = 3.0;
  scooter.cruise_speed = 11.0;
  scooter.post_speed = 6.0;
  scooter.lateral_speed = 2.5;
  sim::Actor scooter_actor;
  scooter_actor.kind = sim::ActorKind::kVehicle;
  scooter_actor.dims = {2.2, 0.9};
  scooter_actor.state = lane_state(*map, 0, 18.0, 11.0);
  scooter_actor.behavior = std::make_unique<sim::CutInBehavior>(scooter);
  world.add_actor(std::move(scooter_actor));
  return world;
}

}  // namespace

int main() {
  // Run the baseline agent, then the same agent with the ACA safety overlay.
  agents::LbcAgent lbc;
  const eval::EpisodeResult plain = eval::run_episode(build_world(), lbc);

  agents::LbcAgent lbc2;
  agents::TtcAcaController aca;
  const eval::EpisodeResult with_aca = eval::run_episode(build_world(), lbc2, &aca);

  std::cout << "LBC alone : " << (plain.ego_accident ? "ACCIDENT" : "safe")
            << (plain.ego_accident
                    ? " at t=" + common::Table::num(plain.accident_time, 1) + " s"
                    : "")
            << "\n";
  std::cout << "LBC + ACA : " << (with_aca.ego_accident ? "ACCIDENT" : "safe") << "\n\n";

  // Evaluate all four risk metrics over the plain episode.
  const core::StiCalculator sti;
  const core::TtcMetric ttc(3.0);
  const core::DistCipaMetric cipa(25.0);
  const core::PklMetric pkl;

  common::Table table("per-second risk metrics (LBC episode)");
  table.set_header({"t (s)", "STI", "TTC risk", "CIPA risk", "max PKL"});
  const auto sti_series = eval::risk_series(plain, eval::sti_risk(sti), 3);
  const auto ttc_series = eval::risk_series(plain, eval::ttc_risk(ttc));
  const auto cipa_series = eval::risk_series(plain, eval::dist_cipa_risk(cipa));
  const auto pkl_series = eval::risk_series(plain, eval::pkl_risk(pkl), 5);
  const int per_second = static_cast<int>(1.0 / plain.dt);
  for (std::size_t i = 0; i < sti_series.size(); i += per_second) {
    table.add_row({common::Table::num(i * plain.dt, 0),
                   common::Table::num(sti_series[i], 2),
                   common::Table::num(ttc_series[i], 2),
                   common::Table::num(cipa_series[i], 2),
                   common::Table::num(pkl_series[i], 2)});
  }
  table.print(std::cout);

  if (plain.ego_accident) {
    std::cout << "\nLTFMA on this episode — STI: "
              << eval::ltfma_backward(plain, eval::sti_risk(sti), 3)
              << " s, TTC: " << eval::ltfma_backward(plain, eval::ttc_risk(ttc))
              << " s, CIPA: " << eval::ltfma_backward(plain, eval::dist_cipa_risk(cipa))
              << " s\n";
  }
  return 0;
}
