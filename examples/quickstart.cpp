// Quickstart: compute the Safety-Threat Indicator for a hand-built scene.
//
// A three-lane road, the ego at 8 m/s, and two other actors: a slow car
// directly ahead and a car passing in the adjacent lane. STI answers, per
// actor, "how many of my escape routes does this actor remove?" — and the
// combined value summarizes the whole scene's risk.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/sti.hpp"

#include "common/units.hpp"
#include "dynamics/cvtr.hpp"
#include "roadmap/straight_road.hpp"

using namespace iprism;

namespace {

using namespace iprism::common::literals;

dynamics::VehicleState make_state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

}  // namespace

int main() {
  // 1. A map: three 3.5 m lanes, 500 m long, running along +x.
  const auto map = std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0);

  // 2. The ego state: middle lane, 8 m/s.
  const dynamics::VehicleState ego = make_state(50.0, map->lane_center_offset(1), 8.0);

  // 3. Other actors, each with a *forecast trajectory*. Here we use the
  //    constant-velocity-and-turn-rate (CVTR) predictor the SMC uses online;
  //    offline characterization would use recorded ground truth instead.
  const dynamics::CvtrPredictor predictor;
  std::vector<core::ActorForecast> forecasts;
  // A slow car 15 m ahead in the ego lane.
  forecasts.push_back(
      {1, predictor.predict(make_state(65.0, map->lane_center_offset(1), 3.0), common::Seconds{/*now_time=*/0.0}, common::Seconds{/*horizon=*/4.0}, common::Seconds{/*dt=*/0.25}),
       {4.5, 2.0}});
  // A faster car alongside in the right lane.
  forecasts.push_back(
      {2, predictor.predict(make_state(48.0, map->lane_center_offset(0), 10.0), 0.0_s, 4.0_s, 0.25_s),
       {4.5, 2.0}});

  // 4. Compute STI: one reach-tube with everyone present, one per-actor
  //    counterfactual, one with the road empty (Eqs. 1-5).
  const core::StiCalculator sti;
  const core::StiResult result = sti.compute(*map, ego, /*t0=*/common::Seconds{0.0}, forecasts);

  std::cout << "Escape-route volume |T|      : " << result.volume_all << "\n";
  std::cout << "Empty-road volume   |T^null| : " << result.volume_empty << "\n";
  std::cout << "STI (combined)               : " << result.combined << "\n";
  for (const auto& [actor_id, value] : result.per_actor) {
    std::cout << "STI of actor #" << actor_id << "              : " << value << "\n";
  }

  std::cout << "\nReading: the slow lead removes escape routes ahead; the car\n"
               "alongside removes the right-lane escape. An STI of 0 would mean the\n"
               "actor does not constrain the ego at all; 1 means no escape remains.\n";
  return 0;
}
