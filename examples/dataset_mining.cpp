// Dataset mining: scan a corpus of recorded driving logs with STI and
// surface the riskiest moments — the paper's §V-D use case (finding the
// rare safety-critical scenarios hiding inside benign recorded data).
//
// Build & run:  cmake --build build && ./build/examples/dataset_mining
#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "core/sti.hpp"
#include "dataset/generator.hpp"
#include "dataset/scan.hpp"

using namespace iprism;

int main() {
  // Generate a small corpus of benign recorded logs (the stand-in for a
  // real-world dataset; see DESIGN.md §2).
  dataset::DatasetParams params;
  params.log_count = 30;
  params.risky_fraction = 0.15;  // slightly elevated so the demo finds hits
  const auto logs = dataset::generate_dataset(params);
  std::cout << "Scanning " << logs.size() << " logs for risky moments...\n\n";

  const core::StiCalculator sti;

  struct Hit {
    std::size_t log_index;
    int step;
    double combined;
    int riskiest_actor;
    double actor_sti;
  };
  std::vector<Hit> hits;

  for (std::size_t li = 0; li < logs.size(); ++li) {
    const auto& log = logs[li];
    Hit best{li, -1, 0.0, -1, 0.0};
    for (int step = 0; step < log.samples(); step += 5) {
      const auto scene = log.snapshot_at(step);
      const auto forecasts = log.forecasts_at(step);
      const auto result = sti.compute(log.map(), scene.ego.state, common::Seconds{scene.time}, forecasts);
      if (result.combined > best.combined) {
        best.step = step;
        best.combined = result.combined;
        best.actor_sti = 0.0;
        for (const auto& [id, v] : result.per_actor) {
          if (v > best.actor_sti) {
            best.actor_sti = v;
            best.riskiest_actor = id;
          }
        }
      }
    }
    if (best.step >= 0) hits.push_back(best);
  }

  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.combined > b.combined; });

  common::Table table("Top risky moments across the corpus");
  table.set_header({"log", "t (s)", "STI combined", "riskiest actor", "actor STI"});
  for (std::size_t i = 0; i < std::min<std::size_t>(hits.size(), 10); ++i) {
    const Hit& h = hits[i];
    table.add_row({std::to_string(h.log_index),
                   common::Table::num(h.step * logs[h.log_index].dt(), 1),
                   common::Table::num(h.combined, 2),
                   h.riskiest_actor >= 0 ? "#" + std::to_string(h.riskiest_actor) : "-",
                   common::Table::num(h.actor_sti, 2)});
  }
  table.print(std::cout);

  std::cout << "\nMoments like these are exactly what gets promoted into a regression\n"
               "suite for continuous safety validation — most of the corpus scans at\n"
               "STI 0 and can be skipped.\n";
  return 0;
}
