#!/usr/bin/env bash
# Runs clang-tidy over every translation unit in compile_commands.json.
#
# Usage: tools/run_tidy.sh [build-dir]
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (every CMakePresets.json preset sets it). Files outside src/ (tests,
# benches, examples) are skipped: they link the library and repeat its
# patterns, so tidying src/ covers the signal without tripling the runtime.
#
# Exits 0 when clang-tidy is not installed — the lint job degrades rather
# than blocking environments (like minimal CI runners or the gcc-only dev
# container) that lack LLVM. CI installs clang-tidy explicitly, so findings
# still gate merges there.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build/release}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  # Fall back to a plain ./build tree (the tier-1 verify command's layout).
  if [[ -f "build/compile_commands.json" ]]; then
    BUILD_DIR="build"
  else
    echo "run_tidy: no compile_commands.json under ${BUILD_DIR} or build/." >&2
    echo "run_tidy: configure first, e.g.: cmake --preset release" >&2
    exit 2
  fi
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_tidy: ${TIDY} not found; skipping (install clang-tidy to enable)."
  exit 0
fi

mapfile -t FILES < <(python3 - "${BUILD_DIR}" <<'EOF'
import json, sys
entries = json.load(open(f"{sys.argv[1]}/compile_commands.json"))
seen = set()
for e in entries:
    f = e["file"]
    if "/src/" in f and f.endswith(".cpp") and f not in seen:
        seen.add(f)
        print(f)
EOF
)

echo "run_tidy: ${#FILES[@]} translation units, build dir ${BUILD_DIR}"
JOBS="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${FILES[@]}" \
  | xargs -P "${JOBS}" -n 1 "${TIDY}" -p "${BUILD_DIR}" --quiet
echo "run_tidy: clean"
