#!/usr/bin/env bash
# Runs clang-tidy over translation units from compile_commands.json.
#
# Usage: tools/run_tidy.sh [--plugin=<libIprismTidyChecks.so>] [--checks=<spec>]
#                          [build-dir] [path-filter ...]
#
#   --plugin=PATH   Load the iprism clang-tidy plugin (built by the `tidy`
#                   preset) so the iprism-* checks are available.
#   --checks=SPEC   Passed through as clang-tidy's -checks= (e.g.
#                   '-*,iprism-*' to run only the project checks).
#   build-dir       Tree holding compile_commands.json (default build/release,
#                   falling back to build/).
#   path-filter     Any further arguments select a subset of TUs: a TU runs
#                   if its path contains ANY filter substring. This is the
#                   fast pre-commit path — lint just what you touched:
#                       tools/run_tidy.sh build src/core/reachtube.cpp
#                       tools/run_tidy.sh build src/core/ src/dynamics/
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (every CMakePresets.json preset sets it). Files outside src/ (tests,
# benches, examples) are skipped: they link the library and repeat its
# patterns, so tidying src/ covers the signal without tripling the runtime.
#
# Exit codes:
#    0  clean
#    1  clang-tidy reported findings
#    2  setup error: compile_commands.json missing or empty, or a path
#       filter matched no translation units (a filter typo must not pass)
#   77  clang-tidy binary not installed — ctest reports SKIP, not PASS,
#       so a misconfigured CI lint job cannot silently go green
set -euo pipefail

cd "$(dirname "$0")/.."

PLUGIN=""
CHECKS=""
POSITIONAL=()
for arg in "$@"; do
  case "${arg}" in
    --plugin=*) PLUGIN="${arg#--plugin=}" ;;
    --checks=*) CHECKS="${arg#--checks=}" ;;
    --help|-h)  sed -n '2,30p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    --*)        echo "run_tidy: unknown option '${arg}'" >&2; exit 2 ;;
    *)          POSITIONAL+=("${arg}") ;;
  esac
done

BUILD_DIR="${POSITIONAL[0]:-build/release}"
FILTERS=("${POSITIONAL[@]:1}")

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  # Fall back to a plain ./build tree (the tier-1 verify command's layout).
  if [[ "${BUILD_DIR}" == "build/release" && -f "build/compile_commands.json" ]]; then
    BUILD_DIR="build"
  else
    echo "run_tidy: no compile_commands.json under ${BUILD_DIR}." >&2
    echo "run_tidy: configure first, e.g.: cmake --preset release" >&2
    exit 2
  fi
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_tidy: ${TIDY} not found; skipping (install clang-tidy to enable)." >&2
  exit 77
fi

if [[ -n "${PLUGIN}" && ! -f "${PLUGIN}" ]]; then
  echo "run_tidy: plugin '${PLUGIN}' does not exist (build the tidy preset first)" >&2
  exit 2
fi

mapfile -t FILES < <(python3 - "${BUILD_DIR}" ${FILTERS[@]+"${FILTERS[@]}"} <<'EOF'
import json, sys
build_dir, filters = sys.argv[1], sys.argv[2:]
entries = json.load(open(f"{build_dir}/compile_commands.json"))
seen = set()
for e in entries:
    f = e["file"]
    if "/src/" not in f or not f.endswith(".cpp") or f in seen:
        continue
    if filters and not any(sub in f for sub in filters):
        continue
    seen.add(f)
    print(f)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  if [[ ${#FILTERS[@]} -gt 0 ]]; then
    echo "run_tidy: no translation units match filter(s): ${FILTERS[*]}" >&2
  else
    echo "run_tidy: compile_commands.json in ${BUILD_DIR} lists no src/ TUs" >&2
    echo "run_tidy: the export is empty or stale — reconfigure the build tree" >&2
  fi
  exit 2
fi

TIDY_ARGS=(-p "${BUILD_DIR}" --quiet)
[[ -n "${PLUGIN}" ]] && TIDY_ARGS+=("--load=${PLUGIN}")
[[ -n "${CHECKS}" ]] && TIDY_ARGS+=("--checks=${CHECKS}")

echo "run_tidy: ${#FILES[@]} translation units, build dir ${BUILD_DIR}"
JOBS="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${FILES[@]}" \
  | xargs -P "${JOBS}" -n 1 "${TIDY}" "${TIDY_ARGS[@]}"
echo "run_tidy: clean"
