#!/usr/bin/env bash
# Check-only formatting gate: verifies src/, tests/, bench/, and examples/
# against .clang-format without rewriting anything. Run
# `clang-format -i <file>` locally to fix findings.
#
# Exits 0 when clang-format is not installed (same graceful degradation as
# run_tidy.sh); CI installs it, so formatting still gates merges.
set -euo pipefail

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "${FMT}" >/dev/null 2>&1; then
  echo "check_format: ${FMT} not found; skipping (install clang-format to enable)."
  exit 0
fi

mapfile -t FILES < <(find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)

BAD=0
for f in "${FILES[@]}"; do
  if ! "${FMT}" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "check_format: needs formatting: $f"
    BAD=1
  fi
done

if [[ "${BAD}" -ne 0 ]]; then
  echo "check_format: run clang-format -i on the files above." >&2
  exit 1
fi
echo "check_format: ${#FILES[@]} files clean"
