// iprism-simd-discipline
//
// Flags SIMD back doors outside the batched kernel TUs: vendor intrinsics
// headers (immintrin.h, arm_neon.h, ...), vectorization-forcing pragmas
// (`#pragma omp simd`, `#pragma GCC ivdep`, `#pragma clang loop
// vectorize/interleave`), and per-function target attributes
// (`__attribute__((target(...)))`).
//
// The reach-tube kernels are portable fixed-width lane loops whose
// vectorization is governed solely by the IPRISM_ENABLE_SIMD build option,
// and both settings must produce bit-identical tubes (DESIGN.md §13). Any
// of the constructs above sidesteps that single switch — hand-vectorized
// code can re-round intermediates, forced vectorization can reassociate
// reductions, and target attributes fork codegen per CPU — so they are
// confined to the kernel TUs where the determinism contract is enforced by
// the GeomKernelIdentity suite.
//
// Options:
//   AllowedFilesRegex — files exempt from the ban (default: the batch
//                       kernel TUs, src/geom/batch* and
//                       src/dynamics/*_batch*).
#ifndef IPRISM_TIDY_PLUGIN_SIMD_DISCIPLINE_CHECK_H
#define IPRISM_TIDY_PLUGIN_SIMD_DISCIPLINE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class SimdDisciplineCheck : public ClangTidyCheck {
public:
  SimdDisciplineCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerPPCallbacks(const SourceManager &SM, Preprocessor *PP,
                           Preprocessor *ModuleExpanderPP) override;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

  /// Exposed for the preprocessor callbacks (defined in the .cpp), which
  /// report include/pragma violations through the same path filter.
  const llvm::Regex &allowedFiles() const { return AllowedFiles; }

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_SIMD_DISCIPLINE_CHECK_H
