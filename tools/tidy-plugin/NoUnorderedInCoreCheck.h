// iprism-no-unordered-in-core
//
// Bans std::unordered_{map,set,multimap,multiset} in src/core. Hash-table
// iteration order there is observable — it feeds the reach-tube's
// surviving-representative selection — and the standard containers make it
// depend on bucket count and standard library. Use common::FlatHashGrid /
// common::FlatKeySet (src/common/flat_hash.hpp), whose iteration order is
// insertion order by construction (DESIGN.md §9).
//
// Unlike the regex rule this replaces, the match is on the *desugared* type,
// so `using Cache = std::unordered_map<...>` smuggled in through an alias or
// typedef (even one declared outside src/core) is still caught at the point
// of use.
//
// Options:
//   CorePathRegex — files the ban applies to (default: /src/core/).
#ifndef IPRISM_TIDY_PLUGIN_NO_UNORDERED_IN_CORE_CHECK_H
#define IPRISM_TIDY_PLUGIN_NO_UNORDERED_IN_CORE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class NoUnorderedInCoreCheck : public ClangTidyCheck {
public:
  NoUnorderedInCoreCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string CorePathRegex;
  llvm::Regex CorePath;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_NO_UNORDERED_IN_CORE_CHECK_H
