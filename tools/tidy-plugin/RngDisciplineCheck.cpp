#include "RngDisciplineCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

RngDisciplineCheck::RngDisciplineCheck(llvm::StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(
          Options.get("AllowedFilesRegex", "/src/common/rng\\.(hpp|cpp)$")),
      AllowedFiles(AllowedFilesRegex) {}

void RngDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void RngDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // Every standard engine template plus std::random_device. Engine aliases
  // (std::mt19937, std::minstd_rand, ...) desugar to specializations of
  // these templates, so matching the canonical type catches them all.
  const auto BannedRngDecl = cxxRecordDecl(hasAnyName(
      "::std::random_device", "::std::mersenne_twister_engine",
      "::std::linear_congruential_engine", "::std::subtract_with_carry_engine",
      "::std::discard_block_engine", "::std::independent_bits_engine",
      "::std::shuffle_order_engine"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(BannedRngDecl))))))
          .bind("engine"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand", "::std::rand",
                                              "::std::srand"))))
          .bind("libc"),
      this);
}

void RngDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *Engine = Result.Nodes.getNodeAs<TypeLoc>("engine")) {
    if (!shouldReport(SM, Engine->getBeginLoc(), AllowedFiles))
      return;
    diag(Engine->getBeginLoc(),
         "standard random engine / std::random_device outside "
         "src/common/rng.*: take an explicit common::Rng so runs replay "
         "deterministically from a seed (DESIGN.md §7)");
    return;
  }
  if (const auto *Libc = Result.Nodes.getNodeAs<CallExpr>("libc")) {
    if (!shouldReport(SM, Libc->getBeginLoc(), AllowedFiles))
      return;
    diag(Libc->getBeginLoc(),
         "rand()/srand() has hidden global state: take an explicit "
         "common::Rng so runs replay deterministically from a seed "
         "(DESIGN.md §7)");
  }
}

} // namespace clang::tidy::iprism
