#include "NoUnorderedInCoreCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

NoUnorderedInCoreCheck::NoUnorderedInCoreCheck(llvm::StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CorePathRegex(Options.get("CorePathRegex", "/src/core/")),
      CorePath(CorePathRegex) {}

void NoUnorderedInCoreCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CorePathRegex", CorePathRegex);
}

void NoUnorderedInCoreCheck::registerMatchers(MatchFinder *Finder) {
  // Matching every written mention of a type whose *canonical* form is a
  // banned-container specialization catches direct uses, aliases, typedefs,
  // and dependent uses once instantiated. Ordered std::map/std::set joined
  // the list with the §12 attribution/frontier containers: node-based
  // associative containers cost a pointer chase per lookup in the propagation
  // hot loop, and every keyed container in src/core now goes through
  // common::FlatHashGrid / common::FlatKeySet for both speed and the
  // insertion-order-iteration determinism contract.
  const auto UnorderedDecl = classTemplateSpecializationDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set", "::std::unordered_multimap",
      "::std::unordered_multiset", "::std::map", "::std::set", "::std::multimap",
      "::std::multiset"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(UnorderedDecl))))))
          .bind("use"),
      this);
  // Template-id mentions without a desugarable RecordType yet (e.g. the
  // defining alias itself) still name the template directly.
  Finder->addMatcher(
      typeAliasDecl(hasType(qualType(hasUnqualifiedDesugaredType(
                        recordType(hasDeclaration(UnorderedDecl))))))
          .bind("alias"),
      this);
}

void NoUnorderedInCoreCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *Use = Result.Nodes.getNodeAs<TypeLoc>("use"))
    Loc = Use->getBeginLoc();
  else if (const auto *Alias = Result.Nodes.getNodeAs<TypeAliasDecl>("alias"))
    Loc = Alias->getLocation();
  if (Loc.isInvalid())
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
    return;
  if (!locationInFilesMatching(SM, Loc, CorePath))
    return;
  diag(Loc,
       "node-based std associative containers (unordered_* and ordered "
       "map/set) are banned in src/core: unordered_* iteration order is "
       "observable here (it feeds surviving-representative selection) and "
       "depends on bucket count and standard library, and ordered map/set "
       "pay a pointer chase per lookup in the propagation hot loop; use "
       "common::FlatHashGrid / common::FlatKeySet (src/common/flat_hash.hpp) "
       "whose order is insertion order by construction (DESIGN.md §9, §12)");
}

} // namespace clang::tidy::iprism
