#include "NoUnorderedInCoreCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

NoUnorderedInCoreCheck::NoUnorderedInCoreCheck(llvm::StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CorePathRegex(Options.get("CorePathRegex", "/src/core/")),
      CorePath(CorePathRegex) {}

void NoUnorderedInCoreCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CorePathRegex", CorePathRegex);
}

void NoUnorderedInCoreCheck::registerMatchers(MatchFinder *Finder) {
  // Matching every written mention of a type whose *canonical* form is a
  // std::unordered_* specialization catches direct uses, aliases, typedefs,
  // and dependent uses once instantiated.
  const auto UnorderedDecl = classTemplateSpecializationDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set", "::std::unordered_multimap",
      "::std::unordered_multiset"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(UnorderedDecl))))))
          .bind("use"),
      this);
  // Template-id mentions without a desugarable RecordType yet (e.g. the
  // defining alias itself) still name the template directly.
  Finder->addMatcher(
      typeAliasDecl(hasType(qualType(hasUnqualifiedDesugaredType(
                        recordType(hasDeclaration(UnorderedDecl))))))
          .bind("alias"),
      this);
}

void NoUnorderedInCoreCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *Use = Result.Nodes.getNodeAs<TypeLoc>("use"))
    Loc = Use->getBeginLoc();
  else if (const auto *Alias = Result.Nodes.getNodeAs<TypeAliasDecl>("alias"))
    Loc = Alias->getLocation();
  if (Loc.isInvalid())
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (SM.isInSystemHeader(SM.getExpansionLoc(Loc)))
    return;
  if (!locationInFilesMatching(SM, Loc, CorePath))
    return;
  diag(Loc,
       "std::unordered_* is banned in src/core: its iteration order is "
       "observable here (it feeds surviving-representative selection) and "
       "depends on bucket count and standard library; use "
       "common::FlatHashGrid / common::FlatKeySet (src/common/flat_hash.hpp) "
       "whose order is insertion order by construction (DESIGN.md §9)");
}

} // namespace clang::tidy::iprism
