// Shared helpers for the iprism clang-tidy checks.
//
// Every check in this plugin is a *scoped* ban: a construct is forbidden
// except inside the one file (or directory) that owns the abstraction —
// std::thread belongs to thread_pool.*, raw engines to rng.*, and so on.
// The scope is expressed as a POSIX ERE matched against the (expansion)
// file path of the offending location, overridable per check via the
// `AllowedFilesRegex` / `CorePathRegex` options so the fixture harness can
// re-point it at tests/tidy/.
#ifndef IPRISM_TIDY_PLUGIN_IPRISM_CHECK_COMMON_H
#define IPRISM_TIDY_PLUGIN_IPRISM_CHECK_COMMON_H

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::iprism {

/// True when `Loc` (after macro expansion) falls in a file whose path
/// matches `PathRegex`. Invalid locations and system headers never match.
inline bool locationInFilesMatching(const SourceManager &SM, SourceLocation Loc,
                                    const llvm::Regex &PathRegex) {
  if (Loc.isInvalid())
    return false;
  const SourceLocation File = SM.getExpansionLoc(Loc);
  if (SM.isInSystemHeader(File))
    return false;
  const llvm::StringRef Name = SM.getFilename(File);
  return !Name.empty() && PathRegex.match(Name);
}

/// True when the location should be reported: it is valid, not in a system
/// header, and not inside the allowed (owning) files.
inline bool shouldReport(const SourceManager &SM, SourceLocation Loc,
                         const llvm::Regex &AllowedFiles) {
  if (Loc.isInvalid())
    return false;
  const SourceLocation File = SM.getExpansionLoc(Loc);
  if (SM.isInSystemHeader(File))
    return false;
  if (SM.getFilename(File).empty())
    return false;
  return !locationInFilesMatching(SM, Loc, AllowedFiles);
}

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_IPRISM_CHECK_COMMON_H
