#include "RawThreadCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

RawThreadCheck::RawThreadCheck(llvm::StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(
          Options.get("AllowedFilesRegex", "/src/common/thread_pool\\.(hpp|cpp)$")),
      AllowedFiles(AllowedFilesRegex) {}

void RawThreadCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void RawThreadCheck::registerMatchers(MatchFinder *Finder) {
  const auto ThreadDecl =
      cxxRecordDecl(hasAnyName("::std::thread", "::std::jthread"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(ThreadDecl))))))
          .bind("thread"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("::std::async")))).bind("async"),
      this);
}

void RawThreadCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *Thread = Result.Nodes.getNodeAs<TypeLoc>("thread")) {
    if (!shouldReport(SM, Thread->getBeginLoc(), AllowedFiles))
      return;
    diag(Thread->getBeginLoc(),
         "raw std::thread/std::jthread outside src/common/thread_pool.*: use "
         "common::ThreadPool / parallel_for_each so parallelism keeps the "
         "serial fallback, exception propagation, and determinism contract "
         "(DESIGN.md §8)");
    return;
  }
  if (const auto *Async = Result.Nodes.getNodeAs<CallExpr>("async")) {
    if (!shouldReport(SM, Async->getBeginLoc(), AllowedFiles))
      return;
    diag(Async->getBeginLoc(),
         "std::async outside src/common/thread_pool.*: use common::ThreadPool "
         "/ parallel_for_each so parallelism keeps the serial fallback, "
         "exception propagation, and determinism contract (DESIGN.md §8)");
  }
}

} // namespace clang::tidy::iprism
