#include "SessionDisciplineCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

SessionDisciplineCheck::SessionDisciplineCheck(llvm::StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      // Default never matches: the clean run covers src/, where engine
      // construction in a loop is always a defect. Tests that sweep engine
      // parameter matrices on purpose are outside that run.
      AllowedFilesRegex(Options.get("AllowedFilesRegex", "^$")),
      AllowedFiles(AllowedFilesRegex) {}

void SessionDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void SessionDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // Matching the construct expression (not the var decl) catches engines
  // materialized as temporaries, new-expressions, and container emplaces as
  // well as plain locals. hasAncestor walks into the loop *body* only via
  // hasBody: an engine built in a for-init runs once and is legitimate.
  const auto Engine = cxxRecordDecl(hasAnyName(
      "::iprism::core::ReachTubeComputer", "::iprism::core::StiCalculator",
      "::iprism::core::RiskMonitor"));
  // Pre-filter to construct expressions under *some* loop; check() then
  // walks the parent chain to confirm the loop's body (not its init or
  // condition, which construct once) contains the expression.
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(Engine))),
                       hasAncestor(stmt(anyOf(forStmt(), whileStmt(), doStmt(),
                                              cxxForRangeStmt()))))
          .bind("ctor"),
      this);
}

void SessionDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Ctor = Result.Nodes.getNodeAs<CXXConstructExpr>("ctor");
  if (Ctor == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (!shouldReport(SM, Ctor->getBeginLoc(), AllowedFiles))
    return;

  // Walk up the parent chain; report only when the construct expression sits
  // inside a loop *body* (a for-init or loop condition constructs once).
  const Stmt *Node = Ctor;
  auto &Ctx = *Result.Context;
  while (true) {
    const auto Parents = Ctx.getParents(*Node);
    if (Parents.empty())
      return;
    const Stmt *Parent = Parents[0].get<Stmt>();
    if (Parent == nullptr) {
      // Crossed out of statements (e.g. into a VarDecl); keep climbing
      // through the declaration to its enclosing statement.
      if (const auto *ParentDecl = Parents[0].get<Decl>()) {
        const auto DeclParents = Ctx.getParents(*ParentDecl);
        if (DeclParents.empty())
          return;
        Parent = DeclParents[0].get<Stmt>();
        if (Parent == nullptr)
          return;
      } else {
        return;
      }
    }
    const Stmt *Body = nullptr;
    if (const auto *For = dyn_cast<ForStmt>(Parent))
      Body = For->getBody();
    else if (const auto *While = dyn_cast<WhileStmt>(Parent))
      Body = While->getBody();
    else if (const auto *Do = dyn_cast<DoStmt>(Parent))
      Body = Do->getBody();
    else if (const auto *Range = dyn_cast<CXXForRangeStmt>(Parent))
      Body = Range->getBody();
    if (Body != nullptr && Node == Body) {
      diag(Ctor->getBeginLoc(),
           "risk-stack engine constructed inside a loop body: engines "
           "(ReachTubeComputer/StiCalculator/RiskMonitor) are immutable and "
           "validate/build on construction — hoist the engine out of the "
           "loop and reuse a core::RiskSession per stream (DESIGN.md §14)");
      return;
    }
    Node = Parent;
  }
}

} // namespace clang::tidy::iprism
