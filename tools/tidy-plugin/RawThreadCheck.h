// iprism-raw-thread
//
// Bans std::thread / std::jthread and std::async outside
// src/common/thread_pool.*. Concurrency goes through common::ThreadPool /
// common::parallel_for_each so the serial fallback, exception propagation,
// shutdown-join, and the determinism contract (index-owned results,
// DESIGN.md §8) stay centralized.
//
// Matching the desugared type catches thread members hidden behind aliases
// and typedefs that the regex rule this replaces could not see.
//
// Options:
//   AllowedFilesRegex — files exempt from the ban
//                       (default: /src/common/thread_pool\.(hpp|cpp)$).
#ifndef IPRISM_TIDY_PLUGIN_RAW_THREAD_CHECK_H
#define IPRISM_TIDY_PLUGIN_RAW_THREAD_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class RawThreadCheck : public ClangTidyCheck {
public:
  RawThreadCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_RAW_THREAD_CHECK_H
