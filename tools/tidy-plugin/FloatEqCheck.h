// iprism-float-eq
//
// Flags ==/!= where either operand is of floating-point type, anywhere
// outside src/common/float_eq.hpp. Exact floating comparison is almost
// always a bug in the risk pipeline (accumulated STI ratios, integrated
// states); use common::near() — or, where exact comparison is genuinely
// meant (clamped-to-zero sentinels), suppress with
// NOLINT(iprism-float-eq) plus a justification.
//
// Strictly stronger than the regex rule it replaces, which only saw
// comparisons against floating *literals*: this check sees
// variable-vs-variable comparisons, comparisons hidden behind typedefs,
// and comparisons in templates once they are instantiated with a
// floating-point type.
//
// Options:
//   AllowedFilesRegex — files exempt from the ban
//                       (default: /src/common/float_eq\.hpp$).
#ifndef IPRISM_TIDY_PLUGIN_FLOAT_EQ_CHECK_H
#define IPRISM_TIDY_PLUGIN_FLOAT_EQ_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class FloatEqCheck : public ClangTidyCheck {
public:
  FloatEqCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_FLOAT_EQ_CHECK_H
