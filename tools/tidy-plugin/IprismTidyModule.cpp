// Loadable clang-tidy module exposing the iprism-* checks.
//
//   clang-tidy --load=libIprismTidyChecks.so --checks=-*,iprism-* ...
//
// Four of these checks are the compiled successors of rules that
// tools/iprism_lint.py used to enforce with regexes (see each check's
// header for what it adds over the regex); iprism-simd-discipline guards
// the batched-kernel determinism contract (DESIGN.md §13). tools/run_tidy.sh loads the
// plugin automatically when the `tidy` CMake preset has built it, and the
// `lint.tidy-plugin` / `lint.tidy-fixtures` ctest targets gate on it.
#include "FloatEqCheck.h"
#include "NoUnorderedInCoreCheck.h"
#include "RawThreadCheck.h"
#include "RngDisciplineCheck.h"
#include "SessionDisciplineCheck.h"
#include "SimdDisciplineCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace iprism {

class IprismModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoUnorderedInCoreCheck>(
        "iprism-no-unordered-in-core");
    CheckFactories.registerCheck<RngDisciplineCheck>("iprism-rng-discipline");
    CheckFactories.registerCheck<FloatEqCheck>("iprism-float-eq");
    CheckFactories.registerCheck<RawThreadCheck>("iprism-raw-thread");
    CheckFactories.registerCheck<SimdDisciplineCheck>("iprism-simd-discipline");
    CheckFactories.registerCheck<SessionDisciplineCheck>(
        "iprism-session-discipline");
  }
};

} // namespace iprism

// Static registration: the loader runs this translation unit's initializers
// when the shared object is dlopen'd by the host clang-tidy binary.
static ClangTidyModuleRegistry::Add<iprism::IprismModule>
    IprismModuleInit("iprism-module",
                     "iPrism repo-invariant checks (compiled successors of "
                     "tools/iprism_lint.py rules).");

} // namespace clang::tidy
