#include "SimdDisciplineCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Pragma.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Config/llvm-config.h"

#include <memory>

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {
namespace {

/// Vendor/architecture intrinsics headers. The *intrin*.h pattern covers the
/// whole x86 family (immintrin, x86intrin, xmmintrin ... avx512vlintrin) plus
/// MSVC's intrin.h; the named entries cover ARM, POWER, and RISC-V.
bool isIntrinsicsHeader(llvm::StringRef FileName) {
  static const llvm::Regex Banned("(^|/)("
                                  "[a-z0-9_]*intrin[a-z0-9_]*\\.h|"
                                  "arm_neon\\.h|arm_sve\\.h|arm_fp16\\.h|arm_acle\\.h|"
                                  "altivec\\.h|riscv_vector\\.h"
                                  ")$");
  return Banned.match(FileName);
}

/// Vectorization-forcing pragma directives. Matched against the raw source
/// line so the whole directive text is visible regardless of how the host
/// preprocessor tokenizes (or ignores) the pragma namespace.
bool isVectorizePragma(llvm::StringRef Line) {
  static const llvm::Regex OmpSimd("^#[ \t]*pragma[ \t]+omp[ \t].*simd");
  static const llvm::Regex GccIvdep("^#[ \t]*pragma[ \t]+GCC[ \t]+ivdep");
  static const llvm::Regex ClangLoop(
      "^#[ \t]*pragma[ \t]+clang[ \t]+loop[ \t].*(vectorize|interleave)");
  return OmpSimd.match(Line) || GccIvdep.match(Line) || ClangLoop.match(Line);
}

class SimdDisciplinePPCallbacks : public PPCallbacks {
public:
  SimdDisciplinePPCallbacks(SimdDisciplineCheck &Check, const SourceManager &SM)
      : Check(Check), SM(SM) {}

  // PPCallbacks::InclusionDirective changed signature across LLVM majors:
  // <=14 passes const FileEntry*, 15 Optional<FileEntryRef>, 16-18
  // OptionalFileEntryRef, and 19 split `Imported` into
  // (SuggestedModule, ModuleImported). Only HashLoc and FileName matter
  // here; every variant forwards to handleInclude.
#if LLVM_VERSION_MAJOR >= 19
  void InclusionDirective(SourceLocation HashLoc, const Token &IncludeTok,
                          StringRef FileName, bool IsAngled,
                          CharSourceRange FilenameRange, OptionalFileEntryRef File,
                          StringRef SearchPath, StringRef RelativePath,
                          const Module *SuggestedModule, bool ModuleImported,
                          SrcMgr::CharacteristicKind FileType) override {
    handleInclude(HashLoc, FileName);
  }
#elif LLVM_VERSION_MAJOR >= 16
  void InclusionDirective(SourceLocation HashLoc, const Token &IncludeTok,
                          StringRef FileName, bool IsAngled,
                          CharSourceRange FilenameRange, OptionalFileEntryRef File,
                          StringRef SearchPath, StringRef RelativePath,
                          const Module *Imported,
                          SrcMgr::CharacteristicKind FileType) override {
    handleInclude(HashLoc, FileName);
  }
#elif LLVM_VERSION_MAJOR == 15
  void InclusionDirective(SourceLocation HashLoc, const Token &IncludeTok,
                          StringRef FileName, bool IsAngled,
                          CharSourceRange FilenameRange, Optional<FileEntryRef> File,
                          StringRef SearchPath, StringRef RelativePath,
                          const Module *Imported,
                          SrcMgr::CharacteristicKind FileType) override {
    handleInclude(HashLoc, FileName);
  }
#else
  void InclusionDirective(SourceLocation HashLoc, const Token &IncludeTok,
                          StringRef FileName, bool IsAngled,
                          CharSourceRange FilenameRange, const FileEntry *File,
                          StringRef SearchPath, StringRef RelativePath,
                          const Module *Imported,
                          SrcMgr::CharacteristicKind FileType) override {
    handleInclude(HashLoc, FileName);
  }
#endif

  void PragmaDirective(SourceLocation Loc, PragmaIntroducerKind Introducer) override {
    if (Introducer != PIK_HashPragma)
      return;
    if (!shouldReport(SM, Loc, Check.allowedFiles()))
      return;
    bool Invalid = false;
    const char *Data = SM.getCharacterData(Loc, &Invalid);
    if (Invalid)
      return;
    const char *End = Data;
    while (*End != '\0' && *End != '\n' && *End != '\r')
      ++End;
    if (!isVectorizePragma(llvm::StringRef(Data, static_cast<size_t>(End - Data))))
      return;
    Check.diag(Loc,
               "vectorization-forcing pragma outside the batch kernel TUs: "
               "forced vectorization can reassociate or re-round, breaking "
               "the bit-identity contract (DESIGN.md §13)");
  }

private:
  void handleInclude(SourceLocation HashLoc, llvm::StringRef FileName) {
    if (!isIntrinsicsHeader(FileName))
      return;
    if (!shouldReport(SM, HashLoc, Check.allowedFiles()))
      return;
    Check.diag(HashLoc,
               "vendor intrinsics header outside the batch kernel TUs: "
               "hand-vectorized code bypasses the IPRISM_ENABLE_SIMD switch "
               "and the bit-identity contract (DESIGN.md §13)");
  }

  SimdDisciplineCheck &Check;
  const SourceManager &SM;
};

} // namespace

SimdDisciplineCheck::SimdDisciplineCheck(llvm::StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(Options.get(
          "AllowedFilesRegex",
          "/src/(geom/batch[^/]*|dynamics/[^/]*_batch[^/]*)\\.(hpp|cpp)$")),
      AllowedFiles(AllowedFilesRegex) {}

void SimdDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void SimdDisciplineCheck::registerPPCallbacks(const SourceManager &SM, Preprocessor *PP,
                                              Preprocessor *ModuleExpanderPP) {
  PP->addPPCallbacks(std::make_unique<SimdDisciplinePPCallbacks>(*this, SM));
}

void SimdDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // __attribute__((target(...))) / [[gnu::target(...)]] forks codegen per
  // CPU feature set — per-function, invisible to the build-flag switch.
  Finder->addMatcher(functionDecl(hasAttr(attr::Target)).bind("target-fn"), this);
}

void SimdDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("target-fn");
  if (Fn == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (!shouldReport(SM, Fn->getLocation(), AllowedFiles))
    return;
  diag(Fn->getLocation(),
       "per-function target attribute outside the batch kernel TUs: "
       "feature-gated codegen bypasses the IPRISM_ENABLE_SIMD switch and "
       "the bit-identity contract (DESIGN.md §13)");
}

} // namespace clang::tidy::iprism
