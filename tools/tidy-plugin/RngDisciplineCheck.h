// iprism-rng-discipline
//
// Flags any std::random_device, rand()/srand(), or standard-library random
// engine construction outside src/common/rng.*. Every stochastic component
// must take an explicit common::Rng so experiments replay bit-for-bit from
// a seed (DESIGN.md §7).
//
// The regex rule this replaces only knew the spellings `std::mt19937` and
// `std::random_device`; matching the desugared type catches every engine
// alias (mt19937_64, minstd_rand, ranlux48, knuth_b, ...) and any local
// typedef of them.
//
// Options:
//   AllowedFilesRegex — files exempt from the ban
//                       (default: /src/common/rng\.(hpp|cpp)$).
#ifndef IPRISM_TIDY_PLUGIN_RNG_DISCIPLINE_CHECK_H
#define IPRISM_TIDY_PLUGIN_RNG_DISCIPLINE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class RngDisciplineCheck : public ClangTidyCheck {
public:
  RngDisciplineCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_RNG_DISCIPLINE_CHECK_H
