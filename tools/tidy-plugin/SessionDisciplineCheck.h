// iprism-session-discipline
//
// Flags construction of the risk-stack *engines* — core::ReachTubeComputer,
// core::StiCalculator, core::RiskMonitor — inside a loop body. Engines are
// immutable after construction (params validated, kernels built, DESIGN.md
// §14): build one outside the loop and hand it a core::RiskSession per
// stream. Constructing an engine per tick silently rebuilds all of that
// every iteration and discards the session's warm scratch — the exact
// M-engines/M-pools regression the engine/session split removed.
//
// Sessions are the per-iteration object; constructing a RiskSession in a
// loop is deliberate and stays silent.
//
// Options:
//   AllowedFilesRegex — files exempt from the check (default: none; the
//                       clean run covers src/ only, where no exemption is
//                       legitimate).
#ifndef IPRISM_TIDY_PLUGIN_SESSION_DISCIPLINE_CHECK_H
#define IPRISM_TIDY_PLUGIN_SESSION_DISCIPLINE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

#include <string>

namespace clang::tidy::iprism {

class SessionDisciplineCheck : public ClangTidyCheck {
public:
  SessionDisciplineCheck(llvm::StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace clang::tidy::iprism

#endif // IPRISM_TIDY_PLUGIN_SESSION_DISCIPLINE_CHECK_H
