#include "FloatEqCheck.h"

#include "IprismCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::iprism {

FloatEqCheck::FloatEqCheck(llvm::StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(
          Options.get("AllowedFilesRegex", "/src/common/float_eq\\.hpp$")),
      AllowedFiles(AllowedFilesRegex) {}

void FloatEqCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void FloatEqCheck::registerMatchers(MatchFinder *Finder) {
  // Builtin ==/!= with a floating operand. Implicit conversions count: in
  // `d == 1` the literal is converted to double, and the comparison is a
  // floating comparison. Template bodies are matched through their
  // instantiations (a dependent `a == b` becomes a concrete floating
  // comparison once T = double), which is exactly when it is dangerous.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("==", "!="),
                     hasEitherOperand(expr(hasType(realFloatingPointType()))))
          .bind("cmp"),
      this);
}

void FloatEqCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cmp = Result.Nodes.getNodeAs<BinaryOperator>("cmp");
  if (Cmp == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = Cmp->getOperatorLoc();
  if (!shouldReport(SM, Loc, AllowedFiles))
    return;
  diag(Loc,
       "exact floating-point %0 comparison: use common::near() "
       "(src/common/float_eq.hpp), or NOLINT(iprism-float-eq) with a "
       "justification when exact comparison is intended")
      << Cmp->getOpcodeStr();
}

} // namespace clang::tidy::iprism
