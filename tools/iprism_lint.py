#!/usr/bin/env python3
"""Repo-specific invariant lint for iPrism.

Generic tools (clang-tidy, compiler warnings) cannot see project conventions;
this lint enforces the ones that keep the risk monitor trustworthy:

  params-validated  Every top-level ``struct *Params`` / ``struct *Config``
                    declared in a public header must be validated by an
                    ``IPRISM_CHECK`` somewhere in src/ whose message is
                    prefixed with the struct name (the repo's established
                    convention, e.g. "ReachTubeParams: dt must be positive").
                    A config struct nobody validates is a config struct whose
                    invalid values travel silently into Algorithm 1.

  header-hygiene    Every header under src/ carries ``#pragma once`` and
                    lives in the ``iprism`` namespace.

  telemetry-discipline
                    No raw ``std::chrono::*_clock::now()`` timing outside
                    ``src/common/telemetry`` and ``bench/bench_util``
                    (scanned over src/ AND bench/). Ad-hoc clock reads
                    bypass the MetricsRegistry (DESIGN.md §11): their
                    numbers never reach ``--telemetry`` output, and they
                    stay in the binary when telemetry is compiled out.
                    Time code through IPRISM_SCOPED_TIMER /
                    IPRISM_HISTOGRAM_NS, or bench::WallTimer for bench
                    table reporting.

Four former rules now live in the clang-tidy plugin (tools/tidy-plugin/),
which sees the AST instead of regexes and therefore has no false positives
on comments, strings, or macro bodies:

  rng-discipline        -> iprism-rng-discipline
  thread-discipline     -> iprism-raw-thread
  container-discipline  -> iprism-no-unordered-in-core
  float-eq              -> iprism-float-eq

Run them via ``tools/run_tidy.sh`` (or the ``tidy`` CMake preset); suppress
with ``// NOLINTNEXTLINE(iprism-<check>)``. A leftover
``iprism-lint: allow(<migrated-rule>)`` comment is reported as stale.

Suppression (for the rules still here): append
``// iprism-lint: allow(<rule>) <one-line justification>`` to the flagged
line (or the line directly above). The justification is mandatory — a bare
allow() is itself a finding.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = ("params-validated", "header-hygiene", "telemetry-discipline")

# Rules that moved into the clang-tidy plugin (tools/tidy-plugin/). Kept here
# so stale allow() comments get a pointed message instead of "unknown rule".
MIGRATED_RULES = {
    "rng-discipline": "iprism-rng-discipline",
    "thread-discipline": "iprism-raw-thread",
    "container-discipline": "iprism-no-unordered-in-core",
    "float-eq": "iprism-float-eq",
}

SUPPRESS_RE = re.compile(r"//\s*iprism-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# Top-level (column-0) config structs only: nested `struct Params` inside a
# class is owned by that class's constructor checks and named via the outer
# type's message prefix.
STRUCT_RE = re.compile(r"^struct\s+(\w+(?:Params|Config))\b", re.MULTILINE)

LINE_COMMENT_RE = re.compile(r"//.*")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')
CHAR_RE = re.compile(r"'(?:\\.|[^'\\])'")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based; 0 = whole file
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{loc}: [{self.rule}] {self.message}"


def strip_noncode(text):
    """Blanks out comments, string and char literals, preserving line count."""

    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    out_lines = []
    for line in text.splitlines():
        line = STRING_RE.sub(lambda m: " " * len(m.group(0)), line)
        line = CHAR_RE.sub(lambda m: " " * len(m.group(0)), line)
        line = LINE_COMMENT_RE.sub(lambda m: " " * len(m.group(0)), line)
        out_lines.append(line)
    return "\n".join(out_lines)


def suppressions(lines):
    """Maps 1-based line number -> (rule, justification) for allow() comments.

    An allow() on its own line covers the next line; an allow() trailing code
    covers its own line.
    """
    by_line = {}
    bare = []
    for i, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, why = m.group(1), m.group(2).strip()
        if rule in MIGRATED_RULES:
            bare.append(Finding(
                "suppression", "?", i,
                f"stale allow({rule}) — this rule moved to the clang-tidy "
                f"plugin; use // NOLINTNEXTLINE({MIGRATED_RULES[rule]}) instead"))
            continue
        if rule not in RULES:
            bare.append(Finding("suppression", "?", i,
                                f"unknown rule '{rule}' in allow()"))
            continue
        if not why:
            bare.append(Finding("suppression", "?", i,
                                "allow() without a justification"))
            continue
        target = i + 1 if line.lstrip().startswith("//") else i
        by_line[(target, rule)] = why
    return by_line, bare


def check_params_validated(src, sources):
    """Config structs must have a name-prefixed IPRISM_CHECK somewhere."""
    findings = []
    all_text = "".join(text for _, text in sources)
    for path, text in sources:
        if path.suffix != ".hpp":
            continue
        for m in STRUCT_RE.finditer(text):
            name = m.group(1)
            line = text.count("\n", 0, m.start()) + 1
            lines = text.splitlines()
            sup, _ = suppressions(lines)
            if (line, "params-validated") in sup:
                continue
            if f'"{name}:' not in all_text:
                findings.append(Finding(
                    "params-validated", path.relative_to(src.parent), line,
                    f"struct {name} has no IPRISM_CHECK validation "
                    f'(no check message starting with "{name}: ..." found in src/)'))
    return findings


def check_header_hygiene(src, sources):
    findings = []
    for path, text in sources:
        if path.suffix != ".hpp":
            continue
        rel = path.relative_to(src.parent)
        lines = text.splitlines()
        sup, _ = suppressions(lines)
        if "#pragma once" not in text and (0, "header-hygiene") not in sup:
            findings.append(Finding("header-hygiene", rel, 0,
                                    "public header missing '#pragma once'"))
        if not re.search(r"namespace\s+iprism", text) and (0, "header-hygiene") not in sup:
            findings.append(Finding("header-hygiene", rel, 0,
                                    "public header does not open the iprism:: namespace"))
    return findings


CLOCK_NOW_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b")

# The only sanctioned homes for raw clock reads (relative to the repo root):
# the telemetry layer itself and the bench stopwatch built on top of it.
TELEMETRY_ALLOWED = (
    "src/common/telemetry.hpp",
    "src/common/telemetry.cpp",
    "bench/bench_util.hpp",
    "bench/bench_util.cpp",
)


def check_telemetry_discipline(root, sources):
    """Raw clock reads are confined to the telemetry layer (+ bench_util)."""
    findings = []
    for path, text in sources:
        rel = path.relative_to(root)
        if str(rel).replace("\\", "/") in TELEMETRY_ALLOWED:
            continue
        lines = text.splitlines()
        sup, _ = suppressions(lines)
        stripped = strip_noncode(text)
        for i, line in enumerate(stripped.splitlines(), start=1):
            if not CLOCK_NOW_RE.search(line):
                continue
            if (i, "telemetry-discipline") in sup:
                continue
            findings.append(Finding(
                "telemetry-discipline", rel, i,
                "raw std::chrono clock read outside src/common/telemetry — "
                "use IPRISM_SCOPED_TIMER/IPRISM_HISTOGRAM_NS (or "
                "bench::WallTimer in bench tables)"))
    return findings


def check_suppression_quality(src, sources):
    findings = []
    for path, text in sources:
        _, bad = suppressions(text.splitlines())
        for f in bad:
            f.path = path.relative_to(src.parent)
            findings.append(f)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()

    src = (args.root / "src").resolve()
    if not src.is_dir():
        print(f"iprism_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    sources = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            sources.append((path, path.read_text(encoding="utf-8")))

    # telemetry-discipline also covers bench/ (the bench mains time things
    # too); the struct/header rules stay scoped to src/'s public surface.
    timed_sources = list(sources)
    bench = (args.root / "bench").resolve()
    if bench.is_dir():
        for path in sorted(bench.rglob("*")):
            if path.suffix in (".hpp", ".cpp"):
                timed_sources.append((path, path.read_text(encoding="utf-8")))

    findings = []
    findings += check_params_validated(src, sources)
    findings += check_header_hygiene(src, sources)
    findings += check_telemetry_discipline(src.parent, timed_sources)
    findings += check_suppression_quality(src, sources)

    for f in findings:
        print(f)
    if findings:
        print(f"iprism_lint: {len(findings)} finding(s) in {len(sources)} files",
              file=sys.stderr)
        return 1
    migrated = ", ".join(f"{k} -> {v}" for k, v in MIGRATED_RULES.items())
    print(f"iprism_lint: OK ({len(sources)} files clean; "
          f"rules {', '.join(RULES)}; migrated to clang-tidy: {migrated})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
