#!/usr/bin/env bash
# Verifies the iprism clang-tidy checks against the negative fixtures in
# tests/tidy/.
#
# Usage: tools/check_tidy_fixtures.sh <libIprismTidyChecks.so>
#
# Each fixture `tests/tidy/<check_name>.cpp` (underscores for dashes) is run
# through clang-tidy with ONLY its iprism-<check-name> check enabled, and the
# set of reported warning lines must equal the set of lines marked
# `// CHECK-FLAG` — exactly. A missing diagnostic means the check regressed;
# an extra one means a false positive crept in. Both fail the test.
#
# The no-unordered-in-core fixture re-points the check's CorePathRegex at
# tests/tidy/ via --config, standing in for a src/core TU.
#
# Exit codes: 0 all fixtures match, 1 mismatch or fixture failed to compile,
# 2 usage/setup error, 77 clang-tidy not installed (ctest SKIP).
set -uo pipefail

cd "$(dirname "$0")/.."

if [[ $# -ne 1 ]]; then
  echo "usage: $0 <libIprismTidyChecks.so>" >&2
  exit 2
fi
PLUGIN="$1"
if [[ ! -f "${PLUGIN}" ]]; then
  echo "check_tidy_fixtures: plugin '${PLUGIN}' does not exist" >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "check_tidy_fixtures: ${TIDY} not found; skipping." >&2
  exit 77
fi

FIXTURES=(tests/tidy/*.cpp)
if [[ ${#FIXTURES[@]} -eq 0 || ! -e "${FIXTURES[0]}" ]]; then
  echo "check_tidy_fixtures: no fixtures under tests/tidy/" >&2
  exit 2
fi

fail=0
for fixture in "${FIXTURES[@]}"; do
  check="iprism-$(basename "${fixture}" .cpp | tr '_' '-')"

  # --config replaces any .clang-tidy on disk, so the fixture run is
  # hermetic: one check, no WarningsAsErrors, explicit scope override where
  # the check is path-scoped.
  if [[ "${check}" == "iprism-no-unordered-in-core" ]]; then
    config="{Checks: '-*,${check}', CheckOptions: [{key: '${check}.CorePathRegex', value: 'tests/tidy/'}]}"
  else
    config="{Checks: '-*,${check}'}"
  fi

  out="$("${TIDY}" --load="${PLUGIN}" --config="${config}" --quiet \
        "${fixture}" -- -std=c++20 2>&1)" || true

  if grep -q " error: " <<<"${out}"; then
    echo "FAIL ${fixture}: fixture did not compile cleanly under ${TIDY}:" >&2
    echo "${out}" >&2
    fail=1
    continue
  fi

  expected="$(grep -n 'CHECK-FLAG' "${fixture}" | cut -d: -f1 | sort -un)"
  actual="$(grep ": warning: " <<<"${out}" \
            | grep -F "$(basename "${fixture}")" \
            | sed -E 's/.*\.cpp:([0-9]+):[0-9]+: warning:.*/\1/' \
            | sort -un)"

  if [[ "${expected}" != "${actual}" ]]; then
    echo "FAIL ${fixture} [${check}]:" >&2
    echo "  expected warning lines: $(tr '\n' ' ' <<<"${expected}")" >&2
    echo "  actual warning lines:   $(tr '\n' ' ' <<<"${actual}")" >&2
    echo "--- clang-tidy output ---" >&2
    echo "${out}" >&2
    fail=1
  else
    n="$(wc -l <<<"${expected}")"
    echo "ok   ${fixture} [${check}]: ${n} expected diagnostic line(s) matched"
  fi
done

if [[ ${fail} -ne 0 ]]; then
  echo "check_tidy_fixtures: FAILED" >&2
  exit 1
fi
echo "check_tidy_fixtures: all ${#FIXTURES[@]} fixtures match"
