// Mitigation action-set ablation — the paper's §VII future-work direction:
// "The RL-based SMC has been demonstrated on braking and acceleration ...
// excluding complex maneuvers like lane changes. Executing these complex
// maneuvers requires closer integration of the RL-based SMC with the ADS to
// avoid potential conflicting decisions."
//
// This bench trains one SMC per action set on the two typologies where the
// action space plausibly matters — ghost cut-in (a lane change could dodge
// the cutter) and rear-end (acceleration is mandatory, a lane change could
// clear the chaser's path) — and reports CA%/TCR%. The lane-change actions
// override steering, so any LBC-vs-SMC integration conflicts the paper
// predicts show up directly in the rates.
//
//   ./ablation_smc_actions [--n=120] [--episodes=80] [--threads=0]
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "smc/controller.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 120);
  const int episodes = args.get_int("episodes", 80);
  const int threads = args.get_int("threads", 0);

  const scenario::ScenarioFactory factory;
  const core::StiCalculator sti;

  common::Table table("SMC action-set ablation (per-typology retraining)");
  table.set_header({"Typology", "Action set", "CA%", "TCR%", "TAS#"});

  const scenario::Typology typologies[2] = {scenario::Typology::kGhostCutIn,
                                            scenario::Typology::kRearEnd};
  const struct {
    std::string label;
    int action_count;
  } sets[] = {
      {"{No-Op, BR}", smc::kActionCountBrakeOnly},
      {"{No-Op, BR, ACC}", smc::kActionCountBrakeAccel},
      {"{No-Op, BR, ACC, LCL, LCR}", smc::kActionCountFull},
  };

  for (scenario::Typology t : typologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    const auto baseline =
        bench::run_suite(factory, suite.specs, bench::lbc_maker(), {}, threads);
    const auto train_idx = bench::select_training_spec(factory, suite.specs, sti);
    if (!train_idx) continue;

    for (const auto& set : sets) {
      smc::SmcTrainConfig cfg;
      cfg.episodes = episodes;
      cfg.action_count = set.action_count;
      if (t == scenario::Typology::kRearEnd) {
        cfg.ddqn.gamma = 0.98;
        cfg.episodes = episodes + episodes / 2;
      }
      agents::LbcAgent base;
      smc::SmcTrainer trainer(cfg);
      common::Rng jitter(0x5EED);
      std::cout << "[" << scenario::typology_name(t) << "] training " << set.label
                << "...\n";
      rl::Mlp policy = trainer.train(
          [&](int) {
            return factory.build(
                scenario::jitter_spec(suite.specs[*train_idx], 0.10, jitter));
          },
          base, nullptr);

      const auto mitigated =
          bench::run_suite(factory, suite.specs, bench::lbc_maker(),
                           bench::smc_maker(policy), threads);
      const auto s = bench::ca_summary(baseline, mitigated);
      table.add_row({std::string(scenario::typology_name(t)), set.label,
                     common::Table::num(s.ca_percent, 0),
                     common::Table::num(s.tcr_percent, 1), std::to_string(s.tas)});
    }
  }
  table.print(std::cout);
  std::cout << "\nInterpretation: the paper demonstrates {BR} / {BR, ACC}; LCL/LCR is its\n"
               "future-work extension. Lane-change overrides steer against the base\n"
               "ADS's lane keeping, so this ablation quantifies both the extra escape\n"
               "options and the ADS-integration conflict the paper anticipates.\n";
  return 0;
}
