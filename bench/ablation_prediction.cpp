// Prediction-model ablation for online STI.
//
// Offline metric characterization uses ground-truth actor trajectories; the
// SMC's online STI must use *predicted* trajectories (paper §IV-C chooses
// CVTR). This bench quantifies that substitution: at probe steps of
// recorded episodes it compares STI computed from CVTR and from a
// constant-acceleration predictor against STI computed from the recorded
// ground truth.
//
//   ./ablation_prediction [--n=40]
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dynamics/const_accel.hpp"
#include "dynamics/cvtr.hpp"

using namespace iprism;

namespace {

/// Builds per-actor forecasts at a recorded step using the given
/// two-observation predictor.
template <typename Predictor>
std::vector<core::ActorForecast> predicted_forecasts(const eval::EpisodeResult& episode,
                                                     int step, const Predictor& predictor,
                                                     double horizon, double dt) {
  std::vector<core::ActorForecast> out;
  const common::Seconds t{step * episode.dt};
  const common::Seconds t_prev{std::max(t.value() - episode.dt, 0.0)};
  for (const auto& actor : episode.actors) {
    if (actor.is_ego) continue;
    const auto prev = actor.trajectory.at(t_prev);
    const auto now = actor.trajectory.at(t);
    core::ActorForecast f;
    f.id = actor.id;
    f.dims = actor.dims;
    f.trajectory = step > 0
                       ? predictor.predict(prev, now, common::Seconds{episode.dt}, t,
                                           common::Seconds{horizon}, common::Seconds{dt})
                       : predictor.predict(now, t, common::Seconds{horizon},
                                           common::Seconds{dt});
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 40);

  const scenario::ScenarioFactory factory;
  const core::StiCalculator sti;
  const double horizon = sti.tube_computer().params().horizon;
  const double dt = sti.tube_computer().params().dt;
  const dynamics::CvtrPredictor cvtr;
  const dynamics::ConstantAccelPredictor const_accel;

  common::Table table("Prediction-model ablation — |STI_pred - STI_ground-truth|");
  table.set_header({"Typology", "CVTR mean|d|", "CVTR p95|d|", "ConstAccel mean|d|",
                    "ConstAccel p95|d|", "probes"});

  for (scenario::Typology t : scenario::kAllTypologies) {
    if (t == scenario::Typology::kFrontAccident) continue;
    const auto suite =
        scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    std::vector<double> cvtr_err;
    std::vector<double> ca_err;
    for (const auto& spec : suite.specs) {
      agents::LbcAgent lbc;
      const auto episode = eval::run_episode(factory.build(spec), lbc);
      for (int frac = 1; frac <= 4; ++frac) {
        const int step = episode.samples * frac / 5;
        const auto scene = episode.snapshot_at(step);
        const double truth = sti.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                                          episode.ground_truth_forecasts(step));
        const double with_cvtr =
            sti.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                         predicted_forecasts(episode, step, cvtr, horizon, dt));
        const double with_ca =
            sti.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                         predicted_forecasts(episode, step, const_accel, horizon, dt));
        cvtr_err.push_back(std::abs(with_cvtr - truth));
        ca_err.push_back(std::abs(with_ca - truth));
      }
    }
    if (cvtr_err.empty()) {
      // No episodes sampled (e.g. --n=0): there is no p95 of nothing, and
      // common::percentile now rejects empty input rather than feigning 0.
      table.add_row({std::string(scenario::typology_name(t)), "-", "-", "-", "-", "0"});
      continue;
    }
    table.add_row({std::string(scenario::typology_name(t)),
                   common::Table::num(common::mean_of(cvtr_err), 3),
                   common::Table::num(common::percentile(cvtr_err, 95), 3),
                   common::Table::num(common::mean_of(ca_err), 3),
                   common::Table::num(common::percentile(ca_err, 95), 3),
                   std::to_string(cvtr_err.size())});
  }
  table.print(std::cout);
  std::cout << "\nInterpretation: the paper's simplifying assumption — near-term actor\n"
               "trajectories predicted by CVTR are 'estimated correctly' for SMC use —\n"
               "holds when these errors are small relative to the STI decision scale\n"
               "(~0.3+ before mitigation in Fig. 4/5).\n";
  return 0;
}
