// Reproduces the paper's §V-C roundabout extension: the ghost cut-in
// typology transplanted onto a roundabout (the map RIP's authors used to
// demonstrate it), comparing RIP against RIP+iPrism. The SMC policy is the
// one trained on the straight-road ghost cut-in — the point is transfer.
//
//   ./roundabout_rip [--n=150] [--episodes=80] [--policy-dir=.]
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "smc/controller.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 150);
  const int episodes = args.get_int("episodes", 80);
  const std::string policy_dir = args.get_string("policy-dir", ".");

  const scenario::ScenarioFactory factory;
  const auto t = scenario::Typology::kGhostCutIn;
  const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);

  bench::SmcPipelineOptions options;
  options.episodes = episodes;
  const auto policy = bench::load_or_train_smc(
      factory, suite.specs, t, options, bench::policy_cache_path(policy_dir, t, true));
  if (!policy) {
    std::cout << "no baseline accidents to train from\n";
    return 1;
  }

  // Roundabout worlds have shorter useful horizons; cap the episode.
  eval::RunOptions run;
  run.max_seconds = 25.0;
  run.end_margin = 8.0;

  // The roundabout scenario places the ego in lane 0 (the outer ring).
  agents::RipAgent::Params rip_params;
  rip_params.route_lane = 0;

  int rip_accidents = 0;
  int iprism_accidents = 0;
  int prevented = 0;
  for (const auto& spec : suite.specs) {
    agents::RipAgent rip1(rip_params);
    const auto base = eval::run_episode(factory.build_roundabout(spec), rip1, nullptr, run);
    agents::RipAgent rip2(rip_params);
    smc::SmcController controller(*policy);
    const auto mitigated =
        eval::run_episode(factory.build_roundabout(spec), rip2, &controller, run);
    if (base.ego_accident) ++rip_accidents;
    if (mitigated.ego_accident) ++iprism_accidents;
    if (base.ego_accident && !mitigated.ego_accident) ++prevented;
  }

  common::Table table("Roundabout + ghost cut-in (§V-C extension)");
  table.set_header({"Agent", "Collisions", "TCR%"});
  table.add_row({"RIP", std::to_string(rip_accidents),
                 common::Table::num(100.0 * rip_accidents / suite.specs.size(), 1)});
  table.add_row({"RIP+iPrism", std::to_string(iprism_accidents),
                 common::Table::num(100.0 * iprism_accidents / suite.specs.size(), 1)});
  table.print(std::cout);
  std::cout << "iPrism prevented " << prevented << " of " << rip_accidents
            << " RIP accidents ("
            << common::Table::num(
                   rip_accidents ? 100.0 * prevented / rip_accidents : 0.0, 1)
            << "%)\n";
  std::cout << "\nPaper reference: RIP collides in 84.3% of roundabout scenarios;\n"
               "RIP+iPrism in 68.6% (18.6% of RIP's accidents mitigated).\n";
  return 0;
}
