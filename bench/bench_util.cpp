#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string_view>

#include "common/check.hpp"
#include "core/monitor.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/stats.hpp"
#include "eval/pkl_training.hpp"
#include "eval/series.hpp"
#include "smc/controller.hpp"
#include "ubench.hpp"

// Sanitizer instrumentation detection: gcc defines __SANITIZE_*__, clang
// exposes __has_feature. Checked in addition to NDEBUG because the
// asan/tsan presets build RelWithDebInfo — NDEBUG alone calls those
// "release".
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IPRISM_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define IPRISM_BENCH_SANITIZED 1
#endif
#endif

namespace iprism::bench {

const char* nonrelease_build_reason() {
#if !defined(NDEBUG)
  return "built without NDEBUG (assertions on, optimization uncertain)";
#elif defined(IPRISM_BENCH_SANITIZED)
  return "sanitizer instrumentation (asan/ubsan/tsan preset)";
#elif defined(IPRISM_ENABLE_DCHECKS)
  return "hot-path debug checks enabled (IPRISM_ENABLE_DCHECKS)";
#else
  // The benchmark harness itself must be a release build too: a debug
  // harness library is exactly how the original BENCH_tube_hotpath.json
  // baseline got its "library_build_type": "debug" taint. ubench compiles
  // under the same preset as this TU, so this only fires if the build system
  // regresses — but the guard is the contract, not the build setup.
  if (std::string_view(ubench::library_build_type()) != "release") {
    return "benchmark harness library built non-release (ubench reports debug)";
  }
  return "";
#endif
}

bool release_benchmark_build() { return nonrelease_build_reason()[0] == '\0'; }

void require_release_guard(int argc, const char* const* argv) {
  bool require = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--require-release") require = true;
  }
  if (release_benchmark_build()) return;
  std::cerr
      << "\n"
      << "=====================================================================\n"
      << "  WARNING: this is not a release benchmark build:\n"
      << "    " << nonrelease_build_reason() << "\n"
      << "  Its timings do not reflect the library's performance and MUST\n"
      << "  NOT be recorded as a baseline. Re-build with the release preset:\n"
      << "    cmake --preset release && cmake --build --preset release\n"
      << "=====================================================================\n"
      << std::endl;
  if (require) {
    std::cerr << "--require-release: refusing to run a non-release benchmark build."
              << std::endl;
    std::exit(3);
  }
}

void WallTimer::restart() { start_ns_ = common::telemetry::trace_now_ns(); }

double WallTimer::elapsed_ms() const {
  return static_cast<double>(common::telemetry::trace_now_ns() - start_ns_) / 1e6;
}

void maybe_write_telemetry(const common::CliArgs& args,
                           const scenario::ScenarioFactory& factory) {
  if (args.get_string("telemetry", "").empty()) return;
  // Streaming-monitor profile: the trace should show the full pipeline
  // under realistic monitor traffic, whatever the bench itself computes.
  // At least two pool threads so thread-pool spans are present even when
  // the bench ran with --threads=0.
  core::RiskMonitorParams params;
  params.tube.num_threads = std::max(args.get_int("threads", 0), 2);
  core::RiskMonitor monitor(params);
  const auto suite =
      scenario::generate_suite(factory, scenario::kAllTypologies[0], 2, kSuiteSeed);
  for (const auto& spec : suite.specs) {
    sim::World world = factory.build(spec);
    agents::LbcAgent agent;
    const int max_steps = static_cast<int>(10.0 / world.dt());
    for (int step = 0; step < max_steps; ++step) {
      monitor.update(world);
      world.step(agent.act(world));
      if (world.ego_collided()) break;
    }
  }
  maybe_write_telemetry(args);
}

void maybe_write_telemetry(const common::CliArgs& args) {
  const std::string path = args.get_string("telemetry", "");
  if (path.empty()) return;
#if !IPRISM_TELEMETRY_ENABLED
  std::cerr << "--telemetry=" << path
            << ": this build compiled telemetry out (IPRISM_ENABLE_TELEMETRY=OFF); "
               "the trace will contain no spans or metrics.\n";
#endif
  if (common::telemetry::MetricsRegistry::instance().write_chrome_trace_file(path)) {
    std::cout << "telemetry written to " << path
              << " (load in Chrome: about://tracing or ui.perfetto.dev)\n";
  } else {
    std::cerr << "--telemetry=" << path << ": could not open file for writing\n";
  }
}

int strip_require_release_flag(int argc, char** argv) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string_view(argv[i]) == "--require-release") continue;
    argv[out++] = argv[i];
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  return out;
}

AgentMaker lbc_maker() {
  return [] { return std::make_unique<agents::LbcAgent>(); };
}

AgentMaker rip_maker() {
  return [] { return std::make_unique<agents::RipAgent>(); };
}

ControllerMaker aca_maker() {
  return [] { return std::make_unique<agents::TtcAcaController>(); };
}

ControllerMaker smc_maker(const rl::Mlp& policy) {
  return [&policy] { return std::make_unique<smc::SmcController>(policy); };
}

double SuiteOutcome::mean_first_mitigation() const {
  common::RunningStat stat;
  for (const auto& t : first_mitigation) {
    if (t) stat.add(*t);
  }
  return stat.mean();
}

SuiteOutcome run_suite(const scenario::ScenarioFactory& factory,
                       const std::vector<scenario::ScenarioSpec>& specs,
                       const AgentMaker& agent, const ControllerMaker& controller,
                       int num_threads) {
  SuiteOutcome out;
  out.scenarios = static_cast<int>(specs.size());

  // Episodes are index-owned: each worker touches only slot i. Accident
  // flags are staged in a byte vector because concurrent writes to distinct
  // std::vector<bool> elements would race on the shared packing word.
  std::vector<unsigned char> accident(specs.size(), 0);
  out.first_mitigation.assign(specs.size(), std::nullopt);

  std::optional<common::ThreadPool> pool;
  if (num_threads > 0) pool.emplace(static_cast<std::size_t>(num_threads));
  common::parallel_for_each(pool ? &*pool : nullptr, specs.size(), [&](std::size_t i) {
    IPRISM_SCOPED_TIMER("bench.episode", "bench");
    auto driving = agent();
    std::unique_ptr<agents::MitigationController> overlay;
    if (controller) overlay = controller();
    const eval::EpisodeResult r =
        eval::run_episode(factory.build(specs[i]), *driving, overlay.get());
    accident[i] = r.ego_accident ? 1 : 0;
    out.first_mitigation[i] = r.first_mitigation_time;
  });

  // Index-ordered aggregation: identical to the serial loop's bookkeeping.
  out.accident_flags.reserve(specs.size());
  for (unsigned char flag : accident) {
    out.accident_flags.push_back(flag != 0);
    if (flag != 0) ++out.accidents;
  }
  return out;
}

CaSummary ca_summary(const SuiteOutcome& baseline, const SuiteOutcome& mitigated) {
  IPRISM_CHECK(baseline.scenarios == mitigated.scenarios,
               "ca_summary: outcome sizes differ");
  CaSummary s;
  s.tas = baseline.accidents;
  for (std::size_t i = 0; i < baseline.accident_flags.size(); ++i) {
    if (baseline.accident_flags[i] && !mitigated.accident_flags[i]) ++s.ca;
  }
  s.ca_percent = s.tas > 0 ? 100.0 * s.ca / s.tas : 0.0;
  s.tcr_percent =
      mitigated.scenarios > 0 ? 100.0 * mitigated.accidents / mitigated.scenarios : 0.0;
  return s;
}

std::optional<std::size_t> select_training_spec(const scenario::ScenarioFactory& factory,
                                                const std::vector<scenario::ScenarioSpec>& specs,
                                                const core::StiCalculator& sti,
                                                int max_checked,
                                                double min_accident_time) {
  std::optional<std::size_t> best;
  double best_score = -1.0;
  int checked = 0;
  for (std::size_t i = 0; i < specs.size() && checked < max_checked; ++i) {
    agents::LbcAgent lbc;
    const eval::EpisodeResult r = eval::run_episode(factory.build(specs[i]), lbc);
    if (!r.ego_accident || r.accident_time < min_accident_time) continue;
    ++checked;
    common::RunningStat window;
    const int back = static_cast<int>(2.0 / r.dt);  // last two seconds
    for (int step = std::max(0, r.accident_step - back); step <= r.accident_step;
         step += 4) {
      const auto scene = r.snapshot_at(step);
      window.add(sti.combined(*scene.map, scene.ego.state, common::Seconds{scene.time},
                              r.ground_truth_forecasts(step)));
    }
    if (window.count() > 0 && window.mean() > best_score) {
      best_score = window.mean();
      best = i;
    }
  }
  return best;
}

rl::Mlp train_smc_for(const scenario::ScenarioFactory& factory,
                      const scenario::ScenarioSpec& training_spec,
                      scenario::Typology typology, const SmcPipelineOptions& options,
                      smc::SmcTrainStats* stats) {
  smc::SmcTrainConfig cfg;
  cfg.episodes = options.episodes;
  cfg.reward.use_sti = options.use_sti;
  cfg.seed = options.seed;
  if (typology == scenario::Typology::kRearEnd) {
    // §V-C "Extension to other mitigation actions": rear-end needs the
    // acceleration action and benefits from a longer credit horizon.
    cfg.action_count = smc::kActionCountBrakeAccel;
    cfg.ddqn.gamma = 0.98;
    cfg.episodes = options.episodes + options.episodes / 2;
  } else {
    cfg.action_count = smc::kActionCountBrakeOnly;
  }

  agents::LbcAgent base;
  smc::SmcTrainer trainer(cfg);
  common::Rng jitter_rng(options.seed ^ 0x5EEDULL);
  return trainer.train(
      [&](int) {
        return factory.build(scenario::jitter_spec(training_spec, options.jitter, jitter_rng));
      },
      base, stats);
}

std::string policy_cache_path(const std::string& dir, scenario::Typology typology,
                              bool use_sti) {
  std::string name(scenario::typology_name(typology));
  for (char& c : name) {
    if (c == ' ') c = '_';
  }
  return dir + "/smc_policy_" + name + (use_sti ? "" : "_no_sti") + ".txt";
}

std::optional<rl::Mlp> load_or_train_smc(const scenario::ScenarioFactory& factory,
                                         const std::vector<scenario::ScenarioSpec>& specs,
                                         scenario::Typology typology,
                                         const SmcPipelineOptions& options,
                                         const std::string& cache_path) {
  if (!cache_path.empty()) {
    std::ifstream in(cache_path);
    if (in) return rl::Mlp::load(in);
  }
  const core::StiCalculator sti;
  const auto idx = select_training_spec(factory, specs, sti);
  if (!idx) return std::nullopt;
  rl::Mlp policy = train_smc_for(factory, specs[*idx], typology, options);
  if (!cache_path.empty()) {
    std::ofstream out(cache_path);
    if (out) policy.save(out);
  }
  return policy;
}

core::PklWeights fit_pkl_on(const scenario::ScenarioFactory& factory,
                            const std::vector<scenario::Typology>& typologies,
                            int scenarios_per_typology, std::uint64_t seed) {
  const core::PklMetric metric;  // prior weights; used only to roll candidates
  std::vector<core::PklTrainingExample> data;
  for (scenario::Typology t : typologies) {
    const auto suite = scenario::generate_suite(factory, t, scenarios_per_typology, seed);
    for (const auto& spec : suite.specs) {
      agents::LbcAgent lbc;
      const eval::EpisodeResult r = eval::run_episode(factory.build(spec), lbc);
      auto examples = eval::collect_pkl_examples(r, metric, /*stride=*/8);
      data.insert(data.end(), std::make_move_iterator(examples.begin()),
                  std::make_move_iterator(examples.end()));
    }
  }
  IPRISM_CHECK(!data.empty(), "fit_pkl_on: no training demonstrations collected");
  common::Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  return core::fit_pkl_weights(data, /*epochs=*/8, /*learning_rate=*/0.02, rng);
}

}  // namespace iprism::bench
