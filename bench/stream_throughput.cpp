// Multi-stream serving throughput (DESIGN.md §14).
//
// Measures eval::StreamRunner driving M independent scenario streams — each
// a (world, session, monitor loop) triple against one shared const engine —
// over the process-wide thread pool, vs the same streams strictly serially.
// Every stream performs the identical fixed amount of work (collision stop
// disabled, fixed horizon), so the per-iteration cost scales exactly with M
// and the concurrent/serial ratio reads as stream-level parallel speedup
// (~1.0, i.e. within noise, on a single-core CI box).
//
// Determinism is the precondition for the comparison: main() verifies the
// concurrent run is bit-identical to the serial reference before any timing,
// and refuses to record otherwise (the tests/test_stream_runner.cpp contract,
// re-checked at the recording site).
//
// Recorded as BENCH_stream_throughput.json from the release preset:
//   ./stream_throughput --require-release \
//     --benchmark_out=BENCH_stream_throughput.json --benchmark_out_format=json
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "eval/stream_runner.hpp"
#include "roadmap/straight_road.hpp"
#include "ubench.hpp"

using namespace iprism;

namespace {

dynamics::VehicleState state(double x, double y, double speed) {
  dynamics::VehicleState s;
  s.x = x;
  s.y = y;
  s.speed = speed;
  return s;
}

/// Deterministic in the index: a three-lane wall ahead of the ego, one metre
/// further per stream, so every stream is a distinct live threat.
sim::World stream_world(std::size_t index) {
  sim::World w(std::make_shared<roadmap::StraightRoad>(3, 3.5, 500.0), 0.1);
  w.add_ego(state(50, 5.25, 10));
  const double gap = 12.0 + static_cast<double>(index);
  for (double y : {1.75, 5.25, 8.75}) {
    sim::Actor blocker;
    blocker.kind = sim::ActorKind::kVehicle;
    blocker.state = state(50 + gap + 4.5, y, 0.0);
    w.add_actor(std::move(blocker));
  }
  return w;
}

eval::StreamRunner::Options bench_options() {
  eval::StreamRunner::Options options;
  // Fixed work per stream: 10 monitor updates, no early exit — the measured
  // cost is a pure function of M.
  options.max_seconds = 1.0;
  options.stop_on_ego_collision = false;
  // Strictly serial tube fan-out inside each stream, so this binary times
  // stream-level parallelism in isolation (the tube-level fan-out has its
  // own family in overheads.cpp, BM_StiFullPerActorThreads).
  options.monitor.tube.num_threads = 0;
  return options;
}

void BM_StreamThroughput(ubench::State& bench_state) {
  const auto streams = static_cast<std::size_t>(bench_state.range(0));
  const eval::StreamRunner runner(bench_options());  // shared pool
  for (auto _ : bench_state) {
    const auto outcomes = runner.run(streams, stream_world);
    ubench::DoNotOptimize(outcomes.data());
  }
}
UBENCH(BM_StreamThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_StreamThroughputSerial(ubench::State& bench_state) {
  // The determinism reference and speedup denominator: identical streams,
  // one at a time on the calling thread.
  const auto streams = static_cast<std::size_t>(bench_state.range(0));
  const eval::StreamRunner runner(bench_options(), nullptr);
  for (auto _ : bench_state) {
    const auto outcomes = runner.run(streams, stream_world);
    ubench::DoNotOptimize(outcomes.data());
  }
}
UBENCH(BM_StreamThroughputSerial)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Bit-identity gate: concurrent vs serial outcomes for the largest M this
/// binary times. Exact == on every field — the guarantee is bit-identity,
/// not closeness.
bool verify_determinism() {
  const auto options = bench_options();
  const eval::StreamRunner concurrent(options);
  const eval::StreamRunner serial(options, nullptr);
  const auto a = concurrent.run(8, stream_world);
  const auto b = serial.run(8, stream_world);
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].stream != b[i].stream || a[i].label != b[i].label ||
        a[i].steps != b[i].steps || a[i].monitor_updates != b[i].monitor_updates ||
        a[i].max_sti != b[i].max_sti || a[i].mean_sti != b[i].mean_sti ||
        a[i].escalations != b[i].escalations || a[i].final_level != b[i].final_level ||
        a[i].last_riskiest_actor != b[i].last_riskiest_actor ||
        a[i].ego_collided != b[i].ego_collided) {
      std::fprintf(stderr, "stream_throughput: stream %zu diverged from serial\n", i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  iprism::bench::require_release_guard(argc, argv);
  argc = iprism::bench::strip_require_release_flag(argc, argv);
  if (!verify_determinism()) {
    std::fprintf(stderr,
                 "stream_throughput: concurrent != serial; refusing to record a "
                 "benchmark whose runs are not bit-identical\n");
    return 1;
  }
  ubench::add_context("iprism_build_type",
                      bench::release_benchmark_build()
                          ? "release"
                          : bench::nonrelease_build_reason());
  ubench::add_context("determinism_verified", "concurrent==serial, M=8");
  return ubench::run_main(argc, argv);
}
