// Reproduces paper Fig. 4: mean +/- SD time series of STI(combined), PKL,
// and TTC-risk, plotted separately for safe vs accident scenarios of each
// typology (the paper's 15 panels; Dist-CIPA omitted there as here).
//
//   ./fig4_risk_profiles [--n=40] [--stride=3] [--csv=fig4.csv]
//
// Prints a coarse text summary (series sampled every second) and optionally
// dumps the full per-step series to CSV for plotting.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 40);
  const int stride = args.get_int("stride", 3);
  const std::string csv_path = args.get_string("csv", "");

  const scenario::ScenarioFactory factory;
  const core::StiCalculator sti;
  const core::TtcMetric ttc(3.0);
  const core::PklMetric pkl;  // prior weights; Fig. 4 shows the qualitative shape

  struct MetricDef {
    std::string name;
    eval::RiskFn fn;
  };
  const MetricDef metrics[3] = {
      {"STI", eval::sti_risk(sti)},
      {"PKL", eval::pkl_risk(pkl)},
      {"TTC", eval::ttc_risk(ttc)},
  };

  std::unique_ptr<common::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<common::CsvWriter>(csv_path);
    csv->write_row(std::vector<std::string>{"typology", "metric", "bucket", "step",
                                            "mean", "stddev", "count"});
  }

  for (scenario::Typology t : scenario::kAllTypologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    // Bucket episodes: safe vs accident under the LBC baseline.
    std::vector<eval::EpisodeResult> safe;
    std::vector<eval::EpisodeResult> accident;
    for (const auto& spec : suite.specs) {
      agents::LbcAgent lbc;
      eval::EpisodeResult r = eval::run_episode(factory.build(spec), lbc);
      (r.ego_accident ? accident : safe).push_back(std::move(r));
    }
    std::cout << "== " << scenario::typology_name(t) << " — " << safe.size()
              << " safe, " << accident.size() << " accident episodes ==\n";

    for (const MetricDef& metric : metrics) {
      for (int bucket = 0; bucket < 2; ++bucket) {
        const auto& episodes = bucket == 0 ? safe : accident;
        const char* bucket_name = bucket == 0 ? "safe" : "accident";
        if (episodes.empty()) continue;
        std::vector<std::vector<double>> series;
        series.reserve(episodes.size());
        for (const auto& ep : episodes) {
          series.push_back(eval::risk_series(ep, metric.fn, stride));
        }
        const auto agg = common::aggregate_series(series);

        std::cout << "  " << metric.name << " / " << bucket_name << ":";
        const int per_second = static_cast<int>(1.0 / episodes.front().dt);
        for (std::size_t i = 0; i < agg.mean.size(); i += per_second) {
          std::cout << ' ' << common::Table::num(agg.mean[i], 2);
        }
        std::cout << '\n';

        if (csv) {
          for (std::size_t i = 0; i < agg.mean.size(); ++i) {
            csv->write_row(std::vector<std::string>{
                std::string(scenario::typology_name(t)), metric.name, bucket_name,
                std::to_string(i), common::Table::num(agg.mean[i], 5),
                common::Table::num(agg.stddev[i], 5), std::to_string(agg.count[i])});
          }
        }
      }
    }
  }
  std::cout << "\nPaper reference: STI rises toward 1.0 before accidents and falls after\n"
               "the ego's own mitigation in safe runs; PKL fluctuates and separates the\n"
               "buckets inconsistently; TTC barely reacts except on lead slowdown.\n";
  return 0;
}
