// Reproduces paper Fig. 5: STI(combined) traces on the ghost cut-in
// typology for the plain LBC agent versus LBC+iPrism — the mitigated agent
// keeps STI visibly lower and avoids the terminal spike to 1.0.
//
//   ./fig5_sti_timeseries [--n=30] [--episodes=80] [--stride=3]
//                         [--policy-dir=.] [--csv=fig5.csv]
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"
#include "smc/controller.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 30);
  const int episodes = args.get_int("episodes", 80);
  const int stride = args.get_int("stride", 3);
  const std::string policy_dir = args.get_string("policy-dir", ".");
  const std::string csv_path = args.get_string("csv", "");

  const scenario::ScenarioFactory factory;
  const core::StiCalculator sti;
  const auto t = scenario::Typology::kGhostCutIn;
  const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);

  bench::SmcPipelineOptions options;
  options.episodes = episodes;
  const auto policy = bench::load_or_train_smc(
      factory, suite.specs, t, options, bench::policy_cache_path(policy_dir, t, true));
  if (!policy) {
    std::cout << "no baseline accidents to train from\n";
    return 1;
  }

  std::vector<std::vector<double>> lbc_series;
  std::vector<std::vector<double>> iprism_series;
  int lbc_accidents = 0;
  int iprism_accidents = 0;
  for (const auto& spec : suite.specs) {
    agents::LbcAgent lbc;
    const auto base = eval::run_episode(factory.build(spec), lbc);
    if (!base.ego_accident) continue;  // Fig. 5 shows the accident subset
    ++lbc_accidents;
    lbc_series.push_back(eval::risk_series(base, eval::sti_risk(sti), stride));

    agents::LbcAgent lbc2;
    smc::SmcController controller(*policy);
    const auto mitigated = eval::run_episode(factory.build(spec), lbc2, &controller);
    if (mitigated.ego_accident) ++iprism_accidents;
    iprism_series.push_back(eval::risk_series(mitigated, eval::sti_risk(sti), stride));
  }

  const auto lbc_agg = common::aggregate_series(lbc_series);
  const auto iprism_agg = common::aggregate_series(iprism_series);

  std::cout << "== Fig. 5 — STI(combined) on ghost cut-in accident scenarios ==\n";
  std::cout << "LBC accidents: " << lbc_accidents << "; LBC+iPrism accidents on the same "
            << "scenarios: " << iprism_accidents << "\n";
  auto print_series = [](const char* label, const common::SeriesAggregate& agg) {
    std::cout << label << " (mean STI each second):";
    for (std::size_t i = 0; i < agg.mean.size(); i += 10) {
      std::cout << ' ' << common::Table::num(agg.mean[i], 2);
    }
    std::cout << '\n';
  };
  print_series("LBC          ", lbc_agg);
  print_series("LBC+iPrism   ", iprism_agg);

  if (!csv_path.empty()) {
    common::CsvWriter csv(csv_path);
    csv.write_row(std::vector<std::string>{"agent", "step", "mean", "stddev", "count"});
    for (std::size_t i = 0; i < lbc_agg.mean.size(); ++i) {
      csv.write_row(std::vector<std::string>{"LBC", std::to_string(i),
                                             common::Table::num(lbc_agg.mean[i], 5),
                                             common::Table::num(lbc_agg.stddev[i], 5),
                                             std::to_string(lbc_agg.count[i])});
    }
    for (std::size_t i = 0; i < iprism_agg.mean.size(); ++i) {
      csv.write_row(std::vector<std::string>{"LBC+iPrism", std::to_string(i),
                                             common::Table::num(iprism_agg.mean[i], 5),
                                             common::Table::num(iprism_agg.stddev[i], 5),
                                             std::to_string(iprism_agg.count[i])});
    }
  }
  std::cout << "\nPaper reference: the iPrism-enabled agent's STI stays below the plain\n"
               "LBC agent's, which ramps to 1.0 at its accidents.\n";
  return 0;
}
