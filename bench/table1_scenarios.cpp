// Reproduces paper Table I: number of safety-critical scenario instances,
// hyperparameters per typology, and the baseline (LBC) accident count.
//
//   ./table1_scenarios [--n=1000] [--threads=0]
//
// The paper uses 1000 draws per typology; the default here is 300 so the
// whole bench suite runs in minutes (pass --n=1000 for the full population;
// rates are what matter, and they are stable from ~200 draws on).
// --threads=K rolls scenarios out on K worker threads with byte-identical
// counts (see bench_util::run_suite).
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 300);
  const int threads = args.get_int("threads", 0);

  const scenario::ScenarioFactory factory;
  common::Table table("Table I — scenario instances and baseline (LBC) accidents");
  table.set_header({"Scenario Typology", "# Instances", "# Discarded", "Hyperparameters",
                    "LBC Accidents", "LBC Accident %"});

  for (scenario::Typology t : scenario::kAllTypologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    const auto outcome =
        bench::run_suite(factory, suite.specs, bench::lbc_maker(), {}, threads);

    std::ostringstream params;
    if (!suite.specs.empty()) {
      bool first = true;
      for (const auto& [key, value] : suite.specs.front().hyperparams) {
        if (!first) params << ", ";
        params << key;
        first = false;
      }
    }
    table.add_row({std::string(scenario::typology_name(t)),
                   std::to_string(suite.specs.size()), std::to_string(suite.discarded),
                   params.str(), std::to_string(outcome.accidents),
                   common::Table::num(100.0 * outcome.accidents / outcome.scenarios, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (per 1000): ghost cut-in 519, lead cut-in 170, lead\n"
               "slowdown 118, front accident 0 (810 valid of 1000), rear-end 770.\n";
  bench::maybe_write_telemetry(args, factory);
  return 0;
}
