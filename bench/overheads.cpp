// Reproduces the paper's §V-E execution-overhead measurements in the form
// the paper itself anticipates: "use of a high-performance programming
// language (e.g., C++)" — so these are the C++ numbers for the same
// operations the paper timed in Python (STI evaluation 0.61 s; SMC
// inference 0.012 s there).
//
//   ./overheads [ubench flags] [--require-release]
//
// The BM_TubeHotpath family measures the reach-tube hot-loop rewrite
// (common::FlatHashGrid scratch, per-slice obstacle active-set) against a
// bench-local replica of the pre-rewrite std::unordered_map loop, and the
// flat loop with pre-reservation off vs on. Recorded as
// BENCH_tube_hotpath.json from the release preset:
//   ./overheads --require-release \
//     '--benchmark_filter=BM_TubeHotpath|BM_StiFullPerActor$' \
//     --benchmark_out=BENCH_tube_hotpath.json --benchmark_out_format=json
//
// The BM_CounterfactualFanout family sweeps actor count N for the full STI
// evaluation under both counterfactual engines — from-scratch N+2
// propagations vs the shared-wavefront delta engine (DESIGN.md §12).
// Recorded as BENCH_counterfactual_delta.json:
//   ./overheads --require-release \
//     --benchmark_filter=BM_CounterfactualFanout \
//     --benchmark_out=BENCH_counterfactual_delta.json --benchmark_out_format=json
//
// The BM_GeomKernel family measures the staged batch kernels behind the
// propagation rewrite (DESIGN.md §13) against their scalar per-lane
// counterparts. Recorded as BENCH_geom_kernel.json:
//   ./overheads --require-release \
//     --benchmark_filter=BM_GeomKernel \
//     --benchmark_out=BENCH_geom_kernel.json --benchmark_out_format=json
#include <cmath>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "bench_util.hpp"
#include "core/pkl.hpp"
#include "core/ttc.hpp"
#include "dynamics/bicycle.hpp"
#include "dynamics/cvtr.hpp"
#include "dynamics/step_batch.hpp"
#include "dynamics/trajectory.hpp"
#include "geom/batch.hpp"
#include "geom/obb.hpp"
#include "smc/controller.hpp"
#include "smc/features.hpp"
#include "ubench.hpp"

using namespace iprism;

namespace {

/// A representative mid-severity scene: ego plus three actors, one of them
/// a decelerating lead.
struct Fixture {
  Fixture() : factory(), world(make_world()) {}

  sim::World make_world() {
    common::Rng rng(9);
    auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
    // Pin the geometry to a mid-severity approach: lead 35 m ahead, braking
    // once the ego closes to 10 m. The probe time (1.5 s in) is well before
    // any collision — an ego in collision has an empty reach-tube, which
    // benchmarks nothing.
    spec.hyperparams["npc_vehicle_location"] = 35.0;
    spec.hyperparams["event_trigger_distance"] = 10.0;
    sim::World w = factory.build(spec);
    for (int i = 0; i < 15; ++i) w.step(dynamics::Control{0.0, 0.0});
    return w;
  }

  scenario::ScenarioFactory factory;
  sim::World world;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SimStep(ubench::State& state) {
  sim::World world = fixture().make_world();
  for (auto _ : state) {
    world.step(dynamics::Control{0.0, 0.0});
    ubench::DoNotOptimize(world.time());
  }
}
UBENCH(BM_SimStep);

// ---------------------------------------------------------------------------
// BM_TubeHotpath: before/after baseline for the flat-hash hot-loop rewrite.
//
// `baseline_tube` replicates the pre-rewrite ReachTubeComputer::compute hot
// loop: std::unordered_map/unordered_set scratch that cannot be pre-reserved
// (bucket order fed the surviving-representative selection), two divides per
// propagated state in the cell key, a per-slice `kept` unordered_set, a full
// per-slice candidate copy, and every obstacle broad-phase-tested per state.
// It lives here, not in src/core: the container-discipline lint bans the
// unordered containers there precisely because of what this baseline shows.

std::uint64_t baseline_xy_key(double x, double y, double cell) {
  const auto ix = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(x / cell)) + (1LL << 30));
  const auto iy = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(y / cell)) + (1LL << 30));
  return (ix << 32) | (iy & 0xFFFFFFFFULL);
}

struct BaselineCellReps {
  int min_v = -1, max_v = -1, min_h = -1, max_h = -1;
  double v_lo = 0.0, v_hi = 0.0, h_lo = 0.0, h_hi = 0.0;
};

bool baseline_state_ok(const roadmap::DrivableMap& map, const dynamics::VehicleState& s,
                       std::span<const core::ObstacleTimeline> obstacles,
                       std::size_t slice, common::ActorId exclude,
                       const core::ReachTubeParams& p) {
  const geom::OrientedBox ego_box = dynamics::footprint(s, p.ego_dims);
  if (!map.contains_box(ego_box, p.map_margin)) return false;
  const double ego_r = ego_box.circumradius();
  for (const core::ObstacleTimeline& obs : obstacles) {
    if (exclude.valid() && obs.actor_id == exclude) continue;
    const geom::OrientedBox& box = obs.by_slice[slice];
    const double r = ego_r + obs.circumradius_by_slice[slice];
    if ((box.center() - ego_box.center()).norm_sq() > r * r) continue;
    if (ego_box.intersects(box)) return false;
  }
  return true;
}

core::ReachTube baseline_tube(const roadmap::DrivableMap& map,
                              const dynamics::VehicleState& ego,
                              std::span<const core::ObstacleTimeline> obstacles,
                              common::ActorId exclude, const core::ReachTubeParams& p) {
  const dynamics::BicycleModel model(common::Meters{p.wheelbase});
  const int slices = static_cast<int>(std::lround(p.horizon / p.dt));
  std::vector<dynamics::Control> boundary_set;
  for (double a : {0.0, p.limits.accel_max}) {
    for (double phi : {p.limits.steer_min, 0.0, p.limits.steer_max}) {
      boundary_set.push_back({a, phi});
    }
  }

  core::ReachTube tube;
  tube.slices.assign(static_cast<std::size_t>(slices) + 1, {});
  if (!baseline_state_ok(map, ego, obstacles, 0, exclude, p)) return tube;
  tube.slices[0].push_back(ego);

  std::size_t volume_cells = 1;
  std::unordered_map<std::uint64_t, BaselineCellReps> cells;
  std::unordered_set<std::uint64_t> dead;
  std::vector<dynamics::VehicleState> candidates;
  candidates.reserve(std::min<std::size_t>(p.max_states_per_slice, 4096));

  for (int j = 0; j < slices; ++j) {
    const auto& current = tube.slices[static_cast<std::size_t>(j)];
    auto& next = tube.slices[static_cast<std::size_t>(j) + 1];
    cells.clear();
    dead.clear();
    candidates.clear();

    const std::size_t slice_idx = static_cast<std::size_t>(j) + 1;
    auto try_control = [&](const dynamics::VehicleState& s, const dynamics::Control& u) {
      if (candidates.size() >= p.max_states_per_slice) return;
      const dynamics::VehicleState ns = model.step(s, u, common::Seconds{p.dt});
      const std::uint64_t key = baseline_xy_key(ns.x, ns.y, p.cell_size);
      if (dead.contains(key)) return;
      auto it = cells.find(key);
      if (it == cells.end()) {
        if (!baseline_state_ok(map, ns, obstacles, slice_idx, exclude, p)) {
          dead.insert(key);
          return;
        }
        const int idx = static_cast<int>(candidates.size());
        candidates.push_back(ns);
        BaselineCellReps reps;
        reps.min_v = reps.max_v = reps.min_h = reps.max_h = idx;
        reps.v_lo = reps.v_hi = ns.speed;
        reps.h_lo = reps.h_hi = ns.heading;
        cells.emplace(key, reps);
        return;
      }
      BaselineCellReps& reps = it->second;
      const bool improves = ns.speed < reps.v_lo || ns.speed > reps.v_hi ||
                            ns.heading < reps.h_lo || ns.heading > reps.h_hi;
      if (!improves) return;
      if (!baseline_state_ok(map, ns, obstacles, slice_idx, exclude, p)) return;
      const int idx = static_cast<int>(candidates.size());
      candidates.push_back(ns);
      if (ns.speed < reps.v_lo) { reps.v_lo = ns.speed; reps.min_v = idx; }
      if (ns.speed > reps.v_hi) { reps.v_hi = ns.speed; reps.max_v = idx; }
      if (ns.heading < reps.h_lo) { reps.h_lo = ns.heading; reps.min_h = idx; }
      if (ns.heading > reps.h_hi) { reps.h_hi = ns.heading; reps.max_h = idx; }
    };

    for (const dynamics::VehicleState& s : current) {
      for (const dynamics::Control& u : boundary_set) try_control(s, u);
    }

    volume_cells += cells.size();
    std::unordered_set<int> kept;
    for (const auto& [key, reps] : cells) {
      for (int idx : {reps.min_v, reps.max_v, reps.min_h, reps.max_h}) kept.insert(idx);
    }
    next.reserve(kept.size());
    for (int idx : kept) next.push_back(candidates[static_cast<std::size_t>(idx)]);
    if (next.empty()) break;
  }
  tube.volume = static_cast<double>(volume_cells);
  return tube;
}

void BM_TubeHotpathBaseline(ubench::State& state) {
  // One tube through the pre-rewrite unordered_map hot loop.
  auto& f = fixture();
  const core::ReachTubeParams params;
  const core::ReachTubeComputer rt(params);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  const auto obstacles = rt.sample_obstacles(forecasts, common::Seconds{f.world.time()});
  for (auto _ : state) {
    const auto tube = baseline_tube(f.world.map(), f.world.ego().state, obstacles,
                                    common::ActorId::none(), params);
    ubench::DoNotOptimize(tube.volume);
  }
}
UBENCH(BM_TubeHotpathBaseline);

void BM_TubeHotpathFlat(ubench::State& state) {
  // One tube through the FlatHashGrid hot loop; arg = scratch_reserve
  // (0 = auto-reserve — the default; the old loop could not reserve at all).
  auto& f = fixture();
  core::ReachTubeParams params;
  params.scratch_reserve = static_cast<std::size_t>(state.range(0));
  const core::ReachTubeComputer rt(params);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  const auto obstacles = rt.sample_obstacles(forecasts, common::Seconds{f.world.time()});
  for (auto _ : state) {
    const auto tube =
        rt.compute(f.world.map(), f.world.ego().state, obstacles, common::ActorId::none());
    ubench::DoNotOptimize(tube.volume);
  }
}
UBENCH(BM_TubeHotpathFlat)->Arg(0)->Arg(4096);

void BM_TubeHotpathStiBaseline(ubench::State& state) {
  // The full-STI workload (N+2 tubes: |T|, |T^null|, per-actor
  // counterfactuals) through the baseline loop — the apples-to-apples
  // counterpart of BM_StiFullPerActor on the new hot loop.
  auto& f = fixture();
  const core::ReachTubeParams params;
  const core::ReachTubeComputer rt(params);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  const auto obstacles = rt.sample_obstacles(forecasts, common::Seconds{f.world.time()});
  for (auto _ : state) {
    double acc = 0.0;
    acc += baseline_tube(f.world.map(), f.world.ego().state, obstacles,
                         common::ActorId::none(), params).volume;
    acc += baseline_tube(f.world.map(), f.world.ego().state, {},
                         common::ActorId::none(), params).volume;
    for (const auto& obs : obstacles) {
      acc += baseline_tube(f.world.map(), f.world.ego().state, obstacles, obs.actor_id,
                           params)
                 .volume;
    }
    ubench::DoNotOptimize(acc);
  }
}
UBENCH(BM_TubeHotpathStiBaseline);

void BM_ReachTube(ubench::State& state) {
  auto& f = fixture();
  const core::ReachTubeComputer rt;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto tube =
        rt.compute(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts);
    ubench::DoNotOptimize(tube.volume);
  }
}
UBENCH(BM_ReachTube);

void BM_StiCombined(ubench::State& state) {
  auto& f = fixture();
  const core::StiCalculator sti;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    ubench::DoNotOptimize(
        sti.combined(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts));
  }
}
UBENCH(BM_StiCombined);

void BM_StiFullPerActor(ubench::State& state) {
  // The paper's "STI evaluation": per-actor counterfactuals + combined
  // (0.61 s in the Python implementation on a Threadripper).
  auto& f = fixture();
  const core::StiCalculator sti;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts);
    ubench::DoNotOptimize(r.combined);
  }
}
UBENCH(BM_StiFullPerActor);

void BM_StiFullPerActorThreads(ubench::State& state) {
  // The parallel STI engine: same full evaluation as BM_StiFullPerActor,
  // fanned over a common::ThreadPool with `num_threads` workers (arg 0 = the
  // serial fallback path through the same code). The JSON emitted by
  //   ./overheads --benchmark_filter=StiFullPerActor
  //     --benchmark_out=BENCH_parallel_sti.json --benchmark_out_format=json
  // seeds the repo's perf trajectory; CI uploads it as an artifact. Results
  // are bit-identical across thread counts (tests/test_parallel_sti.cpp).
  auto& f = fixture();
  core::ReachTubeParams params;
  params.num_threads = static_cast<int>(state.range(0));
  const core::StiCalculator sti(params);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts);
    ubench::DoNotOptimize(r.combined);
  }
}
UBENCH(BM_StiFullPerActorThreads)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// BM_CounterfactualFanout: actor-count sweep for the shared-wavefront
// counterfactual engine (DESIGN.md §12). The scene keeps the fixture's three
// live nearby actors (real blockers → real delta replays) and pads to N with
// static actors distributed on a far ring — outside every slice's reachable
// disc, so their counterfactuals are free under the delta engine but still
// cost a full propagation each under the scratch engine. This is the sparse
// many-actor regime the O(W + Σδᵢ) claim is about; the delta/scratch ratio
// should grow roughly linearly with N.

std::vector<core::ActorForecast> fanout_forecasts(std::int64_t n) {
  auto& f = fixture();
  auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  if (std::cmp_greater(forecasts.size(), n)) {
    forecasts.resize(static_cast<std::size_t>(n));
  }
  const dynamics::VehicleState ego = f.world.ego().state;
  int next_id = 1000;
  std::size_t k = 0;
  while (std::cmp_less(forecasts.size(), n)) {
    core::ActorForecast far_actor;
    far_actor.id = next_id++;
    far_actor.dims = dynamics::Dimensions{4.5, 2.0};
    // 400 m+ ring: beyond reach_r for every slice of a 3 s horizon.
    const double angle = 0.37 * static_cast<double>(k);
    const double radius = 400.0 + 5.0 * static_cast<double>(k);
    far_actor.trajectory.append(
        common::Seconds{f.world.time()},
        dynamics::VehicleState{ego.x + radius * std::cos(angle),
                               ego.y + radius * std::sin(angle), 0.0, 0.0});
    forecasts.push_back(std::move(far_actor));
    ++k;
  }
  return forecasts;
}

void BM_CounterfactualFanoutScratch(ubench::State& state) {
  auto& f = fixture();
  core::ReachTubeParams params;
  params.delta_counterfactuals = false;  // N+2 independent propagations
  const core::StiCalculator sti(params);
  const auto forecasts = fanout_forecasts(state.range(0));
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts);
    ubench::DoNotOptimize(r.combined);
  }
}
UBENCH(BM_CounterfactualFanoutScratch)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_CounterfactualFanoutDelta(ubench::State& state) {
  auto& f = fixture();
  core::ReachTubeParams params;
  params.delta_counterfactuals = true;  // one attributed propagation + replays
  const core::StiCalculator sti(params);
  const auto forecasts = fanout_forecasts(state.range(0));
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, common::Seconds{f.world.time()}, forecasts);
    ubench::DoNotOptimize(r.combined);
  }
}
UBENCH(BM_CounterfactualFanoutDelta)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------------
// BM_GeomKernel*: the staged batch kernels of the tube propagation
// (DESIGN.md §13) against their scalar per-lane counterparts, at block sizes
// spanning one parent's controls (16), a typical partial flush (256), and a
// multiple of the kLaneBlock flush threshold (4096). Recorded as
// BENCH_geom_kernel.json from the release preset:
//   ./overheads --require-release --benchmark_filter=BM_GeomKernel \
//     --benchmark_out=BENCH_geom_kernel.json --benchmark_out_format=json

/// SoA lane material shared by the kernel benchmarks (worst case: every lane
/// a distinct state/control drawn across the tube's operating envelope).
struct KernelLanes {
  explicit KernelLanes(std::size_t n) {
    common::Rng rng(17);
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(rng.uniform(-50.0, 400.0));
      y.push_back(rng.uniform(-10.0, 20.0));
      heading.push_back(rng.uniform(-3.1, 3.1));
      speed.push_back(rng.uniform(0.0, 40.0));
      accel.push_back(rng.uniform(-6.0, 3.0));
      steer.push_back(rng.uniform(-0.35, 0.35));
      tan_steer.push_back(std::tan(steer.back()));
    }
    nx.resize(n);
    ny.resize(n);
    nh.resize(n);
    nv.resize(n);
    ax.resize(n);
    ay.resize(n);
    lo_x.resize(n);
    lo_y.resize(n);
    hi_x.resize(n);
    hi_y.resize(n);
    mask.resize(n);
  }

  std::vector<double> x, y, heading, speed, accel, steer, tan_steer;
  std::vector<double> nx, ny, nh, nv, ax, ay, lo_x, lo_y, hi_x, hi_y;
  std::vector<unsigned char> mask;
};

void BM_GeomKernelStep(ubench::State& state) {
  // Stage 1: SoA bicycle step over the whole block.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  const dynamics::BicycleModel model;
  for (auto _ : state) {
    dynamics::step_batch(n,
                         {lanes.x.data(), lanes.y.data(), lanes.heading.data(),
                          lanes.speed.data(), lanes.accel.data(), lanes.tan_steer.data()},
                         {lanes.nx.data(), lanes.ny.data(), lanes.nh.data(),
                          lanes.nv.data()},
                         0.25, model.wheelbase().value(), model.max_speed().value());
    ubench::DoNotOptimize(lanes.nx.data());
  }
}
UBENCH(BM_GeomKernelStep)->Arg(16)->Arg(256)->Arg(4096);

void BM_GeomKernelStepScalar(ubench::State& state) {
  // Scalar counterpart: one out-of-line model.step per lane.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  const dynamics::BicycleModel model;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const dynamics::VehicleState ns =
          model.step({lanes.x[i], lanes.y[i], lanes.heading[i], lanes.speed[i]},
                     {lanes.accel[i], lanes.steer[i]}, common::Seconds{0.25});
      lanes.nx[i] = ns.x;
      lanes.ny[i] = ns.y;
      lanes.nh[i] = ns.heading;
      lanes.nv[i] = ns.speed;
    }
    ubench::DoNotOptimize(lanes.nx.data());
  }
}
UBENCH(BM_GeomKernelStepScalar)->Arg(16)->Arg(256)->Arg(4096);

void BM_GeomKernelFootprint(ubench::State& state) {
  // Stage 2: footprint axes + corner AABBs for the whole block.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  for (auto _ : state) {
    geom::footprint_axes(n, lanes.heading.data(), lanes.ax.data(), lanes.ay.data());
    geom::footprint_aabbs(n, lanes.x.data(), lanes.y.data(), lanes.ax.data(),
                          lanes.ay.data(), 2.25, 1.0, lanes.lo_x.data(),
                          lanes.lo_y.data(), lanes.hi_x.data(), lanes.hi_y.data());
    ubench::DoNotOptimize(lanes.lo_x.data());
  }
}
UBENCH(BM_GeomKernelFootprint)->Arg(16)->Arg(256)->Arg(4096);

void BM_GeomKernelFootprintScalar(ubench::State& state) {
  // Scalar counterpart: one OrientedBox construction + aabb() per lane.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  const dynamics::Dimensions dims{4.5, 2.0};
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const geom::OrientedBox box = dynamics::footprint(
          {lanes.x[i], lanes.y[i], lanes.heading[i], lanes.speed[i]}, dims);
      const geom::Aabb bb = box.aabb();
      lanes.lo_x[i] = bb.lo.x;
      lanes.lo_y[i] = bb.lo.y;
      lanes.hi_x[i] = bb.hi.x;
      lanes.hi_y[i] = bb.hi.y;
    }
    ubench::DoNotOptimize(lanes.lo_x.data());
  }
}
UBENCH(BM_GeomKernelFootprintScalar)->Arg(16)->Arg(256)->Arg(4096);

void BM_GeomKernelCull(ubench::State& state) {
  // Stage 3: circumradius broad-phase cull of one obstacle vs the block.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  const double r_sq = 8.0 * 8.0;
  for (auto _ : state) {
    ubench::DoNotOptimize(geom::broad_phase_cull(n, lanes.x.data(), lanes.y.data(),
                                                 120.0, 5.0, r_sq, lanes.mask.data()));
  }
}
UBENCH(BM_GeomKernelCull)->Arg(16)->Arg(256)->Arg(4096);

void BM_GeomKernelCullScalar(ubench::State& state) {
  // Scalar counterpart: the per-lane distance predicate as state_ok ran it.
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelLanes lanes(n);
  const geom::Vec2 center{120.0, 5.0};
  const double r_sq = 8.0 * 8.0;
  for (auto _ : state) {
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool hit = !((center - geom::Vec2{lanes.x[i], lanes.y[i]}).norm_sq() > r_sq);
      lanes.mask[i] = hit ? 1 : 0;
      survivors += hit ? 1 : 0;
    }
    ubench::DoNotOptimize(survivors);
  }
}
UBENCH(BM_GeomKernelCullScalar)->Arg(16)->Arg(256)->Arg(4096);

void BM_CvtrForecasts(ubench::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    ubench::DoNotOptimize(core::cvtr_forecasts(f.world, 3.0, 0.25));
  }
}
UBENCH(BM_CvtrForecasts);

void BM_SmcFeatureExtraction(ubench::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    ubench::DoNotOptimize(smc::extract_features(f.world));
  }
}
UBENCH(BM_SmcFeatureExtraction);

void BM_SmcInference(ubench::State& state) {
  // Feature extraction + Q-network forward + argmax: the paper's "SMC
  // inference" (0.012 s in Python/PyTorch).
  auto& f = fixture();
  common::Rng rng(3);
  rl::Mlp policy({smc::kFeatureCount, 48, 48, 3}, rng);
  smc::SmcController controller(std::move(policy));
  for (auto _ : state) {
    ubench::DoNotOptimize(controller.policy_action(smc::extract_features(f.world)));
  }
}
UBENCH(BM_SmcInference);

void BM_PklPerActor(ubench::State& state) {
  auto& f = fixture();
  const core::PklMetric pkl;
  const auto scene = core::snapshot_of(f.world);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    ubench::DoNotOptimize(pkl.compute(scene, forecasts));
  }
}
UBENCH(BM_PklPerActor);

void BM_TtcMetric(ubench::State& state) {
  auto& f = fixture();
  const core::TtcMetric ttc(3.0);
  const auto scene = core::snapshot_of(f.world);
  for (auto _ : state) {
    ubench::DoNotOptimize(ttc.risk(scene));
  }
}
UBENCH(BM_TtcMetric);

}  // namespace

int main(int argc, char** argv) {
  iprism::bench::require_release_guard(argc, argv);
  argc = iprism::bench::strip_require_release_flag(argc, argv);
  // ubench's "library_build_type" context describes the harness TU; record
  // the measured library's build type explicitly as well so a committed
  // BENCH_*.json is self-describing.
  ubench::add_context("iprism_build_type",
                      bench::release_benchmark_build()
                          ? "release"
                          : bench::nonrelease_build_reason());
  return ubench::run_main(argc, argv);
}
