// Reproduces the paper's §V-E execution-overhead measurements in the form
// the paper itself anticipates: "use of a high-performance programming
// language (e.g., C++)" — so these are the C++ numbers for the same
// operations the paper timed in Python (STI evaluation 0.61 s; SMC
// inference 0.012 s there).
//
//   ./overheads [google-benchmark flags]
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/pkl.hpp"
#include "core/ttc.hpp"
#include "dynamics/cvtr.hpp"
#include "smc/controller.hpp"
#include "smc/features.hpp"

using namespace iprism;

namespace {

/// A representative mid-severity scene: ego plus three actors, one of them
/// a decelerating lead.
struct Fixture {
  Fixture() : factory(), world(make_world()) {}

  sim::World make_world() {
    common::Rng rng(9);
    auto spec = factory.sample(scenario::Typology::kLeadSlowdown, 0, rng);
    // Pin the geometry to a mid-severity approach: lead 35 m ahead, braking
    // once the ego closes to 10 m. The probe time (1.5 s in) is well before
    // any collision — an ego in collision has an empty reach-tube, which
    // benchmarks nothing.
    spec.hyperparams["npc_vehicle_location"] = 35.0;
    spec.hyperparams["event_trigger_distance"] = 10.0;
    sim::World w = factory.build(spec);
    for (int i = 0; i < 15; ++i) w.step(dynamics::Control{0.0, 0.0});
    return w;
  }

  scenario::ScenarioFactory factory;
  sim::World world;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SimStep(benchmark::State& state) {
  sim::World world = fixture().make_world();
  for (auto _ : state) {
    world.step(dynamics::Control{0.0, 0.0});
    benchmark::DoNotOptimize(world.time());
  }
}
BENCHMARK(BM_SimStep);

void BM_ReachTube(benchmark::State& state) {
  auto& f = fixture();
  const core::ReachTubeComputer rt;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto tube =
        rt.compute(f.world.map(), f.world.ego().state, f.world.time(), forecasts);
    benchmark::DoNotOptimize(tube.volume);
  }
}
BENCHMARK(BM_ReachTube);

void BM_StiCombined(benchmark::State& state) {
  auto& f = fixture();
  const core::StiCalculator sti;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sti.combined(f.world.map(), f.world.ego().state, f.world.time(), forecasts));
  }
}
BENCHMARK(BM_StiCombined);

void BM_StiFullPerActor(benchmark::State& state) {
  // The paper's "STI evaluation": per-actor counterfactuals + combined
  // (0.61 s in the Python implementation on a Threadripper).
  auto& f = fixture();
  const core::StiCalculator sti;
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, f.world.time(), forecasts);
    benchmark::DoNotOptimize(r.combined);
  }
}
BENCHMARK(BM_StiFullPerActor);

void BM_StiFullPerActorThreads(benchmark::State& state) {
  // The parallel STI engine: same N+2 tube evaluation as BM_StiFullPerActor,
  // fanned over a common::ThreadPool with `num_threads` workers (arg 0 = the
  // serial fallback path through the same code). The JSON emitted by
  //   ./overheads --benchmark_filter=StiFullPerActor
  //     --benchmark_out=BENCH_parallel_sti.json --benchmark_out_format=json
  // seeds the repo's perf trajectory; CI uploads it as an artifact. Results
  // are bit-identical across thread counts (tests/test_parallel_sti.cpp).
  auto& f = fixture();
  core::ReachTubeParams params;
  params.num_threads = static_cast<int>(state.range(0));
  const core::StiCalculator sti(params);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    const auto r =
        sti.compute(f.world.map(), f.world.ego().state, f.world.time(), forecasts);
    benchmark::DoNotOptimize(r.combined);
  }
}
BENCHMARK(BM_StiFullPerActorThreads)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_CvtrForecasts(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cvtr_forecasts(f.world, 3.0, 0.25));
  }
}
BENCHMARK(BM_CvtrForecasts);

void BM_SmcFeatureExtraction(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(smc::extract_features(f.world));
  }
}
BENCHMARK(BM_SmcFeatureExtraction);

void BM_SmcInference(benchmark::State& state) {
  // Feature extraction + Q-network forward + argmax: the paper's "SMC
  // inference" (0.012 s in Python/PyTorch).
  auto& f = fixture();
  common::Rng rng(3);
  rl::Mlp policy({smc::kFeatureCount, 48, 48, 3}, rng);
  smc::SmcController controller(std::move(policy));
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.policy_action(smc::extract_features(f.world)));
  }
}
BENCHMARK(BM_SmcInference);

void BM_PklPerActor(benchmark::State& state) {
  auto& f = fixture();
  const core::PklMetric pkl;
  const auto scene = core::snapshot_of(f.world);
  const auto forecasts = core::cvtr_forecasts(f.world, 3.0, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkl.compute(scene, forecasts));
  }
}
BENCHMARK(BM_PklPerActor);

void BM_TtcMetric(benchmark::State& state) {
  auto& f = fixture();
  const core::TtcMetric ttc(3.0);
  const auto scene = core::snapshot_of(f.world);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ttc.risk(scene));
  }
}
BENCHMARK(BM_TtcMetric);

}  // namespace

BENCHMARK_MAIN();
