#include "ubench.hpp"

#include <time.h>  // clock_gettime: CPU time without std::chrono (lint: telemetry-discipline)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <thread>

// Sanitizer instrumentation detection, mirroring bench_util: gcc defines
// __SANITIZE_*__, clang exposes __has_feature. Checked in addition to NDEBUG
// because the asan/tsan presets build RelWithDebInfo, where NDEBUG is set.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IPRISM_UBENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define IPRISM_UBENCH_SANITIZED 1
#endif
#endif

#include "common/check.hpp"
#include "common/telemetry.hpp"

namespace iprism::ubench {

struct StateAccess {
  static State make(std::int64_t iterations, std::span<const std::int64_t> args) {
    return State(iterations, args);
  }
};

namespace {

// deque: registration hands out stable Benchmark* for Arg() chaining, so
// later registrations must never relocate earlier entries.
std::deque<Benchmark>& registry() {
  static std::deque<Benchmark> benchmarks;
  return benchmarks;
}

std::vector<std::pair<std::string, std::string>>& contexts() {
  static std::vector<std::pair<std::string, std::string>> entries;
  return entries;
}

std::uint64_t cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Scales a human time-per-iteration into the unit gbench would pick.
const char* humanize(double ns, double* scaled) {
  if (ns < 1e3) {
    *scaled = ns;
    return "ns";
  }
  if (ns < 1e6) {
    *scaled = ns / 1e3;
    return "us";
  }
  if (ns < 1e9) {
    *scaled = ns / 1e6;
    return "ms";
  }
  *scaled = ns / 1e9;
  return "s";
}

RunResult run_one(const Benchmark& bench, std::span<const std::int64_t> args,
                  const std::string& run_name, double min_time_s) {
  // Calibrate like google-benchmark: grow the iteration count until one
  // batch covers min_time, then report that final batch. Each batch re-runs
  // the whole function, so per-batch setup stays out of the loop numbers.
  constexpr std::int64_t kMaxIterations = 1'000'000'000;
  const double min_time_ns = min_time_s * 1e9;
  std::int64_t n = 1;
  for (;;) {
    State state = StateAccess::make(n, args);
    const std::uint64_t cpu0 = cpu_now_ns();
    const std::uint64_t wall0 = common::telemetry::trace_now_ns();
    bench.fn()(state);
    const std::uint64_t wall = common::telemetry::trace_now_ns() - wall0;
    const std::uint64_t cpu = cpu_now_ns() - cpu0;
    if (static_cast<double>(wall) >= min_time_ns || n >= kMaxIterations) {
      RunResult result;
      result.name = run_name;
      result.iterations = n;
      result.real_ns = static_cast<double>(wall) / static_cast<double>(n);
      result.cpu_ns = static_cast<double>(cpu) / static_cast<double>(n);
      return result;
    }
    // Overshoot the target slightly (gbench's multiplier), bounded so a
    // mispredicted first batch cannot jump straight to minutes of work.
    const double per_iter = static_cast<double>(wall) / static_cast<double>(n);
    const double want = min_time_ns * 1.4 / std::max(per_iter, 1.0);
    n = std::clamp<std::int64_t>(static_cast<std::int64_t>(want), n + 1,
                                 std::min<std::int64_t>(n * 100, kMaxIterations));
  }
}

}  // namespace

const char* library_build_type() {
#if defined(NDEBUG) && !defined(IPRISM_ENABLE_DCHECKS) && \
    !defined(IPRISM_UBENCH_SANITIZED)
  return "release";
#else
  return "debug";
#endif
}

std::int64_t State::range(std::size_t i) const {
  IPRISM_CHECK(i < args_.size(), "ubench: State::range index out of bounds");
  return static_cast<std::int64_t>(args_[i]);
}

Benchmark* RegisterBenchmark(const char* name, BenchFn fn) {
  registry().emplace_back(name, fn);
  return &registry().back();
}

void add_context(const std::string& key, const std::string& value) {
  contexts().emplace_back(key, value);
}

std::vector<RunResult> run_registered(const RunOptions& options, std::ostream* console) {
  const std::regex filter(options.filter.empty() ? std::string(".") : options.filter);
  std::vector<RunResult> results;
  if (console != nullptr) {
    *console << "----------------------------------------------------------------------\n"
             << "Benchmark                                    Time        Iterations\n"
             << "----------------------------------------------------------------------\n";
  }
  for (const Benchmark& bench : registry()) {
    // One run per Arg; argless benchmarks run once under their bare name.
    std::vector<std::pair<std::string, std::vector<std::int64_t>>> runs;
    if (bench.args().empty()) {
      runs.emplace_back(bench.name(), std::vector<std::int64_t>{});
    } else {
      for (std::int64_t arg : bench.args()) {
        runs.emplace_back(bench.name() + "/" + std::to_string(arg),
                          std::vector<std::int64_t>{arg});
      }
    }
    for (const auto& [run_name, args] : runs) {
      if (!std::regex_search(run_name, filter)) continue;
      RunResult result = run_one(bench, args, run_name, options.min_time_s);
      if (console != nullptr) {
        double scaled = 0.0;
        const char* unit = humanize(result.real_ns, &scaled);
        char line[160];
        std::snprintf(line, sizeof(line), "%-40s %10.3f %-2s %12lld\n",
                      result.name.c_str(), scaled, unit,
                      static_cast<long long>(result.iterations));
        *console << line;
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::string json_report(std::span<const RunResult> results) {
  std::ostringstream out;
  char date[64] = "";
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  if (localtime_r(&now, &tm_buf) != nullptr) {
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);
  }
  out << "{\n  \"context\": {\n";
  out << "    \"date\": \"" << date << "\",\n";
  out << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "    \"library_build_type\": \"" << library_build_type() << "\"";
  for (const auto& [key, value] : contexts()) {
    out << ",\n    \"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
  }
  out << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\n"
        << "      \"name\": \"" << json_escape(r.name) << "\",\n"
        << "      \"run_name\": \"" << json_escape(r.name) << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"repetitions\": 1,\n"
        << "      \"repetition_index\": 0,\n"
        << "      \"threads\": 1,\n"
        << "      \"iterations\": " << r.iterations << ",\n"
        << "      \"real_time\": " << r.real_ns << ",\n"
        << "      \"cpu_time\": " << r.cpu_ns << ",\n"
        << "      \"time_unit\": \"ns\"\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int run_main(int argc, char** argv) {
  RunOptions options;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const std::size_t len = std::string(prefix).size();
      if (arg.rfind(prefix, 0) == 0) return arg.substr(len);
      return std::nullopt;
    };
    if (auto v = value_of("--benchmark_filter=")) {
      options.filter = *v;
    } else if (auto v = value_of("--benchmark_out_format=")) {
      if (*v != "json") {
        std::cerr << "ubench: only --benchmark_out_format=json is supported\n";
        return 1;
      }
    } else if (auto v = value_of("--benchmark_out=")) {
      out_path = *v;
    } else if (auto v = value_of("--benchmark_min_time=")) {
      // Accept gbench's "0.5" and "0.5s" spellings.
      std::string secs = *v;
      if (!secs.empty() && secs.back() == 's') secs.pop_back();
      try {
        options.min_time_s = std::stod(secs);
      } catch (const std::exception&) {
        std::cerr << "ubench: bad --benchmark_min_time value: " << *v << "\n";
        return 1;
      }
    } else {
      std::cerr << "ubench: unrecognized argument: " << arg << "\n";
      return 1;
    }
  }

  std::vector<RunResult> results;
  try {
    results = run_registered(options, &std::cout);
  } catch (const std::regex_error&) {
    std::cerr << "ubench: bad --benchmark_filter regex: " << options.filter << "\n";
    return 1;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "ubench: cannot write " << out_path << "\n";
      return 1;
    }
    out << json_report(results);
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace iprism::ubench
