// Exports the full safety-critical scenario benchmark — the counterpart of
// the paper's released 4810-scenario set. Writes one CSV per typology plus
// per-typology counts; the files round-trip through scenario::read_suite.
//
//   ./export_scenarios [--n=1000] [--out=scenarios]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "scenario/io.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 1000);
  const std::string out_dir = args.get_string("out", "scenarios");

  std::filesystem::create_directories(out_dir);
  const scenario::ScenarioFactory factory;

  int total = 0;
  for (scenario::Typology t : scenario::kAllTypologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    std::string name(scenario::typology_name(t));
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    const std::string path = out_dir + "/" + name + ".csv";
    std::ofstream os(path);
    scenario::write_suite(os, suite.specs);
    std::cout << path << ": " << suite.specs.size() << " scenarios (" << suite.discarded
              << " discarded as invalid)\n";
    total += static_cast<int>(suite.specs.size());
  }
  std::cout << "total: " << total << " scenarios (paper: 4810 across five typologies "
            << "at --n=1000)\n";
  return 0;
}
