// Minimal in-repo micro-benchmark harness, google-benchmark flag- and
// JSON-compatible for the subset the overheads binary uses.
//
// Why not the system google-benchmark: committed BENCH_*.json context blocks
// must be fully release-built, and the distro package ships a library whose
// self-reported "library_build_type" is "debug" — which is exactly the taint
// require_release_guard exists to reject. Building here, the "library" is
// this translation unit, compiled under the same preset as the code being
// measured, so the context block is truthful by construction (and the build
// needs no system benchmark package at all).
//
// Supported surface:
//   UBENCH(fn);  UBENCH(fn)->Arg(2)->Arg(8);        // registration
//   void fn(ubench::State& state) {
//     for (auto _ : state) { ... }                   // timed region
//     state.range(0);                                // the Arg value
//   }
//   DoNotOptimize(v);
//   Flags: --benchmark_filter=<regex> --benchmark_out=<path>
//          --benchmark_out_format=json --benchmark_min_time=<secs>[s]
//
// Timing uses common::telemetry::trace_now_ns (wall) and
// clock_gettime(CLOCK_PROCESS_CPUTIME_ID) (cpu) — std::chrono clock reads
// stay confined to the telemetry layer per the telemetry-discipline lint.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace iprism::ubench {

/// Build type of the harness itself — the "library_build_type" the JSON
/// context reports. "release" iff this TU compiled with NDEBUG and without
/// sanitizers; bench_util::require_release_guard rejects anything else under
/// --require-release.
const char* library_build_type();

/// Per-run state handed to a benchmark function. `for (auto _ : state)`
/// executes exactly the calibrated iteration count; work outside the loop is
/// untimed setup.
class State {
 public:
  class iterator {
   public:
    struct Unit {};
    explicit iterator(std::int64_t remaining) : remaining_(remaining) {}
    bool operator!=(const iterator& other) const {
      return remaining_ != other.remaining_;
    }
    iterator& operator++() {
      --remaining_;
      return *this;
    }
    Unit operator*() const { return {}; }

   private:
    std::int64_t remaining_;
  };

  iterator begin() { return iterator(iterations_); }
  iterator end() { return iterator(0); }

  std::int64_t iterations() const { return iterations_; }
  /// The i-th Arg() of this run (benchmarks registered without Arg have none).
  std::int64_t range(std::size_t i = 0) const;

 private:
  friend struct StateAccess;  ///< the runner's construction backdoor (ubench.cpp)
  State(std::int64_t iterations, std::span<const std::int64_t> args)
      : iterations_(iterations), args_(args.begin(), args.end()) {}

  std::int64_t iterations_ = 0;
  std::vector<std::int64_t> args_;
};

using BenchFn = void (*)(State&);

/// One registered benchmark family; Arg() appends a parameterized run named
/// "<name>/<arg>" (none registered → a single run named "<name>").
class Benchmark {
 public:
  Benchmark(std::string name, BenchFn fn) : name_(std::move(name)), fn_(fn) {}
  Benchmark* Arg(std::int64_t value) {
    args_.push_back(value);
    return this;
  }

  const std::string& name() const { return name_; }
  BenchFn fn() const { return fn_; }
  const std::vector<std::int64_t>& args() const { return args_; }

 private:
  std::string name_;
  BenchFn fn_;
  std::vector<std::int64_t> args_;
};

/// Registers into the global registry (static-init time via UBENCH).
Benchmark* RegisterBenchmark(const char* name, BenchFn fn);

#define UBENCH(fn)                                            \
  static ::iprism::ubench::Benchmark* const ubench_reg_##fn = \
      ::iprism::ubench::RegisterBenchmark(#fn, fn)

/// Prevents the optimizer from deleting a computed value.
template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// One measured run (one name/arg combination).
struct RunResult {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns = 0.0;  ///< wall time per iteration
  double cpu_ns = 0.0;   ///< process-CPU time per iteration
};

struct RunOptions {
  std::string filter;       ///< ECMAScript regex, substring-searched; "" = all
  double min_time_s = 0.5;  ///< calibration target per run
};

/// Key/value added to the JSON context block (e.g. "iprism_build_type").
void add_context(const std::string& key, const std::string& value);

/// Runs every registered benchmark matching the filter, in registration
/// order; prints a console table to `console` when non-null.
std::vector<RunResult> run_registered(const RunOptions& options, std::ostream* console);

/// google-benchmark-compatible JSON document: a context block (date,
/// num_cpus, library_build_type, custom contexts) plus one entry per run.
std::string json_report(std::span<const RunResult> results);

/// CLI driver: parses the --benchmark_* flags above, runs, writes the JSON
/// file when --benchmark_out is given. Returns a process exit code (non-zero
/// on unrecognized arguments, bad regex, or unwritable output path).
int run_main(int argc, char** argv);

}  // namespace iprism::ubench
