// Shared experiment pipeline for the benchmark binaries: suite execution,
// accident bookkeeping (TAS / CA / TCR as defined under the paper's
// Table III), the SMC training pipeline (training-scenario selection by
// highest pre-accident STI, per-typology action sets, episode jitter), and
// PKL planner fitting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "agents/lbc.hpp"
#include "common/cli.hpp"
#include "agents/rip.hpp"
#include "agents/ttc_aca.hpp"
#include "core/pkl.hpp"
#include "core/sti.hpp"
#include "eval/runner.hpp"
#include "rl/mlp.hpp"
#include "scenario/suite.hpp"
#include "smc/trainer.hpp"

namespace iprism::bench {

/// Factory functions so each episode gets a fresh agent/controller.
using AgentMaker = std::function<std::unique_ptr<agents::DrivingAgent>()>;
using ControllerMaker = std::function<std::unique_ptr<agents::MitigationController>()>;

AgentMaker lbc_maker();
AgentMaker rip_maker();
ControllerMaker aca_maker();
ControllerMaker smc_maker(const rl::Mlp& policy);

/// Shared default evaluation seed so every bench sees the same suites.
inline constexpr std::uint64_t kSuiteSeed = 20240624;

/// Wall-clock stopwatch for bench table reporting. Reads the telemetry
/// clock (common::telemetry::trace_now_ns) so steady_clock stays confined
/// to src/common/telemetry — the telemetry-discipline lint rule rejects raw
/// std::chrono::*_clock::now() timing anywhere else in src/ and bench/.
class WallTimer {
 public:
  WallTimer() { restart(); }
  void restart();
  double elapsed_ms() const;

 private:
  std::uint64_t start_ns_ = 0;
};

/// Writes the process's telemetry (Chrome about://tracing JSON + metric
/// summaries) to the path given by `--telemetry=<path>`, if present. No-op
/// without the flag. Call at the end of a bench main(); prints where the
/// trace went (or a warning when the build compiled telemetry out).
void maybe_write_telemetry(const common::CliArgs& args);

/// Same, but first streams a short RiskMonitor profiling pass (a couple of
/// LBC-driven episodes with monitor.update per tick, STI fanned over a
/// small pool) so the exported trace always carries reachtube/STI/monitor/
/// thread-pool spans — even from benches whose tables never touch STI
/// (Table 1 is baseline accident rates only). Runs only when the flag is
/// set and only after the tables printed; experiment output is unchanged.
void maybe_write_telemetry(const common::CliArgs& args,
                           const scenario::ScenarioFactory& factory);

/// True when this binary is a trustworthy timing build: NDEBUG set, no
/// sanitizer instrumentation, no IPRISM_ENABLE_DCHECKS. The sanitizer
/// checks matter because the asan/tsan presets use RelWithDebInfo — NDEBUG
/// *is* defined there, which is exactly how the original debug-tainted
/// baseline slipped through an NDEBUG-only guard.
bool release_benchmark_build();

/// Human-readable reason release_benchmark_build() is false ("" when true).
const char* nonrelease_build_reason();

/// Guards committed benchmark numbers against non-release builds: when
/// release_benchmark_build() is false, prints a loud stderr warning — and
/// with `--require-release` on the command line (as CI passes when
/// recording BENCH_*.json) exits non-zero instead, so a tainted baseline
/// can never be recorded silently again. Call first thing in every bench
/// main(); the flag is consumed here and must not be forwarded to
/// flag-strict parsers (strip_require_release_flag below removes it in
/// place).
void require_release_guard(int argc, const char* const* argv);

/// Removes `--require-release` from argv in place and returns the new argc
/// (ubench::run_main rejects unknown flags; CliArgs-based benches tolerate
/// it, so only overheads needs this).
int strip_require_release_flag(int argc, char** argv);

/// Aggregate outcome of a (suite x agent [x controller]) evaluation.
struct SuiteOutcome {
  int scenarios = 0;
  int accidents = 0;  ///< accidents of THIS configuration
  std::vector<bool> accident_flags;  ///< per scenario, this configuration
  std::vector<std::optional<double>> first_mitigation;  ///< per scenario
  double mean_first_mitigation() const;
};

/// Runs every spec with fresh agent/controller instances. `num_threads > 0`
/// rolls scenarios out in parallel on a common::ThreadPool: every episode is
/// self-contained (fresh world, fresh agent/controller from the makers) and
/// results are aggregated by scenario index, so accident counts, flags, and
/// mitigation times are byte-identical to the serial run (the benches'
/// `--threads` flag plumbs into this).
SuiteOutcome run_suite(const scenario::ScenarioFactory& factory,
                       const std::vector<scenario::ScenarioSpec>& specs,
                       const AgentMaker& agent, const ControllerMaker& controller = {},
                       int num_threads = 0);

/// Collision-avoidance summary versus a baseline run (Table III semantics:
/// TAS = baseline accidents, CA = baseline accidents avoided by the
/// mitigated configuration, TCR = mitigated accidents / scenarios).
struct CaSummary {
  int tas = 0;
  int ca = 0;
  double ca_percent = 0.0;
  double tcr_percent = 0.0;
};
CaSummary ca_summary(const SuiteOutcome& baseline, const SuiteOutcome& mitigated);

/// Picks the training scenario per the paper: among (up to `max_checked`)
/// accident scenarios of the baseline agent, the one with the highest mean
/// STI over the last two seconds before the accident. Scenarios whose
/// accident occurs within `min_accident_time` seconds of the start are
/// excluded — they have no mitigation window, so training on them teaches
/// nothing (the paper's CARLA scenarios all have a lead-in phase). Returns
/// the index into `specs`, or std::nullopt if no scenario qualifies.
std::optional<std::size_t> select_training_spec(const scenario::ScenarioFactory& factory,
                                                const std::vector<scenario::ScenarioSpec>& specs,
                                                const core::StiCalculator& sti,
                                                int max_checked = 40,
                                                double min_accident_time = 5.0);

/// SMC training pipeline for one typology (action set chosen per the paper:
/// braking for the forward typologies, braking+acceleration for rear-end).
struct SmcPipelineOptions {
  int episodes = 80;
  double jitter = 0.10;
  bool use_sti = true;
  std::uint64_t seed = 1234;
};
rl::Mlp train_smc_for(const scenario::ScenarioFactory& factory,
                      const scenario::ScenarioSpec& training_spec,
                      scenario::Typology typology, const SmcPipelineOptions& options,
                      smc::SmcTrainStats* stats = nullptr);

/// Loads a cached policy from `cache_path` if present, otherwise runs the
/// full pipeline (training-scenario selection + training) and saves the
/// result there. Pass an empty path to force training without caching.
/// Returns std::nullopt when the baseline has no accidents to train from.
std::optional<rl::Mlp> load_or_train_smc(const scenario::ScenarioFactory& factory,
                                         const std::vector<scenario::ScenarioSpec>& specs,
                                         scenario::Typology typology,
                                         const SmcPipelineOptions& options,
                                         const std::string& cache_path);

/// Canonical cache filename for a typology/variant.
std::string policy_cache_path(const std::string& dir, scenario::Typology typology,
                              bool use_sti);

/// Fits PKL planner weights on demonstrations from the given typologies
/// (paper Table II: PKL-All = all typologies, PKL-Holdout = all except the
/// two cut-ins).
core::PklWeights fit_pkl_on(const scenario::ScenarioFactory& factory,
                            const std::vector<scenario::Typology>& typologies,
                            int scenarios_per_typology, std::uint64_t seed);

}  // namespace iprism::bench
