// Reproduces paper Fig. 7: four recorded scenes where STI's per-actor risk
// ranking disagrees with closest-actor / in-path heuristics — a pedestrian
// crossing, an oversized straddling truck, a cluttered street, and a car
// pulling out into the ego lane.
//
//   ./fig7_case_studies
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "dataset/cases.hpp"
#include "dataset/scan.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  (void)args;

  const auto scenes = dataset::build_case_scenes();
  const core::StiCalculator sti;

  for (const auto& scene : scenes) {
    std::cout << "== Case: " << scene.name << " ==\n" << scene.description << "\n";
    const auto ranked = dataset::rank_actors(scene.log, scene.analysis_step, sti);
    const auto snapshot = scene.log.snapshot_at(scene.analysis_step);

    common::Table table("per-actor STI at t=" + common::Table::num(snapshot.time, 1) + " s");
    table.set_header({"Actor", "STI", "Distance to ego (m)"});
    for (const auto& r : ranked) {
      double dist = 0.0;
      for (const auto& other : snapshot.others) {
        if (other.id == r.id) {
          dist = geom::distance(other.state.position(), snapshot.ego.state.position());
        }
      }
      table.add_row({"#" + std::to_string(r.id), common::Table::num(r.sti, 2),
                     common::Table::num(dist, 1)});
    }
    table.print(std::cout);

    // The paper's observation: the riskiest actor is often not the closest.
    if (ranked.size() >= 2) {
      double best_dist = 1e18;
      int closest = -1;
      for (const auto& other : snapshot.others) {
        const double d = geom::distance(other.state.position(), snapshot.ego.state.position());
        if (d < best_dist) {
          best_dist = d;
          closest = other.id;
        }
      }
      std::cout << "Riskiest actor: #" << ranked.front().id << "; closest actor: #"
                << closest << (ranked.front().id == closest ? " (same)" : " (different)")
                << "\n";
    }
    std::cout << '\n';
  }
  std::cout << "Paper reference: pedestrian 0.72, oversized actor 0.69, entering actor\n"
               "0.35 (exiting actor 0) — risk tracks blocked escape routes, not\n"
               "proximity or in-path status.\n";
  return 0;
}
