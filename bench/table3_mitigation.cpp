// Reproduces paper Table III: accident-prevention rates across agents and
// scenario typologies, plus the §V-C rear-end extension (acceleration
// action). Four mitigated configurations per typology:
//
//   LBC+SMC w/ STI  (LBC+iPrism)   — the contribution
//   LBC+SMC w/o STI                — ablation: Eq. 8 without the STI term
//   LBC+TTC-based ACA              — rule-based safety controller
//   RIP+SMC w/ STI  (RIP+iPrism)   — generalization to another ADS
//
//   ./table3_mitigation [--n=150] [--episodes=80] [--policy-dir=.] [--threads=0]
//
// Trained policies are cached under --policy-dir (delete the files to force
// retraining); table4_activation_timing and fig5_sti_timeseries reuse them.
// --threads=K rolls suite scenarios out on K worker threads (results are
// byte-identical to --threads=0; see bench_util::run_suite).
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 150);
  const int episodes = args.get_int("episodes", 80);
  const std::string policy_dir = args.get_string("policy-dir", ".");
  const int threads = args.get_int("threads", 0);

  const scenario::ScenarioFactory factory;
  common::Table table("Table III — accident prevention rates across agents");
  table.set_header({"Typology", "Agent", "CA%", "TCR%", "CA#", "TAS#"});

  const scenario::Typology typologies[4] = {
      scenario::Typology::kGhostCutIn, scenario::Typology::kLeadCutIn,
      scenario::Typology::kLeadSlowdown, scenario::Typology::kRearEnd};

  for (scenario::Typology t : typologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    const std::string tname(scenario::typology_name(t));
    std::cout << "[" << tname << "] baseline runs...\n";
    const auto lbc_base = bench::run_suite(factory, suite.specs, bench::lbc_maker(), {}, threads);
    const auto rip_base = bench::run_suite(factory, suite.specs, bench::rip_maker(), {}, threads);

    bench::SmcPipelineOptions with_sti;
    with_sti.episodes = episodes;
    bench::SmcPipelineOptions without_sti = with_sti;
    without_sti.use_sti = false;

    std::cout << "[" << tname << "] training SMC (w/ STI)...\n";
    const auto policy = bench::load_or_train_smc(
        factory, suite.specs, t, with_sti, bench::policy_cache_path(policy_dir, t, true));
    std::cout << "[" << tname << "] training SMC (w/o STI ablation)...\n";
    const auto policy_no_sti = bench::load_or_train_smc(
        factory, suite.specs, t, without_sti,
        bench::policy_cache_path(policy_dir, t, false));
    if (!policy || !policy_no_sti) {
      std::cout << "[" << tname << "] baseline produced no accidents; skipped\n";
      continue;
    }

    struct Config {
      std::string label;
      bench::AgentMaker agent;
      bench::ControllerMaker controller;
      const bench::SuiteOutcome* baseline;
    };
    const Config configs[] = {
        {"LBC+SMC w/ STI (LBC+iPrism)", bench::lbc_maker(), bench::smc_maker(*policy),
         &lbc_base},
        {"LBC+SMC w/o STI (ablation)", bench::lbc_maker(), bench::smc_maker(*policy_no_sti),
         &lbc_base},
        {"LBC+TTC-based ACA", bench::lbc_maker(), bench::aca_maker(), &lbc_base},
        {"RIP+SMC w/ STI (RIP+iPrism)", bench::rip_maker(), bench::smc_maker(*policy),
         &rip_base},
    };
    for (const Config& config : configs) {
      const auto mitigated =
          bench::run_suite(factory, suite.specs, config.agent, config.controller, threads);
      const auto s = bench::ca_summary(*config.baseline, mitigated);
      table.add_row({tname, config.label, common::Table::num(s.ca_percent, 0),
                     common::Table::num(s.tcr_percent, 1), std::to_string(s.ca),
                     std::to_string(s.tas)});
    }
  }

  table.print(std::cout);
  std::cout <<
      "\nPaper reference (CA% per ghost/lead cut-in/slowdown): LBC+iPrism 49/98/87,\n"
      "ablation 1/2/86, TTC-ACA 0/0/92, RIP+iPrism 86/61/71; rear-end extension:\n"
      "iPrism prevents 37% (282/770) where ACA and RIP are ineffective.\n";
  bench::maybe_write_telemetry(args, factory);
  return 0;
}
