// Reproduces paper Table IV: when does each safety controller first
// intervene? iPrism's SMC acts earlier than TTC-based ACA on every
// typology — the proactive-vs-reactive gap that explains Table III.
//
//   ./table4_activation_timing [--n=150] [--episodes=80] [--policy-dir=.] [--threads=0]
//
// Reuses policies cached by table3_mitigation when present. --threads=K
// parallelizes the suite rollouts (byte-identical results).
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 150);
  const int episodes = args.get_int("episodes", 80);
  const std::string policy_dir = args.get_string("policy-dir", ".");
  const int threads = args.get_int("threads", 0);

  const scenario::ScenarioFactory factory;
  const scenario::Typology typologies[3] = {scenario::Typology::kGhostCutIn,
                                            scenario::Typology::kLeadCutIn,
                                            scenario::Typology::kLeadSlowdown};

  common::Table table("Table IV — first mitigation activation time (s into scenario)");
  table.set_header({"Agent", "Ghost cut-in", "Lead cut-in", "Lead slowdown"});
  std::vector<std::string> smc_row{"LBC+SMC w/ STI (LBC+iPrism)"};
  std::vector<std::string> aca_row{"LBC+TTC-based ACA"};
  std::vector<std::string> lead_row{"Lead Time in Mitigation (s)"};

  for (scenario::Typology t : typologies) {
    const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
    bench::SmcPipelineOptions options;
    options.episodes = episodes;
    const auto policy = bench::load_or_train_smc(
        factory, suite.specs, t, options, bench::policy_cache_path(policy_dir, t, true));
    if (!policy) {
      smc_row.push_back("-");
      aca_row.push_back("-");
      lead_row.push_back("-");
      continue;
    }
    const auto smc_run = bench::run_suite(factory, suite.specs, bench::lbc_maker(),
                                          bench::smc_maker(*policy), threads);
    const auto aca_run = bench::run_suite(factory, suite.specs, bench::lbc_maker(),
                                          bench::aca_maker(), threads);
    const double smc_t = smc_run.mean_first_mitigation();
    const double aca_t = aca_run.mean_first_mitigation();
    smc_row.push_back(common::Table::num(smc_t, 2));
    aca_row.push_back(common::Table::num(aca_t, 2));
    lead_row.push_back(common::Table::num(aca_t - smc_t, 2));
  }
  table.add_row(smc_row);
  table.add_row(aca_row);
  table.add_row(lead_row);
  table.print(std::cout);
  std::cout << "\nPaper reference (lead time of iPrism over ACA): ghost cut-in 0.57 s,\n"
               "lead cut-in 3.73 s, lead slowdown 1.32 s — iPrism intervenes earlier\n"
               "everywhere (lower activation time is better).\n";
  bench::maybe_write_telemetry(args, factory);
  return 0;
}
