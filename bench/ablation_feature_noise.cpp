// Sensor-robustness ablation: how gracefully does the SMC degrade when its
// observation features are corrupted by Gaussian noise? The paper scopes
// sensor faults out ("non-actor-related risks ... are orthogonal"), so this
// is an extension probing the trained policy's margin. Reuses the cached
// ghost-cut-in policy from table3_mitigation.
//
//   ./ablation_feature_noise [--n=120] [--episodes=80] [--policy-dir=.] [--threads=0]
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "smc/controller.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 120);
  const int episodes = args.get_int("episodes", 80);
  const std::string policy_dir = args.get_string("policy-dir", ".");
  const int threads = args.get_int("threads", 0);

  const scenario::ScenarioFactory factory;
  const auto t = scenario::Typology::kGhostCutIn;
  const auto suite = scenario::generate_suite(factory, t, n, bench::kSuiteSeed);
  const auto baseline =
      bench::run_suite(factory, suite.specs, bench::lbc_maker(), {}, threads);

  bench::SmcPipelineOptions options;
  options.episodes = episodes;
  const auto policy = bench::load_or_train_smc(
      factory, suite.specs, t, options, bench::policy_cache_path(policy_dir, t, true));
  if (!policy) {
    std::cout << "no baseline accidents to train from\n";
    return 1;
  }

  common::Table table("Feature-noise robustness (ghost cut-in; features are in [-1, 1])");
  table.set_header({"noise sigma", "CA%", "TCR%", "interventions/scenario"});
  for (double sigma : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    smc::SmcControlParams params;
    params.feature_noise_std = sigma;
    const auto mitigated = bench::run_suite(
        factory, suite.specs, bench::lbc_maker(),
        [&] { return std::make_unique<smc::SmcController>(*policy, params); },
        threads);
    const auto s = bench::ca_summary(baseline, mitigated);
    int activated = 0;
    for (const auto& first : mitigated.first_mitigation) {
      if (first) ++activated;
    }
    table.add_row({common::Table::num(sigma, 2), common::Table::num(s.ca_percent, 0),
                   common::Table::num(s.tcr_percent, 1),
                   common::Table::num(static_cast<double>(activated) /
                                          std::max(mitigated.scenarios, 1),
                                      2)});
  }
  table.print(std::cout);
  std::cout << "\nInterpretation: the features span [-1, 1], so sigma = 0.05 is ~2.5% of\n"
               "the dynamic range. A robust policy should hold its CA% through small\n"
               "sigma and fail gracefully (more spurious interventions, later misses)\n"
               "as noise approaches the signal scale.\n";
  return 0;
}
