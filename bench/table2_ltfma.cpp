// Reproduces paper Table II: Lead-Time-for-Mitigating-Accident (seconds)
// across risk metrics and scenario typologies, on the accident subset of
// each typology, with ground-truth actor trajectories (§IV-C).
//
//   ./table2_ltfma [--n=120] [--pkl-n=12] [--stride=2]
//
// PKL-All is fitted on demonstrations from all five typologies;
// PKL-Holdout on all but the two cut-in typologies.
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/series.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 120);
  const int pkl_n = args.get_int("pkl-n", 12);
  const int stride = args.get_int("stride", 2);

  const scenario::ScenarioFactory factory;
  const core::StiCalculator sti;
  const core::TtcMetric ttc(3.0);
  const core::DistCipaMetric cipa(25.0);

  std::cout << "Fitting PKL planners (" << pkl_n << " scenarios/typology)...\n";
  const core::PklWeights w_all = bench::fit_pkl_on(
      factory,
      {scenario::Typology::kGhostCutIn, scenario::Typology::kLeadCutIn,
       scenario::Typology::kLeadSlowdown, scenario::Typology::kFrontAccident,
       scenario::Typology::kRearEnd},
      pkl_n, bench::kSuiteSeed);
  const core::PklWeights w_holdout = bench::fit_pkl_on(
      factory,
      {scenario::Typology::kLeadSlowdown, scenario::Typology::kFrontAccident,
       scenario::Typology::kRearEnd},
      pkl_n, bench::kSuiteSeed);
  const core::PklMetric pkl_all(core::PklParams{}, w_all);
  const core::PklMetric pkl_holdout(core::PklParams{}, w_holdout);

  struct Row {
    std::string name;
    eval::RiskFn fn;
    int stride;
    common::RunningStat per_typology[4];
    common::RunningStat overall;
  };
  std::vector<Row> rows;
  rows.push_back({"TTC", eval::ttc_risk(ttc), 1, {}, {}});
  rows.push_back({"Dist. CIPA", eval::dist_cipa_risk(cipa), 1, {}, {}});
  rows.push_back({"PKL-All", eval::pkl_risk(pkl_all), stride, {}, {}});
  rows.push_back({"PKL-Holdout", eval::pkl_risk(pkl_holdout), stride, {}, {}});
  rows.push_back({"STI (ours)", eval::sti_risk(sti), stride, {}, {}});

  const scenario::Typology typologies[4] = {
      scenario::Typology::kGhostCutIn, scenario::Typology::kLeadCutIn,
      scenario::Typology::kLeadSlowdown, scenario::Typology::kRearEnd};

  for (int ti = 0; ti < 4; ++ti) {
    const auto suite = scenario::generate_suite(factory, typologies[ti], n, bench::kSuiteSeed);
    int accidents = 0;
    for (const auto& spec : suite.specs) {
      agents::LbcAgent lbc;
      const eval::EpisodeResult r = eval::run_episode(factory.build(spec), lbc);
      if (!r.ego_accident) continue;
      ++accidents;
      for (Row& row : rows) {
        const double lead = eval::ltfma_backward(r, row.fn, row.stride);
        row.per_typology[ti].add(lead);
        row.overall.add(lead);
      }
    }
    std::cout << scenario::typology_name(typologies[ti]) << ": " << accidents
              << " accident scenarios analysed\n";
  }

  common::Table table("Table II — LTFMA (s), mean (SD) per metric and typology");
  table.set_header({"Metric", "Ghost Cut-In", "Lead Cut-In", "Lead Slowdown", "Rear-End",
                    "All Scenarios"});
  for (Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (int ti = 0; ti < 4; ++ti) {
      cells.push_back(common::Table::num(row.per_typology[ti].mean(), 2) + " (" +
                      common::Table::num(row.per_typology[ti].stddev(), 2) + ")");
    }
    cells.push_back(common::Table::num(row.overall.mean(), 2));
    table.add_row(cells);
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (All Scenarios avg): TTC 0.83, Dist. CIPA 1.38,\n"
               "PKL-All 0.75, PKL-Holdout 1.19, STI 3.69 — STI dominates every\n"
               "baseline; TTC/CIPA are ~0 on both cut-ins and rear-end.\n";
  return 0;
}
