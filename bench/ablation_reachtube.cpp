// Reproduces the paper's footnote-5 ablation: the reach-tube acceleration
// optimizations (epsilon dedup; boundary-control enumeration instead of
// uniform sampling) change STI only marginally — plus this library's extra
// knob, the braking boundary control (DESIGN.md §5).
//
//   ./ablation_reachtube [--n=40]
//
// Evaluates each configuration on the same fixed set of scenes (snapshots
// drawn from baseline episodes of every typology) and reports the mean
// absolute STI difference from the default configuration and the speedup.
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace iprism;

namespace {

struct Scene {
  core::SceneSnapshot snapshot;
  std::vector<core::ActorForecast> forecasts;
  std::shared_ptr<const eval::EpisodeResult> keepalive;  // owns map + traces
};

}  // namespace

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  const int n = args.get_int("n", 40);

  // Collect probe scenes across typologies.
  const scenario::ScenarioFactory factory;
  std::vector<Scene> scenes;
  for (scenario::Typology t : scenario::kAllTypologies) {
    const auto suite =
        scenario::generate_suite(factory, t, std::max(n / 5, 2), bench::kSuiteSeed);
    for (const auto& spec : suite.specs) {
      agents::LbcAgent lbc;
      auto episode =
          std::make_shared<eval::EpisodeResult>(eval::run_episode(factory.build(spec), lbc));
      for (int frac = 1; frac <= 3; ++frac) {
        const int step = episode->samples * frac / 4;
        scenes.push_back({episode->snapshot_at(step), episode->ground_truth_forecasts(step),
                          episode});
      }
    }
  }
  std::cout << scenes.size() << " probe scenes collected\n";

  struct Config {
    std::string name;
    core::ReachTubeParams params;
  };
  std::vector<Config> configs;
  configs.push_back({"default (dedup + boundary)", {}});
  {
    core::ReachTubeParams p;
    p.boundary_controls = false;
    p.uniform_samples = 24;
    configs.push_back({"uniform sampling (N=24)", p});
  }
  {
    core::ReachTubeParams p;
    p.include_braking_boundary = true;
    configs.push_back({"+ braking boundary control", p});
  }
  // The dedup ablation needs exact enumeration to compare against, which is
  // only feasible at a short horizon (9^slices trajectories without dedup);
  // both sides of that comparison run at horizon 1.0 s.
  {
    core::ReachTubeParams p;
    p.horizon = 1.0;
    configs.push_back({"dedup on  (horizon 1.0 s)", p});
  }
  {
    core::ReachTubeParams p;
    p.horizon = 1.0;
    p.dedup = false;
    p.max_states_per_slice = 100000;  // 9^4 = 6561 states: exact enumeration
    configs.push_back({"dedup off (horizon 1.0 s, exact)", p});
  }

  // Reference values: the default configuration for the full-horizon rows,
  // the short-horizon dedup-on configuration for the dedup comparison.
  auto evaluate = [&](const core::ReachTubeParams& params) {
    const core::StiCalculator sti(params);
    std::vector<double> out;
    out.reserve(scenes.size());
    for (const Scene& s : scenes) {
      out.push_back(
          sti.combined(*s.snapshot.map, s.snapshot.ego.state, common::Seconds{s.snapshot.time}, s.forecasts));
    }
    return out;
  };
  const std::vector<double> reference_full = evaluate(configs[0].params);
  const std::vector<double> reference_short = evaluate(configs[3].params);

  common::Table table("Footnote-5 ablation — reach-tube optimizations");
  table.set_header({"Configuration", "mean STI", "mean |dSTI| vs reference", "time/STI (ms)"});
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const Config& config = configs[ci];
    const std::vector<double>& reference = ci < 3 ? reference_full : reference_short;
    const core::StiCalculator sti(config.params);
    common::RunningStat value;
    common::RunningStat diff;
    const bench::WallTimer timer;
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      const Scene& s = scenes[i];
      const double v =
          sti.combined(*s.snapshot.map, s.snapshot.ego.state, common::Seconds{s.snapshot.time}, s.forecasts);
      value.add(v);
      diff.add(std::abs(v - reference[i]));
    }
    const double ms = timer.elapsed_ms() / static_cast<double>(scenes.size());
    table.add_row({config.name, common::Table::num(value.mean(), 3),
                   common::Table::num(diff.mean(), 3), common::Table::num(ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (footnote 5): results with and without the\n"
               "optimizations are marginally different; the optimizations exist for\n"
               "speed.\n";
  return 0;
}
