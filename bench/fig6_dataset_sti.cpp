// Reproduces paper Fig. 6: STI characterization of a "real-world" dataset.
// The corpus is the synthetic benign-traffic log set that substitutes for
// Argoverse (DESIGN.md §2): rule-abiding, gap-keeping drivers with rare
// mildly-risky interactions. The paper's observation — per-actor STI is
// zero for ~90% of samples and both distributions are long-tailed — is a
// property of benign data, which the scan must reproduce.
//
//   ./fig6_dataset_sti [--logs=60] [--stride=5] [--csv=fig6.csv]
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dataset/generator.hpp"
#include "dataset/scan.hpp"

using namespace iprism;

int main(int argc, char** argv) {
  bench::require_release_guard(argc, argv);
  const common::CliArgs args(argc, argv);
  dataset::DatasetParams params;
  params.log_count = args.get_int("logs", 60);
  const int stride = args.get_int("stride", 5);
  const std::string csv_path = args.get_string("csv", "");

  std::cout << "Generating " << params.log_count << " recorded logs...\n";
  const auto logs = dataset::generate_dataset(params);
  const core::StiCalculator sti;
  std::cout << "Scanning STI over " << logs.size() << " logs...\n";
  const auto scan = dataset::scan_logs(logs, sti, stride);

  common::Table table("Fig. 6 — STI percentiles over the recorded-log corpus");
  table.set_header({"Distribution", "p50", "p75", "p90", "p99", "samples"});
  table.add_row({"Per-actor STI", common::Table::num(scan.actor_percentile(50), 3),
                 common::Table::num(scan.actor_percentile(75), 3),
                 common::Table::num(scan.actor_percentile(90), 3),
                 common::Table::num(scan.actor_percentile(99), 3),
                 std::to_string(scan.actor_sti.size())});
  table.add_row({"STI (combined)", common::Table::num(scan.combined_percentile(50), 3),
                 common::Table::num(scan.combined_percentile(75), 3),
                 common::Table::num(scan.combined_percentile(90), 3),
                 common::Table::num(scan.combined_percentile(99), 3),
                 std::to_string(scan.combined_sti.size())});
  table.print(std::cout);
  std::cout << "Per-actor zero fraction: "
            << common::Table::num(100.0 * scan.actor_zero_fraction(), 1) << "%\n";

  // Coarse histogram for the long-tail shape.
  constexpr int kBins = 10;
  int actor_hist[kBins] = {};
  for (double v : scan.actor_sti) {
    ++actor_hist[std::min(static_cast<int>(v * kBins), kBins - 1)];
  }
  std::cout << "Per-actor STI histogram (bin width 0.1): ";
  for (int b = 0; b < kBins; ++b) std::cout << actor_hist[b] << ' ';
  std::cout << '\n';

  if (!csv_path.empty()) {
    common::CsvWriter csv(csv_path);
    csv.write_row(std::vector<std::string>{"kind", "value"});
    for (double v : scan.actor_sti)
      csv.write_row(std::vector<std::string>{"actor", common::Table::num(v, 5)});
    for (double v : scan.combined_sti)
      csv.write_row(std::vector<std::string>{"combined", common::Table::num(v, 5)});
  }

  std::cout << "\nPaper reference (Argoverse): per-actor p50/p75/p90/p99 =\n"
               "0 / 0 / 0.020 / 0.33; combined 0.09 / 0.29 / 0.52 / 0.93; per-actor\n"
               "STI is zero ~90% of the time. Benign data is long-tailed, so NHTSA\n"
               "typologies are out-of-distribution for models trained on it.\n";
  return 0;
}
